//! Reasoners: transitive closure, an RDFS subset, and a generic rule
//! engine with forward and backward chaining.
//!
//! These mirror the Jena reasoners the paper lists (§3):
//!
//! * "A transitive reasoner with support for storing and traversing class
//!   and property lattices" → [`TransitiveReasoner`];
//! * "An RDF Schema rule reasoner which implements a configurable subset
//!   of the RDF Schema entailments" → [`RdfsReasoner`];
//! * "A generic rule reasoner that supports user-defined rules … forward
//!   chaining, tabled backward chaining" → [`GenericRuleReasoner`] with a
//!   Jena-style rule syntax.
//!
//! Forward chaining runs entirely on dictionary-encoded id triples: rules
//! are compiled once per run ([`compile_rules`]) into constant-id /
//! variable-index form, bindings are flat `Vec<Option<TermId>>` arrays,
//! and every join is integer work. Terms are materialized only at the API
//! boundary.

use crate::dict::{IdTriple, TermDict, TermId};
use crate::graph::{Graph, Overlay, TripleView};
use crate::model::{vocab, Statement, Term};
use crate::RdfError;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Semi-naive evaluation core
//
// All reasoners share one fixpoint driver: each round joins the rule bodies
// against the *delta* (facts derived in the previous round) rather than
// re-scanning the whole graph, and the working set is a borrowed
// [`Overlay`] over the stated base plus the derived closure — no
// `graph.clone()` per run and no full re-derivation per round. Everything
// in the loop is id-triple work.
// ---------------------------------------------------------------------------

/// A delta rule: given the full current view and the id triples that are
/// new since the last round, produce candidate conclusions. Candidates may
/// duplicate existing facts; the driver deduplicates.
pub(crate) type DeltaRule<'r> = dyn FnMut(&dyn TripleView, &[IdTriple]) -> Vec<IdTriple> + 'r;

/// Runs delta rules to fixpoint starting from `seed`, extending `derived`
/// in place. `derived` must share `base`'s dictionary, and `seed` facts
/// must already be visible in `base` or `derived`. Returns the facts that
/// are newly derived by this call.
pub(crate) fn propagate(
    base: &Graph,
    derived: &mut Graph,
    seed: Vec<IdTriple>,
    rule: &mut DeltaRule<'_>,
) -> Vec<IdTriple> {
    debug_assert!(base.dict().ptr_eq(derived.dict()));
    let mut new_facts = Vec::new();
    let mut delta = seed;
    while !delta.is_empty() {
        let candidates = {
            let view = Overlay::new(base, derived);
            rule(&view, &delta)
        };
        let mut fresh = Vec::new();
        for t in candidates {
            if !base.contains_id(t) && !derived.contains_id(t) {
                derived.insert_id(t);
                fresh.push(t);
            }
        }
        new_facts.extend(fresh.iter().copied());
        delta = fresh;
    }
    new_facts
}

/// Full semi-naive fixpoint from scratch: round 0 seeds the delta with the
/// entire base (equivalent to one naive round), later rounds join only
/// against fresh facts. Returns the derived closure (sharing the base's
/// dictionary).
pub(crate) fn semi_naive(base: &Graph, rule: &mut DeltaRule<'_>) -> Graph {
    let mut derived = Graph::with_dict(base.dict().clone());
    let seed: Vec<IdTriple> = base.iter_ids().collect();
    propagate(base, &mut derived, seed, rule);
    derived
}

/// The RDFS/OWL vocabulary interned against one dictionary, so delta rules
/// compare predicates by id instead of re-creating vocabulary terms per
/// round. Interned (not merely looked up) because the conclusions may
/// introduce vocabulary — e.g. `rdf:type` — the stated graph never used.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VocabIds {
    pub type_p: TermId,
    pub sub_class: TermId,
    pub sub_prop: TermId,
    pub domain: TermId,
    pub range: TermId,
    pub inverse_of: TermId,
    pub same_as: TermId,
    pub symmetric: TermId,
    pub transitive: TermId,
    pub functional: TermId,
}

impl VocabIds {
    pub(crate) fn new(dict: &TermDict) -> VocabIds {
        let id = |iri: &str| dict.intern(&Term::iri(iri));
        VocabIds {
            type_p: id(vocab::TYPE),
            sub_class: id(vocab::SUB_CLASS_OF),
            sub_prop: id(vocab::SUB_PROPERTY_OF),
            domain: id(vocab::DOMAIN),
            range: id(vocab::RANGE),
            inverse_of: id(vocab::INVERSE_OF),
            same_as: id(vocab::SAME_AS),
            symmetric: id(vocab::SYMMETRIC_PROPERTY),
            transitive: id(vocab::TRANSITIVE_PROPERTY),
            functional: id(vocab::FUNCTIONAL_PROPERTY),
        }
    }
}

/// Delta form of transitive closure for `predicates`: a new edge composes
/// with existing edges on both sides. Self-loops are never emitted and
/// targets must be resources, matching [`TransitiveReasoner`] semantics.
pub(crate) fn transitive_delta(
    predicates: &[TermId],
    view: &dyn TripleView,
    delta: &[IdTriple],
) -> Vec<IdTriple> {
    let mut out = Vec::new();
    for &(s, p, o) in delta {
        if !predicates.contains(&p) {
            continue;
        }
        if o.is_resource() {
            // (a p b), (b p c) => (a p c).
            for (_, _, next_o) in view.find_ids(Some(o), Some(p), None) {
                if next_o.is_resource() && next_o != s {
                    out.push((s, p, next_o));
                }
            }
            // (x p a), (a p b) => (x p b).
            for (prev_s, _, _) in view.find_ids(None, Some(p), Some(s)) {
                if prev_s != o {
                    out.push((prev_s, p, o));
                }
            }
        }
    }
    out
}

/// Delta form of the RDFS subset (rdfs2/3/5/7/9/11). Each delta fact is
/// treated both as a schema declaration (joining its existing use sites)
/// and as a use site (joining the existing schema).
pub(crate) fn rdfs_delta(v: &VocabIds, view: &dyn TripleView, delta: &[IdTriple]) -> Vec<IdTriple> {
    let lattices = [v.sub_class, v.sub_prop];
    let mut out = transitive_delta(&lattices, view, delta);
    for &(s, p, o) in delta {
        // Declaration side: the delta fact is schema, join its use sites.
        if p == v.sub_class {
            // rdfs9: (C subClassOf D), (s type C) => (s type D).
            for (inst_s, _, _) in view.find_ids(None, Some(v.type_p), Some(s)) {
                out.push((inst_s, v.type_p, o));
            }
        } else if p == v.sub_prop {
            // rdfs7: (p subPropertyOf q), (s p o) => (s q o).
            if o.is_iri() {
                for (use_s, _, use_o) in view.find_ids(None, Some(s), None) {
                    out.push((use_s, o, use_o));
                }
            }
        } else if p == v.domain {
            // rdfs2: (p domain C), (s p o) => (s type C).
            for (use_s, _, _) in view.find_ids(None, Some(s), None) {
                out.push((use_s, v.type_p, o));
            }
        } else if p == v.range {
            // rdfs3: (p range C), (s p o), o resource => (o type C).
            for (_, _, use_o) in view.find_ids(None, Some(s), None) {
                if use_o.is_resource() {
                    out.push((use_o, v.type_p, o));
                }
            }
        }

        // Use side: the delta fact is an instance fact, join the schema.
        if p == v.type_p && o.is_resource() {
            // rdfs9: (s type C), (C subClassOf D) => (s type D).
            for (_, _, super_c) in view.find_ids(Some(o), Some(v.sub_class), None) {
                out.push((s, v.type_p, super_c));
            }
        }
        // rdfs2 over this use site's predicate.
        for (_, _, dom_c) in view.find_ids(Some(p), Some(v.domain), None) {
            out.push((s, v.type_p, dom_c));
        }
        // rdfs3.
        if o.is_resource() {
            for (_, _, ran_c) in view.find_ids(Some(p), Some(v.range), None) {
                out.push((o, v.type_p, ran_c));
            }
        }
        // rdfs7.
        for (_, _, super_p) in view.find_ids(Some(p), Some(v.sub_prop), None) {
            if super_p.is_iri() {
                out.push((s, super_p, o));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Compiled (id-level) rules
// ---------------------------------------------------------------------------

/// A compiled pattern slot: either a dictionary id or an index into the
/// rule's flat binding array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IdPatternTerm {
    /// A concrete, interned term.
    Const(TermId),
    /// A variable, by index into the rule's binding array.
    Var(usize),
}

/// A compiled triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IdPattern {
    pub subject: IdPatternTerm,
    pub predicate: IdPatternTerm,
    pub object: IdPatternTerm,
}

/// A compiled rule: constants interned, variables numbered `0..nvars`, so
/// a binding set is a flat `Vec<Option<TermId>>` instead of a string map.
#[derive(Debug, Clone)]
pub(crate) struct IdRule {
    pub premises: Vec<IdPattern>,
    pub conclusions: Vec<IdPattern>,
    pub nvars: usize,
}

impl IdPatternTerm {
    pub(crate) fn bind(self, bindings: &[Option<TermId>]) -> Option<TermId> {
        match self {
            IdPatternTerm::Const(id) => Some(id),
            IdPatternTerm::Var(i) => bindings[i],
        }
    }
}

impl IdPattern {
    /// Matches this pattern against the view under existing bindings,
    /// returning each extended binding set together with the triple that
    /// produced it (the weighted reasoner reads per-premise confidences
    /// off the matched triples).
    pub(crate) fn solve(
        &self,
        view: &dyn TripleView,
        bindings: &[Option<TermId>],
    ) -> Vec<(Vec<Option<TermId>>, IdTriple)> {
        let s = self.subject.bind(bindings);
        let p = self.predicate.bind(bindings);
        let o = self.object.bind(bindings);
        view.find_ids(s, p, o)
            .into_iter()
            .filter_map(|t| {
                let mut out = bindings.to_vec();
                for (slot, val) in [
                    (self.subject, t.0),
                    (self.predicate, t.1),
                    (self.object, t.2),
                ] {
                    if let IdPatternTerm::Var(i) = slot {
                        match out[i] {
                            Some(bound) if bound != val => return None,
                            Some(_) => {}
                            None => out[i] = Some(val),
                        }
                    }
                }
                Some((out, t))
            })
            .collect()
    }

    /// Matches this pattern against a single ground triple from scratch,
    /// returning the bindings it induces (used to seed semi-naive rounds
    /// from a delta slice).
    pub(crate) fn match_triple(&self, nvars: usize, t: IdTriple) -> Option<Vec<Option<TermId>>> {
        let mut out = vec![None; nvars];
        for (slot, val) in [
            (self.subject, t.0),
            (self.predicate, t.1),
            (self.object, t.2),
        ] {
            match slot {
                IdPatternTerm::Const(c) => {
                    if c != val {
                        return None;
                    }
                }
                IdPatternTerm::Var(i) => match out[i] {
                    Some(bound) if bound != val => return None,
                    Some(_) => {}
                    None => out[i] = Some(val),
                },
            }
        }
        Some(out)
    }

    /// Instantiates the pattern under bindings, if every slot is bound and
    /// the result is structurally valid (resource subject, IRI predicate).
    pub(crate) fn instantiate(&self, bindings: &[Option<TermId>]) -> Option<IdTriple> {
        let s = self.subject.bind(bindings)?;
        let p = self.predicate.bind(bindings)?;
        let o = self.object.bind(bindings)?;
        if !s.is_resource() || !p.is_iri() {
            return None;
        }
        Some((s, p, o))
    }
}

fn compile_slot(slot: &PatternTerm, dict: &TermDict, vars: &mut Vec<String>) -> IdPatternTerm {
    match slot {
        PatternTerm::Term(t) => IdPatternTerm::Const(dict.intern(t)),
        PatternTerm::Var(v) => IdPatternTerm::Var(var_index(v, vars)),
    }
}

pub(crate) fn var_index(name: &str, vars: &mut Vec<String>) -> usize {
    match vars.iter().position(|x| x == name) {
        Some(i) => i,
        None => {
            vars.push(name.to_string());
            vars.len() - 1
        }
    }
}

/// Compiles a pattern, interning its constants into `dict` (rule constants
/// may introduce terms the stated graph never used).
pub(crate) fn compile_pattern(
    pattern: &TriplePattern,
    dict: &TermDict,
    vars: &mut Vec<String>,
) -> IdPattern {
    IdPattern {
        subject: compile_slot(&pattern.subject, dict, vars),
        predicate: compile_slot(&pattern.predicate, dict, vars),
        object: compile_slot(&pattern.object, dict, vars),
    }
}

/// Compiles a rule: one shared variable namespace across premises and
/// conclusions, constants interned into `dict`.
pub(crate) fn compile_rule(rule: &Rule, dict: &TermDict) -> IdRule {
    let mut vars = Vec::new();
    let premises = rule
        .premises
        .iter()
        .map(|p| compile_pattern(p, dict, &mut vars))
        .collect();
    let conclusions = rule
        .conclusions
        .iter()
        .map(|c| compile_pattern(c, dict, &mut vars))
        .collect();
    IdRule {
        premises,
        conclusions,
        nvars: vars.len(),
    }
}

/// Compiles every rule against one dictionary.
pub(crate) fn compile_rules(rules: &[Rule], dict: &TermDict) -> Vec<IdRule> {
    rules.iter().map(|r| compile_rule(r, dict)).collect()
}

/// Delta form of forward chaining over compiled rules: for each rule and
/// each premise position, bind that premise from the delta and solve the
/// remaining premises against the full view.
pub(crate) fn rules_delta(
    rules: &[IdRule],
    view: &dyn TripleView,
    delta: &[IdTriple],
) -> Vec<IdTriple> {
    let mut out = Vec::new();
    for rule in rules {
        for i in 0..rule.premises.len() {
            let seeds: Vec<Vec<Option<TermId>>> = delta
                .iter()
                .filter_map(|&t| rule.premises[i].match_triple(rule.nvars, t))
                .collect();
            if seeds.is_empty() {
                continue;
            }
            let mut bindings = seeds;
            for (j, premise) in rule.premises.iter().enumerate() {
                if j == i {
                    continue;
                }
                let mut next = Vec::new();
                for b in &bindings {
                    next.extend(premise.solve(view, b).into_iter().map(|(nb, _)| nb));
                }
                bindings = next;
                if bindings.is_empty() {
                    break;
                }
            }
            for b in &bindings {
                for conclusion in &rule.conclusions {
                    if let Some(t) = conclusion.instantiate(b) {
                        out.push(t);
                    }
                }
            }
        }
    }
    out
}

/// Computes the transitive closure of chosen predicates.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{Graph, Statement, Term, TransitiveReasoner};
///
/// let mut g = Graph::new();
/// let sub = Term::iri("rdfs:subClassOf");
/// g.insert(Statement::new(Term::iri("ex:cat"), sub.clone(), Term::iri("ex:mammal")));
/// g.insert(Statement::new(Term::iri("ex:mammal"), sub.clone(), Term::iri("ex:animal")));
///
/// let inferred = TransitiveReasoner::new(vec![sub.clone()]).infer(&g);
/// assert!(inferred.contains(&Statement::new(
///     Term::iri("ex:cat"), sub, Term::iri("ex:animal"))));
/// ```
#[derive(Debug, Clone)]
pub struct TransitiveReasoner {
    predicates: Vec<Term>,
}

impl TransitiveReasoner {
    /// Creates a reasoner closing over the given predicates.
    pub fn new(predicates: Vec<Term>) -> TransitiveReasoner {
        TransitiveReasoner { predicates }
    }

    /// The standard class/property-lattice reasoner
    /// (`rdfs:subClassOf` + `rdfs:subPropertyOf`).
    pub fn for_lattices() -> TransitiveReasoner {
        TransitiveReasoner::new(vec![
            Term::iri(vocab::SUB_CLASS_OF),
            Term::iri(vocab::SUB_PROPERTY_OF),
        ])
    }

    /// Returns the *new* statements entailed by transitivity (excluding
    /// those already present). The result shares the input's dictionary.
    ///
    /// Evaluated semi-naively per predicate on id pairs: the closure is
    /// grown by joining each round's *delta* pairs against the stated
    /// edges (right-linear `T ∘ E`), so no round re-scans pairs derived
    /// earlier and no string is touched.
    pub fn infer(&self, graph: &Graph) -> Graph {
        let mut inferred = Graph::with_dict(graph.dict().clone());
        for predicate in &self.predicates {
            // A predicate the graph never interned has no edges.
            let Some(p) = graph.dict().lookup(predicate) else {
                continue;
            };
            let edges: Vec<(TermId, TermId)> = graph
                .match_ids(None, Some(p), None)
                .into_iter()
                .map(|(s, _, o)| (s, o))
                .collect();
            let mut succ: HashMap<TermId, Vec<TermId>> = HashMap::new();
            for &(s, o) in &edges {
                succ.entry(s).or_default().push(o);
            }
            let mut closure: HashMap<TermId, HashSet<TermId>> = HashMap::new();
            for &(s, o) in &edges {
                closure.entry(s).or_default().insert(o);
            }
            let mut delta = edges;
            while !delta.is_empty() {
                let mut fresh = Vec::new();
                for &(a, b) in &delta {
                    if let Some(nexts) = succ.get(&b) {
                        for &c in nexts {
                            if closure.entry(a).or_default().insert(c) {
                                fresh.push((a, c));
                            }
                        }
                    }
                }
                delta = fresh;
            }
            for (start, targets) in closure {
                for target in targets {
                    if target != start && target.is_resource() {
                        let t = (start, p, target);
                        if !graph.contains_id(t) {
                            inferred.insert_id(t);
                        }
                    }
                }
            }
        }
        inferred
    }
}

/// The RDFS entailment subset the knowledge base uses: rules rdfs2
/// (domain), rdfs3 (range), rdfs5/rdfs7 (subPropertyOf), rdfs9/rdfs11
/// (subClassOf).
#[derive(Debug, Clone, Default)]
pub struct RdfsReasoner {
    _private: (),
}

impl RdfsReasoner {
    /// Creates the reasoner.
    pub fn new() -> RdfsReasoner {
        RdfsReasoner::default()
    }

    /// Runs the RDFS rules to fixpoint; returns only the new statements
    /// (sharing the input's dictionary).
    ///
    /// Evaluated semi-naively on id triples: each round joins the rules
    /// against the facts derived in the previous round only, over a
    /// borrowed overlay of the input graph — the input is never cloned.
    pub fn infer(&self, graph: &Graph) -> Graph {
        let v = VocabIds::new(graph.dict());
        semi_naive(graph, &mut |view, delta| rdfs_delta(&v, view, delta))
    }
}

/// A term or variable in a rule pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// A concrete term.
    Term(Term),
    /// A named variable (`?x`).
    Var(String),
}

impl PatternTerm {
    fn bind(&self, bindings: &HashMap<String, Term>) -> Option<Term> {
        match self {
            PatternTerm::Term(t) => Some(t.clone()),
            PatternTerm::Var(v) => bindings.get(v).cloned(),
        }
    }
}

/// A triple pattern in a rule body or head.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject slot.
    pub subject: PatternTerm,
    /// Predicate slot.
    pub predicate: PatternTerm,
    /// Object slot.
    pub object: PatternTerm,
}

impl TriplePattern {
    /// Parses a single pattern from `(term term term)` syntax — the same
    /// term grammar as rules (`?var`, IRIs, quoted strings, numbers,
    /// booleans).
    ///
    /// # Errors
    ///
    /// Returns [`RdfError`] on malformed patterns.
    pub fn parse(text: &str) -> Result<TriplePattern, RdfError> {
        let patterns = parse_patterns(text)?;
        match patterns.len() {
            1 => Ok(patterns.into_iter().next().expect("len checked")),
            n => Err(RdfError::new(format!(
                "expected exactly one pattern, found {n}"
            ))),
        }
    }

    /// Matches this pattern against the graph under existing `bindings`,
    /// returning the extended binding sets. Public so downstream layers
    /// (the query engine, the weighted reasoner) can reuse the matcher.
    pub fn solve_bindings(
        &self,
        graph: &Graph,
        bindings: &HashMap<String, Term>,
    ) -> Vec<HashMap<String, Term>> {
        self.solve(graph, bindings)
    }

    /// Instantiates the pattern under complete bindings, if every slot is
    /// bound and structurally valid.
    pub fn instantiate_bindings(&self, bindings: &HashMap<String, Term>) -> Option<Statement> {
        self.instantiate(bindings)
    }

    /// Matches this pattern against any triple view under existing
    /// `bindings`, returning the extended binding sets.
    fn solve(
        &self,
        view: &dyn TripleView,
        bindings: &HashMap<String, Term>,
    ) -> Vec<HashMap<String, Term>> {
        let s = self.subject.bind(bindings);
        let p = self.predicate.bind(bindings);
        let o = self.object.bind(bindings);
        view.find(s.as_ref(), p.as_ref(), o.as_ref())
            .into_iter()
            .filter_map(|st| {
                let mut out = bindings.clone();
                for (slot, term) in [
                    (&self.subject, st.subject),
                    (&self.predicate, st.predicate),
                    (&self.object, st.object),
                ] {
                    if let PatternTerm::Var(v) = slot {
                        match out.get(v) {
                            Some(bound) if *bound != term => return None,
                            Some(_) => {}
                            None => {
                                out.insert(v.clone(), term);
                            }
                        }
                    }
                }
                Some(out)
            })
            .collect()
    }

    fn instantiate(&self, bindings: &HashMap<String, Term>) -> Option<Statement> {
        let s = self.subject.bind(bindings)?;
        let p = self.predicate.bind(bindings)?;
        let o = self.object.bind(bindings)?;
        if !s.is_resource() || !matches!(p, Term::Iri(_)) {
            return None;
        }
        Some(Statement::new(s, p, o))
    }
}

/// A user-defined rule: `premises → conclusions`.
///
/// Parsed from Jena-like syntax:
///
/// ```text
/// [(?a ex:parent ?b), (?b ex:parent ?c) -> (?a ex:grandparent ?c)]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Patterns that must all match.
    pub premises: Vec<TriplePattern>,
    /// Patterns asserted for each match.
    pub conclusions: Vec<TriplePattern>,
}

impl Rule {
    /// Parses a rule from the bracketed arrow syntax above. String
    /// literals are written in double quotes; integers bare; variables as
    /// `?name`; everything else is an IRI.
    ///
    /// # Errors
    ///
    /// Returns [`RdfError`] for syntax violations.
    pub fn parse(text: &str) -> Result<Rule, RdfError> {
        let inner = text
            .trim()
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| RdfError::new("rule must be enclosed in [ ]"))?;
        let (body, head) = inner
            .split_once("->")
            .ok_or_else(|| RdfError::new("rule needs '->'"))?;
        let premises = parse_patterns(body)?;
        let conclusions = parse_patterns(head)?;
        if premises.is_empty() || conclusions.is_empty() {
            return Err(RdfError::new(
                "rule needs at least one premise and one conclusion",
            ));
        }
        // Head variables must be bound in the body (no free invention).
        let bound: HashSet<&String> = premises
            .iter()
            .flat_map(|p| [&p.subject, &p.predicate, &p.object])
            .filter_map(|t| match t {
                PatternTerm::Var(v) => Some(v),
                PatternTerm::Term(_) => None,
            })
            .collect();
        for c in &conclusions {
            for t in [&c.subject, &c.predicate, &c.object] {
                if let PatternTerm::Var(v) = t {
                    if !bound.contains(v) {
                        return Err(RdfError::new(format!(
                            "conclusion variable ?{v} is not bound by any premise"
                        )));
                    }
                }
            }
        }
        Ok(Rule {
            premises,
            conclusions,
        })
    }
}

fn parse_patterns(text: &str) -> Result<Vec<TriplePattern>, RdfError> {
    let mut patterns = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let start = rest
            .find('(')
            .ok_or_else(|| RdfError::new("expected '('"))?;
        let end = rest[start..]
            .find(')')
            .ok_or_else(|| RdfError::new("unclosed '('"))?
            + start;
        let inside = &rest[start + 1..end];
        let parts = split_pattern_terms(inside)?;
        if parts.len() != 3 {
            return Err(RdfError::new(format!(
                "pattern needs exactly 3 terms, got {}: ({inside})",
                parts.len()
            )));
        }
        patterns.push(TriplePattern {
            subject: parts[0].clone(),
            predicate: parts[1].clone(),
            object: parts[2].clone(),
        });
        rest = rest[end + 1..].trim_start_matches([',', ' ', '\n', '\t']);
    }
    Ok(patterns)
}

fn split_pattern_terms(inside: &str) -> Result<Vec<PatternTerm>, RdfError> {
    let mut out = Vec::new();
    let mut chars = inside.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(ch) => s.push(ch),
                    None => return Err(RdfError::new("unterminated string literal")),
                }
            }
            out.push(PatternTerm::Term(Term::string(s)));
            continue;
        }
        let mut word = String::new();
        while let Some(&ch) = chars.peek() {
            if ch.is_whitespace() {
                break;
            }
            word.push(ch);
            chars.next();
        }
        out.push(parse_word(&word)?);
    }
    Ok(out)
}

fn parse_word(word: &str) -> Result<PatternTerm, RdfError> {
    if let Some(var) = word.strip_prefix('?') {
        if var.is_empty() {
            return Err(RdfError::new("empty variable name"));
        }
        return Ok(PatternTerm::Var(var.to_string()));
    }
    if let Some(inner) = word.strip_prefix('<').and_then(|w| w.strip_suffix('>')) {
        // SPARQL-style bracketed IRI, same meaning as the bare form.
        return Ok(PatternTerm::Term(Term::iri(inner)));
    }
    if let Ok(i) = word.parse::<i64>() {
        return Ok(PatternTerm::Term(Term::integer(i)));
    }
    if let Ok(f) = word.parse::<f64>() {
        return Ok(PatternTerm::Term(Term::double(f)));
    }
    if word == "true" || word == "false" {
        return Ok(PatternTerm::Term(Term::boolean(word == "true")));
    }
    Ok(PatternTerm::Term(Term::iri(word)))
}

/// The generic rule reasoner.
#[derive(Debug, Clone, Default)]
pub struct GenericRuleReasoner {
    rules: Vec<Rule>,
}

impl GenericRuleReasoner {
    /// Creates a reasoner over explicit rules.
    pub fn new(rules: Vec<Rule>) -> GenericRuleReasoner {
        GenericRuleReasoner { rules }
    }

    /// Parses one rule per non-empty, non-`#` line of `text`.
    ///
    /// # Errors
    ///
    /// Returns the first parse error, tagged with its line number.
    pub fn from_rules_text(text: &str) -> Result<GenericRuleReasoner, RdfError> {
        let mut rules = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rule = Rule::parse(line)
                .map_err(|e| RdfError::new(format!("line {}: {e}", lineno + 1)))?;
            rules.push(rule);
        }
        Ok(GenericRuleReasoner { rules })
    }

    /// The rules in use.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Forward chaining to fixpoint: returns only the newly inferred
    /// statements (sharing the input's dictionary).
    ///
    /// Rules are compiled once against the graph's dictionary, then
    /// evaluated semi-naively on id triples: after the first round, each
    /// rule fires only with at least one premise bound from the previous
    /// round's delta.
    pub fn infer(&self, graph: &Graph) -> Graph {
        let compiled = compile_rules(&self.rules, graph.dict());
        semi_naive(graph, &mut |view, delta| {
            rules_delta(&compiled, view, delta)
        })
    }

    /// Backward chaining: proves whether `goal` (a possibly-variable
    /// pattern) holds, returning all binding solutions. Memoizes goals to
    /// terminate on recursive rule sets ("tabled" in Jena's terminology).
    pub fn prove(
        &self,
        graph: &Graph,
        goal: &TriplePattern,
        max_depth: usize,
    ) -> Vec<HashMap<String, Term>> {
        let mut visited = HashSet::new();
        self.prove_inner(graph, goal, &HashMap::new(), max_depth, &mut visited)
    }

    fn prove_inner(
        &self,
        graph: &Graph,
        goal: &TriplePattern,
        bindings: &HashMap<String, Term>,
        depth: usize,
        visited: &mut HashSet<String>,
    ) -> Vec<HashMap<String, Term>> {
        // Ground facts first.
        let mut solutions = goal.solve(graph, bindings);
        if depth == 0 {
            return solutions;
        }
        // Table the goal to cut cycles (by its bound shape).
        let key = format!(
            "{:?}|{:?}|{:?}",
            goal.subject.bind(bindings),
            goal.predicate.bind(bindings),
            goal.object.bind(bindings)
        );
        if !visited.insert(key.clone()) {
            return solutions;
        }
        for rule in &self.rules {
            for conclusion in &rule.conclusions {
                // Unify the goal with this conclusion via a fresh renaming.
                let Some(unifier) = unify_goal(goal, conclusion, bindings) else {
                    continue;
                };
                // Prove all premises under the unifier. Premises run in
                // the renamed rule namespace so rule variables never
                // collide with goal variables.
                let mut partials = vec![unifier];
                for premise in &rule.premises {
                    let premise = premise.renamed();
                    let mut next = Vec::new();
                    for b in &partials {
                        next.extend(self.prove_inner(graph, &premise, b, depth - 1, visited));
                    }
                    partials = next;
                    if partials.is_empty() {
                        break;
                    }
                }
                // Project rule-internal bindings back onto goal variables.
                for b in partials {
                    let mut out = bindings.clone();
                    let mut ok = true;
                    for (slot_goal, slot_rule) in [
                        (&goal.subject, &conclusion.subject),
                        (&goal.predicate, &conclusion.predicate),
                        (&goal.object, &conclusion.object),
                    ] {
                        if let PatternTerm::Var(gv) = slot_goal {
                            let value = match slot_rule {
                                PatternTerm::Term(t) => Some(t.clone()),
                                PatternTerm::Var(rv) => b.get(&renamed(rv)).cloned(),
                            };
                            match value {
                                Some(v) => match out.get(gv) {
                                    Some(prev) if *prev != v => {
                                        ok = false;
                                        break;
                                    }
                                    _ => {
                                        out.insert(gv.clone(), v);
                                    }
                                },
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    if ok {
                        solutions.push(out);
                    }
                }
            }
        }
        visited.remove(&key);
        dedup_bindings(solutions)
    }
}

/// Renames a rule variable into a reserved namespace so rule-internal
/// variables never collide with goal variables.
fn renamed(var: &str) -> String {
    format!("__rule_{var}")
}

/// Unifies a goal pattern with a rule conclusion, producing initial
/// bindings for the rule body (over renamed rule variables).
fn unify_goal(
    goal: &TriplePattern,
    conclusion: &TriplePattern,
    goal_bindings: &HashMap<String, Term>,
) -> Option<HashMap<String, Term>> {
    let mut out: HashMap<String, Term> = HashMap::new();
    for (g, c) in [
        (&goal.subject, &conclusion.subject),
        (&goal.predicate, &conclusion.predicate),
        (&goal.object, &conclusion.object),
    ] {
        let goal_value = match g {
            PatternTerm::Term(t) => Some(t.clone()),
            PatternTerm::Var(v) => goal_bindings.get(v).cloned(),
        };
        match (goal_value, c) {
            (Some(gv), PatternTerm::Term(ct)) => {
                if gv != *ct {
                    return None;
                }
            }
            (Some(gv), PatternTerm::Var(cv)) => {
                let key = renamed(cv);
                match out.get(&key) {
                    Some(prev) if *prev != gv => return None,
                    _ => {
                        out.insert(key, gv);
                    }
                }
            }
            (None, _) => {
                // Goal slot unbound: no constraint flows into the rule.
            }
        }
    }
    Some(out)
}

/// Rule bodies run over renamed variables; premises must see them. A
/// premise pattern's variables are renamed on the fly by wrapping solve:
/// we achieve this by renaming in `prove_inner` via pattern rewriting.
impl TriplePattern {
    /// Returns a copy with all variables renamed into the rule namespace.
    pub(crate) fn renamed(&self) -> TriplePattern {
        let map = |t: &PatternTerm| match t {
            PatternTerm::Var(v) => PatternTerm::Var(renamed(v)),
            PatternTerm::Term(t) => PatternTerm::Term(t.clone()),
        };
        TriplePattern {
            subject: map(&self.subject),
            predicate: map(&self.predicate),
            object: map(&self.object),
        }
    }
}

fn dedup_bindings(mut v: Vec<HashMap<String, Term>>) -> Vec<HashMap<String, Term>> {
    let mut seen = HashSet::new();
    v.retain(|b| {
        let mut items: Vec<(String, String)> =
            b.iter().map(|(k, t)| (k.clone(), format!("{t}"))).collect();
        items.sort();
        seen.insert(format!("{items:?}"))
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(iri(s), iri(p), iri(o))
    }

    #[test]
    fn transitive_closure_over_chain() {
        let mut g = Graph::new();
        g.insert(st("a", "sub", "b"));
        g.insert(st("b", "sub", "c"));
        g.insert(st("c", "sub", "d"));
        let inferred = TransitiveReasoner::new(vec![iri("sub")]).infer(&g);
        assert_eq!(inferred.len(), 3); // a->c, a->d, b->d
        assert!(inferred.contains(&st("a", "sub", "d")));
        assert!(!inferred.contains(&st("a", "sub", "b")), "already stated");
    }

    #[test]
    fn transitive_closure_handles_cycles() {
        let mut g = Graph::new();
        g.insert(st("a", "sub", "b"));
        g.insert(st("b", "sub", "a"));
        let inferred = TransitiveReasoner::new(vec![iri("sub")]).infer(&g);
        // No self-loops emitted, nothing new beyond the cycle itself.
        assert!(inferred.is_empty(), "{inferred:?}");
    }

    #[test]
    fn transitive_reasoner_unknown_predicate_is_empty() {
        let mut g = Graph::new();
        g.insert(st("a", "p", "b"));
        let inferred = TransitiveReasoner::new(vec![iri("never-interned")]).infer(&g);
        assert!(inferred.is_empty());
    }

    #[test]
    fn transitive_result_shares_input_dictionary() {
        let mut g = Graph::new();
        g.insert(st("a", "sub", "b"));
        g.insert(st("b", "sub", "c"));
        let inferred = TransitiveReasoner::new(vec![iri("sub")]).infer(&g);
        assert!(inferred.dict().ptr_eq(g.dict()));
    }

    #[test]
    fn rdfs_subclass_instance_inheritance() {
        let mut g = Graph::new();
        g.insert(st("ex:cat", vocab::SUB_CLASS_OF, "ex:mammal"));
        g.insert(st("ex:mammal", vocab::SUB_CLASS_OF, "ex:animal"));
        g.insert(st("ex:tom", vocab::TYPE, "ex:cat"));
        let inferred = RdfsReasoner::new().infer(&g);
        assert!(inferred.contains(&st("ex:tom", vocab::TYPE, "ex:mammal")));
        assert!(inferred.contains(&st("ex:tom", vocab::TYPE, "ex:animal")));
        assert!(inferred.contains(&st("ex:cat", vocab::SUB_CLASS_OF, "ex:animal")));
    }

    #[test]
    fn rdfs_domain_and_range() {
        let mut g = Graph::new();
        g.insert(st("ex:employs", vocab::DOMAIN, "ex:Company"));
        g.insert(st("ex:employs", vocab::RANGE, "ex:Person"));
        g.insert(st("ex:ibm", "ex:employs", "ex:alice"));
        let inferred = RdfsReasoner::new().infer(&g);
        assert!(inferred.contains(&st("ex:ibm", vocab::TYPE, "ex:Company")));
        assert!(inferred.contains(&st("ex:alice", vocab::TYPE, "ex:Person")));
    }

    #[test]
    fn rdfs_subproperty_inheritance() {
        let mut g = Graph::new();
        g.insert(st("ex:hasCEO", vocab::SUB_PROPERTY_OF, "ex:hasEmployee"));
        g.insert(st("ex:ibm", "ex:hasCEO", "ex:arvind"));
        let inferred = RdfsReasoner::new().infer(&g);
        assert!(inferred.contains(&st("ex:ibm", "ex:hasEmployee", "ex:arvind")));
    }

    #[test]
    fn rdfs_rules_cascade_to_fixpoint() {
        // subPropertyOf feeds domain: needs two iterations.
        let mut g = Graph::new();
        g.insert(st("ex:p", vocab::SUB_PROPERTY_OF, "ex:q"));
        g.insert(st("ex:q", vocab::DOMAIN, "ex:C"));
        g.insert(st("ex:s", "ex:p", "ex:o"));
        let inferred = RdfsReasoner::new().infer(&g);
        assert!(inferred.contains(&st("ex:s", "ex:q", "ex:o")));
        assert!(inferred.contains(&st("ex:s", vocab::TYPE, "ex:C")));
    }

    #[test]
    fn rule_parsing_round_trip() {
        let rule = Rule::parse("[(?a ex:parent ?b), (?b ex:parent ?c) -> (?a ex:grandparent ?c)]")
            .unwrap();
        assert_eq!(rule.premises.len(), 2);
        assert_eq!(rule.conclusions.len(), 1);
        assert_eq!(
            rule.conclusions[0].predicate,
            PatternTerm::Term(iri("ex:grandparent"))
        );
    }

    #[test]
    fn rule_parsing_literals() {
        let rule = Rule::parse("[(?x ex:age 42) -> (?x ex:label \"answer\")]").unwrap();
        assert_eq!(
            rule.premises[0].object,
            PatternTerm::Term(Term::integer(42))
        );
        assert_eq!(
            rule.conclusions[0].object,
            PatternTerm::Term(Term::string("answer"))
        );
    }

    #[test]
    fn rule_parsing_errors() {
        assert!(Rule::parse("no brackets").is_err());
        assert!(Rule::parse("[(?a p ?b)]").is_err()); // no arrow
        assert!(Rule::parse("[(?a p) -> (?a q ?b)]").is_err()); // arity
        assert!(Rule::parse("[(?a p ?b) -> (?a q ?c)]").is_err()); // unbound head var
        assert!(Rule::parse("[ -> (?a q ?b)]").is_err()); // empty body
    }

    #[test]
    fn rule_compilation_numbers_variables_across_premises_and_head() {
        let rule = Rule::parse("[(?a ex:parent ?b), (?b ex:parent ?c) -> (?a ex:grandparent ?c)]")
            .unwrap();
        let dict = TermDict::new();
        let compiled = compile_rule(&rule, &dict);
        assert_eq!(compiled.nvars, 3);
        // ?b must resolve to the same index in both premises.
        assert_eq!(compiled.premises[0].object, compiled.premises[1].subject);
        // ?a and ?c in the head reuse the body's indexes.
        assert_eq!(
            compiled.conclusions[0].subject,
            compiled.premises[0].subject
        );
        assert_eq!(compiled.conclusions[0].object, compiled.premises[1].object);
        // Constants were interned.
        assert!(dict.lookup(&iri("ex:grandparent")).is_some());
    }

    #[test]
    fn forward_chaining_grandparents() {
        let mut g = Graph::new();
        g.insert(st("alice", "parent", "bob"));
        g.insert(st("bob", "parent", "carol"));
        g.insert(st("carol", "parent", "dave"));
        let r = GenericRuleReasoner::from_rules_text(
            "# family rules\n[(?a parent ?b), (?b parent ?c) -> (?a grandparent ?c)]\n",
        )
        .unwrap();
        let inferred = r.infer(&g);
        assert!(inferred.contains(&st("alice", "grandparent", "carol")));
        assert!(inferred.contains(&st("bob", "grandparent", "dave")));
        assert_eq!(inferred.len(), 2);
    }

    #[test]
    fn forward_chaining_recursive_ancestor_terminates() {
        let mut g = Graph::new();
        g.insert(st("a", "parent", "b"));
        g.insert(st("b", "parent", "c"));
        g.insert(st("c", "parent", "d"));
        let r = GenericRuleReasoner::from_rules_text(
            "[(?x parent ?y) -> (?x ancestor ?y)]\n\
             [(?x parent ?y), (?y ancestor ?z) -> (?x ancestor ?z)]",
        )
        .unwrap();
        let inferred = r.infer(&g);
        // ancestor: a-b,a-c,a-d,b-c,b-d,c-d = 6
        assert_eq!(
            inferred
                .match_pattern(None, Some(&iri("ancestor")), None)
                .len(),
            6
        );
    }

    #[test]
    fn forward_chaining_multiple_conclusions() {
        let mut g = Graph::new();
        g.insert(st("x", "is", "bird"));
        let r = GenericRuleReasoner::from_rules_text(
            "[(?a is bird) -> (?a can fly), (?a has feathers)]",
        )
        .unwrap();
        let inferred = r.infer(&g);
        assert!(inferred.contains(&st("x", "can", "fly")));
        assert!(inferred.contains(&st("x", "has", "feathers")));
    }

    #[test]
    fn forward_chaining_repeated_variable_in_premise() {
        let mut g = Graph::new();
        g.insert(st("a", "knows", "a"));
        g.insert(st("a", "knows", "b"));
        let r =
            GenericRuleReasoner::from_rules_text("[(?x knows ?x) -> (?x is narcissist)]").unwrap();
        let inferred = r.infer(&g);
        assert!(inferred.contains(&st("a", "is", "narcissist")));
        assert_eq!(inferred.len(), 1, "{inferred:?}");
    }

    #[test]
    fn backward_chaining_proves_derived_facts() {
        let mut g = Graph::new();
        g.insert(st("alice", "parent", "bob"));
        g.insert(st("bob", "parent", "carol"));
        let r = GenericRuleReasoner::from_rules_text(
            "[(?a parent ?b), (?b parent ?c) -> (?a grandparent ?c)]",
        )
        .unwrap();
        // Rename body premises into the rule namespace for proving.
        let goal = TriplePattern {
            subject: PatternTerm::Var("who".into()),
            predicate: PatternTerm::Term(iri("grandparent")),
            object: PatternTerm::Term(iri("carol")),
        };
        let solutions = r.prove(&g, &goal, 4);
        assert!(
            solutions
                .iter()
                .any(|b| b.get("who") == Some(&iri("alice"))),
            "{solutions:?}"
        );
    }

    #[test]
    fn backward_chaining_ground_fact() {
        let mut g = Graph::new();
        g.insert(st("a", "p", "b"));
        let r = GenericRuleReasoner::new(vec![]);
        let goal = TriplePattern {
            subject: PatternTerm::Term(iri("a")),
            predicate: PatternTerm::Term(iri("p")),
            object: PatternTerm::Term(iri("b")),
        };
        assert_eq!(r.prove(&g, &goal, 3).len(), 1);
        let goal_missing = TriplePattern {
            subject: PatternTerm::Term(iri("a")),
            predicate: PatternTerm::Term(iri("p")),
            object: PatternTerm::Term(iri("zzz")),
        };
        assert!(r.prove(&g, &goal_missing, 3).is_empty());
    }

    #[test]
    fn backward_chaining_recursive_rules_terminate() {
        let mut g = Graph::new();
        g.insert(st("a", "parent", "b"));
        g.insert(st("b", "parent", "c"));
        let r = GenericRuleReasoner::from_rules_text(
            "[(?x parent ?y) -> (?x ancestor ?y)]\n\
             [(?x parent ?y), (?y ancestor ?z) -> (?x ancestor ?z)]",
        )
        .unwrap();
        let goal = TriplePattern {
            subject: PatternTerm::Term(iri("a")),
            predicate: PatternTerm::Term(iri("ancestor")),
            object: PatternTerm::Var("z".into()),
        };
        let solutions = r.prove(&g, &goal, 8);
        let zs: HashSet<&Term> = solutions.iter().filter_map(|b| b.get("z")).collect();
        assert!(zs.contains(&iri("b")), "{solutions:?}");
        assert!(zs.contains(&iri("c")), "{solutions:?}");
    }
}
