//! Incremental materialization of the inferred closure.
//!
//! [`IncrementalMaterializer`] keeps a stated base graph, the derived
//! closure, and their union ("full view") maintained across mutations:
//!
//! * **Inserts** propagate forward semi-naively — only joins involving the
//!   new facts run, so per-batch cost is proportional to the change, not
//!   the graph.
//! * **Deletes** use overdeletion/rederivation (DRed): consequences of the
//!   removed fact are overdeleted against the pre-deletion view, then
//!   facts with surviving alternative derivations are rederived.
//!
//! Rulesets (RDFS, OWL/Lite, extra transitive predicates, user rules) are
//! *standing*: once enabled they are maintained on every later mutation.
//! Enabling a new ruleset marks the closure stale; the next
//! [`materialize`](IncrementalMaterializer::materialize) call reseeds the
//! fixpoint over the existing facts.
//!
//! All three graphs share one term dictionary, so the DRed cascades and
//! semi-naive propagation run entirely on id triples — no statement is
//! materialized during maintenance.

use crate::dict::{IdTriple, TermDict, TermId};
use crate::epoch::EpochDelta;
use crate::graph::{Graph, Overlay, TripleView};
use crate::model::{Statement, Term};
use crate::owl::owl_delta;
use crate::reason::{
    compile_rules, propagate, rdfs_delta, rules_delta, transitive_delta, IdRule, Rule, VocabIds,
};
use std::collections::BTreeSet;

/// Which entailment rules the materializer maintains.
#[derive(Debug, Clone, Default)]
pub struct MaterializerConfig {
    /// RDFS subset (rdfs2/3/5/7/9/11).
    pub rdfs: bool,
    /// OWL/Lite subset (inverseOf, symmetric/transitive/functional
    /// properties, sameAs smushing). Implies `rdfs` when enabled through
    /// [`IncrementalMaterializer::enable_owl`], matching
    /// [`crate::OwlLiteReasoner::new`].
    pub owl: bool,
    /// Extra predicates closed under transitivity.
    pub transitive: Vec<Term>,
    /// Standing user-defined rules.
    pub rules: Vec<Rule>,
}

impl MaterializerConfig {
    fn is_active(&self) -> bool {
        self.rdfs || self.owl || !self.transitive.is_empty() || !self.rules.is_empty()
    }

    /// Compiles the configuration against a dictionary: vocabulary and
    /// transitive predicates resolve to ids, user rules to constant-id /
    /// variable-index form. Cheap (a handful of interns), so it is done
    /// per mutating call rather than cached across config edits.
    fn compile(&self, dict: &TermDict) -> CompiledRules {
        CompiledRules {
            rdfs: self.rdfs,
            owl: self.owl,
            vocab: (self.rdfs || self.owl).then(|| VocabIds::new(dict)),
            transitive: self.transitive.iter().map(|t| dict.intern(t)).collect(),
            rules: compile_rules(&self.rules, dict),
        }
    }
}

/// A [`MaterializerConfig`] lowered onto one dictionary.
#[derive(Debug, Clone)]
struct CompiledRules {
    rdfs: bool,
    owl: bool,
    vocab: Option<VocabIds>,
    transitive: Vec<TermId>,
    rules: Vec<IdRule>,
}

impl CompiledRules {
    /// One delta round over the combined active rulesets.
    fn delta(&self, view: &dyn TripleView, delta: &[IdTriple]) -> Vec<IdTriple> {
        let mut out = Vec::new();
        if let Some(v) = &self.vocab {
            if self.rdfs {
                out.extend(rdfs_delta(v, view, delta));
            }
            if self.owl {
                out.extend(owl_delta(v, view, delta));
            }
        }
        if !self.transitive.is_empty() {
            out.extend(transitive_delta(&self.transitive, view, delta));
        }
        if !self.rules.is_empty() {
            out.extend(rules_delta(&self.rules, view, delta));
        }
        out
    }
}

/// Maintains `base ∪ derived` incrementally under the configured rules.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{IncrementalMaterializer, Statement, Term};
///
/// let mut m = IncrementalMaterializer::new();
/// m.enable_rdfs();
/// let sub = Term::iri("rdfs:subClassOf");
/// m.insert(Statement::new(Term::iri("ex:cat"), sub.clone(), Term::iri("ex:mammal")));
/// m.insert(Statement::new(Term::iri("ex:mammal"), sub.clone(), Term::iri("ex:animal")));
/// // The closure is maintained as facts arrive — no re-materialization.
/// assert!(m.contains(&Statement::new(Term::iri("ex:cat"), sub, Term::iri("ex:animal"))));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalMaterializer {
    config: MaterializerConfig,
    /// Explicitly stated facts.
    base: Graph,
    /// Derived closure, disjoint from `base` (shares its dictionary).
    derived: Graph,
    /// `base ∪ derived`, kept materialized so readers get a plain
    /// [`Graph`] without merging on every query (shares the dictionary).
    full: Graph,
    /// Whether `derived` is the fixpoint of `config` over `base`. Cleared
    /// when a ruleset is enabled after facts already arrived.
    clean: bool,
    /// Net changes to the full view since the last
    /// [`take_delta`](Self::take_delta) — what an epoch publish consumes.
    delta: EpochDelta,
}

impl Default for IncrementalMaterializer {
    fn default() -> IncrementalMaterializer {
        IncrementalMaterializer::new()
    }
}

impl IncrementalMaterializer {
    /// An empty materializer with no rulesets enabled.
    pub fn new() -> IncrementalMaterializer {
        let base = Graph::new();
        let derived = Graph::with_dict(base.dict().clone());
        let full = Graph::with_dict(base.dict().clone());
        IncrementalMaterializer {
            config: MaterializerConfig::default(),
            base,
            derived,
            full,
            clean: true,
            delta: EpochDelta::default(),
        }
    }

    /// Wraps an existing stated graph. No inference runs until a ruleset
    /// is enabled and [`materialize`](Self::materialize) is called.
    pub fn from_graph(graph: Graph) -> IncrementalMaterializer {
        IncrementalMaterializer {
            config: MaterializerConfig::default(),
            derived: Graph::with_dict(graph.dict().clone()),
            full: graph.clone(),
            base: graph,
            clean: true,
            delta: EpochDelta::rebuild(),
        }
    }

    /// Drains the net full-view changes accumulated since the last call.
    /// The epoch publisher consumes this to build the next snapshot.
    pub(crate) fn take_delta(&mut self) -> EpochDelta {
        std::mem::take(&mut self.delta)
    }

    /// The maintained `base ∪ derived` view.
    pub fn full(&self) -> &Graph {
        &self.full
    }

    /// The explicitly stated facts.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The derived (inferred-only) facts.
    pub fn derived(&self) -> &Graph {
        &self.derived
    }

    /// Number of facts in the full view.
    pub fn len(&self) -> usize {
        self.full.len()
    }

    /// Whether the full view is empty.
    pub fn is_empty(&self) -> bool {
        self.full.is_empty()
    }

    /// Whether the full view contains the statement.
    pub fn contains(&self, st: &Statement) -> bool {
        self.full.contains(st)
    }

    /// Enables the RDFS subset; returns whether this changed the config.
    pub fn enable_rdfs(&mut self) -> bool {
        let changed = !self.config.rdfs;
        if changed {
            self.config.rdfs = true;
            self.clean = self.full.is_empty();
        }
        changed
    }

    /// Enables the OWL/Lite subset (and RDFS, as the batch OWL reasoner
    /// does); returns whether this changed the config.
    pub fn enable_owl(&mut self) -> bool {
        let changed = !self.config.owl || !self.config.rdfs;
        if changed {
            self.config.owl = true;
            self.config.rdfs = true;
            self.clean = self.full.is_empty();
        }
        changed
    }

    /// Adds predicates to close under transitivity; returns whether any
    /// were new.
    pub fn add_transitive(&mut self, predicates: Vec<Term>) -> bool {
        let mut changed = false;
        for p in predicates {
            if !self.config.transitive.contains(&p) {
                self.config.transitive.push(p);
                changed = true;
            }
        }
        if changed {
            self.clean = self.full.is_empty();
        }
        changed
    }

    /// Adds standing user rules; returns whether any were new.
    pub fn add_rules(&mut self, rules: Vec<Rule>) -> bool {
        let mut changed = false;
        for r in rules {
            if !self.config.rules.contains(&r) {
                self.config.rules.push(r);
                changed = true;
            }
        }
        if changed {
            self.clean = self.full.is_empty();
        }
        changed
    }

    /// The active configuration.
    pub fn config(&self) -> &MaterializerConfig {
        &self.config
    }

    /// Inserts a stated fact and propagates its consequences forward.
    /// Returns whether the fact was new to the full view.
    pub fn insert(&mut self, st: Statement) -> bool {
        let t = self.base.intern_statement(&st);
        if !self.base.insert_id(t) {
            return false;
        }
        // A previously derived fact that is now stated moves to the base;
        // the full view already has it and nothing new follows from it.
        if self.derived.remove_id(t) {
            return false;
        }
        if self.full.insert_id(t) {
            self.delta.record(t, true);
        }
        if self.config.is_active() && self.clean {
            let compiled = self.config.compile(self.base.dict());
            let new_facts = propagate(&self.base, &mut self.derived, vec![t], &mut |v, d| {
                compiled.delta(v, d)
            });
            for f in new_facts {
                if self.full.insert_id(f) {
                    self.delta.record(f, true);
                }
            }
        }
        true
    }

    /// Inserts a batch and propagates once over the whole batch delta.
    /// Returns how many facts were new to the full view.
    pub fn insert_batch(&mut self, batch: impl IntoIterator<Item = Statement>) -> usize {
        let mut seed = Vec::new();
        for st in batch {
            let t = self.base.intern_statement(&st);
            if !self.base.insert_id(t) {
                continue;
            }
            if self.derived.remove_id(t) {
                continue;
            }
            if self.full.insert_id(t) {
                self.delta.record(t, true);
            }
            seed.push(t);
        }
        let added = seed.len();
        if !seed.is_empty() && self.config.is_active() && self.clean {
            let compiled = self.config.compile(self.base.dict());
            let new_facts = propagate(&self.base, &mut self.derived, seed, &mut |v, d| {
                compiled.delta(v, d)
            });
            for f in new_facts {
                if self.full.insert_id(f) {
                    self.delta.record(f, true);
                }
            }
        }
        added
    }

    /// Removes a fact using DRed: consequences are overdeleted against the
    /// pre-deletion view, then facts with surviving alternative
    /// derivations are rederived (including the removed fact itself, if it
    /// is still entailed by what remains). Returns whether the fact was
    /// present in the full view.
    pub fn remove(&mut self, st: &Statement) -> bool {
        // DRed needs an up-to-date closure to cascade over; catch up first
        // if a ruleset was enabled after facts arrived.
        self.materialize();
        let Some(t) = self.full.lookup_statement(st) else {
            return false;
        };
        if !self.full.contains_id(t) {
            return false;
        }
        let compiled = self
            .config
            .is_active()
            .then(|| self.config.compile(self.base.dict()));
        // Overdeletion cascade against the pre-deletion view: everything
        // derived (transitively) using the removed fact is suspect.
        let mut overdeleted: BTreeSet<IdTriple> = BTreeSet::new();
        if let Some(compiled) = &compiled {
            let mut frontier = vec![t];
            while !frontier.is_empty() {
                let candidates = {
                    let view = Overlay::new(&self.base, &self.derived);
                    compiled.delta(&view, &frontier)
                };
                let mut fresh = Vec::new();
                for c in candidates {
                    if self.derived.contains_id(c) && c != t && overdeleted.insert(c) {
                        fresh.push(c);
                    }
                }
                frontier = fresh;
            }
        }
        self.base.remove_id(t);
        self.derived.remove_id(t);
        if self.full.remove_id(t) {
            self.delta.record(t, false);
        }
        for &o in &overdeleted {
            self.derived.remove_id(o);
            if self.full.remove_id(o) {
                self.delta.record(o, false);
            }
        }
        // Rederivation: one naive round over what remains picks up every
        // suspect fact that still has a one-step derivation; semi-naive
        // propagation from those seeds restores the rest of the closure.
        if let Some(compiled) = &compiled {
            let candidates = {
                let view = Overlay::new(&self.base, &self.derived);
                let all: Vec<IdTriple> = self.full.iter_ids().collect();
                compiled.delta(&view, &all)
            };
            let mut seeds = Vec::new();
            for c in candidates {
                let suspect = overdeleted.contains(&c) || c == t;
                if suspect && !self.full.contains_id(c) && self.derived.insert_id(c) {
                    if self.full.insert_id(c) {
                        self.delta.record(c, true);
                    }
                    seeds.push(c);
                }
            }
            if !seeds.is_empty() {
                let new_facts = propagate(&self.base, &mut self.derived, seeds, &mut |v, d| {
                    compiled.delta(v, d)
                });
                for f in new_facts {
                    if self.full.insert_id(f) {
                        self.delta.record(f, true);
                    }
                }
            }
        }
        true
    }

    /// Brings the derived closure up to date with the configuration. Cheap
    /// when nothing changed; after a config change it reseeds the fixpoint
    /// over all current facts. Returns how many facts were newly derived.
    pub fn materialize(&mut self) -> usize {
        if self.clean || !self.config.is_active() {
            self.clean = true;
            return 0;
        }
        let seed: Vec<IdTriple> = self.full.iter_ids().collect();
        let compiled = self.config.compile(self.base.dict());
        let new_facts = propagate(&self.base, &mut self.derived, seed, &mut |v, d| {
            compiled.delta(v, d)
        });
        let added = new_facts.len();
        for f in new_facts {
            if self.full.insert_id(f) {
                self.delta.record(f, true);
            }
        }
        self.clean = true;
        added
    }

    /// Replaces all facts with `graph` as the stated base, keeping the
    /// configuration. The closure is marked stale; call
    /// [`materialize`](Self::materialize) to rebuild it. The materializer
    /// adopts `graph`'s dictionary.
    pub fn reset(&mut self, graph: Graph) {
        self.derived = Graph::with_dict(graph.dict().clone());
        self.full = graph.clone();
        self.base = graph;
        self.clean = !self.config.is_active() || self.full.is_empty();
        self.delta = EpochDelta::rebuild();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::vocab;
    use crate::reason::{GenericRuleReasoner, RdfsReasoner, TransitiveReasoner};

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn inserts_maintain_rdfs_closure() {
        let mut m = IncrementalMaterializer::new();
        m.enable_rdfs();
        m.insert(st("cat", vocab::SUB_CLASS_OF, "mammal"));
        m.insert(st("tom", vocab::TYPE, "cat"));
        assert!(m.contains(&st("tom", vocab::TYPE, "mammal")));
        // A later schema extension re-types existing instances.
        m.insert(st("mammal", vocab::SUB_CLASS_OF, "animal"));
        assert!(m.contains(&st("tom", vocab::TYPE, "animal")));
        assert!(m.contains(&st("cat", vocab::SUB_CLASS_OF, "animal")));
    }

    #[test]
    fn views_share_one_dictionary() {
        let mut m = IncrementalMaterializer::new();
        m.enable_rdfs();
        m.insert(st("cat", vocab::SUB_CLASS_OF, "mammal"));
        assert!(m.base().dict().ptr_eq(m.derived().dict()));
        assert!(m.base().dict().ptr_eq(m.full().dict()));
    }

    #[test]
    fn incremental_equals_from_scratch_rdfs() {
        let mut m = IncrementalMaterializer::new();
        m.enable_rdfs();
        let facts = [
            st("p", vocab::SUB_PROPERTY_OF, "q"),
            st("q", vocab::DOMAIN, "C"),
            st("C", vocab::SUB_CLASS_OF, "D"),
            st("s", "p", "o"),
        ];
        for f in &facts {
            m.insert(f.clone());
        }
        let base: Graph = facts.iter().cloned().collect();
        let mut scratch = base.clone();
        scratch.extend_from(&RdfsReasoner::new().infer(&base));
        assert_eq!(*m.full(), scratch);
    }

    #[test]
    fn delete_retracts_consequences() {
        let mut m = IncrementalMaterializer::new();
        m.enable_rdfs();
        m.insert(st("cat", vocab::SUB_CLASS_OF, "mammal"));
        m.insert(st("tom", vocab::TYPE, "cat"));
        assert!(m.contains(&st("tom", vocab::TYPE, "mammal")));
        assert!(m.remove(&st("tom", vocab::TYPE, "cat")));
        assert!(!m.contains(&st("tom", vocab::TYPE, "mammal")));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn delete_keeps_alternative_derivations() {
        let mut m = IncrementalMaterializer::new();
        m.add_transitive(vec![Term::iri("sub")]);
        m.insert(st("a", "sub", "b"));
        m.insert(st("b", "sub", "c"));
        m.insert(st("b", "sub", "d"));
        m.insert(st("d", "sub", "c"));
        // (a sub c) is derivable via b→c directly and via b→d→c.
        assert!(m.contains(&st("a", "sub", "c")));
        assert!(m.remove(&st("b", "sub", "c")));
        assert!(
            m.contains(&st("a", "sub", "c")),
            "alternative path survives"
        );
        let base_now: Graph = m.base().iter().collect();
        let mut scratch = base_now.clone();
        scratch.extend_from(&TransitiveReasoner::new(vec![Term::iri("sub")]).infer(&base_now));
        assert_eq!(*m.full(), scratch);
    }

    #[test]
    fn removed_stated_fact_resurfaces_if_entailed() {
        let mut m = IncrementalMaterializer::new();
        m.add_transitive(vec![Term::iri("sub")]);
        m.insert(st("a", "sub", "b"));
        m.insert(st("b", "sub", "c"));
        m.insert(st("a", "sub", "c")); // stated AND entailed
        assert!(m.remove(&st("a", "sub", "c")));
        // From-scratch semantics: the fact is still entailed by the chain.
        assert!(m.contains(&st("a", "sub", "c")));
        assert!(!m.base().contains(&st("a", "sub", "c")), "no longer stated");
    }

    #[test]
    fn standing_rules_fire_on_later_ingests() {
        let mut m = IncrementalMaterializer::new();
        let r = GenericRuleReasoner::from_rules_text(
            "[(?a parent ?b), (?b parent ?c) -> (?a grandparent ?c)]",
        )
        .unwrap();
        m.add_rules(r.rules().to_vec());
        m.insert(st("alice", "parent", "bob"));
        m.materialize();
        assert!(!m.contains(&st("alice", "grandparent", "carol")));
        m.insert(st("bob", "parent", "carol"));
        assert!(m.contains(&st("alice", "grandparent", "carol")));
    }

    #[test]
    fn enabling_rules_late_reseeds_on_materialize() {
        let mut m = IncrementalMaterializer::new();
        m.insert(st("cat", vocab::SUB_CLASS_OF, "mammal"));
        m.insert(st("tom", vocab::TYPE, "cat"));
        assert!(!m.contains(&st("tom", vocab::TYPE, "mammal")));
        m.enable_rdfs();
        let added = m.materialize();
        assert_eq!(added, 1);
        assert!(m.contains(&st("tom", vocab::TYPE, "mammal")));
        assert_eq!(m.materialize(), 0, "second call is a no-op");
    }

    #[test]
    fn owl_closure_maintained_incrementally() {
        let mut m = IncrementalMaterializer::new();
        m.enable_owl();
        m.insert(st("hasParent", vocab::INVERSE_OF, "hasChild"));
        m.insert(st("alice", "hasParent", "bob"));
        assert!(m.contains(&st("bob", "hasChild", "alice")));
        m.insert(st("usa", vocab::SAME_AS, "united_states"));
        m.insert(st("usa", "capital", "washington"));
        assert!(m.contains(&st("united_states", "capital", "washington")));
    }

    #[test]
    fn reset_replaces_contents_and_goes_stale() {
        let mut m = IncrementalMaterializer::new();
        m.enable_rdfs();
        m.insert(st("x", vocab::TYPE, "C"));
        let mut g = Graph::new();
        g.insert(st("cat", vocab::SUB_CLASS_OF, "mammal"));
        g.insert(st("tom", vocab::TYPE, "cat"));
        m.reset(g);
        assert!(!m.contains(&st("x", vocab::TYPE, "C")));
        assert!(!m.contains(&st("tom", vocab::TYPE, "mammal")));
        m.materialize();
        assert!(m.contains(&st("tom", vocab::TYPE, "mammal")));
    }
}
