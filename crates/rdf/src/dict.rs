//! Dictionary encoding of RDF terms.
//!
//! Triple stores that operate on strings pay for it on every comparison;
//! the standard fix (RDF-3X, Jena TDB) is a term dictionary that interns
//! each distinct [`Term`] once and gives it a small integer id. Graph
//! indexes then hold `(u32, u32, u32)` tuples — `Copy`, 12 bytes, O(1)
//! compares — and the reasoner joins never touch a string until results
//! are materialized at the API boundary.
//!
//! The id encodes the term *kind* in its two low bits, so the structural
//! checks the reasoners run in their hot loops (`is_resource`,
//! `is_iri`) are pure bit tests with no dictionary access at all.

use crate::model::{Statement, Term};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A dictionary-encoded term id.
///
/// The low two bits tag the term kind (IRI / blank / literal); the high
/// 30 bits are the interning sequence number. Ids are only meaningful
/// relative to the [`TermDict`] that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct TermId(u32);

const KIND_IRI: u32 = 0;
const KIND_BLANK: u32 = 1;
const KIND_LITERAL: u32 = 2;

impl TermId {
    /// The smallest possible id (used as a range-scan lower bound).
    pub const MIN: TermId = TermId(0);
    /// The largest possible id (used as a range-scan upper bound).
    pub const MAX: TermId = TermId(u32::MAX);

    fn new(seq: usize, kind: u32) -> TermId {
        assert!(seq < (1 << 30), "term dictionary overflow (2^30 terms)");
        TermId((seq as u32) << 2 | kind)
    }

    pub(crate) fn seq(self) -> usize {
        (self.0 >> 2) as usize
    }

    /// The raw encoded id, for persistence (WAL / snapshot records).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from its persisted raw encoding. The caller is
    /// responsible for validating it against the dictionary it belongs to.
    pub(crate) fn from_raw(raw: u32) -> TermId {
        TermId(raw)
    }

    /// Whether the term is an IRI.
    pub fn is_iri(self) -> bool {
        self.0 & 0b11 == KIND_IRI
    }

    /// Whether the term is a blank node.
    pub fn is_blank(self) -> bool {
        self.0 & 0b11 == KIND_BLANK
    }

    /// Whether the term is a literal.
    pub fn is_literal(self) -> bool {
        self.0 & 0b11 == KIND_LITERAL
    }

    /// Whether the term may appear in subject position (IRI or blank).
    pub fn is_resource(self) -> bool {
        !self.is_literal()
    }
}

fn kind_of(term: &Term) -> u32 {
    match term {
        Term::Iri(_) => KIND_IRI,
        Term::Blank(_) => KIND_BLANK,
        Term::Literal(_) => KIND_LITERAL,
    }
}

/// A dictionary-encoded triple in `(subject, predicate, object)` order.
pub type IdTriple = (TermId, TermId, TermId);

#[derive(Debug, Default)]
struct DictInner {
    /// Reverse map: sequence number → term.
    terms: Vec<Term>,
    /// Forward map: term → id.
    ids: HashMap<Term, TermId>,
}

/// An append-only, thread-safe term dictionary.
///
/// Cloning is cheap (an `Arc` bump) and clones *share* the dictionary:
/// graphs derived from one another (a base and its inferred closure, the
/// materializer's three views) intern through the same table, so their id
/// spaces agree and joins across them are pure integer work. Ids are
/// never reused or invalidated — the dictionary only grows.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{TermDict, Term};
///
/// let dict = TermDict::new();
/// let a = dict.intern(&Term::iri("ex:a"));
/// assert_eq!(dict.intern(&Term::iri("ex:a")), a, "interned once");
/// assert_eq!(dict.resolve(a), Term::iri("ex:a"));
/// assert!(a.is_iri() && a.is_resource());
/// assert!(dict.intern(&Term::integer(7)).is_literal());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermDict {
    inner: Arc<RwLock<DictInner>>,
}

impl TermDict {
    /// Creates an empty dictionary.
    pub fn new() -> TermDict {
        TermDict::default()
    }

    /// Whether `self` and `other` are the same dictionary (share storage).
    pub fn ptr_eq(&self, other: &TermDict) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.inner.read().expect("dict lock").terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns a term, returning its id (existing or freshly assigned).
    pub fn intern(&self, term: &Term) -> TermId {
        if let Some(&id) = self.inner.read().expect("dict lock").ids.get(term) {
            return id;
        }
        let mut inner = self.inner.write().expect("dict lock");
        if let Some(&id) = inner.ids.get(term) {
            return id;
        }
        let id = TermId::new(inner.terms.len(), kind_of(term));
        inner.terms.push(term.clone());
        inner.ids.insert(term.clone(), id);
        id
    }

    /// Interns all three components of a statement.
    pub fn intern_statement(&self, st: &Statement) -> IdTriple {
        (
            self.intern(&st.subject),
            self.intern(&st.predicate),
            self.intern(&st.object),
        )
    }

    /// The id of an already-interned term, if any. Unlike
    /// [`intern`](Self::intern) this never grows the dictionary, so it is
    /// the right call for read-only constants (query terms, removal keys):
    /// an absent term simply cannot match anything.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.inner.read().expect("dict lock").ids.get(term).copied()
    }

    /// Looks up all three components of a statement; `None` if any is
    /// unknown (the statement cannot be present in any graph over this
    /// dictionary).
    pub fn lookup_statement(&self, st: &Statement) -> Option<IdTriple> {
        let inner = self.inner.read().expect("dict lock");
        Some((
            *inner.ids.get(&st.subject)?,
            *inner.ids.get(&st.predicate)?,
            *inner.ids.get(&st.object)?,
        ))
    }

    /// The term behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this dictionary.
    pub fn resolve(&self, id: TermId) -> Term {
        self.inner.read().expect("dict lock").terms[id.seq()].clone()
    }

    /// Materializes a triple back into a [`Statement`].
    ///
    /// # Panics
    ///
    /// As for [`resolve`](Self::resolve).
    pub fn resolve_triple(&self, (s, p, o): IdTriple) -> Statement {
        let inner = self.inner.read().expect("dict lock");
        Statement {
            subject: inner.terms[s.seq()].clone(),
            predicate: inner.terms[p.seq()].clone(),
            object: inner.terms[o.seq()].clone(),
        }
    }

    /// Terms with sequence numbers `start..len()`, in interning order.
    ///
    /// Because ids are a pure function of interning order (sequence
    /// number plus kind tag), re-interning these terms in order into a
    /// fresh dictionary reproduces identical ids — which is how the
    /// snapshot writer and the WAL persist the dictionary.
    pub(crate) fn terms_from(&self, start: usize) -> Vec<Term> {
        let inner = self.inner.read().expect("dict lock");
        inner.terms.get(start..).unwrap_or(&[]).to_vec()
    }

    /// Materializes many triples under a single lock acquisition.
    pub fn resolve_all(&self, triples: &[IdTriple]) -> Vec<Statement> {
        let inner = self.inner.read().expect("dict lock");
        triples
            .iter()
            .map(|&(s, p, o)| Statement {
                subject: inner.terms[s.seq()].clone(),
                predicate: inner.terms[p.seq()].clone(),
                object: inner.terms[o.seq()].clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolve_round_trips() {
        let dict = TermDict::new();
        let terms = [
            Term::iri("ex:a"),
            Term::blank("b0"),
            Term::string("hello"),
            Term::integer(-3),
            Term::double(2.5),
            Term::boolean(false),
        ];
        let ids: Vec<TermId> = terms.iter().map(|t| dict.intern(t)).collect();
        for (term, &id) in terms.iter().zip(&ids) {
            assert_eq!(dict.intern(term), id);
            assert_eq!(dict.lookup(term), Some(id));
            assert_eq!(dict.resolve(id), *term);
        }
        assert_eq!(dict.len(), terms.len());
    }

    #[test]
    fn kind_bits_classify_without_dictionary_access() {
        let dict = TermDict::new();
        assert!(dict.intern(&Term::iri("p")).is_iri());
        assert!(dict.intern(&Term::blank("b")).is_blank());
        assert!(dict.intern(&Term::blank("b")).is_resource());
        assert!(dict.intern(&Term::string("s")).is_literal());
        assert!(!dict.intern(&Term::string("s")).is_resource());
        assert!(!dict.intern(&Term::integer(1)).is_iri());
    }

    #[test]
    fn lookup_never_grows_the_dictionary() {
        let dict = TermDict::new();
        assert_eq!(dict.lookup(&Term::iri("missing")), None);
        assert!(dict.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let dict = TermDict::new();
        let dict2 = dict.clone();
        let id = dict.intern(&Term::iri("ex:shared"));
        assert!(dict.ptr_eq(&dict2));
        assert_eq!(dict2.lookup(&Term::iri("ex:shared")), Some(id));
        let fresh = TermDict::new();
        assert!(!dict.ptr_eq(&fresh));
    }

    #[test]
    fn distinct_literals_stay_distinct() {
        let dict = TermDict::new();
        let d = dict.intern(&Term::double(1.0));
        let i = dict.intern(&Term::integer(1));
        assert_ne!(d, i, "double 1.0 and integer 1 are distinct terms");
    }
}
