//! Dictionary encoding of RDF terms.
//!
//! Triple stores that operate on strings pay for it on every comparison;
//! the standard fix (RDF-3X, Jena TDB) is a term dictionary that interns
//! each distinct [`Term`] once and gives it a small integer id. Graph
//! indexes then hold `(u32, u32, u32)` tuples — `Copy`, 12 bytes, O(1)
//! compares — and the reasoner joins never touch a string until results
//! are materialized at the API boundary.
//!
//! The id encodes the term *kind* in its two low bits, so the structural
//! checks the reasoners run in their hot loops (`is_resource`,
//! `is_iri`) are pure bit tests with no dictionary access at all.
//!
//! # Concurrency
//!
//! The dictionary is built for one-writer/many-readers traffic where
//! ingest interns new terms while result materialization resolves ids:
//!
//! * The **forward map** (term → id) is sharded by term hash across
//!   [`SHARDS`] independent `RwLock`ed hash maps, so lookups on distinct
//!   terms rarely contend and an intern only write-locks one shard.
//! * The **reverse store** (sequence number → term) is a lock-free
//!   chunked arena: a fixed array of chunk slots with doubling
//!   capacities, each slot a `OnceLock<Term>`. Chunks are allocated once
//!   and never move, so [`resolve_ref`](TermDict::resolve_ref) hands out
//!   `&Term` borrows with **no lock at all** — readers resolving result
//!   rows never block interning, and interning never blocks them.
//! * A single allocation mutex serializes id assignment, keeping ids a
//!   pure function of interning order (the WAL and snapshot replay
//!   protocol depends on exactly that).

use crate::model::{Statement, Term};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// A dictionary-encoded term id.
///
/// The low two bits tag the term kind (IRI / blank / literal); the high
/// 30 bits are the interning sequence number. Ids are only meaningful
/// relative to the [`TermDict`] that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct TermId(u32);

const KIND_IRI: u32 = 0;
const KIND_BLANK: u32 = 1;
const KIND_LITERAL: u32 = 2;

impl TermId {
    /// The smallest possible id (used as a range-scan lower bound).
    pub const MIN: TermId = TermId(0);
    /// The largest possible id (used as a range-scan upper bound).
    pub const MAX: TermId = TermId(u32::MAX);

    fn new(seq: usize, kind: u32) -> TermId {
        assert!(seq < (1 << 30), "term dictionary overflow (2^30 terms)");
        TermId((seq as u32) << 2 | kind)
    }

    pub(crate) fn seq(self) -> usize {
        (self.0 >> 2) as usize
    }

    /// The raw encoded id, for persistence (WAL / snapshot records).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from its persisted raw encoding. The caller is
    /// responsible for validating it against the dictionary it belongs to.
    pub(crate) fn from_raw(raw: u32) -> TermId {
        TermId(raw)
    }

    /// Whether the term is an IRI.
    pub fn is_iri(self) -> bool {
        self.0 & 0b11 == KIND_IRI
    }

    /// Whether the term is a blank node.
    pub fn is_blank(self) -> bool {
        self.0 & 0b11 == KIND_BLANK
    }

    /// Whether the term is a literal.
    pub fn is_literal(self) -> bool {
        self.0 & 0b11 == KIND_LITERAL
    }

    /// Whether the term may appear in subject position (IRI or blank).
    pub fn is_resource(self) -> bool {
        !self.is_literal()
    }
}

fn kind_of(term: &Term) -> u32 {
    match term {
        Term::Iri(_) => KIND_IRI,
        Term::Blank(_) => KIND_BLANK,
        Term::Literal(_) => KIND_LITERAL,
    }
}

/// A dictionary-encoded triple in `(subject, predicate, object)` order.
pub type IdTriple = (TermId, TermId, TermId);

/// Forward-map shard count. A power of two so routing is a mask.
const SHARDS: usize = 16;

/// Capacity of the first reverse-store chunk.
const CHUNK0: usize = 1 << 10;

/// Chunk slots: capacities double, so 21 chunks cover
/// `1024 · (2²¹ − 1) > 2³⁰` terms — the id encoding's own ceiling.
const MAX_CHUNKS: usize = 21;

/// Maps a sequence number to its `(chunk, offset)` in the reverse store.
fn locate(seq: usize) -> (usize, usize) {
    let n = seq / CHUNK0 + 1;
    let chunk = (usize::BITS - 1 - n.leading_zeros()) as usize;
    let base = CHUNK0 * ((1 << chunk) - 1);
    (chunk, seq - base)
}

fn chunk_capacity(chunk: usize) -> usize {
    CHUNK0 << chunk
}

#[derive(Debug)]
struct DictShared {
    /// Forward map: term → id, sharded by term hash.
    shards: [RwLock<HashMap<Term, TermId>>; SHARDS],
    /// Reverse store: chunked append-only arena, `seq → term`. Chunk
    /// backing storage never moves once allocated, so `&Term` borrows
    /// stay valid for the dictionary's lifetime.
    chunks: [OnceLock<Box<[OnceLock<Term>]>>; MAX_CHUNKS],
    /// Published term count. Store-`Release` after the slot is written;
    /// load-`Acquire` on the read side.
    len: AtomicUsize,
    /// Serializes id assignment so ids stay a pure function of
    /// interning order.
    alloc: Mutex<()>,
}

/// An append-only, thread-safe term dictionary.
///
/// Cloning is cheap (an `Arc` bump) and clones *share* the dictionary:
/// graphs derived from one another (a base and its inferred closure, the
/// materializer's three views) intern through the same table, so their id
/// spaces agree and joins across them are pure integer work. Ids are
/// never reused or invalidated — the dictionary only grows.
///
/// Reads ([`resolve`](TermDict::resolve), [`resolve_ref`](TermDict::resolve_ref),
/// [`resolve_all`](TermDict::resolve_all)) are lock-free; term→id lookups
/// contend only within one hash shard; interning serializes on a small
/// allocation mutex. See the module docs for the layout.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{TermDict, Term};
///
/// let dict = TermDict::new();
/// let a = dict.intern(&Term::iri("ex:a"));
/// assert_eq!(dict.intern(&Term::iri("ex:a")), a, "interned once");
/// assert_eq!(dict.resolve(a), Term::iri("ex:a"));
/// assert!(a.is_iri() && a.is_resource());
/// assert!(dict.intern(&Term::integer(7)).is_literal());
/// ```
#[derive(Debug, Clone)]
pub struct TermDict {
    inner: Arc<DictShared>,
}

impl Default for TermDict {
    fn default() -> TermDict {
        TermDict {
            inner: Arc::new(DictShared {
                shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
                chunks: std::array::from_fn(|_| OnceLock::new()),
                len: AtomicUsize::new(0),
                alloc: Mutex::new(()),
            }),
        }
    }
}

impl TermDict {
    /// Creates an empty dictionary.
    pub fn new() -> TermDict {
        TermDict::default()
    }

    /// Whether `self` and `other` are the same dictionary (share storage).
    pub fn ptr_eq(&self, other: &TermDict) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.inner.len.load(Ordering::Acquire)
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(term: &Term) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        term.hash(&mut hasher);
        (hasher.finish() as usize) & (SHARDS - 1)
    }

    /// Interns a term, returning its id (existing or freshly assigned).
    pub fn intern(&self, term: &Term) -> TermId {
        let shard = &self.inner.shards[TermDict::shard_of(term)];
        if let Some(&id) = shard.read().expect("dict shard lock").get(term) {
            return id;
        }
        // All id assignment happens under the alloc mutex, so a re-probe
        // here sees any racing intern of the same term.
        let _alloc = self.inner.alloc.lock().expect("dict alloc lock");
        if let Some(&id) = shard.read().expect("dict shard lock").get(term) {
            return id;
        }
        let seq = self.inner.len.load(Ordering::Relaxed);
        let id = TermId::new(seq, kind_of(term));
        let (chunk_idx, offset) = locate(seq);
        let chunk = self.inner.chunks[chunk_idx].get_or_init(|| {
            (0..chunk_capacity(chunk_idx))
                .map(|_| OnceLock::new())
                .collect()
        });
        chunk[offset]
            .set(term.clone())
            .expect("reverse-store slot written exactly once");
        self.inner.len.store(seq + 1, Ordering::Release);
        shard
            .write()
            .expect("dict shard lock")
            .insert(term.clone(), id);
        id
    }

    /// Interns every term of every statement, returning one id triple
    /// per statement in order. The bulk loader's intern stage uses this
    /// to pre-warm the dictionary *before* the store lock is taken:
    /// terms land in the shared dictionary here, and the commit's own
    /// interning becomes a read-only shard probe. Safe ahead of the
    /// commit because the WAL's dictionary watermark logs all terms
    /// interned since the previous commit, whoever interned them.
    pub fn intern_all(&self, statements: &[Statement]) -> Vec<IdTriple> {
        statements
            .iter()
            .map(|st| self.intern_statement(st))
            .collect()
    }

    /// Interns all three components of a statement.
    pub fn intern_statement(&self, st: &Statement) -> IdTriple {
        (
            self.intern(&st.subject),
            self.intern(&st.predicate),
            self.intern(&st.object),
        )
    }

    /// The id of an already-interned term, if any. Unlike
    /// [`intern`](Self::intern) this never grows the dictionary, so it is
    /// the right call for read-only constants (query terms, removal keys):
    /// an absent term simply cannot match anything.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.inner.shards[TermDict::shard_of(term)]
            .read()
            .expect("dict shard lock")
            .get(term)
            .copied()
    }

    /// Looks up all three components of a statement; `None` if any is
    /// unknown (the statement cannot be present in any graph over this
    /// dictionary).
    pub fn lookup_statement(&self, st: &Statement) -> Option<IdTriple> {
        Some((
            self.lookup(&st.subject)?,
            self.lookup(&st.predicate)?,
            self.lookup(&st.object)?,
        ))
    }

    /// The term behind an id, borrowed straight from the reverse store —
    /// no lock, no clone. The borrow is valid as long as the dictionary:
    /// chunks are allocated once and never move.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this dictionary.
    pub fn resolve_ref(&self, id: TermId) -> &Term {
        let seq = id.seq();
        assert!(
            seq < self.inner.len.load(Ordering::Acquire),
            "term id not issued by this dictionary"
        );
        let (chunk_idx, offset) = locate(seq);
        self.inner.chunks[chunk_idx]
            .get()
            .expect("chunk allocated before publish")[offset]
            .get()
            .expect("slot written before publish")
    }

    /// The term behind an id (an owned clone of
    /// [`resolve_ref`](Self::resolve_ref)).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this dictionary.
    pub fn resolve(&self, id: TermId) -> Term {
        self.resolve_ref(id).clone()
    }

    /// Materializes a triple back into a [`Statement`].
    ///
    /// # Panics
    ///
    /// As for [`resolve`](Self::resolve).
    pub fn resolve_triple(&self, (s, p, o): IdTriple) -> Statement {
        Statement {
            subject: self.resolve_ref(s).clone(),
            predicate: self.resolve_ref(p).clone(),
            object: self.resolve_ref(o).clone(),
        }
    }

    /// Terms with sequence numbers `start..len()`, in interning order.
    ///
    /// Because ids are a pure function of interning order (sequence
    /// number plus kind tag), re-interning these terms in order into a
    /// fresh dictionary reproduces identical ids — which is how the
    /// snapshot writer and the WAL persist the dictionary.
    pub(crate) fn terms_from(&self, start: usize) -> Vec<Term> {
        let len = self.len();
        (start..len)
            .map(|seq| {
                let (chunk_idx, offset) = locate(seq);
                self.inner.chunks[chunk_idx].get().expect("chunk")[offset]
                    .get()
                    .expect("slot")
                    .clone()
            })
            .collect()
    }

    /// Materializes many triples. Lock-free: each term resolves straight
    /// from the reverse store, so a large result batch never blocks (or
    /// is blocked by) concurrent interning.
    pub fn resolve_all(&self, triples: &[IdTriple]) -> Vec<Statement> {
        triples
            .iter()
            .map(|&triple| self.resolve_triple(triple))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn intern_is_idempotent_and_resolve_round_trips() {
        let dict = TermDict::new();
        let terms = [
            Term::iri("ex:a"),
            Term::blank("b0"),
            Term::string("hello"),
            Term::integer(-3),
            Term::double(2.5),
            Term::boolean(false),
        ];
        let ids: Vec<TermId> = terms.iter().map(|t| dict.intern(t)).collect();
        for (term, &id) in terms.iter().zip(&ids) {
            assert_eq!(dict.intern(term), id);
            assert_eq!(dict.lookup(term), Some(id));
            assert_eq!(dict.resolve(id), *term);
            assert_eq!(dict.resolve_ref(id), term);
        }
        assert_eq!(dict.len(), terms.len());
    }

    #[test]
    fn kind_bits_classify_without_dictionary_access() {
        let dict = TermDict::new();
        assert!(dict.intern(&Term::iri("p")).is_iri());
        assert!(dict.intern(&Term::blank("b")).is_blank());
        assert!(dict.intern(&Term::blank("b")).is_resource());
        assert!(dict.intern(&Term::string("s")).is_literal());
        assert!(!dict.intern(&Term::string("s")).is_resource());
        assert!(!dict.intern(&Term::integer(1)).is_iri());
    }

    #[test]
    fn lookup_never_grows_the_dictionary() {
        let dict = TermDict::new();
        assert_eq!(dict.lookup(&Term::iri("missing")), None);
        assert!(dict.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let dict = TermDict::new();
        let dict2 = dict.clone();
        let id = dict.intern(&Term::iri("ex:shared"));
        assert!(dict.ptr_eq(&dict2));
        assert_eq!(dict2.lookup(&Term::iri("ex:shared")), Some(id));
        let fresh = TermDict::new();
        assert!(!dict.ptr_eq(&fresh));
    }

    #[test]
    fn distinct_literals_stay_distinct() {
        let dict = TermDict::new();
        let d = dict.intern(&Term::double(1.0));
        let i = dict.intern(&Term::integer(1));
        assert_ne!(d, i, "double 1.0 and integer 1 are distinct terms");
    }

    #[test]
    fn ids_are_dense_in_interning_order() {
        let dict = TermDict::new();
        for i in 0..5000 {
            let id = dict.intern(&Term::iri(format!("ex:t{i}")));
            assert_eq!(id.seq(), i, "sequence numbers are dense");
        }
        assert_eq!(dict.terms_from(4998).len(), 2);
        assert_eq!(dict.terms_from(4998)[0], Term::iri("ex:t4998"));
    }

    #[test]
    fn chunk_location_math_covers_the_id_space() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(CHUNK0 - 1), (0, CHUNK0 - 1));
        assert_eq!(locate(CHUNK0), (1, 0));
        assert_eq!(locate(3 * CHUNK0 - 1), (1, 2 * CHUNK0 - 1));
        assert_eq!(locate(3 * CHUNK0), (2, 0));
        // Last representable seq fits inside the chunk table.
        let (chunk, offset) = locate((1 << 30) - 1);
        assert!(chunk < MAX_CHUNKS);
        assert!(offset < chunk_capacity(chunk));
    }

    #[test]
    fn concurrent_interning_agrees_across_threads() {
        let dict = TermDict::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let dict = dict.clone();
                thread::spawn(move || {
                    let mut ids = Vec::new();
                    for i in 0..500 {
                        // Half shared vocabulary, half thread-private.
                        let term = if i % 2 == 0 {
                            Term::iri(format!("ex:shared{}", i / 2))
                        } else {
                            Term::iri(format!("ex:t{t}_{i}"))
                        };
                        let id = dict.intern(&term);
                        // Readers resolve lock-free while others intern.
                        assert_eq!(dict.resolve_ref(id), &term);
                        ids.push((term, id));
                    }
                    ids
                })
            })
            .collect();
        let mut seen: HashMap<Term, TermId> = HashMap::new();
        for handle in threads {
            for (term, id) in handle.join().unwrap() {
                // Every thread got the same id for the same term.
                assert_eq!(*seen.entry(term).or_insert(id), id);
            }
        }
        assert_eq!(dict.len(), seen.len());
        // Ids are exactly 0..len in some order: dense, no gaps.
        let mut seqs: Vec<usize> = seen.values().map(|id| id.seq()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..seen.len()).collect::<Vec<_>>());
    }
}
