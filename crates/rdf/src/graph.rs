//! The indexed triple store.

use crate::dict::{IdTriple, TermDict, TermId};
use crate::model::{Statement, Term};
use std::collections::{BTreeSet, HashMap};

/// An in-memory RDF graph with SPO, POS and OSP indexes.
///
/// Terms are dictionary-encoded (see [`TermDict`]): each index holds
/// `(u32, u32, u32)` id tuples, so inserts intern each distinct term once
/// and every comparison — pattern scans, reasoner joins, containment —
/// is integer work. The [`Statement`]-level API is unchanged; the
/// `*_id`/`*_ids` variants expose the encoded representation so hot
/// callers can skip materializing statements altogether.
///
/// Pattern matching picks the index that turns the bound prefix of the
/// pattern into a range scan, so `match_pattern` is efficient whichever
/// positions are bound.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{Graph, Statement, Term};
///
/// let mut g = Graph::new();
/// g.insert(Statement::new(Term::iri("ex:a"), Term::iri("ex:p"), Term::integer(1)));
/// g.insert(Statement::new(Term::iri("ex:b"), Term::iri("ex:p"), Term::integer(2)));
/// assert_eq!(g.match_pattern(None, Some(&Term::iri("ex:p")), None).len(), 2);
/// assert_eq!(g.match_pattern(Some(&Term::iri("ex:a")), None, None).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    dict: TermDict,
    /// Entries in `(s, p, o)` order.
    spo: BTreeSet<IdTriple>,
    /// Entries in `(p, o, s)` order.
    pos: BTreeSet<IdTriple>,
    /// Entries in `(o, s, p)` order.
    osp: BTreeSet<IdTriple>,
}

impl Graph {
    /// Creates an empty graph with its own fresh dictionary.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Creates an empty graph sharing an existing dictionary. Graphs over
    /// one dictionary agree on term ids, so merges and overlay joins
    /// between them never re-intern (see [`extend_from`](Self::extend_from)
    /// and [`Overlay`]).
    pub fn with_dict(dict: TermDict) -> Graph {
        Graph {
            dict,
            spo: BTreeSet::new(),
            pos: BTreeSet::new(),
            osp: BTreeSet::new(),
        }
    }

    /// The graph's term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Interns a statement's terms into this graph's dictionary without
    /// inserting it.
    pub fn intern_statement(&self, st: &Statement) -> IdTriple {
        self.dict.intern_statement(st)
    }

    /// Looks up a statement's id triple, if every component is interned.
    pub fn lookup_statement(&self, st: &Statement) -> Option<IdTriple> {
        self.dict.lookup_statement(st)
    }

    /// Materializes an id triple back into a [`Statement`].
    ///
    /// # Panics
    ///
    /// Panics if the ids were not issued by this graph's dictionary.
    pub fn resolve(&self, triple: IdTriple) -> Statement {
        self.dict.resolve_triple(triple)
    }

    /// Inserts a statement; returns `false` if it was already present.
    pub fn insert(&mut self, st: Statement) -> bool {
        let triple = self.dict.intern_statement(&st);
        self.insert_id(triple)
    }

    /// Inserts an already-encoded triple; returns `false` if present.
    ///
    /// The ids must come from this graph's dictionary and form a valid
    /// statement (resource subject, IRI predicate) — guaranteed for any
    /// triple observed through this graph or one sharing its dictionary.
    pub fn insert_id(&mut self, (s, p, o): IdTriple) -> bool {
        debug_assert!(s.is_resource(), "statement subject must be a resource");
        debug_assert!(p.is_iri(), "statement predicate must be an IRI");
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Removes a statement; returns whether it was present.
    pub fn remove(&mut self, st: &Statement) -> bool {
        match self.dict.lookup_statement(st) {
            Some(triple) => self.remove_id(triple),
            None => false,
        }
    }

    /// Removes an already-encoded triple; returns whether it was present.
    pub fn remove_id(&mut self, (s, p, o): IdTriple) -> bool {
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// Whether the graph contains the statement.
    pub fn contains(&self, st: &Statement) -> bool {
        self.dict
            .lookup_statement(st)
            .is_some_and(|t| self.spo.contains(&t))
    }

    /// Whether the graph contains the encoded triple.
    pub fn contains_id(&self, triple: IdTriple) -> bool {
        self.spo.contains(&triple)
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterates over all statements.
    pub fn iter(&self) -> impl Iterator<Item = Statement> + '_ {
        self.spo.iter().map(move |&t| self.dict.resolve_triple(t))
    }

    /// Iterates over all encoded triples in `(s, p, o)` order — the
    /// zero-materialization path for reasoner seeds and bulk scans.
    pub fn iter_ids(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.spo.iter().copied()
    }

    /// Merges all statements of `other` into `self`; returns how many were
    /// new.
    ///
    /// When both graphs share a dictionary (the reasoner and materializer
    /// arrangement) this is a bulk id-level merge: no term is looked at,
    /// let alone re-interned. Otherwise each *distinct* term of `other` is
    /// re-interned exactly once through a translation table.
    pub fn extend_from(&mut self, other: &Graph) -> usize {
        let mut added = 0;
        if self.dict.ptr_eq(&other.dict) {
            for &triple in &other.spo {
                if self.insert_id(triple) {
                    added += 1;
                }
            }
        } else {
            let mut translate: HashMap<TermId, TermId> = HashMap::new();
            for &(s, p, o) in &other.spo {
                let triple = (
                    remap(&mut translate, &self.dict, &other.dict, s),
                    remap(&mut translate, &self.dict, &other.dict, p),
                    remap(&mut translate, &self.dict, &other.dict, o),
                );
                if self.insert_id(triple) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Finds statements matching a pattern; `None` positions are
    /// wildcards.
    pub fn match_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement> {
        let Some(pattern) = self.encode_pattern(subject, predicate, object) else {
            // A bound term that was never interned cannot match anything.
            return Vec::new();
        };
        let (s, p, o) = pattern;
        self.dict.resolve_all(&self.match_ids(s, p, o))
    }

    /// Encodes a term-level pattern; `None` (outer) if a bound term is not
    /// in the dictionary, meaning the pattern cannot match.
    #[allow(clippy::type_complexity)]
    fn encode_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Option<(Option<TermId>, Option<TermId>, Option<TermId>)> {
        let encode = |slot: Option<&Term>| match slot {
            Some(term) => self.dict.lookup(term).map(Some),
            None => Some(None),
        };
        Some((encode(subject)?, encode(predicate)?, encode(object)?))
    }

    /// Finds encoded triples matching a pattern; `None` positions are
    /// wildcards. Results are in `(s, p, o)` order of the chosen index.
    ///
    /// Every arm is a borrowed `Copy`-key lookup or range scan — the
    /// fully-bound arm is a plain `contains` on the SPO index and the
    /// `(S, _, O)` arm range-scans OSP, neither allocating a key.
    pub fn match_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Vec<IdTriple> {
        let full = (TermId::MIN, TermId::MAX);
        match (subject, predicate, object) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, full.0)..=(s, p, full.1))
                .copied()
                .collect(),
            (Some(s), None, Some(o)) => self
                .osp
                .range((o, s, full.0)..=(o, s, full.1))
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (Some(s), None, None) => self
                .spo
                .range((s, full.0, full.0)..=(s, full.1, full.1))
                .copied()
                .collect(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((p, o, full.0)..=(p, o, full.1))
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range((p, full.0, full.0)..=(p, full.1, full.1))
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range((o, full.0, full.0)..=(o, full.1, full.1))
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, None, None) => self.spo.iter().copied().collect(),
        }
    }

    /// Counts triples matching a pattern without materializing them.
    /// Same index routing as [`match_ids`](Self::match_ids); the
    /// fully-unbound arm is `len()`. Costs `O(matches)` — the planner
    /// uses [`count_ids_capped`](Self::count_ids_capped) instead.
    pub fn count_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> usize {
        let full = (TermId::MIN, TermId::MAX);
        match (subject, predicate, object) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(&(s, p, o))),
            (Some(s), Some(p), None) => self.spo.range((s, p, full.0)..=(s, p, full.1)).count(),
            (Some(s), None, Some(o)) => self.osp.range((o, s, full.0)..=(o, s, full.1)).count(),
            (Some(s), None, None) => self
                .spo
                .range((s, full.0, full.0)..=(s, full.1, full.1))
                .count(),
            (None, Some(p), Some(o)) => self.pos.range((p, o, full.0)..=(p, o, full.1)).count(),
            (None, Some(p), None) => self
                .pos
                .range((p, full.0, full.0)..=(p, full.1, full.1))
                .count(),
            (None, None, Some(o)) => self
                .osp
                .range((o, full.0, full.0)..=(o, full.1, full.1))
                .count(),
            (None, None, None) => self.spo.len(),
        }
    }

    /// Like [`count_ids`](Self::count_ids) but stops counting at `cap`,
    /// so the cost is `O(min(matches, cap))` instead of `O(matches)`.
    /// This is the query planner's cardinality source: join *ordering*
    /// only needs estimates good enough to rank patterns, and every
    /// pattern at or above the cap is equally "huge".
    pub fn count_ids_capped(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
        cap: usize,
    ) -> usize {
        let full = (TermId::MIN, TermId::MAX);
        match (subject, predicate, object) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(&(s, p, o))),
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, full.0)..=(s, p, full.1))
                .take(cap)
                .count(),
            (Some(s), None, Some(o)) => self
                .osp
                .range((o, s, full.0)..=(o, s, full.1))
                .take(cap)
                .count(),
            (Some(s), None, None) => self
                .spo
                .range((s, full.0, full.0)..=(s, full.1, full.1))
                .take(cap)
                .count(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((p, o, full.0)..=(p, o, full.1))
                .take(cap)
                .count(),
            (None, Some(p), None) => self
                .pos
                .range((p, full.0, full.0)..=(p, full.1, full.1))
                .take(cap)
                .count(),
            (None, None, Some(o)) => self
                .osp
                .range((o, full.0, full.0)..=(o, full.1, full.1))
                .take(cap)
                .count(),
            (None, None, None) => self.spo.len().min(cap),
        }
    }
}

/// Re-interns `id` from `from` into `to`, memoizing per distinct term.
fn remap(
    translate: &mut HashMap<TermId, TermId>,
    to: &TermDict,
    from: &TermDict,
    id: TermId,
) -> TermId {
    *translate
        .entry(id)
        .or_insert_with(|| to.intern(&from.resolve(id)))
}

/// Statement-set equality, independent of interning order: two graphs are
/// equal when they hold the same statements, whether or not they share a
/// dictionary.
impl PartialEq for Graph {
    fn eq(&self, other: &Graph) -> bool {
        if self.dict.ptr_eq(&other.dict) {
            return self.spo == other.spo;
        }
        if self.len() != other.len() {
            return false;
        }
        // Translate each distinct local id at most once; a term absent
        // from the other dictionary cannot appear in the other graph.
        let mut translate: HashMap<TermId, Option<TermId>> = HashMap::new();
        let mut lookup = |id: TermId| {
            *translate
                .entry(id)
                .or_insert_with(|| other.dict.lookup(&self.dict.resolve(id)))
        };
        self.spo
            .iter()
            .all(|&(s, p, o)| match (lookup(s), lookup(p), lookup(o)) {
                (Some(s), Some(p), Some(o)) => other.contains_id((s, p, o)),
                _ => false,
            })
    }
}

impl Eq for Graph {}

/// Read-only view over a set of triples.
///
/// Both [`Graph`] and [`Overlay`] implement this, so reasoner joins can run
/// against either a plain graph or a base-plus-derived pair without cloning
/// the base into a working copy.
pub trait TripleView {
    /// Finds statements matching a pattern; `None` positions are wildcards.
    fn find(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement>;

    /// Whether the view contains the statement.
    fn has(&self, st: &Statement) -> bool;

    /// Finds encoded triples matching an id pattern; `None` positions are
    /// wildcards. Ids are relative to the view's dictionary.
    fn find_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Vec<IdTriple>;

    /// Whether the view contains the encoded triple.
    fn has_id(&self, triple: IdTriple) -> bool;
}

impl TripleView for Graph {
    fn find(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement> {
        self.match_pattern(subject, predicate, object)
    }

    fn has(&self, st: &Statement) -> bool {
        self.contains(st)
    }

    fn find_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Vec<IdTriple> {
        self.match_ids(subject, predicate, object)
    }

    fn has_id(&self, triple: IdTriple) -> bool {
        self.contains_id(triple)
    }
}

/// What the query planner and executor need from a triple source: a
/// dictionary for constant lookup, index-ordered pattern scans, and
/// capped cardinality estimates.
///
/// Implemented by [`Graph`] (the mutable write-side store) and by
/// [`EpochSnapshot`](crate::EpochSnapshot) (an immutable published
/// epoch), so one compiled plan can execute against either — which is
/// how queries run against a pinned snapshot without holding any lock.
pub trait QueryView: TripleView {
    /// The dictionary ids in this view are relative to.
    fn dict(&self) -> &TermDict;

    /// Triples matching a pattern, in the serving index's sort order
    /// (the same order contract as [`Graph::match_ids`]; merge joins
    /// rely on it).
    fn match_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Vec<IdTriple>;

    /// Cardinality estimate for a pattern, saturating at `cap`. May
    /// over-count (it only ranks join candidates) but must never report
    /// zero for a pattern that has matches. [`Graph`] returns an exact
    /// count capped at `cap`; snapshots return an upper bound.
    fn count_ids_capped(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
        cap: usize,
    ) -> usize;

    /// Number of triples in the view.
    fn len(&self) -> usize;

    /// Whether the view holds no triples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl QueryView for Graph {
    fn dict(&self) -> &TermDict {
        Graph::dict(self)
    }

    fn match_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Vec<IdTriple> {
        Graph::match_ids(self, subject, predicate, object)
    }

    fn count_ids_capped(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
        cap: usize,
    ) -> usize {
        Graph::count_ids_capped(self, subject, predicate, object, cap)
    }

    fn len(&self) -> usize {
        Graph::len(self)
    }
}

/// A union view of two graphs that are disjoint by construction (a stated
/// base plus the derived closure). Queries hit both indexes and concatenate,
/// which keeps semi-naive rounds from ever cloning the base graph.
///
/// The id-level methods require both graphs to share a dictionary (the
/// reasoner and materializer arrangement); the statement-level methods
/// work regardless.
#[derive(Debug, Clone, Copy)]
pub struct Overlay<'a> {
    base: &'a Graph,
    extra: &'a Graph,
}

impl<'a> Overlay<'a> {
    /// Creates a union view over `base` and `extra`.
    pub fn new(base: &'a Graph, extra: &'a Graph) -> Overlay<'a> {
        Overlay { base, extra }
    }
}

impl TripleView for Overlay<'_> {
    fn find(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement> {
        let mut hits = self.base.match_pattern(subject, predicate, object);
        for st in self.extra.match_pattern(subject, predicate, object) {
            if !self.base.contains(&st) {
                hits.push(st);
            }
        }
        hits
    }

    fn has(&self, st: &Statement) -> bool {
        self.base.contains(st) || self.extra.contains(st)
    }

    fn find_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Vec<IdTriple> {
        debug_assert!(
            self.base.dict().ptr_eq(self.extra.dict()),
            "id-level overlay queries require a shared dictionary"
        );
        let mut hits = self.base.match_ids(subject, predicate, object);
        for triple in self.extra.match_ids(subject, predicate, object) {
            if !self.base.contains_id(triple) {
                hits.push(triple);
            }
        }
        hits
    }

    fn has_id(&self, triple: IdTriple) -> bool {
        debug_assert!(
            self.base.dict().ptr_eq(self.extra.dict()),
            "id-level overlay queries require a shared dictionary"
        );
        self.base.contains_id(triple) || self.extra.contains_id(triple)
    }
}

impl Extend<Statement> for Graph {
    fn extend<T: IntoIterator<Item = Statement>>(&mut self, iter: T) {
        for st in iter {
            self.insert(st);
        }
    }
}

impl FromIterator<Statement> for Graph {
    fn from_iter<T: IntoIterator<Item = Statement>>(iter: T) -> Graph {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        vec![
            st("a", "p", "x"),
            st("a", "p", "y"),
            st("a", "q", "x"),
            st("b", "p", "x"),
            st("b", "q", "z"),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn insert_is_idempotent() {
        let mut g = Graph::new();
        assert!(g.insert(st("a", "p", "x")));
        assert!(!g.insert(st("a", "p", "x")));
        assert_eq!(g.len(), 1);
        assert_eq!(g.dict().len(), 3, "each distinct term interned once");
    }

    #[test]
    fn remove_cleans_all_indexes() {
        let mut g = sample();
        assert!(g.remove(&st("a", "p", "x")));
        assert!(!g.remove(&st("a", "p", "x")));
        assert_eq!(g.len(), 4);
        assert!(!g.contains(&st("a", "p", "x")));
        assert!(g
            .match_pattern(Some(&Term::iri("a")), Some(&Term::iri("p")), None)
            .iter()
            .all(|m| m.object == Term::iri("y")));
        assert_eq!(g.match_pattern(None, None, Some(&Term::iri("x"))).len(), 2);
    }

    #[test]
    fn pattern_matching_all_shapes() {
        let g = sample();
        let a = Term::iri("a");
        let p = Term::iri("p");
        let x = Term::iri("x");
        assert_eq!(g.match_pattern(None, None, None).len(), 5);
        assert_eq!(g.match_pattern(Some(&a), None, None).len(), 3);
        assert_eq!(g.match_pattern(None, Some(&p), None).len(), 3);
        assert_eq!(g.match_pattern(None, None, Some(&x)).len(), 3);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), None).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), None, Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(None, Some(&p), Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), Some(&x)).len(), 1);
        assert!(g
            .match_pattern(Some(&Term::iri("zz")), None, None)
            .is_empty());
    }

    #[test]
    fn literals_as_objects() {
        let mut g = Graph::new();
        g.insert(Statement::new(
            Term::iri("s"),
            Term::iri("age"),
            Term::integer(42),
        ));
        let hits = g.match_pattern(None, None, Some(&Term::integer(42)));
        assert_eq!(hits.len(), 1);
        assert!(g
            .match_pattern(None, None, Some(&Term::integer(41)))
            .is_empty());
    }

    #[test]
    fn extend_from_counts_new_statements() {
        let mut g = sample();
        let other: Graph = vec![st("a", "p", "x"), st("c", "p", "x")]
            .into_iter()
            .collect();
        assert_eq!(g.extend_from(&other), 1);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn extend_from_shared_dict_skips_reinterning() {
        let mut g = sample();
        let mut other = Graph::with_dict(g.dict().clone());
        other.insert(st("a", "p", "x"));
        other.insert(st("c", "p", "x"));
        let dict_before = g.dict().len();
        assert_eq!(g.extend_from(&other), 1);
        assert_eq!(g.len(), 6);
        assert_eq!(
            g.dict().len(),
            dict_before,
            "shared-dictionary merge interns nothing new beyond other's inserts"
        );
        assert!(g.contains(&st("c", "p", "x")));
    }

    #[test]
    fn id_level_round_trip() {
        let mut g = Graph::new();
        let triple = g.intern_statement(&st("a", "p", "b"));
        assert!(g.insert_id(triple));
        assert!(g.contains_id(triple));
        assert_eq!(g.resolve(triple), st("a", "p", "b"));
        assert_eq!(g.lookup_statement(&st("a", "p", "b")), Some(triple));
        assert_eq!(g.lookup_statement(&st("a", "p", "zz")), None);
        assert!(g.remove_id(triple));
        assert!(!g.contains_id(triple));
        assert_eq!(g.match_pattern(None, None, None).len(), 0);
    }

    #[test]
    fn subject_object_arm_matches_filtered_scan() {
        // The (S, _, O) arm must return exactly what a full scan + filter
        // would, while actually routing through the OSP index.
        let mut g = sample();
        g.insert(st("a", "r", "x"));
        g.insert(Statement::new(
            Term::iri("a"),
            Term::iri("age"),
            Term::integer(7),
        ));
        let subjects = [Term::iri("a"), Term::iri("b"), Term::iri("zz")];
        let objects = [Term::iri("x"), Term::iri("z"), Term::integer(7)];
        for s in &subjects {
            for o in &objects {
                let via_arm = g.match_pattern(Some(s), None, Some(o));
                let via_filter: Vec<Statement> = g
                    .iter()
                    .filter(|t| &t.subject == s && &t.object == o)
                    .collect();
                assert_eq!(
                    via_arm.len(),
                    via_filter.len(),
                    "mismatch for ({s:?}, _, {o:?})"
                );
                for hit in &via_arm {
                    assert!(via_filter.contains(hit));
                }
            }
        }
        assert_eq!(
            g.match_pattern(Some(&Term::iri("a")), None, Some(&Term::iri("x")))
                .len(),
            3
        );
    }

    #[test]
    fn overlay_unions_base_and_extra() {
        let base = sample();
        let extra: Graph = vec![st("a", "p", "x"), st("c", "p", "w")]
            .into_iter()
            .collect();
        let view = Overlay::new(&base, &extra);
        let p = Term::iri("p");
        assert_eq!(view.find(None, Some(&p), None).len(), 4);
        assert!(view.has(&st("c", "p", "w")));
        assert!(view.has(&st("a", "q", "x")));
        assert!(!view.has(&st("c", "q", "w")));
        // Duplicates between base and extra are reported once.
        let a = Term::iri("a");
        let x = Term::iri("x");
        assert_eq!(view.find(Some(&a), Some(&p), Some(&x)).len(), 1);
    }

    #[test]
    fn overlay_id_queries_over_shared_dict() {
        let base = sample();
        let mut extra = Graph::with_dict(base.dict().clone());
        extra.insert(st("a", "p", "x"));
        extra.insert(st("c", "p", "w"));
        let view = Overlay::new(&base, &extra);
        let p = base.dict().lookup(&Term::iri("p")).unwrap();
        assert_eq!(view.find_ids(None, Some(p), None).len(), 4);
        let dup = base.lookup_statement(&st("a", "p", "x")).unwrap();
        assert!(view.has_id(dup));
    }

    #[test]
    fn iter_yields_every_statement_once() {
        let g = sample();
        let collected: Vec<Statement> = g.iter().collect();
        assert_eq!(collected.len(), 5);
        let round: Graph = collected.into_iter().collect();
        assert_eq!(round, g);
    }

    #[test]
    fn equality_is_independent_of_interning_order() {
        let mut g1 = Graph::new();
        g1.insert(st("a", "p", "b"));
        g1.insert(st("c", "q", "d"));
        let mut g2 = Graph::new();
        g2.insert(st("c", "q", "d"));
        g2.insert(st("a", "p", "b"));
        assert_eq!(g1, g2);
        g2.insert(st("e", "p", "f"));
        assert_ne!(g1, g2);
        // Same length, different contents.
        let mut g3 = Graph::new();
        g3.insert(st("a", "p", "b"));
        g3.insert(st("x", "q", "d"));
        assert_ne!(g1, g3);
    }
}
