//! The indexed triple store.

use crate::model::{Statement, Term};
use std::collections::BTreeSet;

/// An in-memory RDF graph with SPO, POS and OSP indexes.
///
/// Pattern matching picks the index that turns the bound prefix of the
/// pattern into a range scan, so `match_pattern` is efficient whichever
/// positions are bound.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{Graph, Statement, Term};
///
/// let mut g = Graph::new();
/// g.insert(Statement::new(Term::iri("ex:a"), Term::iri("ex:p"), Term::integer(1)));
/// g.insert(Statement::new(Term::iri("ex:b"), Term::iri("ex:p"), Term::integer(2)));
/// assert_eq!(g.match_pattern(None, Some(&Term::iri("ex:p")), None).len(), 2);
/// assert_eq!(g.match_pattern(Some(&Term::iri("ex:a")), None, None).len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    spo: BTreeSet<(Term, Term, Term)>,
    pos: BTreeSet<(Term, Term, Term)>,
    osp: BTreeSet<(Term, Term, Term)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Inserts a statement; returns `false` if it was already present.
    pub fn insert(&mut self, st: Statement) -> bool {
        let Statement {
            subject: s,
            predicate: p,
            object: o,
        } = st;
        let added = self.spo.insert((s.clone(), p.clone(), o.clone()));
        if added {
            self.pos.insert((p.clone(), o.clone(), s.clone()));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Removes a statement; returns whether it was present.
    pub fn remove(&mut self, st: &Statement) -> bool {
        let key = (st.subject.clone(), st.predicate.clone(), st.object.clone());
        let removed = self.spo.remove(&key);
        if removed {
            let (s, p, o) = key;
            self.pos.remove(&(p.clone(), o.clone(), s.clone()));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// Whether the graph contains the statement.
    pub fn contains(&self, st: &Statement) -> bool {
        self.spo
            .contains(&(st.subject.clone(), st.predicate.clone(), st.object.clone()))
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterates over all statements in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Statement> + '_ {
        self.spo.iter().map(|(s, p, o)| Statement {
            subject: s.clone(),
            predicate: p.clone(),
            object: o.clone(),
        })
    }

    /// Merges all statements of `other` into `self`; returns how many were
    /// new.
    pub fn extend_from(&mut self, other: &Graph) -> usize {
        let mut added = 0;
        for st in other.iter() {
            if self.insert(st) {
                added += 1;
            }
        }
        added
    }

    /// Finds statements matching a pattern; `None` positions are
    /// wildcards.
    pub fn match_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement> {
        // Choose the index whose bound prefix is longest.
        match (subject, predicate, object) {
            (Some(s), Some(p), Some(o)) => {
                let key = (s.clone(), p.clone(), o.clone());
                if self.spo.contains(&key) {
                    vec![Statement {
                        subject: s.clone(),
                        predicate: p.clone(),
                        object: o.clone(),
                    }]
                } else {
                    Vec::new()
                }
            }
            (Some(s), None, Some(o)) => {
                // OSP has the longest bound prefix here: (o, s) is fully
                // bound, so range-scan it instead of filtering an S scan.
                let min = Term::Iri(String::new());
                self.osp
                    .range((o.clone(), s.clone(), min)..)
                    .take_while(|t| &t.0 == o && &t.1 == s)
                    .map(|(to, ts, tp)| Statement {
                        subject: ts.clone(),
                        predicate: tp.clone(),
                        object: to.clone(),
                    })
                    .collect()
            }
            (Some(s), p, None) => self
                .scan(&self.spo, s, |t| (t.0.clone(), t.1.clone(), t.2.clone()))
                .into_iter()
                .filter(|(_, tp, _)| p.is_none_or(|p| p == tp))
                .map(to_statement)
                .collect(),
            (None, Some(p), o) => self
                .scan(&self.pos, p, |t| (t.2.clone(), t.0.clone(), t.1.clone()))
                .into_iter()
                .filter(|(_, _, to)| o.is_none_or(|o| o == to))
                .map(to_statement)
                .collect(),
            (None, None, Some(o)) => self
                .scan(&self.osp, o, |t| (t.1.clone(), t.2.clone(), t.0.clone()))
                .into_iter()
                .map(to_statement)
                .collect(),
            (None, None, None) => self.iter().collect(),
        }
    }

    /// Range-scans an index for entries whose first component equals
    /// `first`, converting each to `(s, p, o)` via `reorder`.
    fn scan(
        &self,
        index: &BTreeSet<(Term, Term, Term)>,
        first: &Term,
        reorder: impl Fn(&(Term, Term, Term)) -> (Term, Term, Term),
    ) -> Vec<(Term, Term, Term)> {
        // `Term::Iri("")` is the minimum term under the derived ordering
        // (first variant, empty string), so this bound starts the range at
        // the first entry whose leading component is `first`.
        let min = Term::Iri(String::new());
        index
            .range((first.clone(), min.clone(), min)..)
            .take_while(|t| &t.0 == first)
            .map(reorder)
            .collect()
    }
}

/// Read-only view over a set of triples.
///
/// Both [`Graph`] and [`Overlay`] implement this, so reasoner joins can run
/// against either a plain graph or a base-plus-derived pair without cloning
/// the base into a working copy.
pub trait TripleView {
    /// Finds statements matching a pattern; `None` positions are wildcards.
    fn find(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement>;

    /// Whether the view contains the statement.
    fn has(&self, st: &Statement) -> bool;
}

impl TripleView for Graph {
    fn find(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement> {
        self.match_pattern(subject, predicate, object)
    }

    fn has(&self, st: &Statement) -> bool {
        self.contains(st)
    }
}

/// A union view of two graphs that are disjoint by construction (a stated
/// base plus the derived closure). Queries hit both indexes and concatenate,
/// which keeps semi-naive rounds from ever cloning the base graph.
#[derive(Debug, Clone, Copy)]
pub struct Overlay<'a> {
    base: &'a Graph,
    extra: &'a Graph,
}

impl<'a> Overlay<'a> {
    /// Creates a union view over `base` and `extra`.
    pub fn new(base: &'a Graph, extra: &'a Graph) -> Overlay<'a> {
        Overlay { base, extra }
    }
}

impl TripleView for Overlay<'_> {
    fn find(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement> {
        let mut hits = self.base.match_pattern(subject, predicate, object);
        for st in self.extra.match_pattern(subject, predicate, object) {
            if !self.base.contains(&st) {
                hits.push(st);
            }
        }
        hits
    }

    fn has(&self, st: &Statement) -> bool {
        self.base.contains(st) || self.extra.contains(st)
    }
}

fn to_statement((s, p, o): (Term, Term, Term)) -> Statement {
    Statement {
        subject: s,
        predicate: p,
        object: o,
    }
}

impl Extend<Statement> for Graph {
    fn extend<T: IntoIterator<Item = Statement>>(&mut self, iter: T) {
        for st in iter {
            self.insert(st);
        }
    }
}

impl FromIterator<Statement> for Graph {
    fn from_iter<T: IntoIterator<Item = Statement>>(iter: T) -> Graph {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        vec![
            st("a", "p", "x"),
            st("a", "p", "y"),
            st("a", "q", "x"),
            st("b", "p", "x"),
            st("b", "q", "z"),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn insert_is_idempotent() {
        let mut g = Graph::new();
        assert!(g.insert(st("a", "p", "x")));
        assert!(!g.insert(st("a", "p", "x")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_cleans_all_indexes() {
        let mut g = sample();
        assert!(g.remove(&st("a", "p", "x")));
        assert!(!g.remove(&st("a", "p", "x")));
        assert_eq!(g.len(), 4);
        assert!(!g.contains(&st("a", "p", "x")));
        assert!(g
            .match_pattern(Some(&Term::iri("a")), Some(&Term::iri("p")), None)
            .iter()
            .all(|m| m.object == Term::iri("y")));
        assert_eq!(g.match_pattern(None, None, Some(&Term::iri("x"))).len(), 2);
    }

    #[test]
    fn pattern_matching_all_shapes() {
        let g = sample();
        let a = Term::iri("a");
        let p = Term::iri("p");
        let x = Term::iri("x");
        assert_eq!(g.match_pattern(None, None, None).len(), 5);
        assert_eq!(g.match_pattern(Some(&a), None, None).len(), 3);
        assert_eq!(g.match_pattern(None, Some(&p), None).len(), 3);
        assert_eq!(g.match_pattern(None, None, Some(&x)).len(), 3);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), None).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), None, Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(None, Some(&p), Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), Some(&x)).len(), 1);
        assert!(g
            .match_pattern(Some(&Term::iri("zz")), None, None)
            .is_empty());
    }

    #[test]
    fn literals_as_objects() {
        let mut g = Graph::new();
        g.insert(Statement::new(
            Term::iri("s"),
            Term::iri("age"),
            Term::integer(42),
        ));
        let hits = g.match_pattern(None, None, Some(&Term::integer(42)));
        assert_eq!(hits.len(), 1);
        assert!(g
            .match_pattern(None, None, Some(&Term::integer(41)))
            .is_empty());
    }

    #[test]
    fn extend_from_counts_new_statements() {
        let mut g = sample();
        let other: Graph = vec![st("a", "p", "x"), st("c", "p", "x")]
            .into_iter()
            .collect();
        assert_eq!(g.extend_from(&other), 1);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn subject_object_arm_matches_filtered_scan() {
        // The (S, _, O) arm must return exactly what a full scan + filter
        // would, while actually routing through the OSP index.
        let mut g = sample();
        g.insert(st("a", "r", "x"));
        g.insert(Statement::new(
            Term::iri("a"),
            Term::iri("age"),
            Term::integer(7),
        ));
        let subjects = [Term::iri("a"), Term::iri("b"), Term::iri("zz")];
        let objects = [Term::iri("x"), Term::iri("z"), Term::integer(7)];
        for s in &subjects {
            for o in &objects {
                let via_arm = g.match_pattern(Some(s), None, Some(o));
                let via_filter: Vec<Statement> = g
                    .iter()
                    .filter(|t| &t.subject == s && &t.object == o)
                    .collect();
                assert_eq!(
                    via_arm.len(),
                    via_filter.len(),
                    "mismatch for ({s:?}, _, {o:?})"
                );
                for hit in &via_arm {
                    assert!(via_filter.contains(hit));
                }
            }
        }
        assert_eq!(
            g.match_pattern(Some(&Term::iri("a")), None, Some(&Term::iri("x")))
                .len(),
            3
        );
    }

    #[test]
    fn overlay_unions_base_and_extra() {
        let base = sample();
        let extra: Graph = vec![st("a", "p", "x"), st("c", "p", "w")]
            .into_iter()
            .collect();
        let view = Overlay::new(&base, &extra);
        let p = Term::iri("p");
        assert_eq!(view.find(None, Some(&p), None).len(), 4);
        assert!(view.has(&st("c", "p", "w")));
        assert!(view.has(&st("a", "q", "x")));
        assert!(!view.has(&st("c", "q", "w")));
        // Duplicates between base and extra are reported once.
        let a = Term::iri("a");
        let x = Term::iri("x");
        assert_eq!(view.find(Some(&a), Some(&p), Some(&x)).len(), 1);
    }

    #[test]
    fn iter_yields_every_statement_once() {
        let g = sample();
        let collected: Vec<Statement> = g.iter().collect();
        assert_eq!(collected.len(), 5);
        let round: Graph = collected.into_iter().collect();
        assert_eq!(round, g);
    }
}
