//! Confidence-weighted facts and inference — the paper's stated future
//! work, implemented.
//!
//! §5: "We would like ways of determining accuracy levels of data stored
//! within the personalized knowledge base, using these accuracy levels
//! during the process of inferring new facts, and assigning accuracy
//! levels to newly inferred facts."
//!
//! [`WeightedGraph`] attaches a confidence in `[0, 1]` to statements
//! (unannotated statements default to 1.0 — plainly asserted facts).
//! Confidences are keyed by the graph's dictionary-encoded id triples, so
//! the reasoner's premise-confidence lookups are integer map hits.
//! [`WeightedReasoner`] forward-chains user rules where each conclusion's
//! confidence is `rule_strength × min(premise confidences)` (Gödel
//! t-norm: a chain of inferences is only as strong as its weakest link),
//! and re-derivations keep the **maximum** confidence over derivations.

use crate::dict::{IdTriple, TermId};
use crate::graph::Graph;
use crate::model::Statement;
use crate::reason::{compile_rules, GenericRuleReasoner, Rule};
use crate::RdfError;
use std::collections::HashMap;

/// A graph whose statements carry confidence levels.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::weighted::WeightedGraph;
/// use cogsdk_rdf::{Statement, Term};
///
/// let mut wg = WeightedGraph::new();
/// let st = Statement::new(Term::iri("a"), Term::iri("p"), Term::iri("b"));
/// wg.insert_with_confidence(st.clone(), 0.8);
/// assert_eq!(wg.confidence(&st), Some(0.8));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WeightedGraph {
    graph: Graph,
    /// Overrides, keyed by encoded triple; statements in `graph` but
    /// absent here have confidence 1.
    confidence: HashMap<IdTriple, f64>,
}

impl WeightedGraph {
    /// Creates an empty weighted graph.
    pub fn new() -> WeightedGraph {
        WeightedGraph::default()
    }

    /// Wraps an existing graph; every statement starts at confidence 1.0.
    pub fn from_graph(graph: Graph) -> WeightedGraph {
        WeightedGraph {
            graph,
            confidence: HashMap::new(),
        }
    }

    /// The underlying graph (for querying and plain reasoning).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Inserts a fully trusted statement (confidence 1.0).
    pub fn insert(&mut self, st: Statement) -> bool {
        let t = self.graph.intern_statement(&st);
        self.confidence.remove(&t);
        self.graph.insert_id(t)
    }

    /// Inserts a statement with an explicit confidence. Re-inserting
    /// keeps the **higher** confidence (corroboration never lowers
    /// trust).
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is outside `[0, 1]`.
    pub fn insert_with_confidence(&mut self, st: Statement, confidence: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence must be in [0, 1]"
        );
        let t = self.graph.intern_statement(&st);
        let added = self.graph.insert_id(t);
        let entry = self.confidence.entry(t).or_insert(confidence);
        *entry = entry.max(confidence);
        added
    }

    /// The confidence of a statement: `None` if absent, `Some(1.0)` for
    /// plain assertions, the recorded value otherwise.
    pub fn confidence(&self, st: &Statement) -> Option<f64> {
        let t = self.graph.lookup_statement(st)?;
        if !self.graph.contains_id(t) {
            return None;
        }
        Some(self.confidence.get(&t).copied().unwrap_or(1.0))
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// All statements below the given confidence threshold — the
    /// review queue for weakly supported knowledge. Only the surviving
    /// triples are materialized to statements.
    pub fn below_confidence(&self, threshold: f64) -> Vec<(Statement, f64)> {
        let mut weak: Vec<(IdTriple, f64)> = self
            .graph
            .iter_ids()
            .filter_map(|t| {
                let c = self.confidence.get(&t).copied().unwrap_or(1.0);
                (c < threshold).then_some((t, c))
            })
            .collect();
        weak.sort_by(|a, b| a.1.total_cmp(&b.1));
        weak.into_iter()
            .map(|(t, c)| (self.graph.resolve(t), c))
            .collect()
    }
}

/// Equality over observable content: same statements with the same
/// effective confidences, independent of interning order.
impl PartialEq for WeightedGraph {
    fn eq(&self, other: &WeightedGraph) -> bool {
        if self.graph != other.graph {
            return false;
        }
        self.graph.iter_ids().all(|t| {
            let mine = self.confidence.get(&t).copied().unwrap_or(1.0);
            let theirs = other
                .confidence(&self.graph.resolve(t))
                .expect("graphs compared equal");
            mine == theirs
        })
    }
}

/// Forward-chaining inference with confidence propagation.
#[derive(Debug, Clone)]
pub struct WeightedReasoner {
    rules: Vec<Rule>,
    rule_strength: f64,
}

impl WeightedReasoner {
    /// Creates a reasoner from parsed rules with a uniform rule strength
    /// in `(0, 1]` (how much an inference step itself dilutes trust).
    ///
    /// # Panics
    ///
    /// Panics if `rule_strength` is outside `(0, 1]`.
    pub fn new(rules: Vec<Rule>, rule_strength: f64) -> WeightedReasoner {
        assert!(
            rule_strength > 0.0 && rule_strength <= 1.0,
            "rule strength must be in (0, 1]"
        );
        WeightedReasoner {
            rules,
            rule_strength,
        }
    }

    /// Parses Jena-like rule text (one rule per line).
    ///
    /// # Errors
    ///
    /// Propagates rule parse errors.
    pub fn from_rules_text(text: &str, rule_strength: f64) -> Result<WeightedReasoner, RdfError> {
        let parsed = GenericRuleReasoner::from_rules_text(text)?;
        Ok(WeightedReasoner::new(
            parsed.rules().to_vec(),
            rule_strength,
        ))
    }

    /// Runs to fixpoint over `wg`, inserting inferred statements with
    /// propagated confidence. Returns the newly added statements with
    /// their confidences (statements whose confidence merely *improved*
    /// are not re-reported).
    ///
    /// Rules are compiled once against the graph's dictionary; binding
    /// paths and per-premise confidence lookups are all id work, and only
    /// the newly added facts are materialized at the end.
    pub fn infer(&self, wg: &mut WeightedGraph) -> Vec<(Statement, f64)> {
        let compiled = compile_rules(&self.rules, wg.graph.dict());
        let mut added: Vec<(IdTriple, f64)> = Vec::new();
        loop {
            let mut progress = false;
            for rule in &compiled {
                // Enumerate premise bindings, tracking the weakest premise
                // confidence along every binding path.
                let mut paths: Vec<(Vec<Option<TermId>>, f64)> =
                    vec![(vec![None; rule.nvars], 1.0)];
                for premise in &rule.premises {
                    let mut next = Vec::new();
                    for (bindings, strength) in &paths {
                        for (extended, matched) in premise.solve(&wg.graph, bindings) {
                            // The matched premise instance's confidence.
                            let premise_conf = wg.confidence.get(&matched).copied().unwrap_or(1.0);
                            next.push((extended, strength.min(premise_conf)));
                        }
                    }
                    paths = next;
                    if paths.is_empty() {
                        break;
                    }
                }
                for (bindings, strength) in paths {
                    for conclusion in &rule.conclusions {
                        let Some(t) = conclusion.instantiate(&bindings) else {
                            continue;
                        };
                        let new_conf = (self.rule_strength * strength).clamp(0.0, 1.0);
                        let existing = wg
                            .graph
                            .contains_id(t)
                            .then(|| wg.confidence.get(&t).copied().unwrap_or(1.0));
                        match existing {
                            None => {
                                wg.graph.insert_id(t);
                                wg.confidence.insert(t, new_conf);
                                added.push((t, new_conf));
                                progress = true;
                            }
                            Some(existing) if new_conf > existing + 1e-12 => {
                                wg.confidence.insert(t, new_conf);
                                // Improved confidence can strengthen
                                // downstream chains: keep iterating.
                                progress = true;
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
            if !progress {
                return added
                    .into_iter()
                    .map(|(t, c)| (wg.graph.resolve(t), c))
                    .collect();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Term;

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn confidence_defaults_and_overrides() {
        let mut wg = WeightedGraph::new();
        wg.insert(st("a", "p", "b"));
        wg.insert_with_confidence(st("c", "p", "d"), 0.6);
        assert_eq!(wg.confidence(&st("a", "p", "b")), Some(1.0));
        assert_eq!(wg.confidence(&st("c", "p", "d")), Some(0.6));
        assert_eq!(wg.confidence(&st("x", "p", "y")), None);
        assert_eq!(wg.len(), 2);
    }

    #[test]
    fn corroboration_keeps_higher_confidence() {
        let mut wg = WeightedGraph::new();
        wg.insert_with_confidence(st("a", "p", "b"), 0.5);
        wg.insert_with_confidence(st("a", "p", "b"), 0.9);
        wg.insert_with_confidence(st("a", "p", "b"), 0.3);
        assert_eq!(wg.confidence(&st("a", "p", "b")), Some(0.9));
        // A plain assertion restores full trust.
        wg.insert(st("a", "p", "b"));
        assert_eq!(wg.confidence(&st("a", "p", "b")), Some(1.0));
    }

    #[test]
    fn weighted_equality_ignores_interning_order() {
        let mut wg1 = WeightedGraph::new();
        wg1.insert(st("a", "p", "b"));
        wg1.insert_with_confidence(st("c", "p", "d"), 0.6);
        let mut wg2 = WeightedGraph::new();
        wg2.insert_with_confidence(st("c", "p", "d"), 0.6);
        wg2.insert(st("a", "p", "b"));
        assert_eq!(wg1, wg2);
        wg2.insert_with_confidence(st("c", "p", "d"), 0.9);
        assert_ne!(wg1, wg2, "same facts, different confidences");
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn out_of_range_confidence_rejected() {
        WeightedGraph::new().insert_with_confidence(st("a", "p", "b"), 1.5);
    }

    #[test]
    fn inference_propagates_weakest_link() {
        let mut wg = WeightedGraph::new();
        wg.insert_with_confidence(st("alice", "parent", "bob"), 0.9);
        wg.insert_with_confidence(st("bob", "parent", "carol"), 0.6);
        let reasoner = WeightedReasoner::from_rules_text(
            "[(?a parent ?b), (?b parent ?c) -> (?a grandparent ?c)]",
            1.0,
        )
        .unwrap();
        let added = reasoner.infer(&mut wg);
        assert_eq!(added.len(), 1);
        let (fact, conf) = &added[0];
        assert_eq!(*fact, st("alice", "grandparent", "carol"));
        assert!(
            (conf - 0.6).abs() < 1e-12,
            "min(0.9, 0.6) = 0.6, got {conf}"
        );
    }

    #[test]
    fn rule_strength_dilutes_chained_inference() {
        // ancestor chains: each hop multiplies by rule strength.
        let mut wg = WeightedGraph::new();
        wg.insert_with_confidence(st("a", "parent", "b"), 1.0);
        wg.insert_with_confidence(st("b", "parent", "c"), 1.0);
        wg.insert_with_confidence(st("c", "parent", "d"), 1.0);
        let reasoner = WeightedReasoner::from_rules_text(
            "[(?x parent ?y) -> (?x ancestor ?y)]\n\
             [(?x parent ?y), (?y ancestor ?z) -> (?x ancestor ?z)]",
            0.9,
        )
        .unwrap();
        reasoner.infer(&mut wg);
        // a ancestor b: one rule application → 0.9.
        assert!((wg.confidence(&st("a", "ancestor", "b")).unwrap() - 0.9).abs() < 1e-9);
        // a ancestor c: parent(a,b) + ancestor(b,c)@0.9 → 0.9 * 0.9.
        assert!((wg.confidence(&st("a", "ancestor", "c")).unwrap() - 0.81).abs() < 1e-9);
        // a ancestor d: three hops → 0.9^3.
        assert!((wg.confidence(&st("a", "ancestor", "d")).unwrap() - 0.729).abs() < 1e-9);
    }

    #[test]
    fn rederivation_keeps_best_confidence() {
        // Two derivation paths with different strengths: the stronger
        // one must win.
        let mut wg = WeightedGraph::new();
        wg.insert_with_confidence(st("x", "weak_sign", "y"), 0.3);
        wg.insert_with_confidence(st("x", "strong_sign", "y"), 0.95);
        let reasoner = WeightedReasoner::from_rules_text(
            "[(?a weak_sign ?b) -> (?a linked ?b)]\n\
             [(?a strong_sign ?b) -> (?a linked ?b)]",
            1.0,
        )
        .unwrap();
        let added = reasoner.infer(&mut wg);
        assert_eq!(added.len(), 1, "one new statement, two derivations");
        assert!((wg.confidence(&st("x", "linked", "y")).unwrap() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn below_confidence_surfaces_weak_facts_sorted() {
        let mut wg = WeightedGraph::new();
        wg.insert(st("a", "p", "b"));
        wg.insert_with_confidence(st("c", "p", "d"), 0.4);
        wg.insert_with_confidence(st("e", "p", "f"), 0.2);
        let weak = wg.below_confidence(0.5);
        assert_eq!(weak.len(), 2);
        assert_eq!(weak[0].0, st("e", "p", "f"));
        assert_eq!(weak[1].0, st("c", "p", "d"));
    }

    #[test]
    fn inference_terminates_on_cyclic_rules() {
        let mut wg = WeightedGraph::new();
        wg.insert_with_confidence(st("a", "knows", "b"), 0.8);
        wg.insert_with_confidence(st("b", "knows", "a"), 0.8);
        let reasoner =
            WeightedReasoner::from_rules_text("[(?x knows ?y) -> (?y knows ?x)]", 0.9).unwrap();
        let added = reasoner.infer(&mut wg);
        // Both facts already exist with higher confidence than any
        // derivation could produce: nothing to add, no infinite loop.
        assert!(added.is_empty());
    }

    #[test]
    #[should_panic(expected = "rule strength")]
    fn zero_rule_strength_rejected() {
        let _ = WeightedReasoner::new(vec![], 0.0);
    }
}
