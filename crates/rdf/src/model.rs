//! RDF terms and statements.
//!
//! §3: "RDF models consist of statements. A statement has three parts: a
//! subject, predicate, and object" — the paper's example being
//! `("Java HashMap class", "implements", "Java Map interface")`.

use std::fmt;

/// A typed RDF literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A plain string literal.
    String(String),
    /// An integer literal (`xsd:integer`).
    Integer(i64),
    /// A double literal (`xsd:double`).
    Double(f64),
    /// A boolean literal (`xsd:boolean`).
    Boolean(bool),
}

impl Literal {
    /// Numeric view of integer/double literals.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Integer(i) => Some(*i as f64),
            Literal::Double(d) => Some(*d),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::String(s) => write!(f, "\"{s}\""),
            Literal::Integer(i) => write!(f, "{i}"),
            Literal::Double(d) => write!(f, "{d}"),
            Literal::Boolean(b) => write!(f, "{b}"),
        }
    }
}

impl Eq for Literal {}

impl Ord for Literal {
    fn cmp(&self, other: &Literal) -> std::cmp::Ordering {
        use Literal::*;
        match (self, other) {
            (String(a), String(b)) => a.cmp(b),
            (Integer(a), Integer(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Boolean(a), Boolean(b)) => a.cmp(b),
            // Cross-type order: String < Integer < Double < Boolean.
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for Literal {
    fn partial_cmp(&self, other: &Literal) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn rank(l: &Literal) -> u8 {
    match l {
        Literal::String(_) => 0,
        Literal::Integer(_) => 1,
        Literal::Double(_) => 2,
        Literal::Boolean(_) => 3,
    }
}

impl std::hash::Hash for Literal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        rank(self).hash(state);
        match self {
            Literal::String(s) => s.hash(state),
            Literal::Integer(i) => i.hash(state),
            Literal::Double(d) => d.to_bits().hash(state),
            Literal::Boolean(b) => b.hash(state),
        }
    }
}

/// An RDF term: IRI, literal, or blank node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An IRI (possibly in `prefix:local` compact form).
    Iri(String),
    /// A literal value.
    Literal(Literal),
    /// A blank node with a local label.
    Blank(String),
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(value: impl Into<String>) -> Term {
        Term::Iri(value.into())
    }

    /// Creates a string literal.
    pub fn string(value: impl Into<String>) -> Term {
        Term::Literal(Literal::String(value.into()))
    }

    /// Creates an integer literal.
    pub fn integer(value: i64) -> Term {
        Term::Literal(Literal::Integer(value))
    }

    /// Creates a double literal.
    pub fn double(value: f64) -> Term {
        Term::Literal(Literal::Double(value))
    }

    /// Creates a boolean literal.
    pub fn boolean(value: bool) -> Term {
        Term::Literal(Literal::Boolean(value))
    }

    /// Creates a blank node.
    pub fn blank(label: impl Into<String>) -> Term {
        Term::Blank(label.into())
    }

    /// The IRI string, if this is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal, if this is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// Whether the term may appear in subject position (IRI or blank).
    pub fn is_resource(&self) -> bool {
        matches!(self, Term::Iri(_) | Term::Blank(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(l) => write!(f, "{l}"),
            Term::Blank(b) => write!(f, "_:{b}"),
        }
    }
}

/// Well-known vocabulary IRIs (compact forms used across the workspace).
pub mod vocab {
    /// `rdf:type`.
    pub const TYPE: &str = "rdf:type";
    /// `rdfs:subClassOf`.
    pub const SUB_CLASS_OF: &str = "rdfs:subClassOf";
    /// `rdfs:subPropertyOf`.
    pub const SUB_PROPERTY_OF: &str = "rdfs:subPropertyOf";
    /// `rdfs:domain`.
    pub const DOMAIN: &str = "rdfs:domain";
    /// `rdfs:range`.
    pub const RANGE: &str = "rdfs:range";
    /// `owl:inverseOf`.
    pub const INVERSE_OF: &str = "owl:inverseOf";
    /// `owl:sameAs`.
    pub const SAME_AS: &str = "owl:sameAs";
    /// `owl:SymmetricProperty`.
    pub const SYMMETRIC_PROPERTY: &str = "owl:SymmetricProperty";
    /// `owl:TransitiveProperty`.
    pub const TRANSITIVE_PROPERTY: &str = "owl:TransitiveProperty";
    /// `owl:FunctionalProperty`.
    pub const FUNCTIONAL_PROPERTY: &str = "owl:FunctionalProperty";
}

/// One RDF statement (triple).
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{Statement, Term};
///
/// // The paper's example sentence as a triple.
/// let st = Statement::new(
///     Term::iri("ex:JavaHashMap"),
///     Term::iri("ex:implements"),
///     Term::iri("ex:JavaMapInterface"),
/// );
/// assert_eq!(st.to_string(), "<ex:JavaHashMap> <ex:implements> <ex:JavaMapInterface> .");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Statement {
    /// The subject (IRI or blank node).
    pub subject: Term,
    /// The predicate (IRI).
    pub predicate: Term,
    /// The object (any term).
    pub object: Term,
}

impl Statement {
    /// Creates a statement.
    ///
    /// # Panics
    ///
    /// Panics if `subject` is a literal or `predicate` is not an IRI —
    /// both are structurally invalid RDF.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Statement {
        assert!(
            subject.is_resource(),
            "statement subject must be a resource"
        );
        assert!(
            matches!(predicate, Term::Iri(_)),
            "statement predicate must be an IRI"
        );
        Statement {
            subject,
            predicate,
            object,
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Term::iri("ex:a").as_iri(), Some("ex:a"));
        assert_eq!(Term::string("x").as_iri(), None);
        assert_eq!(
            Term::integer(3).as_literal().and_then(Literal::as_f64),
            Some(3.0)
        );
        assert_eq!(
            Term::double(2.5).as_literal().and_then(Literal::as_f64),
            Some(2.5)
        );
        assert!(Term::blank("b0").is_resource());
        assert!(!Term::boolean(true).is_resource());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("ex:a").to_string(), "<ex:a>");
        assert_eq!(Term::string("hi").to_string(), "\"hi\"");
        assert_eq!(Term::integer(-4).to_string(), "-4");
        assert_eq!(Term::blank("n1").to_string(), "_:n1");
    }

    #[test]
    #[should_panic(expected = "subject")]
    fn literal_subject_rejected() {
        let _ = Statement::new(Term::string("x"), Term::iri("p"), Term::iri("o"));
    }

    #[test]
    #[should_panic(expected = "predicate")]
    fn non_iri_predicate_rejected() {
        let _ = Statement::new(Term::iri("s"), Term::blank("p"), Term::iri("o"));
    }

    #[test]
    fn terms_order_totally() {
        let mut terms = vec![
            Term::boolean(true),
            Term::iri("b"),
            Term::double(1.5),
            Term::iri("a"),
            Term::string("z"),
            Term::blank("x"),
            Term::integer(2),
        ];
        terms.sort();
        // Sorting must be deterministic and not panic on mixed types.
        assert_eq!(terms.len(), 7);
        let mut terms2 = terms.clone();
        terms2.sort();
        assert_eq!(terms, terms2);
    }

    #[test]
    fn literal_equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Term::double(1.0));
        set.insert(Term::double(1.0));
        set.insert(Term::integer(1));
        assert_eq!(set.len(), 2, "double 1.0 and integer 1 are distinct terms");
    }
}
