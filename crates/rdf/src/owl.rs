//! An incomplete OWL/Lite reasoner — the third Jena reasoner the paper
//! lists (§3): "Reasoners which support an incomplete implementation of
//! the OWL/Lite subset of the OWL/Full language."
//!
//! Supported entailments (run to fixpoint together with the RDFS rules):
//!
//! * `owl:inverseOf` — `(p owl:inverseOf q), (s p o) ⇒ (o q s)` and the
//!   mirror direction (inverseOf is itself symmetric).
//! * `owl:SymmetricProperty` — `(s p o) ⇒ (o p s)`.
//! * `owl:TransitiveProperty` — transitive closure per such property.
//! * `owl:FunctionalProperty` — `(s p o₁), (s p o₂) ⇒ (o₁ owl:sameAs o₂)`.
//! * `owl:sameAs` — symmetric and transitive, and statements are copied
//!   across aliases in subject and object position (smushing).

use crate::graph::Graph;
use crate::graph::TripleView;
use crate::model::{vocab, Statement, Term};
use crate::reason::{rdfs_delta, semi_naive};

/// The OWL/Lite-subset reasoner.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{Graph, Statement, Term};
/// use cogsdk_rdf::owl::OwlLiteReasoner;
///
/// let mut g = Graph::new();
/// g.insert(Statement::new(
///     Term::iri("ex:hasParent"), Term::iri("owl:inverseOf"), Term::iri("ex:hasChild")));
/// g.insert(Statement::new(
///     Term::iri("ex:alice"), Term::iri("ex:hasParent"), Term::iri("ex:bob")));
///
/// let inferred = OwlLiteReasoner::new().infer(&g);
/// assert!(inferred.contains(&Statement::new(
///     Term::iri("ex:bob"), Term::iri("ex:hasChild"), Term::iri("ex:alice"))));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OwlLiteReasoner {
    /// Also run the RDFS subset (subclass/subproperty/domain/range), as
    /// Jena's OWL reasoners do. Defaults to true.
    pub include_rdfs: bool,
}

impl OwlLiteReasoner {
    /// Creates the reasoner with RDFS entailments included.
    pub fn new() -> OwlLiteReasoner {
        OwlLiteReasoner { include_rdfs: true }
    }

    /// Creates the reasoner with only the OWL rules (no RDFS).
    pub fn owl_only() -> OwlLiteReasoner {
        OwlLiteReasoner {
            include_rdfs: false,
        }
    }

    /// Runs to fixpoint; returns only the newly entailed statements.
    ///
    /// Evaluated semi-naively: each round joins the OWL rules (and the
    /// RDFS subset when enabled) against the previous round's delta over a
    /// borrowed overlay — no `graph.clone()`, no nested full RDFS or
    /// transitive-closure recomputation per round.
    pub fn infer(&self, graph: &Graph) -> Graph {
        let include_rdfs = self.include_rdfs;
        semi_naive(graph, &mut |view, delta| {
            let mut out = owl_delta(view, delta);
            if include_rdfs {
                out.extend(rdfs_delta(view, delta));
            }
            out
        })
    }
}

/// Delta form of the OWL/Lite subset. Each delta fact is joined both as a
/// schema declaration (firing over its existing use sites) and as a use
/// site (firing over the existing declarations). Reflexive `owl:sameAs`
/// candidates are filtered here, mirroring the batch reasoner.
pub(crate) fn owl_delta(view: &dyn TripleView, delta: &[Statement]) -> Vec<Statement> {
    let type_p = Term::iri(vocab::TYPE);
    let inverse_of = Term::iri(vocab::INVERSE_OF);
    let same_as = Term::iri(vocab::SAME_AS);
    let symmetric = Term::iri(vocab::SYMMETRIC_PROPERTY);
    let transitive = Term::iri(vocab::TRANSITIVE_PROPERTY);
    let functional = Term::iri(vocab::FUNCTIONAL_PROPERTY);

    let mut out: Vec<Statement> = Vec::new();
    for st in delta {
        // ---- Declaration side: the delta fact is OWL schema. ----
        if st.predicate == inverse_of {
            if let (Term::Iri(_), Term::Iri(_)) = (&st.subject, &st.object) {
                // (p inverseOf q), (s p o) => (o q s) — and the mirror
                // direction, since inverseOf is itself symmetric.
                for (p, q) in [(&st.subject, &st.object), (&st.object, &st.subject)] {
                    for use_site in view.find(None, Some(p), None) {
                        if use_site.object.is_resource() {
                            out.push(Statement::new(use_site.object, q.clone(), use_site.subject));
                        }
                    }
                }
            }
        } else if st.predicate == type_p && matches!(st.subject, Term::Iri(_)) {
            if st.object == symmetric {
                for use_site in view.find(None, Some(&st.subject), None) {
                    if use_site.object.is_resource() {
                        out.push(Statement::new(
                            use_site.object,
                            use_site.predicate,
                            use_site.subject,
                        ));
                    }
                }
            } else if st.object == transitive {
                // One-step compositions over existing edges; the fixpoint
                // rounds complete the closure.
                for e1 in view.find(None, Some(&st.subject), None) {
                    if !e1.object.is_resource() {
                        continue;
                    }
                    for e2 in view.find(Some(&e1.object), Some(&st.subject), None) {
                        if e2.object.is_resource() && e2.object != e1.subject {
                            out.push(Statement::new(
                                e1.subject.clone(),
                                st.subject.clone(),
                                e2.object,
                            ));
                        }
                    }
                }
            } else if st.object == functional {
                let uses = view.find(None, Some(&st.subject), None);
                for a in &uses {
                    for b in &uses {
                        if a.subject == b.subject
                            && a.object != b.object
                            && a.object.is_resource()
                            && b.object.is_resource()
                        {
                            out.push(Statement::new(
                                a.object.clone(),
                                same_as.clone(),
                                b.object.clone(),
                            ));
                        }
                    }
                }
            }
        }
        if st.predicate == same_as
            && st.subject.is_resource()
            && st.object.is_resource()
            && st.subject != st.object
        {
            let (a, b) = (&st.subject, &st.object);
            // Symmetry.
            out.push(Statement::new(b.clone(), same_as.clone(), a.clone()));
            // Transitivity, joining on both sides.
            for next in view.find(Some(b), Some(&same_as), None) {
                if next.object.is_resource() && next.object != *a {
                    out.push(Statement::new(a.clone(), same_as.clone(), next.object));
                }
            }
            for prev in view.find(None, Some(&same_as), Some(a)) {
                if prev.subject != *b {
                    out.push(Statement::new(prev.subject, same_as.clone(), b.clone()));
                }
            }
            // Smushing: copy the alias's existing statements across, both
            // positions.
            for use_site in view.find(Some(a), None, None) {
                if use_site.predicate != same_as {
                    out.push(Statement::new(
                        b.clone(),
                        use_site.predicate,
                        use_site.object,
                    ));
                }
            }
            for use_site in view.find(None, None, Some(a)) {
                if use_site.predicate != same_as {
                    out.push(Statement::new(
                        use_site.subject,
                        use_site.predicate,
                        b.clone(),
                    ));
                }
            }
        }

        // ---- Use side: the delta fact is an ordinary statement; join the
        // existing declarations over its predicate. ----
        let p = &st.predicate;
        // inverseOf, both declaration directions.
        if st.object.is_resource() {
            for decl in view.find(Some(p), Some(&inverse_of), None) {
                if matches!(decl.object, Term::Iri(_)) {
                    out.push(Statement::new(
                        st.object.clone(),
                        decl.object,
                        st.subject.clone(),
                    ));
                }
            }
            for decl in view.find(None, Some(&inverse_of), Some(p)) {
                if matches!(decl.subject, Term::Iri(_)) {
                    out.push(Statement::new(
                        st.object.clone(),
                        decl.subject,
                        st.subject.clone(),
                    ));
                }
            }
        }
        // SymmetricProperty.
        if st.object.is_resource()
            && view.has(&Statement::new(
                p.clone(),
                type_p.clone(),
                symmetric.clone(),
            ))
        {
            out.push(Statement::new(
                st.object.clone(),
                p.clone(),
                st.subject.clone(),
            ));
        }
        // TransitiveProperty: compose with neighbours on both sides.
        if st.object.is_resource()
            && view.has(&Statement::new(
                p.clone(),
                type_p.clone(),
                transitive.clone(),
            ))
        {
            for next in view.find(Some(&st.object), Some(p), None) {
                if next.object.is_resource() && next.object != st.subject {
                    out.push(Statement::new(st.subject.clone(), p.clone(), next.object));
                }
            }
            for prev in view.find(None, Some(p), Some(&st.subject)) {
                if prev.subject != st.object {
                    out.push(Statement::new(prev.subject, p.clone(), st.object.clone()));
                }
            }
        }
        // FunctionalProperty: this use pairs with every sibling object.
        if st.object.is_resource()
            && view.has(&Statement::new(
                p.clone(),
                type_p.clone(),
                functional.clone(),
            ))
        {
            for other in view.find(Some(&st.subject), Some(p), None) {
                if other.object != st.object && other.object.is_resource() {
                    out.push(Statement::new(
                        st.object.clone(),
                        same_as.clone(),
                        other.object.clone(),
                    ));
                    out.push(Statement::new(
                        other.object,
                        same_as.clone(),
                        st.object.clone(),
                    ));
                }
            }
        }
        // Smushing: a new fact about `s` (or with object `o`) reaches every
        // known alias of `s` (or `o`).
        if *p != same_as {
            for alias in view.find(Some(&st.subject), Some(&same_as), None) {
                if alias.object.is_resource() {
                    out.push(Statement::new(alias.object, p.clone(), st.object.clone()));
                }
            }
            if st.object.is_resource() {
                for alias in view.find(Some(&st.object), Some(&same_as), None) {
                    if alias.object.is_resource() {
                        out.push(Statement::new(st.subject.clone(), p.clone(), alias.object));
                    }
                }
            }
        }
    }
    out.retain(|st| !(st.predicate == same_as && st.subject == st.object));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn inverse_of_entailments_both_directions() {
        let mut g = Graph::new();
        g.insert(st("hasParent", vocab::INVERSE_OF, "hasChild"));
        g.insert(st("alice", "hasParent", "bob"));
        g.insert(st("bob", "hasChild", "carol"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("bob", "hasChild", "alice")));
        assert!(
            inf.contains(&st("carol", "hasParent", "bob")),
            "mirror direction"
        );
    }

    #[test]
    fn symmetric_property() {
        let mut g = Graph::new();
        g.insert(st("marriedTo", vocab::TYPE, vocab::SYMMETRIC_PROPERTY));
        g.insert(st("alice", "marriedTo", "bob"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("bob", "marriedTo", "alice")));
        assert_eq!(inf.len(), 1);
    }

    #[test]
    fn transitive_property() {
        let mut g = Graph::new();
        g.insert(st("locatedIn", vocab::TYPE, vocab::TRANSITIVE_PROPERTY));
        g.insert(st("office", "locatedIn", "building"));
        g.insert(st("building", "locatedIn", "city"));
        g.insert(st("city", "locatedIn", "country"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("office", "locatedIn", "country")));
        assert_eq!(
            inf.match_pattern(None, Some(&Term::iri("locatedIn")), None)
                .len(),
            3
        );
    }

    #[test]
    fn functional_property_derives_same_as() {
        let mut g = Graph::new();
        g.insert(st(
            "hasBirthMother",
            vocab::TYPE,
            vocab::FUNCTIONAL_PROPERTY,
        ));
        g.insert(st("alice", "hasBirthMother", "person_x"));
        g.insert(st("alice", "hasBirthMother", "person_y"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("person_x", vocab::SAME_AS, "person_y")));
        assert!(inf.contains(&st("person_y", vocab::SAME_AS, "person_x")));
    }

    #[test]
    fn same_as_smushes_statements_across_aliases() {
        // The paper's disambiguation story at the OWL level: two ids for
        // one country share all facts.
        let mut g = Graph::new();
        g.insert(st("usa", vocab::SAME_AS, "united_states"));
        g.insert(st("usa", "capital", "washington"));
        g.insert(st("germany", "ally", "united_states"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("united_states", "capital", "washington")));
        assert!(inf.contains(&st("germany", "ally", "usa")));
        assert!(inf.contains(&st("united_states", vocab::SAME_AS, "usa")));
    }

    #[test]
    fn same_as_is_transitive() {
        let mut g = Graph::new();
        g.insert(st("a", vocab::SAME_AS, "b"));
        g.insert(st("b", vocab::SAME_AS, "c"));
        g.insert(st("a", "p", "v"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("a", vocab::SAME_AS, "c")));
        assert!(
            inf.contains(&st("c", "p", "v")),
            "facts reach transitive aliases"
        );
        // No reflexive sameAs noise.
        assert!(!inf.contains(&st("a", vocab::SAME_AS, "a")));
    }

    #[test]
    fn combined_with_rdfs_rules() {
        let mut g = Graph::new();
        g.insert(st("hasCapital", vocab::INVERSE_OF, "capitalOf"));
        g.insert(st("capitalOf", vocab::DOMAIN, "City"));
        g.insert(st("germany", "hasCapital", "berlin"));
        let inf = OwlLiteReasoner::new().infer(&g);
        // inverseOf gives (berlin capitalOf germany); rdfs2 then types
        // berlin as a City — an entailment neither subset finds alone.
        assert!(inf.contains(&st("berlin", "capitalOf", "germany")));
        assert!(inf.contains(&st("berlin", vocab::TYPE, "City")));
    }

    #[test]
    fn terminates_on_cycles_and_empty_graph() {
        assert!(OwlLiteReasoner::new().infer(&Graph::new()).is_empty());
        let mut g = Graph::new();
        g.insert(st("p", vocab::TYPE, vocab::SYMMETRIC_PROPERTY));
        g.insert(st("p", vocab::TYPE, vocab::TRANSITIVE_PROPERTY));
        g.insert(st("a", "p", "b"));
        g.insert(st("b", "p", "a"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        // Symmetric + transitive on a 2-cycle: at most the loops a-p-a,
        // b-p-b beyond the stated edges.
        assert!(inf.len() <= 2, "{inf:?}");
    }
}
