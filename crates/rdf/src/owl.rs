//! An incomplete OWL/Lite reasoner — the third Jena reasoner the paper
//! lists (§3): "Reasoners which support an incomplete implementation of
//! the OWL/Lite subset of the OWL/Full language."
//!
//! Supported entailments (run to fixpoint together with the RDFS rules):
//!
//! * `owl:inverseOf` — `(p owl:inverseOf q), (s p o) ⇒ (o q s)` and the
//!   mirror direction (inverseOf is itself symmetric).
//! * `owl:SymmetricProperty` — `(s p o) ⇒ (o p s)`.
//! * `owl:TransitiveProperty` — transitive closure per such property.
//! * `owl:FunctionalProperty` — `(s p o₁), (s p o₂) ⇒ (o₁ owl:sameAs o₂)`.
//! * `owl:sameAs` — symmetric and transitive, and statements are copied
//!   across aliases in subject and object position (smushing).

use crate::graph::Graph;
use crate::model::{vocab, Statement, Term};
use crate::reason::{RdfsReasoner, TransitiveReasoner};

/// The OWL/Lite-subset reasoner.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{Graph, Statement, Term};
/// use cogsdk_rdf::owl::OwlLiteReasoner;
///
/// let mut g = Graph::new();
/// g.insert(Statement::new(
///     Term::iri("ex:hasParent"), Term::iri("owl:inverseOf"), Term::iri("ex:hasChild")));
/// g.insert(Statement::new(
///     Term::iri("ex:alice"), Term::iri("ex:hasParent"), Term::iri("ex:bob")));
///
/// let inferred = OwlLiteReasoner::new().infer(&g);
/// assert!(inferred.contains(&Statement::new(
///     Term::iri("ex:bob"), Term::iri("ex:hasChild"), Term::iri("ex:alice"))));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OwlLiteReasoner {
    /// Also run the RDFS subset (subclass/subproperty/domain/range), as
    /// Jena's OWL reasoners do. Defaults to true.
    pub include_rdfs: bool,
}

impl OwlLiteReasoner {
    /// Creates the reasoner with RDFS entailments included.
    pub fn new() -> OwlLiteReasoner {
        OwlLiteReasoner { include_rdfs: true }
    }

    /// Creates the reasoner with only the OWL rules (no RDFS).
    pub fn owl_only() -> OwlLiteReasoner {
        OwlLiteReasoner {
            include_rdfs: false,
        }
    }

    /// Runs to fixpoint; returns only the newly entailed statements.
    pub fn infer(&self, graph: &Graph) -> Graph {
        let type_p = Term::iri(vocab::TYPE);
        let inverse_of = Term::iri(vocab::INVERSE_OF);
        let same_as = Term::iri(vocab::SAME_AS);
        let symmetric = Term::iri(vocab::SYMMETRIC_PROPERTY);
        let transitive = Term::iri(vocab::TRANSITIVE_PROPERTY);
        let functional = Term::iri(vocab::FUNCTIONAL_PROPERTY);

        let mut working = graph.clone();
        let mut inferred = Graph::new();
        loop {
            let mut fresh: Vec<Statement> = Vec::new();

            if self.include_rdfs {
                fresh.extend(RdfsReasoner::new().infer(&working).iter());
            }

            // owl:inverseOf (both directions; the declaration itself is
            // symmetric).
            let mut inverse_pairs: Vec<(Term, Term)> = Vec::new();
            for decl in working.match_pattern(None, Some(&inverse_of), None) {
                if let (Term::Iri(_), Term::Iri(_)) = (&decl.subject, &decl.object) {
                    inverse_pairs.push((decl.subject.clone(), decl.object.clone()));
                    inverse_pairs.push((decl.object, decl.subject));
                }
            }
            for (p, q) in &inverse_pairs {
                for st in working.match_pattern(None, Some(p), None) {
                    if st.object.is_resource() {
                        fresh.push(Statement::new(st.object, q.clone(), st.subject));
                    }
                }
            }

            // owl:SymmetricProperty.
            for decl in working.match_pattern(None, Some(&type_p), Some(&symmetric)) {
                if !matches!(decl.subject, Term::Iri(_)) {
                    continue;
                }
                for st in working.match_pattern(None, Some(&decl.subject), None) {
                    if st.object.is_resource() {
                        fresh.push(Statement::new(st.object, st.predicate, st.subject));
                    }
                }
            }

            // owl:TransitiveProperty: closure per declared property.
            let transitive_props: Vec<Term> = working
                .match_pattern(None, Some(&type_p), Some(&transitive))
                .into_iter()
                .map(|st| st.subject)
                .filter(|t| matches!(t, Term::Iri(_)))
                .collect();
            if !transitive_props.is_empty() {
                fresh.extend(
                    TransitiveReasoner::new(transitive_props)
                        .infer(&working)
                        .iter(),
                );
            }

            // owl:FunctionalProperty: two objects for one subject are the
            // same individual.
            for decl in working.match_pattern(None, Some(&type_p), Some(&functional)) {
                if !matches!(decl.subject, Term::Iri(_)) {
                    continue;
                }
                let uses = working.match_pattern(None, Some(&decl.subject), None);
                for a in &uses {
                    for b in &uses {
                        if a.subject == b.subject
                            && a.object != b.object
                            && a.object.is_resource()
                            && b.object.is_resource()
                        {
                            fresh.push(Statement::new(
                                a.object.clone(),
                                same_as.clone(),
                                b.object.clone(),
                            ));
                        }
                    }
                }
            }

            // owl:sameAs: symmetric, transitive, and smushing.
            let same_pairs: Vec<(Term, Term)> = working
                .match_pattern(None, Some(&same_as), None)
                .into_iter()
                .filter(|st| st.subject.is_resource() && st.object.is_resource())
                .map(|st| (st.subject, st.object))
                .collect();
            for (a, b) in &same_pairs {
                if a == b {
                    continue;
                }
                fresh.push(Statement::new(b.clone(), same_as.clone(), a.clone()));
                // Transitivity through shared members.
                for (c, d) in &same_pairs {
                    if b == c && a != d {
                        fresh.push(Statement::new(a.clone(), same_as.clone(), d.clone()));
                    }
                }
                // Copy statements across the alias, both positions.
                for st in working.match_pattern(Some(a), None, None) {
                    if st.predicate != same_as {
                        fresh.push(Statement::new(b.clone(), st.predicate, st.object));
                    }
                }
                for st in working.match_pattern(None, None, Some(a)) {
                    if st.predicate != same_as {
                        fresh.push(Statement::new(st.subject, st.predicate, b.clone()));
                    }
                }
            }

            let mut added = 0;
            for st in fresh {
                if st.subject == st.object && st.predicate == same_as {
                    continue; // skip trivial reflexive sameAs
                }
                if !working.contains(&st) {
                    working.insert(st.clone());
                    inferred.insert(st);
                    added += 1;
                }
            }
            if added == 0 {
                break;
            }
        }
        inferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn inverse_of_entailments_both_directions() {
        let mut g = Graph::new();
        g.insert(st("hasParent", vocab::INVERSE_OF, "hasChild"));
        g.insert(st("alice", "hasParent", "bob"));
        g.insert(st("bob", "hasChild", "carol"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("bob", "hasChild", "alice")));
        assert!(
            inf.contains(&st("carol", "hasParent", "bob")),
            "mirror direction"
        );
    }

    #[test]
    fn symmetric_property() {
        let mut g = Graph::new();
        g.insert(st("marriedTo", vocab::TYPE, vocab::SYMMETRIC_PROPERTY));
        g.insert(st("alice", "marriedTo", "bob"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("bob", "marriedTo", "alice")));
        assert_eq!(inf.len(), 1);
    }

    #[test]
    fn transitive_property() {
        let mut g = Graph::new();
        g.insert(st("locatedIn", vocab::TYPE, vocab::TRANSITIVE_PROPERTY));
        g.insert(st("office", "locatedIn", "building"));
        g.insert(st("building", "locatedIn", "city"));
        g.insert(st("city", "locatedIn", "country"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("office", "locatedIn", "country")));
        assert_eq!(
            inf.match_pattern(None, Some(&Term::iri("locatedIn")), None)
                .len(),
            3
        );
    }

    #[test]
    fn functional_property_derives_same_as() {
        let mut g = Graph::new();
        g.insert(st(
            "hasBirthMother",
            vocab::TYPE,
            vocab::FUNCTIONAL_PROPERTY,
        ));
        g.insert(st("alice", "hasBirthMother", "person_x"));
        g.insert(st("alice", "hasBirthMother", "person_y"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("person_x", vocab::SAME_AS, "person_y")));
        assert!(inf.contains(&st("person_y", vocab::SAME_AS, "person_x")));
    }

    #[test]
    fn same_as_smushes_statements_across_aliases() {
        // The paper's disambiguation story at the OWL level: two ids for
        // one country share all facts.
        let mut g = Graph::new();
        g.insert(st("usa", vocab::SAME_AS, "united_states"));
        g.insert(st("usa", "capital", "washington"));
        g.insert(st("germany", "ally", "united_states"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("united_states", "capital", "washington")));
        assert!(inf.contains(&st("germany", "ally", "usa")));
        assert!(inf.contains(&st("united_states", vocab::SAME_AS, "usa")));
    }

    #[test]
    fn same_as_is_transitive() {
        let mut g = Graph::new();
        g.insert(st("a", vocab::SAME_AS, "b"));
        g.insert(st("b", vocab::SAME_AS, "c"));
        g.insert(st("a", "p", "v"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("a", vocab::SAME_AS, "c")));
        assert!(
            inf.contains(&st("c", "p", "v")),
            "facts reach transitive aliases"
        );
        // No reflexive sameAs noise.
        assert!(!inf.contains(&st("a", vocab::SAME_AS, "a")));
    }

    #[test]
    fn combined_with_rdfs_rules() {
        let mut g = Graph::new();
        g.insert(st("hasCapital", vocab::INVERSE_OF, "capitalOf"));
        g.insert(st("capitalOf", vocab::DOMAIN, "City"));
        g.insert(st("germany", "hasCapital", "berlin"));
        let inf = OwlLiteReasoner::new().infer(&g);
        // inverseOf gives (berlin capitalOf germany); rdfs2 then types
        // berlin as a City — an entailment neither subset finds alone.
        assert!(inf.contains(&st("berlin", "capitalOf", "germany")));
        assert!(inf.contains(&st("berlin", vocab::TYPE, "City")));
    }

    #[test]
    fn terminates_on_cycles_and_empty_graph() {
        assert!(OwlLiteReasoner::new().infer(&Graph::new()).is_empty());
        let mut g = Graph::new();
        g.insert(st("p", vocab::TYPE, vocab::SYMMETRIC_PROPERTY));
        g.insert(st("p", vocab::TYPE, vocab::TRANSITIVE_PROPERTY));
        g.insert(st("a", "p", "b"));
        g.insert(st("b", "p", "a"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        // Symmetric + transitive on a 2-cycle: at most the loops a-p-a,
        // b-p-b beyond the stated edges.
        assert!(inf.len() <= 2, "{inf:?}");
    }
}
