//! An incomplete OWL/Lite reasoner — the third Jena reasoner the paper
//! lists (§3): "Reasoners which support an incomplete implementation of
//! the OWL/Lite subset of the OWL/Full language."
//!
//! Supported entailments (run to fixpoint together with the RDFS rules):
//!
//! * `owl:inverseOf` — `(p owl:inverseOf q), (s p o) ⇒ (o q s)` and the
//!   mirror direction (inverseOf is itself symmetric).
//! * `owl:SymmetricProperty` — `(s p o) ⇒ (o p s)`.
//! * `owl:TransitiveProperty` — transitive closure per such property.
//! * `owl:FunctionalProperty` — `(s p o₁), (s p o₂) ⇒ (o₁ owl:sameAs o₂)`.
//! * `owl:sameAs` — symmetric and transitive, and statements are copied
//!   across aliases in subject and object position (smushing).
//!
//! Like the RDFS rules, the delta joins run entirely on dictionary-encoded
//! id triples; terms are materialized only at the API boundary.

use crate::dict::IdTriple;
use crate::graph::Graph;
use crate::graph::TripleView;
use crate::reason::{rdfs_delta, semi_naive, VocabIds};

/// The OWL/Lite-subset reasoner.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{Graph, Statement, Term};
/// use cogsdk_rdf::owl::OwlLiteReasoner;
///
/// let mut g = Graph::new();
/// g.insert(Statement::new(
///     Term::iri("ex:hasParent"), Term::iri("owl:inverseOf"), Term::iri("ex:hasChild")));
/// g.insert(Statement::new(
///     Term::iri("ex:alice"), Term::iri("ex:hasParent"), Term::iri("ex:bob")));
///
/// let inferred = OwlLiteReasoner::new().infer(&g);
/// assert!(inferred.contains(&Statement::new(
///     Term::iri("ex:bob"), Term::iri("ex:hasChild"), Term::iri("ex:alice"))));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OwlLiteReasoner {
    /// Also run the RDFS subset (subclass/subproperty/domain/range), as
    /// Jena's OWL reasoners do. Defaults to true.
    pub include_rdfs: bool,
}

impl OwlLiteReasoner {
    /// Creates the reasoner with RDFS entailments included.
    pub fn new() -> OwlLiteReasoner {
        OwlLiteReasoner { include_rdfs: true }
    }

    /// Creates the reasoner with only the OWL rules (no RDFS).
    pub fn owl_only() -> OwlLiteReasoner {
        OwlLiteReasoner {
            include_rdfs: false,
        }
    }

    /// Runs to fixpoint; returns only the newly entailed statements
    /// (sharing the input's dictionary).
    ///
    /// Evaluated semi-naively: each round joins the OWL rules (and the
    /// RDFS subset when enabled) against the previous round's delta over a
    /// borrowed overlay — no `graph.clone()`, no nested full RDFS or
    /// transitive-closure recomputation per round.
    pub fn infer(&self, graph: &Graph) -> Graph {
        let include_rdfs = self.include_rdfs;
        let v = VocabIds::new(graph.dict());
        semi_naive(graph, &mut |view, delta| {
            let mut out = owl_delta(&v, view, delta);
            if include_rdfs {
                out.extend(rdfs_delta(&v, view, delta));
            }
            out
        })
    }
}

/// Delta form of the OWL/Lite subset. Each delta fact is joined both as a
/// schema declaration (firing over its existing use sites) and as a use
/// site (firing over the existing declarations). Reflexive `owl:sameAs`
/// candidates are filtered here, mirroring the batch reasoner.
pub(crate) fn owl_delta(v: &VocabIds, view: &dyn TripleView, delta: &[IdTriple]) -> Vec<IdTriple> {
    let mut out: Vec<IdTriple> = Vec::new();
    for &(s, p, o) in delta {
        // ---- Declaration side: the delta fact is OWL schema. ----
        if p == v.inverse_of {
            if s.is_iri() && o.is_iri() {
                // (p inverseOf q), (s p o) => (o q s) — and the mirror
                // direction, since inverseOf is itself symmetric.
                for (prop, inv) in [(s, o), (o, s)] {
                    for (use_s, _, use_o) in view.find_ids(None, Some(prop), None) {
                        if use_o.is_resource() {
                            out.push((use_o, inv, use_s));
                        }
                    }
                }
            }
        } else if p == v.type_p && s.is_iri() {
            if o == v.symmetric {
                for (use_s, use_p, use_o) in view.find_ids(None, Some(s), None) {
                    if use_o.is_resource() {
                        out.push((use_o, use_p, use_s));
                    }
                }
            } else if o == v.transitive {
                // One-step compositions over existing edges; the fixpoint
                // rounds complete the closure.
                for (e1_s, _, e1_o) in view.find_ids(None, Some(s), None) {
                    if !e1_o.is_resource() {
                        continue;
                    }
                    for (_, _, e2_o) in view.find_ids(Some(e1_o), Some(s), None) {
                        if e2_o.is_resource() && e2_o != e1_s {
                            out.push((e1_s, s, e2_o));
                        }
                    }
                }
            } else if o == v.functional {
                let uses = view.find_ids(None, Some(s), None);
                for &(a_s, _, a_o) in &uses {
                    for &(b_s, _, b_o) in &uses {
                        if a_s == b_s && a_o != b_o && a_o.is_resource() && b_o.is_resource() {
                            out.push((a_o, v.same_as, b_o));
                        }
                    }
                }
            }
        }
        if p == v.same_as && s.is_resource() && o.is_resource() && s != o {
            let (a, b) = (s, o);
            // Symmetry.
            out.push((b, v.same_as, a));
            // Transitivity, joining on both sides.
            for (_, _, next_o) in view.find_ids(Some(b), Some(v.same_as), None) {
                if next_o.is_resource() && next_o != a {
                    out.push((a, v.same_as, next_o));
                }
            }
            for (prev_s, _, _) in view.find_ids(None, Some(v.same_as), Some(a)) {
                if prev_s != b {
                    out.push((prev_s, v.same_as, b));
                }
            }
            // Smushing: copy the alias's existing statements across, both
            // positions.
            for (_, use_p, use_o) in view.find_ids(Some(a), None, None) {
                if use_p != v.same_as {
                    out.push((b, use_p, use_o));
                }
            }
            for (use_s, use_p, _) in view.find_ids(None, None, Some(a)) {
                if use_p != v.same_as {
                    out.push((use_s, use_p, b));
                }
            }
        }

        // ---- Use side: the delta fact is an ordinary statement; join the
        // existing declarations over its predicate. ----
        // inverseOf, both declaration directions.
        if o.is_resource() {
            for (_, _, inv) in view.find_ids(Some(p), Some(v.inverse_of), None) {
                if inv.is_iri() {
                    out.push((o, inv, s));
                }
            }
            for (inv, _, _) in view.find_ids(None, Some(v.inverse_of), Some(p)) {
                if inv.is_iri() {
                    out.push((o, inv, s));
                }
            }
        }
        // SymmetricProperty.
        if o.is_resource() && view.has_id((p, v.type_p, v.symmetric)) {
            out.push((o, p, s));
        }
        // TransitiveProperty: compose with neighbours on both sides.
        if o.is_resource() && view.has_id((p, v.type_p, v.transitive)) {
            for (_, _, next_o) in view.find_ids(Some(o), Some(p), None) {
                if next_o.is_resource() && next_o != s {
                    out.push((s, p, next_o));
                }
            }
            for (prev_s, _, _) in view.find_ids(None, Some(p), Some(s)) {
                if prev_s != o {
                    out.push((prev_s, p, o));
                }
            }
        }
        // FunctionalProperty: this use pairs with every sibling object.
        if o.is_resource() && view.has_id((p, v.type_p, v.functional)) {
            for (_, _, other_o) in view.find_ids(Some(s), Some(p), None) {
                if other_o != o && other_o.is_resource() {
                    out.push((o, v.same_as, other_o));
                    out.push((other_o, v.same_as, o));
                }
            }
        }
        // Smushing: a new fact about `s` (or with object `o`) reaches every
        // known alias of `s` (or `o`).
        if p != v.same_as {
            for (_, _, alias) in view.find_ids(Some(s), Some(v.same_as), None) {
                if alias.is_resource() {
                    out.push((alias, p, o));
                }
            }
            if o.is_resource() {
                for (_, _, alias) in view.find_ids(Some(o), Some(v.same_as), None) {
                    if alias.is_resource() {
                        out.push((s, p, alias));
                    }
                }
            }
        }
    }
    out.retain(|&(s, p, o)| !(p == v.same_as && s == o));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{vocab, Statement, Term};

    fn st(s: &str, p: &str, o: &str) -> Statement {
        Statement::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn inverse_of_entailments_both_directions() {
        let mut g = Graph::new();
        g.insert(st("hasParent", vocab::INVERSE_OF, "hasChild"));
        g.insert(st("alice", "hasParent", "bob"));
        g.insert(st("bob", "hasChild", "carol"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("bob", "hasChild", "alice")));
        assert!(
            inf.contains(&st("carol", "hasParent", "bob")),
            "mirror direction"
        );
    }

    #[test]
    fn symmetric_property() {
        let mut g = Graph::new();
        g.insert(st("marriedTo", vocab::TYPE, vocab::SYMMETRIC_PROPERTY));
        g.insert(st("alice", "marriedTo", "bob"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("bob", "marriedTo", "alice")));
        assert_eq!(inf.len(), 1);
    }

    #[test]
    fn transitive_property() {
        let mut g = Graph::new();
        g.insert(st("locatedIn", vocab::TYPE, vocab::TRANSITIVE_PROPERTY));
        g.insert(st("office", "locatedIn", "building"));
        g.insert(st("building", "locatedIn", "city"));
        g.insert(st("city", "locatedIn", "country"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("office", "locatedIn", "country")));
        assert_eq!(
            inf.match_pattern(None, Some(&Term::iri("locatedIn")), None)
                .len(),
            3
        );
    }

    #[test]
    fn functional_property_derives_same_as() {
        let mut g = Graph::new();
        g.insert(st(
            "hasBirthMother",
            vocab::TYPE,
            vocab::FUNCTIONAL_PROPERTY,
        ));
        g.insert(st("alice", "hasBirthMother", "person_x"));
        g.insert(st("alice", "hasBirthMother", "person_y"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("person_x", vocab::SAME_AS, "person_y")));
        assert!(inf.contains(&st("person_y", vocab::SAME_AS, "person_x")));
    }

    #[test]
    fn same_as_smushes_statements_across_aliases() {
        // The paper's disambiguation story at the OWL level: two ids for
        // one country share all facts.
        let mut g = Graph::new();
        g.insert(st("usa", vocab::SAME_AS, "united_states"));
        g.insert(st("usa", "capital", "washington"));
        g.insert(st("germany", "ally", "united_states"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("united_states", "capital", "washington")));
        assert!(inf.contains(&st("germany", "ally", "usa")));
        assert!(inf.contains(&st("united_states", vocab::SAME_AS, "usa")));
    }

    #[test]
    fn same_as_is_transitive() {
        let mut g = Graph::new();
        g.insert(st("a", vocab::SAME_AS, "b"));
        g.insert(st("b", vocab::SAME_AS, "c"));
        g.insert(st("a", "p", "v"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        assert!(inf.contains(&st("a", vocab::SAME_AS, "c")));
        assert!(
            inf.contains(&st("c", "p", "v")),
            "facts reach transitive aliases"
        );
        // No reflexive sameAs noise.
        assert!(!inf.contains(&st("a", vocab::SAME_AS, "a")));
    }

    #[test]
    fn combined_with_rdfs_rules() {
        let mut g = Graph::new();
        g.insert(st("hasCapital", vocab::INVERSE_OF, "capitalOf"));
        g.insert(st("capitalOf", vocab::DOMAIN, "City"));
        g.insert(st("germany", "hasCapital", "berlin"));
        let inf = OwlLiteReasoner::new().infer(&g);
        // inverseOf gives (berlin capitalOf germany); rdfs2 then types
        // berlin as a City — an entailment neither subset finds alone.
        assert!(inf.contains(&st("berlin", "capitalOf", "germany")));
        assert!(inf.contains(&st("berlin", vocab::TYPE, "City")));
    }

    #[test]
    fn terminates_on_cycles_and_empty_graph() {
        assert!(OwlLiteReasoner::new().infer(&Graph::new()).is_empty());
        let mut g = Graph::new();
        g.insert(st("p", vocab::TYPE, vocab::SYMMETRIC_PROPERTY));
        g.insert(st("p", vocab::TYPE, vocab::TRANSITIVE_PROPERTY));
        g.insert(st("a", "p", "b"));
        g.insert(st("b", "p", "a"));
        let inf = OwlLiteReasoner::owl_only().infer(&g);
        // Symmetric + transitive on a 2-cycle: at most the loops a-p-a,
        // b-p-b beyond the stated edges.
        assert!(inf.len() <= 2, "{inf:?}");
    }
}
