//! An RDF triple store with reasoning and a SPARQL-subset query engine.
//!
//! The paper's personalized knowledge base stores data as RDF statements in
//! Apache Jena and relies on four Jena capabilities it lists explicitly
//! (§3): a transitive reasoner, an RDF-Schema rule reasoner, a generic rule
//! reasoner "that supports user-defined rules … forward chaining, tabled
//! backward chaining", and a SPARQL query engine. This crate implements
//! that subset from scratch:
//!
//! * [`model`] — terms ([`Term`]), statements ([`Statement`]) and
//!   namespace/prefix handling.
//! * [`dict`] — dictionary encoding ([`TermDict`]): each distinct term is
//!   interned once to a `u32` id so the indexes and reasoners work on
//!   integers.
//! * [`graph`] — an indexed triple store ([`Graph`]) with dictionary-encoded
//!   SPO/POS/OSP indexes and pattern matching.
//! * [`reason`] + [`owl`] — the four reasoners (transitive, RDFS subset,
//!   generic rules, OWL/Lite subset).
//! * [`plan`] — cost-based BGP planning ([`BgpQuery`] → [`ExecPlan`]):
//!   selectivity from index cardinalities, greedy join ordering, merge and
//!   index nested-loop joins, `OPTIONAL`/`UNION`, paging, `explain()`.
//! * [`query`] — `SELECT … WHERE { … OPTIONAL … UNION … FILTER … }
//!   ORDER BY … OFFSET … LIMIT …`, compiled through the planner.
//! * [`wal`] + [`durable`] — write-ahead durability: checksummed log
//!   records and snapshots behind [`DurableStore`], with crash recovery
//!   that replays the log and re-derives the closure.
//!
//! # Examples
//!
//! ```
//! use cogsdk_rdf::{Graph, Statement, Term};
//!
//! let mut g = Graph::new();
//! g.insert(Statement::new(
//!     Term::iri("ex:java_hashmap"),
//!     Term::iri("ex:implements"),
//!     Term::iri("ex:java_map"),
//! ));
//! assert_eq!(g.len(), 1);
//! let hits = g.match_pattern(None, Some(&Term::iri("ex:implements")), None);
//! assert_eq!(hits.len(), 1);
//! ```

pub mod dict;
pub mod durable;
pub mod epoch;
pub mod graph;
pub mod incremental;
pub mod model;
pub mod owl;
pub mod plan;
pub mod query;
pub mod reason;
mod snapshot;
pub mod wal;
pub mod weighted;

pub use dict::{IdTriple, TermDict, TermId};
pub use durable::{DurableError, DurableOptions, DurableStore, RecoveryStats, WalStats};
pub use epoch::{EpochSnapshot, EpochStore};
pub use graph::{Graph, Overlay, QueryView, TripleView};
pub use incremental::{IncrementalMaterializer, MaterializerConfig};
pub use model::{Literal, Statement, Term};
pub use owl::OwlLiteReasoner;
pub use plan::{BgpQuery, ExecPlan, QueryStats};
pub use query::{Query, Solution};
pub use reason::{GenericRuleReasoner, RdfsReasoner, Rule, TransitiveReasoner};
pub use weighted::{WeightedGraph, WeightedReasoner};

use std::error::Error;
use std::fmt;

/// Error raised by parsing (rules, queries) or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RdfError {
    message: String,
}

impl RdfError {
    pub(crate) fn new(message: impl Into<String>) -> RdfError {
        RdfError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rdf error: {}", self.message)
    }
}

impl Error for RdfError {}
