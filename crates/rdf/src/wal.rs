//! Write-ahead log for the durable KB.
//!
//! Every mutation of a [`DurableStore`](crate::DurableStore) is appended
//! here *before* it is applied in memory. Records are length-prefixed
//! and CRC32-checksummed:
//!
//! ```text
//! frame   := len:u32le  crc32:u32le  payload[len]
//! payload := record tag (1 byte) + record body
//! ```
//!
//! Record kinds: dictionary entries (new interned terms, in sequence
//! order so replay reproduces identical ids), id-triple inserts and
//! removes, and ruleset enables (RDFS / OWL / transitive properties /
//! user rules — persisted structurally, not as source text). A batch of
//! records is written with one append and one fsync (group commit), and
//! the log rotates to a new segment (`wal-<n>.log`) past a size
//! threshold so snapshots can reclaim space segment-at-a-time.
//!
//! Replay walks segments in order and is strict about what it forgives:
//! a *torn tail* — a final frame cut short by a crash, or whose checksum
//! fails with nothing after it — is dropped and counted; any bad frame
//! *before* the end (a checksum mismatch mid-log, a short frame in a
//! non-final segment) is a hard [`DurableError::Corrupt`], because it
//! means durable data was damaged rather than an append interrupted.

use crate::dict::TermId;
use crate::model::{Literal, Term};
use crate::reason::{PatternTerm, Rule, TriplePattern};
use cogsdk_sim::fs::{FsError, Vfs};
use std::fmt;
use std::sync::Arc;

/// Errors from the durability subsystem (WAL, snapshots, recovery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The storage layer failed (includes injected faults).
    Io(FsError),
    /// Durable data is damaged: checksum mismatch mid-log, a malformed
    /// record behind a valid checksum, or an unreadable snapshot.
    Corrupt(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability i/o: {e}"),
            DurableError::Corrupt(msg) => write!(f, "durable state corrupt: {msg}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<FsError> for DurableError {
    fn from(e: FsError) -> DurableError {
        DurableError::Io(e)
    }
}

// ---------------------------------------------------------------- crc32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32` convention).
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------------- encoding

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_u32(buf, data.len() as u32);
    buf.extend_from_slice(data);
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Cursor over a decoded payload. Every accessor fails cleanly on
/// truncation; since payloads sit behind a verified checksum, a decode
/// failure is corruption (or a version mismatch), never a torn write.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DurableError> {
        if self.pos + n > self.buf.len() {
            return Err(DurableError::Corrupt(format!(
                "record truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DurableError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DurableError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DurableError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], DurableError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    pub(crate) fn str(&mut self) -> Result<String, DurableError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DurableError::Corrupt("record holds invalid utf-8".into()))
    }
}

const TERM_IRI: u8 = 0;
const TERM_BLANK: u8 = 1;
const TERM_LIT_STRING: u8 = 2;
const TERM_LIT_INTEGER: u8 = 3;
const TERM_LIT_DOUBLE: u8 = 4;
const TERM_LIT_BOOLEAN: u8 = 5;

pub(crate) fn put_term(buf: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            buf.push(TERM_IRI);
            put_str(buf, iri);
        }
        Term::Blank(label) => {
            buf.push(TERM_BLANK);
            put_str(buf, label);
        }
        Term::Literal(Literal::String(s)) => {
            buf.push(TERM_LIT_STRING);
            put_str(buf, s);
        }
        Term::Literal(Literal::Integer(i)) => {
            buf.push(TERM_LIT_INTEGER);
            put_u64(buf, *i as u64);
        }
        Term::Literal(Literal::Double(d)) => {
            buf.push(TERM_LIT_DOUBLE);
            put_u64(buf, d.to_bits());
        }
        Term::Literal(Literal::Boolean(b)) => {
            buf.push(TERM_LIT_BOOLEAN);
            buf.push(*b as u8);
        }
    }
}

pub(crate) fn read_term(r: &mut Reader<'_>) -> Result<Term, DurableError> {
    match r.u8()? {
        TERM_IRI => Ok(Term::Iri(r.str()?)),
        TERM_BLANK => Ok(Term::Blank(r.str()?)),
        TERM_LIT_STRING => Ok(Term::Literal(Literal::String(r.str()?))),
        TERM_LIT_INTEGER => Ok(Term::Literal(Literal::Integer(r.u64()? as i64))),
        TERM_LIT_DOUBLE => Ok(Term::Literal(Literal::Double(f64::from_bits(r.u64()?)))),
        TERM_LIT_BOOLEAN => Ok(Term::Literal(Literal::Boolean(r.u8()? != 0))),
        tag => Err(DurableError::Corrupt(format!("unknown term tag {tag}"))),
    }
}

fn put_pattern_term(buf: &mut Vec<u8>, pt: &PatternTerm) {
    match pt {
        PatternTerm::Term(t) => {
            buf.push(0);
            put_term(buf, t);
        }
        PatternTerm::Var(v) => {
            buf.push(1);
            put_str(buf, v);
        }
    }
}

fn read_pattern_term(r: &mut Reader<'_>) -> Result<PatternTerm, DurableError> {
    match r.u8()? {
        0 => Ok(PatternTerm::Term(read_term(r)?)),
        1 => Ok(PatternTerm::Var(r.str()?)),
        tag => Err(DurableError::Corrupt(format!("unknown pattern tag {tag}"))),
    }
}

fn put_pattern(buf: &mut Vec<u8>, p: &TriplePattern) {
    put_pattern_term(buf, &p.subject);
    put_pattern_term(buf, &p.predicate);
    put_pattern_term(buf, &p.object);
}

fn read_pattern(r: &mut Reader<'_>) -> Result<TriplePattern, DurableError> {
    Ok(TriplePattern {
        subject: read_pattern_term(r)?,
        predicate: read_pattern_term(r)?,
        object: read_pattern_term(r)?,
    })
}

pub(crate) fn put_rule(buf: &mut Vec<u8>, rule: &Rule) {
    put_u32(buf, rule.premises.len() as u32);
    for p in &rule.premises {
        put_pattern(buf, p);
    }
    put_u32(buf, rule.conclusions.len() as u32);
    for c in &rule.conclusions {
        put_pattern(buf, c);
    }
}

pub(crate) fn read_rule(r: &mut Reader<'_>) -> Result<Rule, DurableError> {
    let n = r.u32()? as usize;
    let mut premises = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        premises.push(read_pattern(r)?);
    }
    let n = r.u32()? as usize;
    let mut conclusions = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        conclusions.push(read_pattern(r)?);
    }
    Ok(Rule {
        premises,
        conclusions,
    })
}

// -------------------------------------------------------------- records

const REC_DICT_ENTRY: u8 = 1;
const REC_INSERT: u8 = 2;
const REC_REMOVE: u8 = 3;
const REC_ENABLE_RDFS: u8 = 4;
const REC_ENABLE_OWL: u8 = 5;
const REC_ADD_TRANSITIVE: u8 = 6;
const REC_ADD_RULES: u8 = 7;
const REC_CONFIDENCE: u8 = 8;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// A newly interned term; `seq` is its dictionary sequence number.
    /// Replayed in order, these reproduce identical term ids.
    DictEntry { seq: u32, term: Term },
    /// A base triple insert, by raw term ids.
    Insert(u32, u32, u32),
    /// A base triple removal, by raw term ids.
    Remove(u32, u32, u32),
    /// RDFS entailment enabled as a standing ruleset.
    EnableRdfs,
    /// OWL/Lite entailment enabled (implies RDFS).
    EnableOwl,
    /// A property registered as transitive.
    AddTransitive(Term),
    /// User rules added to the standing generic ruleset.
    AddRules(Vec<Rule>),
    /// A statement's confidence, by raw term ids and IEEE-754 bits.
    /// Values at or above 1.0 clear the entry (1.0 is the default every
    /// unlisted statement already has). Later records win on replay.
    Confidence(u32, u32, u32, u64),
}

impl WalRecord {
    pub(crate) fn insert(t: (TermId, TermId, TermId)) -> WalRecord {
        WalRecord::Insert(t.0.raw(), t.1.raw(), t.2.raw())
    }

    pub(crate) fn remove(t: (TermId, TermId, TermId)) -> WalRecord {
        WalRecord::Remove(t.0.raw(), t.1.raw(), t.2.raw())
    }

    pub(crate) fn confidence(t: (TermId, TermId, TermId), value: f64) -> WalRecord {
        WalRecord::Confidence(t.0.raw(), t.1.raw(), t.2.raw(), value.to_bits())
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::DictEntry { seq, term } => {
                buf.push(REC_DICT_ENTRY);
                put_u32(buf, *seq);
                put_term(buf, term);
            }
            WalRecord::Insert(s, p, o) => {
                buf.push(REC_INSERT);
                put_u32(buf, *s);
                put_u32(buf, *p);
                put_u32(buf, *o);
            }
            WalRecord::Remove(s, p, o) => {
                buf.push(REC_REMOVE);
                put_u32(buf, *s);
                put_u32(buf, *p);
                put_u32(buf, *o);
            }
            WalRecord::EnableRdfs => buf.push(REC_ENABLE_RDFS),
            WalRecord::EnableOwl => buf.push(REC_ENABLE_OWL),
            WalRecord::AddTransitive(term) => {
                buf.push(REC_ADD_TRANSITIVE);
                put_term(buf, term);
            }
            WalRecord::AddRules(rules) => {
                buf.push(REC_ADD_RULES);
                put_u32(buf, rules.len() as u32);
                for rule in rules {
                    put_rule(buf, rule);
                }
            }
            WalRecord::Confidence(s, p, o, bits) => {
                buf.push(REC_CONFIDENCE);
                put_u32(buf, *s);
                put_u32(buf, *p);
                put_u32(buf, *o);
                put_u64(buf, *bits);
            }
        }
    }

    fn decode(payload: &[u8]) -> Result<WalRecord, DurableError> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            REC_DICT_ENTRY => WalRecord::DictEntry {
                seq: r.u32()?,
                term: read_term(&mut r)?,
            },
            REC_INSERT => WalRecord::Insert(r.u32()?, r.u32()?, r.u32()?),
            REC_REMOVE => WalRecord::Remove(r.u32()?, r.u32()?, r.u32()?),
            REC_ENABLE_RDFS => WalRecord::EnableRdfs,
            REC_ENABLE_OWL => WalRecord::EnableOwl,
            REC_ADD_TRANSITIVE => WalRecord::AddTransitive(read_term(&mut r)?),
            REC_ADD_RULES => {
                let n = r.u32()? as usize;
                let mut rules = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rules.push(read_rule(&mut r)?);
                }
                WalRecord::AddRules(rules)
            }
            REC_CONFIDENCE => WalRecord::Confidence(r.u32()?, r.u32()?, r.u32()?, r.u64()?),
            tag => return Err(DurableError::Corrupt(format!("unknown record tag {tag}"))),
        };
        if !r.is_empty() {
            return Err(DurableError::Corrupt(
                "trailing bytes after record body".into(),
            ));
        }
        Ok(record)
    }
}

// ------------------------------------------------------------------ wal

/// Running counters for WAL activity, exported as `sdk_wal_*` metrics
/// by the KB layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Group-commit batches appended.
    pub appends: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// Payload + framing bytes written.
    pub bytes: u64,
    /// Logical records appended.
    pub records: u64,
    /// Segment rotations performed.
    pub rotations: u64,
}

/// Everything replay recovered from disk.
#[derive(Debug)]
pub(crate) struct Replay {
    pub records: Vec<WalRecord>,
    /// Torn tail frames dropped (0 or 1 per recovery).
    pub torn_tails: u64,
}

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";
/// Upper bound on a single record payload; a length prefix beyond this
/// is treated as corruption rather than an allocation request.
const MAX_RECORD_LEN: usize = 1 << 28;

fn segment_name(index: u64) -> String {
    format!("{SEGMENT_PREFIX}{index:08}{SEGMENT_SUFFIX}")
}

/// WAL segment indexes present on `fs`, sorted ascending.
fn segment_indexes(fs: &dyn Vfs) -> Result<Vec<u64>, DurableError> {
    let mut indexes = Vec::new();
    for name in fs.list()? {
        if let Some(stem) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        {
            if let Ok(index) = stem.parse::<u64>() {
                indexes.push(index);
            }
        }
    }
    indexes.sort_unstable();
    Ok(indexes)
}

/// The append half of the log. Created by [`Wal::open`], which positions
/// the writer after any existing segments (replay is separate; see
/// [`replay`]).
pub(crate) struct Wal {
    fs: Arc<dyn Vfs>,
    segment: u64,
    segment_bytes: usize,
    segment_max: usize,
    stats: WalStats,
}

impl Wal {
    /// Opens the log for appending, continuing the newest existing
    /// segment or starting `wal-00000000.log`.
    pub(crate) fn open(fs: Arc<dyn Vfs>, segment_max: usize) -> Result<Wal, DurableError> {
        let indexes = segment_indexes(fs.as_ref())?;
        let segment = indexes.last().copied().unwrap_or(0);
        let segment_bytes = match fs.size(&segment_name(segment)) {
            Ok(n) => n,
            Err(FsError::NotFound(_)) => 0,
            Err(e) => return Err(e.into()),
        };
        Ok(Wal {
            fs,
            segment,
            segment_bytes,
            segment_max,
            stats: WalStats::default(),
        })
    }

    pub(crate) fn stats(&self) -> WalStats {
        self.stats
    }

    /// Appends a batch of records as one group commit: all frames in a
    /// single append, made durable by a single fsync. On any error
    /// nothing is considered durable and the caller must not apply the
    /// batch in memory.
    pub(crate) fn append_batch(&mut self, records: &[WalRecord]) -> Result<(), DurableError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        let mut payload = Vec::new();
        for record in records {
            payload.clear();
            record.encode(&mut payload);
            put_u32(&mut buf, payload.len() as u32);
            put_u32(&mut buf, crc32(&payload));
            buf.extend_from_slice(&payload);
        }
        if self.segment_bytes > 0 && self.segment_bytes + buf.len() > self.segment_max {
            self.segment += 1;
            self.segment_bytes = 0;
            self.stats.rotations += 1;
        }
        let name = segment_name(self.segment);
        self.fs.append(&name, &buf)?;
        self.fs.fsync(&name)?;
        self.segment_bytes += buf.len();
        self.stats.appends += 1;
        self.stats.fsyncs += 1;
        self.stats.bytes += buf.len() as u64;
        self.stats.records += records.len() as u64;
        Ok(())
    }

    /// Deletes every segment (after a successful snapshot has made the
    /// logged state redundant) and restarts at segment 0.
    pub(crate) fn reset(&mut self) -> Result<(), DurableError> {
        for index in segment_indexes(self.fs.as_ref())? {
            self.fs.delete(&segment_name(index))?;
        }
        self.segment = 0;
        self.segment_bytes = 0;
        Ok(())
    }
}

/// Replays all WAL segments on `fs` in order.
///
/// Tolerates exactly one torn frame at the very end of the final
/// segment (counted in [`Replay::torn_tails`]); every other framing or
/// checksum failure is [`DurableError::Corrupt`].
pub(crate) fn replay(fs: &dyn Vfs) -> Result<Replay, DurableError> {
    let indexes = segment_indexes(fs)?;
    let mut records = Vec::new();
    let mut torn_tails = 0u64;
    for (i, &index) in indexes.iter().enumerate() {
        let last_segment = i + 1 == indexes.len();
        let name = segment_name(index);
        let data = fs.read(&name)?;
        let mut pos = 0usize;
        while pos < data.len() {
            // Frame header.
            if pos + 8 > data.len() {
                if last_segment {
                    torn_tails += 1;
                    break;
                }
                return Err(DurableError::Corrupt(format!(
                    "{name}: truncated frame header in non-final segment"
                )));
            }
            let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]])
                as usize;
            let crc =
                u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
            if len > MAX_RECORD_LEN {
                return Err(DurableError::Corrupt(format!(
                    "{name}: implausible record length {len} at offset {pos}"
                )));
            }
            let body_start = pos + 8;
            if body_start + len > data.len() {
                // Payload cut short: necessarily the end of the file.
                if last_segment {
                    torn_tails += 1;
                    break;
                }
                return Err(DurableError::Corrupt(format!(
                    "{name}: truncated record payload in non-final segment"
                )));
            }
            let payload = &data[body_start..body_start + len];
            if crc32(payload) != crc {
                let is_final_frame = body_start + len == data.len();
                if last_segment && is_final_frame {
                    // A partially-persisted final frame; drop it.
                    torn_tails += 1;
                    break;
                }
                return Err(DurableError::Corrupt(format!(
                    "{name}: checksum mismatch at offset {pos} with valid data after it"
                )));
            }
            records.push(WalRecord::decode(payload)?);
            pos = body_start + len;
        }
    }
    Ok(Replay {
        records,
        torn_tails,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::fs::SimFs;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::DictEntry {
                seq: 0,
                term: Term::iri("ex:a"),
            },
            WalRecord::DictEntry {
                seq: 1,
                term: Term::double(-2.5),
            },
            WalRecord::Insert(0, 4, 8),
            WalRecord::Remove(0, 4, 8),
            WalRecord::EnableRdfs,
            WalRecord::EnableOwl,
            WalRecord::AddTransitive(Term::iri("ex:ancestor")),
            WalRecord::AddRules(vec![
                Rule::parse("[(?a ex:parent ?b) -> (?b ex:child ?a)]").unwrap()
            ]),
            WalRecord::Confidence(0, 4, 8, 0.85f64.to_bits()),
        ]
    }

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_frames() {
        let fs = Arc::new(SimFs::new(1));
        let mut wal = Wal::open(fs.clone(), 1 << 20).unwrap();
        let records = sample_records();
        wal.append_batch(&records).unwrap();
        let out = replay(fs.as_ref()).unwrap();
        assert_eq!(out.records, records);
        assert_eq!(out.torn_tails, 0);
        assert_eq!(wal.stats().records, records.len() as u64);
        assert_eq!(wal.stats().appends, 1);
        assert_eq!(wal.stats().fsyncs, 1);
    }

    #[test]
    fn group_commit_is_one_append_one_fsync() {
        let fs = Arc::new(SimFs::new(2));
        let mut wal = Wal::open(fs.clone(), 1 << 20).unwrap();
        let before = fs.op_count();
        wal.append_batch(&sample_records()).unwrap();
        assert_eq!(fs.op_count() - before, 2, "one append + one fsync");
    }

    #[test]
    fn torn_tail_is_dropped_and_counted() {
        let fs = Arc::new(SimFs::new(3));
        let mut wal = Wal::open(fs.clone(), 1 << 20).unwrap();
        wal.append_batch(&[WalRecord::Insert(0, 4, 8)]).unwrap();
        wal.append_batch(&[WalRecord::Insert(12, 4, 8)]).unwrap();
        // Chop bytes off the final frame.
        let name = segment_name(0);
        let data = fs.read(&name).unwrap();
        fs.write(&name, &data[..data.len() - 3]).unwrap();
        let out = replay(fs.as_ref()).unwrap();
        assert_eq!(out.records, vec![WalRecord::Insert(0, 4, 8)]);
        assert_eq!(out.torn_tails, 1);
    }

    #[test]
    fn mid_log_bit_flip_is_a_hard_error() {
        let fs = Arc::new(SimFs::new(4));
        let mut wal = Wal::open(fs.clone(), 1 << 20).unwrap();
        wal.append_batch(&[WalRecord::Insert(0, 4, 8)]).unwrap();
        wal.append_batch(&[WalRecord::Insert(12, 4, 8)]).unwrap();
        // Flip a payload bit of the *first* record: corruption, not a torn
        // append, because valid data follows it.
        fs.flip_bit(&segment_name(0), 9, 0);
        let err = replay(fs.as_ref()).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn short_frame_in_non_final_segment_is_a_hard_error() {
        let fs = Arc::new(SimFs::new(5));
        let mut wal = Wal::open(fs.clone(), 32).unwrap();
        for s in 0..8u32 {
            wal.append_batch(&[WalRecord::Insert(s * 4, 4, 8)]).unwrap();
        }
        assert!(wal.stats().rotations > 0, "log rotated");
        let first = segment_name(0);
        let data = fs.read(&first).unwrap();
        fs.write(&first, &data[..data.len() - 2]).unwrap();
        let err = replay(fs.as_ref()).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn rotation_splits_into_multiple_segments_replayed_in_order() {
        let fs = Arc::new(SimFs::new(6));
        let mut wal = Wal::open(fs.clone(), 48).unwrap();
        let records: Vec<WalRecord> = (0..10u32).map(|s| WalRecord::Insert(s * 4, 4, 8)).collect();
        for r in &records {
            wal.append_batch(std::slice::from_ref(r)).unwrap();
        }
        let segments = segment_indexes(fs.as_ref()).unwrap();
        assert!(segments.len() > 1, "got {segments:?}");
        let out = replay(fs.as_ref()).unwrap();
        assert_eq!(out.records, records);
        // Reset removes every segment and restarts at zero.
        wal.reset().unwrap();
        assert!(segment_indexes(fs.as_ref()).unwrap().is_empty());
        wal.append_batch(&records[..1]).unwrap();
        assert_eq!(segment_indexes(fs.as_ref()).unwrap(), vec![0]);
    }

    #[test]
    fn reopen_continues_the_newest_segment() {
        let fs = Arc::new(SimFs::new(7));
        let mut wal = Wal::open(fs.clone(), 1 << 20).unwrap();
        wal.append_batch(&[WalRecord::EnableRdfs]).unwrap();
        drop(wal);
        let mut wal = Wal::open(fs.clone(), 1 << 20).unwrap();
        wal.append_batch(&[WalRecord::EnableOwl]).unwrap();
        let out = replay(fs.as_ref()).unwrap();
        assert_eq!(
            out.records,
            vec![WalRecord::EnableRdfs, WalRecord::EnableOwl]
        );
    }
}
