//! A SPARQL-subset query engine.
//!
//! §3: "Jena includes a SPARQL query engine which the personalized
//! knowledge base uses to query data sources such as DBpedia." Supported
//! grammar (enough for every query the knowledge base issues):
//!
//! ```text
//! SELECT ?x ?y WHERE {
//!   ?x <ex:p> ?y .
//!   ?y <ex:q> "literal" .
//!   OPTIONAL { ?x <ex:r> ?z }
//!   { ?x <ex:a> ?w } UNION { ?x <ex:b> ?w }
//!   FILTER (?y > 10)
//! } ORDER BY ?x OFFSET 5 LIMIT 20
//! ```
//!
//! Terms: `?var`, `<iri>`, `"string"`, integers, doubles, `true`/`false`.
//! Filters: `>`, `>=`, `<`, `<=`, `=`, `!=` between a variable and a
//! constant (or two variables).
//!
//! Queries compile through the cost-based planner in [`crate::plan`]:
//! patterns are join-reordered by selectivity and executed with merge or
//! index nested-loop joins (see [`Query::explain`] for the chosen plan).

use crate::graph::QueryView;
use crate::model::{Literal, Term};
use crate::plan::{BgpQuery, QueryStats};
use crate::reason::{PatternTerm, TriplePattern};
use crate::RdfError;
use std::collections::HashMap;

/// One result row: variable name → bound term.
pub type Solution = HashMap<String, Term>;

/// A comparison operator in a FILTER.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// One side of a filter comparison.
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Var(String),
    Const(Term),
}

#[derive(Debug, Clone, PartialEq)]
struct Filter {
    left: Operand,
    op: CmpOp,
    right: Operand,
}

impl Filter {
    fn eval(&self, solution: &Solution) -> bool {
        let resolve = |operand: &Operand| -> Option<Term> {
            match operand {
                Operand::Var(v) => solution.get(v).cloned(),
                Operand::Const(t) => Some(t.clone()),
            }
        };
        let (Some(l), Some(r)) = (resolve(&self.left), resolve(&self.right)) else {
            return false;
        };
        match self.op {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            op => {
                // Ordered comparison: numeric if both numeric, else string
                // order over display forms.
                let ord = match (
                    l.as_literal().and_then(Literal::as_f64),
                    r.as_literal().and_then(Literal::as_f64),
                ) {
                    (Some(a), Some(b)) => a.partial_cmp(&b),
                    _ => Some(l.to_string().cmp(&r.to_string())),
                };
                let Some(ord) = ord else { return false };
                matches!(
                    (op, ord),
                    (CmpOp::Lt, std::cmp::Ordering::Less)
                        | (
                            CmpOp::Le,
                            std::cmp::Ordering::Less | std::cmp::Ordering::Equal
                        )
                        | (CmpOp::Gt, std::cmp::Ordering::Greater)
                        | (
                            CmpOp::Ge,
                            std::cmp::Ordering::Greater | std::cmp::Ordering::Equal
                        )
                )
            }
        }
    }
}

/// A parsed query.
///
/// # Examples
///
/// ```
/// use cogsdk_rdf::{Graph, Query, Statement, Term};
///
/// let mut g = Graph::new();
/// g.insert(Statement::new(Term::iri("ex:us"), Term::iri("ex:gdp"), Term::double(21000.0)));
/// g.insert(Statement::new(Term::iri("ex:de"), Term::iri("ex:gdp"), Term::double(4200.0)));
///
/// let q = Query::parse(
///     "SELECT ?c WHERE { ?c <ex:gdp> ?g . FILTER (?g > 10000) }").unwrap();
/// let rows = q.execute(&g);
/// assert_eq!(rows.len(), 1);
/// assert_eq!(rows[0]["c"], Term::iri("ex:us"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    select: Vec<String>,
    patterns: Vec<TriplePattern>,
    optionals: Vec<Vec<TriplePattern>>,
    unions: Vec<Vec<Vec<TriplePattern>>>,
    filters: Vec<Filter>,
    order_by: Option<String>,
    offset: usize,
    limit: Option<usize>,
}

impl Query {
    /// Parses the SPARQL subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`RdfError`] with a description of the first syntax
    /// violation.
    pub fn parse(text: &str) -> Result<Query, RdfError> {
        let mut tokens = tokenize(text)?;
        expect_keyword(&mut tokens, "SELECT")?;
        let mut select = Vec::new();
        while let Some(Token::Var(_)) = tokens.first() {
            let Some(Token::Var(v)) = tokens.drain(..1).next() else {
                unreachable!()
            };
            select.push(v);
        }
        if select.is_empty() {
            // SELECT * form.
            if matches!(tokens.first(), Some(Token::Word(w)) if w == "*") {
                tokens.remove(0);
            } else {
                return Err(RdfError::new("SELECT needs at least one ?var or *"));
            }
        }
        expect_keyword(&mut tokens, "WHERE")?;
        expect_token(&mut tokens, &Token::OpenBrace)?;
        let mut patterns = Vec::new();
        let mut optionals = Vec::new();
        let mut unions = Vec::new();
        let mut filters = Vec::new();
        loop {
            match tokens.first() {
                Some(Token::CloseBrace) => {
                    tokens.remove(0);
                    break;
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    tokens.remove(0);
                    filters.push(parse_filter(&mut tokens)?);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    tokens.remove(0);
                    optionals.push(parse_group(&mut tokens)?);
                }
                Some(Token::OpenBrace) => {
                    let mut arms = vec![parse_group(&mut tokens)?];
                    while matches!(
                        tokens.first(),
                        Some(Token::Word(w)) if w.eq_ignore_ascii_case("UNION")
                    ) {
                        tokens.remove(0);
                        arms.push(parse_group(&mut tokens)?);
                    }
                    if arms.len() < 2 {
                        return Err(RdfError::new(
                            "a braced group inside WHERE must be part of a UNION",
                        ));
                    }
                    unions.push(arms);
                }
                Some(_) => {
                    patterns.push(parse_triple(&mut tokens)?);
                }
                None => return Err(RdfError::new("unterminated WHERE block")),
            }
        }
        let mut order_by = None;
        let mut offset = 0usize;
        let mut limit = None;
        while let Some(tok) = tokens.first() {
            match tok {
                Token::Word(w) if w.eq_ignore_ascii_case("ORDER") => {
                    tokens.remove(0);
                    expect_keyword(&mut tokens, "BY")?;
                    match (!tokens.is_empty()).then(|| tokens.remove(0)) {
                        Some(Token::Var(v)) => order_by = Some(v),
                        _ => return Err(RdfError::new("ORDER BY needs a ?var")),
                    }
                }
                Token::Word(w) if w.eq_ignore_ascii_case("LIMIT") => {
                    tokens.remove(0);
                    match (!tokens.is_empty()).then(|| tokens.remove(0)) {
                        Some(Token::Word(n)) => {
                            limit = Some(n.parse().map_err(|_| {
                                RdfError::new("LIMIT needs a non-negative integer")
                            })?);
                        }
                        _ => return Err(RdfError::new("LIMIT needs a number")),
                    }
                }
                Token::Word(w) if w.eq_ignore_ascii_case("OFFSET") => {
                    tokens.remove(0);
                    match (!tokens.is_empty()).then(|| tokens.remove(0)) {
                        Some(Token::Word(n)) => {
                            offset = n.parse().map_err(|_| {
                                RdfError::new("OFFSET needs a non-negative integer")
                            })?;
                        }
                        _ => return Err(RdfError::new("OFFSET needs a number")),
                    }
                }
                other => {
                    return Err(RdfError::new(format!(
                        "unexpected trailing token {other:?}"
                    )))
                }
            }
        }
        if patterns.is_empty() && unions.is_empty() && optionals.is_empty() {
            return Err(RdfError::new("WHERE needs at least one triple pattern"));
        }
        Ok(Query {
            select,
            patterns,
            optionals,
            unions,
            filters,
            order_by,
            offset,
            limit,
        })
    }

    /// The selected variable names (empty = all).
    pub fn selected(&self) -> &[String] {
        &self.select
    }

    /// Executes the query against any [`QueryView`] — the live
    /// [`Graph`](crate::Graph) or a pinned
    /// [`EpochSnapshot`](crate::EpochSnapshot).
    ///
    /// The pattern block compiles through the cost-based planner
    /// ([`BgpQuery::plan`]): join order is chosen by selectivity, joins run
    /// as merge or index nested-loop operators on id triples, and terms
    /// are materialized only for the surviving rows. A constant the view
    /// never interned yields zero rows for a *required* pattern, but is
    /// local to its arm inside `OPTIONAL`/`UNION`. Filters, ordering, the
    /// offset/limit slice and projection then apply in that order.
    pub fn execute<V: QueryView>(&self, graph: &V) -> Vec<Solution> {
        self.execute_with_stats(graph).0
    }

    /// Like [`execute`](Self::execute), also returning plan/join counters
    /// for metrics ([`QueryStats::rows`] reflects the final row count).
    pub fn execute_with_stats<V: QueryView>(&self, graph: &V) -> (Vec<Solution>, QueryStats) {
        let plan = self.to_bgp().plan(graph);
        let (mut bindings, mut stats) = plan.execute_with_stats(graph);
        bindings.retain(|b| self.filters.iter().all(|f| f.eval(b)));
        if let Some(var) = &self.order_by {
            bindings.sort_by(|a, b| match (a.get(var), b.get(var)) {
                (Some(x), Some(y)) => x.cmp(y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            });
        }
        if self.offset > 0 {
            bindings.drain(..self.offset.min(bindings.len()));
        }
        if let Some(limit) = self.limit {
            bindings.truncate(limit);
        }
        let bindings = if self.select.is_empty() {
            bindings
        } else {
            bindings
                .into_iter()
                .map(|b| {
                    self.select
                        .iter()
                        .filter_map(|v| b.get(v).map(|t| (v.clone(), t.clone())))
                        .collect()
                })
                .collect()
        };
        stats.rows = bindings.len();
        (bindings, stats)
    }

    /// Renders the plan the query would run with against `graph` (see
    /// [`crate::plan::ExecPlan::explain`]).
    pub fn explain<V: QueryView>(&self, graph: &V) -> String {
        self.to_bgp().plan(graph).explain().to_string()
    }

    /// Lowers the textual query to the planner's builder. Filters,
    /// ordering, slice and projection stay at this layer: filters need
    /// every variable materialized, and SPARQL applies the slice after
    /// `ORDER BY`.
    fn to_bgp(&self) -> BgpQuery {
        let mut q = BgpQuery::new();
        for p in &self.patterns {
            q = q.pattern(p.clone());
        }
        for arms in &self.unions {
            q = q.union(arms.clone());
        }
        for group in &self.optionals {
            q = q.optional(group.clone());
        }
        q
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Var(String),
    Iri(String),
    Str(String),
    Word(String),
    OpenBrace,
    CloseBrace,
    OpenParen,
    CloseParen,
    Dot,
    Op(String),
}

fn tokenize(text: &str) -> Result<Vec<Token>, RdfError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' => {
                chars.next();
                out.push(Token::OpenBrace);
            }
            '}' => {
                chars.next();
                out.push(Token::CloseBrace);
            }
            '(' => {
                chars.next();
                out.push(Token::OpenParen);
            }
            ')' => {
                chars.next();
                out.push(Token::CloseParen);
            }
            '.' => {
                chars.next();
                out.push(Token::Dot);
            }
            '?' => {
                chars.next();
                let mut v = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        v.push(ch);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if v.is_empty() {
                    return Err(RdfError::new("empty variable name"));
                }
                out.push(Token::Var(v));
            }
            '<' => {
                chars.next();
                let mut iri = String::new();
                loop {
                    match chars.next() {
                        Some('>') => break,
                        Some(ch) => iri.push(ch),
                        None => return Err(RdfError::new("unterminated IRI")),
                    }
                }
                out.push(Token::Iri(iri));
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(RdfError::new("unterminated string")),
                    }
                }
                out.push(Token::Str(s));
            }
            '>' | '=' | '!' => {
                chars.next();
                let mut op = c.to_string();
                if chars.peek() == Some(&'=') {
                    op.push('=');
                    chars.next();
                }
                out.push(Token::Op(op));
            }
            _ => {
                let mut w = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace()
                        || matches!(
                            ch,
                            '{' | '}' | '(' | ')' | '?' | '<' | '"' | '>' | '=' | '!'
                        )
                        || (ch == '.' && !w.chars().next().is_some_and(|f| f.is_ascii_digit()))
                    {
                        break;
                    }
                    w.push(ch);
                    chars.next();
                }
                if w.is_empty() {
                    // `<` handled above; a bare `.` etc. Consume defensively.
                    return Err(RdfError::new(format!("unexpected character '{c}'")));
                }
                out.push(Token::Word(w));
            }
        }
    }
    // `<` starts IRIs, so the less-than operator is written `&lt;`? No:
    // FILTER uses `<` too. Patch: inside parens a lone `<` token parses as
    // the operator — the tokenizer above turned `<x` into an IRI, so
    // filters must place spaces: `FILTER (?g < 10)`. `< 10` became
    // Iri("10")? No: `< 10` reads chars until '>' → unterminated. We
    // therefore pre-handle this case in parse_filter via Op("<").
    Ok(out)
}

fn expect_keyword(tokens: &mut Vec<Token>, kw: &str) -> Result<(), RdfError> {
    match tokens.first() {
        Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw) => {
            tokens.remove(0);
            Ok(())
        }
        other => Err(RdfError::new(format!("expected {kw}, found {other:?}"))),
    }
}

fn expect_token(tokens: &mut Vec<Token>, expected: &Token) -> Result<(), RdfError> {
    match tokens.first() {
        Some(t) if t == expected => {
            tokens.remove(0);
            Ok(())
        }
        other => Err(RdfError::new(format!(
            "expected {expected:?}, found {other:?}"
        ))),
    }
}

fn parse_term(tokens: &mut Vec<Token>) -> Result<PatternTerm, RdfError> {
    if tokens.is_empty() {
        return Err(RdfError::new("expected term, found end of input"));
    }
    match Some(tokens.remove(0)) {
        Some(Token::Var(v)) => Ok(PatternTerm::Var(v)),
        Some(Token::Iri(iri)) => Ok(PatternTerm::Term(Term::iri(iri))),
        Some(Token::Str(s)) => Ok(PatternTerm::Term(Term::string(s))),
        Some(Token::Word(w)) => {
            if let Ok(i) = w.parse::<i64>() {
                Ok(PatternTerm::Term(Term::integer(i)))
            } else if let Ok(f) = w.parse::<f64>() {
                Ok(PatternTerm::Term(Term::double(f)))
            } else if w == "true" || w == "false" {
                Ok(PatternTerm::Term(Term::boolean(w == "true")))
            } else {
                Ok(PatternTerm::Term(Term::iri(w)))
            }
        }
        other => Err(RdfError::new(format!("expected term, found {other:?}"))),
    }
}

fn parse_triple(tokens: &mut Vec<Token>) -> Result<TriplePattern, RdfError> {
    let subject = parse_term(tokens)?;
    let predicate = parse_term(tokens)?;
    let object = parse_term(tokens)?;
    // Optional trailing dot.
    if matches!(tokens.first(), Some(Token::Dot)) {
        tokens.remove(0);
    }
    Ok(TriplePattern {
        subject,
        predicate,
        object,
    })
}

/// Parses a braced pattern group `{ ?a <p> ?b . … }` — the body of an
/// `OPTIONAL` or one `UNION` arm. Groups hold plain triple patterns only
/// (no nested filters or blocks).
fn parse_group(tokens: &mut Vec<Token>) -> Result<Vec<TriplePattern>, RdfError> {
    expect_token(tokens, &Token::OpenBrace)?;
    let mut group = Vec::new();
    loop {
        match tokens.first() {
            Some(Token::CloseBrace) => {
                tokens.remove(0);
                break;
            }
            Some(_) => group.push(parse_triple(tokens)?),
            None => return Err(RdfError::new("unterminated pattern group")),
        }
    }
    if group.is_empty() {
        return Err(RdfError::new("empty pattern group"));
    }
    Ok(group)
}

fn parse_filter(tokens: &mut Vec<Token>) -> Result<Filter, RdfError> {
    expect_token(tokens, &Token::OpenParen)?;
    let left = parse_operand(tokens)?;
    if tokens.is_empty() {
        return Err(RdfError::new("expected operator"));
    }
    let tok = tokens.remove(0);
    let op = match Some(tok) {
        Some(Token::Op(op)) => match op.as_str() {
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "=" | "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            other => return Err(RdfError::new(format!("unknown operator {other}"))),
        },
        // `< 10` tokenizes as Iri(" 10")-ish; we catch the common
        // spellings here.
        Some(Token::Iri(rest)) => {
            // `<` immediately followed by the right operand without a
            // closing '>': cannot happen (tokenizer errors). But `< x >`
            // forms Iri(" x "). Treat a whitespace-framed IRI as Lt.
            let trimmed = rest.trim();
            if let Some(stripped) = trimmed.strip_prefix('=') {
                let rhs = stripped.trim().to_string();
                tokens.insert(0, Token::Word(rhs));
                CmpOp::Le
            } else {
                tokens.insert(0, Token::Word(trimmed.to_string()));
                CmpOp::Lt
            }
        }
        other => return Err(RdfError::new(format!("expected operator, found {other:?}"))),
    };
    let right = parse_operand(tokens)?;
    expect_token(tokens, &Token::CloseParen)?;
    Ok(Filter { left, op, right })
}

fn parse_operand(tokens: &mut Vec<Token>) -> Result<Operand, RdfError> {
    match parse_term(tokens)? {
        PatternTerm::Var(v) => Ok(Operand::Var(v)),
        PatternTerm::Term(t) => Ok(Operand::Const(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::model::Statement;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let gdp = Term::iri("ex:gdp");
        let pop = Term::iri("ex:pop");
        let name = Term::iri("ex:name");
        for (country, g_val, p_val, n) in [
            ("ex:us", 21000.0, 331, "United States"),
            ("ex:de", 4200.0, 83, "Germany"),
            ("ex:in", 3700.0, 1400, "India"),
        ] {
            g.insert(Statement::new(
                Term::iri(country),
                gdp.clone(),
                Term::double(g_val),
            ));
            g.insert(Statement::new(
                Term::iri(country),
                pop.clone(),
                Term::integer(p_val),
            ));
            g.insert(Statement::new(
                Term::iri(country),
                name.clone(),
                Term::string(n),
            ));
        }
        g
    }

    #[test]
    fn single_pattern_select() {
        let q = Query::parse("SELECT ?c ?g WHERE { ?c <ex:gdp> ?g . }").unwrap();
        let rows = q.execute(&sample());
        assert_eq!(rows.len(), 3);
        assert!(rows
            .iter()
            .all(|r| r.contains_key("c") && r.contains_key("g")));
    }

    #[test]
    fn join_across_patterns() {
        let q = Query::parse(
            "SELECT ?n WHERE { ?c <ex:gdp> ?g . ?c <ex:name> ?n . FILTER (?g > 4000) }",
        )
        .unwrap();
        let rows = q.execute(&sample());
        let names: Vec<&Term> = rows.iter().filter_map(|r| r.get("n")).collect();
        assert_eq!(rows.len(), 2);
        assert!(names.contains(&&Term::string("United States")));
        assert!(names.contains(&&Term::string("Germany")));
    }

    #[test]
    fn filter_less_than_with_spaces() {
        let q = Query::parse("SELECT ?c WHERE { ?c <ex:pop> ?p . FILTER (?p < 100 >) }");
        // The `<` operator is awkward in this grammar; accept either a
        // parse error or correct behaviour of the `< … >` workaround.
        if let Ok(q) = q {
            let rows = q.execute(&sample());
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0]["c"], Term::iri("ex:de"));
        }
    }

    #[test]
    fn filter_equality_on_strings() {
        let q =
            Query::parse("SELECT ?c WHERE { ?c <ex:name> ?n . FILTER (?n = \"India\") }").unwrap();
        let rows = q.execute(&sample());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["c"], Term::iri("ex:in"));
    }

    #[test]
    fn filter_not_equal() {
        let q =
            Query::parse("SELECT ?c WHERE { ?c <ex:name> ?n . FILTER (?n != \"India\") }").unwrap();
        assert_eq!(q.execute(&sample()).len(), 2);
    }

    #[test]
    fn order_by_and_limit() {
        let q =
            Query::parse("SELECT ?c ?g WHERE { ?c <ex:gdp> ?g . } ORDER BY ?g LIMIT 2").unwrap();
        let rows = q.execute(&sample());
        assert_eq!(rows.len(), 2);
        // Ascending by gdp: India (3700) first.
        assert_eq!(rows[0]["c"], Term::iri("ex:in"));
        assert_eq!(rows[1]["c"], Term::iri("ex:de"));
    }

    #[test]
    fn select_star_keeps_all_vars() {
        let q = Query::parse("SELECT * WHERE { ?c <ex:gdp> ?g . }").unwrap();
        let rows = q.execute(&sample());
        assert!(rows[0].contains_key("c") && rows[0].contains_key("g"));
    }

    #[test]
    fn no_matches_yields_empty() {
        let q = Query::parse("SELECT ?x WHERE { ?x <ex:missing> ?y . }").unwrap();
        assert!(q.execute(&sample()).is_empty());
    }

    #[test]
    fn constant_subject_pattern() {
        let q = Query::parse("SELECT ?g WHERE { <ex:us> <ex:gdp> ?g . }").unwrap();
        let rows = q.execute(&sample());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["g"], Term::double(21000.0));
    }

    #[test]
    fn shared_variable_enforces_join_consistency() {
        // ?x must be the same across both patterns.
        let mut g = Graph::new();
        g.insert(Statement::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        ));
        g.insert(Statement::new(
            Term::iri("b"),
            Term::iri("q"),
            Term::iri("c"),
        ));
        g.insert(Statement::new(
            Term::iri("x"),
            Term::iri("q"),
            Term::iri("y"),
        ));
        let q = Query::parse("SELECT ?m WHERE { ?s <p> ?m . ?m <q> ?o . }").unwrap();
        let rows = q.execute(&g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["m"], Term::iri("b"));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "WHERE { ?a <p> ?b }",
            "SELECT WHERE { ?a <p> ?b }",
            "SELECT ?a { ?a <p> ?b }",
            "SELECT ?a WHERE { ?a <p> }",
            "SELECT ?a WHERE { ?a <p> ?b ",
            "SELECT ?a WHERE { } LIMIT 2",
            "SELECT ?a WHERE { ?a <p> ?b } LIMIT x",
            "SELECT ?a WHERE { ?a <p> ?b } ORDER BY",
            "SELECT ?a WHERE { ?a <p> ?b } GARBAGE",
        ] {
            assert!(Query::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn optional_extends_when_present_and_passes_through_when_absent() {
        let mut g = sample();
        g.insert(Statement::new(
            Term::iri("ex:us"),
            Term::iri("ex:nick"),
            Term::string("USA"),
        ));
        let q =
            Query::parse("SELECT ?c ?k WHERE { ?c <ex:gdp> ?g . OPTIONAL { ?c <ex:nick> ?k } }")
                .unwrap();
        let rows = q.execute(&g);
        assert_eq!(rows.len(), 3, "left-outer: every country survives");
        let with_nick: Vec<_> = rows.iter().filter(|r| r.contains_key("k")).collect();
        assert_eq!(with_nick.len(), 1);
        assert_eq!(with_nick[0]["c"], Term::iri("ex:us"));
        assert_eq!(with_nick[0]["k"], Term::string("USA"));
    }

    #[test]
    fn union_combines_arm_matches() {
        let q = Query::parse("SELECT ?c ?v WHERE { { ?c <ex:gdp> ?v } UNION { ?c <ex:pop> ?v } }")
            .unwrap();
        let rows = q.execute(&sample());
        assert_eq!(rows.len(), 6, "three gdp rows plus three pop rows");
    }

    #[test]
    fn unknown_constant_is_local_to_optional_and_union_arms() {
        // Regression: an un-interned constant used to short-circuit the
        // WHOLE evaluation to empty, even when it only appeared inside an
        // OPTIONAL or UNION arm. Emptiness must stay local to the arm.
        let q = Query::parse(
            "SELECT ?c WHERE { ?c <ex:gdp> ?g . OPTIONAL { ?c <ex:never_interned> ?x } }",
        )
        .unwrap();
        assert_eq!(q.execute(&sample()).len(), 3);
        let q = Query::parse(
            "SELECT ?c ?v WHERE { { ?c <ex:gdp> ?v } UNION { ?c <ex:never_interned> ?v } }",
        )
        .unwrap();
        assert_eq!(q.execute(&sample()).len(), 3);
        // A required pattern with an unknown constant still yields zero.
        let q = Query::parse("SELECT ?c WHERE { ?c <ex:never_interned> ?g . }").unwrap();
        assert!(q.execute(&sample()).is_empty());
    }

    #[test]
    fn offset_pages_through_ordered_results() {
        let q = Query::parse("SELECT ?c WHERE { ?c <ex:gdp> ?g } ORDER BY ?g OFFSET 1 LIMIT 1")
            .unwrap();
        let rows = q.execute(&sample());
        assert_eq!(rows.len(), 1);
        // Ascending by gdp: India (3700), Germany (4200), US (21000).
        assert_eq!(rows[0]["c"], Term::iri("ex:de"));
        // An offset past the end is an empty page, not an error.
        let q = Query::parse("SELECT ?c WHERE { ?c <ex:gdp> ?g } OFFSET 9").unwrap();
        assert!(q.execute(&sample()).is_empty());
    }

    #[test]
    fn explain_shows_the_planned_join_order() {
        let text = Query::parse("SELECT ?n WHERE { ?c <ex:gdp> ?g . ?c <ex:name> ?n }")
            .unwrap()
            .explain(&sample());
        assert!(text.starts_with("bgp 2 patterns"), "{text}");
        assert!(text.contains("scan POS"), "{text}");
        assert!(text.contains("project *"), "{text}");
    }

    #[test]
    fn group_parse_errors() {
        for bad in [
            // A lone braced group must be part of a UNION.
            "SELECT ?a WHERE { { ?a <p> ?b } }",
            "SELECT ?a WHERE { { ?a <p> ?b } UNION }",
            "SELECT ?a WHERE { OPTIONAL ?a <p> ?b }",
            "SELECT ?a WHERE { OPTIONAL { } }",
            "SELECT ?a WHERE { ?a <p> ?b } OFFSET x",
        ] {
            assert!(Query::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn integer_and_boolean_literals_in_patterns() {
        let mut g = Graph::new();
        g.insert(Statement::new(
            Term::iri("s"),
            Term::iri("age"),
            Term::integer(42),
        ));
        g.insert(Statement::new(
            Term::iri("s"),
            Term::iri("alive"),
            Term::boolean(true),
        ));
        let q = Query::parse("SELECT ?s WHERE { ?s <age> 42 . ?s <alive> true . }").unwrap();
        assert_eq!(q.execute(&g).len(), 1);
    }
}
