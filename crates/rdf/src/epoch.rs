//! Snapshot-isolated epochs over the dictionary-encoded triple indexes.
//!
//! The write side of the store (the [`Graph`] triple sets inside the
//! materializer) stays a plain mutable structure guarded by the owner's
//! lock. What this module adds is a *read side* that never touches that
//! lock: after every mutation batch the writer publishes an immutable
//! [`EpochSnapshot`] into an [`EpochStore`], and readers pin the current
//! epoch with a single `Arc` refcount bump. A pinned epoch never
//! changes, so query execution, paging, and federation fan-out proceed
//! with **no lock held** while ingest keeps publishing new epochs.
//!
//! Epochs are built LSM-style so publishing is cheap:
//!
//! * a [`FrozenIndex`] base — three sorted triple vectors (SPO order
//!   plus the POS/OSP permutations), binary-searched exactly like the
//!   write side's BTree indexes;
//! * a short stack of [`DeltaRun`]s — the net adds/removes of recent
//!   batches, each sorted the same three ways.
//!
//! A scan merges the base range with each run's range and applies
//! newest-run-wins deletion, preserving index sort order (merge joins
//! depend on it). Publishing a batch costs `O(batch log batch)`; runs
//! are size-tier merged as they accumulate, and once the delta stack
//! outgrows a fraction of the base the writer re-freezes its
//! authoritative full graph into a fresh base — so read amplification
//! stays bounded without ever blocking readers.
//!
//! Each epoch also carries the statement-confidence map (shared by
//! `Arc`, cloned only in batches that touch confidences), so weighted
//! conflict resolution reads the same isolated state as everything else.

use crate::dict::{IdTriple, TermDict, TermId};
use crate::graph::{Graph, QueryView, TripleView};
use crate::model::{Statement, Term};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex, RwLock};

/// How many published epochs the store keeps reachable by number (for
/// pagers that pin an epoch across several requests).
const RETAINED_EPOCHS: usize = 8;

/// Base rebuild threshold: when the run stack holds more events than
/// `max(REBUILD_MIN_EVENTS, base/4)`, the next publish re-freezes the
/// full graph instead of stacking another run.
const REBUILD_MIN_EVENTS: usize = 4096;

fn to_pos((s, p, o): IdTriple) -> IdTriple {
    (p, o, s)
}

fn from_pos((p, o, s): IdTriple) -> IdTriple {
    (s, p, o)
}

fn to_osp((s, p, o): IdTriple) -> IdTriple {
    (o, s, p)
}

fn from_osp((o, s, p): IdTriple) -> IdTriple {
    (s, p, o)
}

/// The sub-slice of a sorted vector falling in `lo..=hi`.
fn range_of(sorted: &[IdTriple], lo: IdTriple, hi: IdTriple) -> &[IdTriple] {
    let start = sorted.partition_point(|&t| t < lo);
    let end = sorted.partition_point(|&t| t <= hi);
    &sorted[start..end]
}

/// An immutable, fully-sorted freeze of a graph's three indexes. The
/// POS/OSP vectors hold *permuted* tuples (as the write-side BTree
/// indexes do), so every scan is a binary-searched contiguous slice.
#[derive(Debug, Default)]
struct FrozenIndex {
    spo: Vec<IdTriple>,
    /// Permuted `(p, o, s)` tuples, sorted.
    pos: Vec<IdTriple>,
    /// Permuted `(o, s, p)` tuples, sorted.
    osp: Vec<IdTriple>,
}

impl FrozenIndex {
    fn select(&self, index: Index) -> &[IdTriple] {
        match index {
            Index::Spo => &self.spo,
            Index::Pos => &self.pos,
            Index::Osp => &self.osp,
        }
    }

    fn from_graph(graph: &Graph) -> FrozenIndex {
        let spo: Vec<IdTriple> = graph.iter_ids().collect();
        let mut pos: Vec<IdTriple> = spo.iter().map(|&t| to_pos(t)).collect();
        pos.sort_unstable();
        let mut osp: Vec<IdTriple> = spo.iter().map(|&t| to_osp(t)).collect();
        osp.sort_unstable();
        FrozenIndex { spo, pos, osp }
    }
}

/// The net effect of one published batch: triples that became present
/// and triples that became absent, each sorted three ways so scans can
/// merge them with the base in index order.
///
/// Net-ness is an invariant: relative to the epoch state the run was
/// published against, every add was absent and every delete was present.
/// Run merging and membership checks rely on it.
#[derive(Debug, Default)]
struct DeltaRun {
    adds_spo: Vec<IdTriple>,
    /// Adds as permuted `(p, o, s)` tuples, sorted.
    adds_pos: Vec<IdTriple>,
    /// Adds as permuted `(o, s, p)` tuples, sorted.
    adds_osp: Vec<IdTriple>,
    dels_spo: Vec<IdTriple>,
}

impl DeltaRun {
    fn new(mut adds: Vec<IdTriple>, mut dels: Vec<IdTriple>) -> DeltaRun {
        adds.sort_unstable();
        dels.sort_unstable();
        let mut adds_pos: Vec<IdTriple> = adds.iter().map(|&t| to_pos(t)).collect();
        adds_pos.sort_unstable();
        let mut adds_osp: Vec<IdTriple> = adds.iter().map(|&t| to_osp(t)).collect();
        adds_osp.sort_unstable();
        DeltaRun {
            adds_spo: adds,
            adds_pos,
            adds_osp,
            dels_spo: dels,
        }
    }

    fn adds(&self, index: Index) -> &[IdTriple] {
        match index {
            Index::Spo => &self.adds_spo,
            Index::Pos => &self.adds_pos,
            Index::Osp => &self.adds_osp,
        }
    }

    fn events(&self) -> usize {
        self.adds_spo.len() + self.dels_spo.len()
    }

    /// `Some(true)` if the run adds the triple, `Some(false)` if it
    /// deletes it, `None` if it says nothing about it.
    fn mentions(&self, triple: IdTriple) -> Option<bool> {
        if self.adds_spo.binary_search(&triple).is_ok() {
            Some(true)
        } else if self.dels_spo.binary_search(&triple).is_ok() {
            Some(false)
        } else {
            None
        }
    }
}

/// Composes two consecutive net runs (`older` then `newer`) into one
/// net run relative to the state before `older`. Pairs that cancel
/// (add→delete, delete→re-add) drop out entirely.
fn merge_runs(older: &DeltaRun, newer: &DeltaRun) -> DeltaRun {
    let mut events: BTreeMap<IdTriple, bool> = BTreeMap::new();
    for &t in &older.adds_spo {
        events.insert(t, true);
    }
    for &t in &older.dels_spo {
        events.insert(t, false);
    }
    for &t in &newer.adds_spo {
        if events.get(&t) == Some(&false) {
            events.remove(&t); // deleted then re-added: net no-op
        } else {
            events.insert(t, true);
        }
    }
    for &t in &newer.dels_spo {
        if events.get(&t) == Some(&true) {
            events.remove(&t); // added then deleted: net no-op
        } else {
            events.insert(t, false);
        }
    }
    let adds = events
        .iter()
        .filter_map(|(&t, &add)| add.then_some(t))
        .collect();
    let dels = events
        .iter()
        .filter_map(|(&t, &add)| (!add).then_some(t))
        .collect();
    DeltaRun::new(adds, dels)
}

/// Which index serves a pattern shape, plus the permuted scan bounds.
/// Mirrors [`Graph::match_ids`]'s eight arms.
enum Scan {
    /// Fully bound: a membership probe.
    Probe(IdTriple),
    /// A range scan: index selector, permuted `lo..=hi` bounds.
    Range(Index, IdTriple, IdTriple),
}

#[derive(Clone, Copy)]
enum Index {
    Spo,
    Pos,
    Osp,
}

fn classify(subject: Option<TermId>, predicate: Option<TermId>, object: Option<TermId>) -> Scan {
    let min = TermId::MIN;
    let max = TermId::MAX;
    match (subject, predicate, object) {
        (Some(s), Some(p), Some(o)) => Scan::Probe((s, p, o)),
        (Some(s), Some(p), None) => Scan::Range(Index::Spo, (s, p, min), (s, p, max)),
        (Some(s), None, Some(o)) => Scan::Range(Index::Osp, (o, s, min), (o, s, max)),
        (Some(s), None, None) => Scan::Range(Index::Spo, (s, min, min), (s, max, max)),
        (None, Some(p), Some(o)) => Scan::Range(Index::Pos, (p, o, min), (p, o, max)),
        (None, Some(p), None) => Scan::Range(Index::Pos, (p, min, min), (p, max, max)),
        (None, None, Some(o)) => Scan::Range(Index::Osp, (o, min, min), (o, max, max)),
        (None, None, None) => Scan::Range(Index::Spo, (min, min, min), (max, max, max)),
    }
}

/// One immutable published epoch: a frozen base, a short stack of net
/// delta runs, the shared term dictionary, and the confidence map as of
/// publish time. Cloning the `Arc` that wraps it *is* the snapshot
/// operation — O(1), no data copied, nothing locked afterwards.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    dict: TermDict,
    base: Arc<FrozenIndex>,
    /// Oldest first; membership is decided newest-run-first.
    runs: Vec<Arc<DeltaRun>>,
    len: usize,
    confidence: Arc<HashMap<IdTriple, f64>>,
}

impl EpochSnapshot {
    /// The epoch number (monotonically increasing per store).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The dictionary the epoch's ids are relative to. Shared with the
    /// writer, so resolving ids never blocks ingest (the dictionary is
    /// append-only and lock-free on the resolve side).
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Number of triples visible in this epoch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the epoch holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The statement-confidence map as of this epoch (triples absent
    /// from the map have the default confidence 1.0).
    pub fn confidence(&self) -> &Arc<HashMap<IdTriple, f64>> {
        &self.confidence
    }

    /// Confidence of a triple visible in this epoch; `None` if the
    /// triple itself is absent.
    pub fn confidence_of(&self, triple: IdTriple) -> Option<f64> {
        if !self.contains_id(triple) {
            return None;
        }
        Some(self.confidence.get(&triple).copied().unwrap_or(1.0))
    }

    /// Whether the epoch contains the encoded triple.
    pub fn contains_id(&self, triple: IdTriple) -> bool {
        for run in self.runs.iter().rev() {
            if let Some(added) = run.mentions(triple) {
                return added;
            }
        }
        self.base.spo.binary_search(&triple).is_ok()
    }

    /// Whether the epoch contains the statement.
    pub fn contains(&self, st: &Statement) -> bool {
        match self.dict.lookup_statement(st) {
            Some(triple) => self.contains_id(triple),
            None => false,
        }
    }

    /// All triples in SPO order.
    pub fn iter_ids(&self) -> Vec<IdTriple> {
        QueryView::match_ids(self, None, None, None)
    }

    /// Materializes the epoch into a standalone mutable [`Graph`]
    /// sharing the dictionary. O(n) — only for callers that genuinely
    /// need a mutable copy; queries should run against the epoch itself.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::with_dict(self.dict.clone());
        for triple in self.iter_ids() {
            g.insert_id(triple);
        }
        g
    }

    /// Whether a triple coming out of the merged scan is visible: the
    /// newest run mentioning it wins; silence means it came from the
    /// base (or an add run) and stands.
    fn live(&self, triple: IdTriple) -> bool {
        for run in self.runs.iter().rev() {
            if let Some(added) = run.mentions(triple) {
                return added;
            }
        }
        true
    }

    /// Merges the base slice with each run's add slice in permuted sort
    /// order, deduplicates, drops deleted triples, and maps tuples back
    /// to `(s, p, o)`.
    fn merged_scan(&self, index: Index, lo: IdTriple, hi: IdTriple) -> Vec<IdTriple> {
        let unpermute = |t: IdTriple| match index {
            Index::Spo => t,
            Index::Pos => from_pos(t),
            Index::Osp => from_osp(t),
        };

        let mut sources: Vec<&[IdTriple]> = Vec::with_capacity(1 + self.runs.len());
        sources.push(range_of(self.base.select(index), lo, hi));
        for run in &self.runs {
            sources.push(range_of(run.adds(index), lo, hi));
        }
        sources.retain(|s| !s.is_empty());

        // Fast path: one source, no deletions to consult beyond `live`.
        let mut out = Vec::new();
        if sources.is_empty() {
            return out;
        }

        let mut cursors = vec![0usize; sources.len()];
        loop {
            // Smallest head across sources (permuted order).
            let mut best: Option<IdTriple> = None;
            for (i, src) in sources.iter().enumerate() {
                if let Some(&head) = src.get(cursors[i]) {
                    best = Some(match best {
                        Some(b) if b <= head => b,
                        _ => head,
                    });
                }
            }
            let Some(next) = best else { break };
            // Consume every occurrence (the same triple can sit in the
            // base and in a later re-add run).
            for (i, src) in sources.iter().enumerate() {
                while src.get(cursors[i]) == Some(&next) {
                    cursors[i] += 1;
                }
            }
            let original = unpermute(next);
            if self.live(original) {
                out.push(original);
            }
        }
        out
    }
}

impl TripleView for EpochSnapshot {
    fn find(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Statement> {
        let encode = |slot: Option<&Term>| match slot {
            Some(term) => self.dict.lookup(term).map(Some),
            None => Some(None),
        };
        let (Some(s), Some(p), Some(o)) = (encode(subject), encode(predicate), encode(object))
        else {
            // A bound term that was never interned cannot match anything.
            return Vec::new();
        };
        self.dict.resolve_all(&QueryView::match_ids(self, s, p, o))
    }

    fn has(&self, st: &Statement) -> bool {
        self.contains(st)
    }

    fn find_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Vec<IdTriple> {
        QueryView::match_ids(self, subject, predicate, object)
    }

    fn has_id(&self, triple: IdTriple) -> bool {
        self.contains_id(triple)
    }
}

impl QueryView for EpochSnapshot {
    fn dict(&self) -> &TermDict {
        &self.dict
    }

    fn match_ids(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
    ) -> Vec<IdTriple> {
        match classify(subject, predicate, object) {
            Scan::Probe(triple) => {
                if self.contains_id(triple) {
                    vec![triple]
                } else {
                    Vec::new()
                }
            }
            Scan::Range(index, lo, hi) => self.merged_scan(index, lo, hi),
        }
    }

    fn count_ids_capped(
        &self,
        subject: Option<TermId>,
        predicate: Option<TermId>,
        object: Option<TermId>,
        cap: usize,
    ) -> usize {
        match classify(subject, predicate, object) {
            Scan::Probe(triple) => usize::from(self.contains_id(triple)),
            Scan::Range(index, lo, hi) => {
                // Upper bound: base range plus every run's add range,
                // ignoring deletions. Never zero when matches exist, and
                // the planner only ranks candidates with it.
                let mut est = range_of(self.base.select(index), lo, hi).len();
                for run in &self.runs {
                    if est >= cap {
                        break;
                    }
                    est += range_of(run.adds(index), lo, hi).len();
                }
                est.min(cap)
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// The net mutation record one publish consumes: the latest surviving
/// event per triple (`true` = present, `false` = absent) since the last
/// publish, plus a flag forcing a full base rebuild (set when the write
/// side was wholesale replaced, e.g. by `reset` or recovery).
#[derive(Debug, Clone, Default)]
pub struct EpochDelta {
    pub(crate) changes: HashMap<IdTriple, bool>,
    pub(crate) rebuilt: bool,
}

impl EpochDelta {
    /// A delta demanding a full base rebuild (wholesale replacement of
    /// the write side — `reset`, recovery).
    pub(crate) fn rebuild() -> EpochDelta {
        EpochDelta {
            changes: HashMap::new(),
            rebuilt: true,
        }
    }

    /// Records that `triple` ended up present (`added = true`) or absent.
    /// Later records for the same triple overwrite earlier ones, so the
    /// map always holds the *final* state change.
    pub(crate) fn record(&mut self, triple: IdTriple, added: bool) {
        self.changes.insert(triple, added);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.changes.is_empty() && !self.rebuilt
    }
}

/// The published-epoch registry: the atomically swapped current epoch
/// plus a short ring of recent epochs reachable by number.
///
/// `pin()` holds the lock only long enough to clone one `Arc`; all
/// subsequent reads on the snapshot are lock-free. Writers publish
/// through [`publish`](EpochStore::publish), which swaps the current
/// `Arc` — readers already holding an older epoch are unaffected.
#[derive(Debug)]
pub struct EpochStore {
    current: RwLock<Arc<EpochSnapshot>>,
    retained: Mutex<VecDeque<Arc<EpochSnapshot>>>,
}

impl EpochStore {
    /// Creates a store whose epoch 0 freezes `full`.
    pub(crate) fn new(full: &Graph, confidence: Arc<HashMap<IdTriple, f64>>) -> EpochStore {
        let snapshot = Arc::new(EpochSnapshot {
            epoch: 0,
            dict: full.dict().clone(),
            base: Arc::new(FrozenIndex::from_graph(full)),
            runs: Vec::new(),
            len: full.len(),
            confidence,
        });
        EpochStore {
            current: RwLock::new(snapshot.clone()),
            retained: Mutex::new(VecDeque::from([snapshot])),
        }
    }

    /// Pins the current epoch: one `Arc` clone under a momentary read
    /// lock. O(1) regardless of graph size.
    pub fn pin(&self) -> Arc<EpochSnapshot> {
        self.current.read().expect("epoch lock").clone()
    }

    /// Pins a specific retained epoch, if it is still in the ring.
    pub fn at(&self, epoch: u64) -> Option<Arc<EpochSnapshot>> {
        self.retained
            .lock()
            .expect("epoch ring lock")
            .iter()
            .find(|snap| snap.epoch == epoch)
            .cloned()
    }

    /// Publishes the write side's net delta as the next epoch. `full`
    /// is the writer's authoritative materialized graph, consulted for
    /// base rebuilds. No-op deltas (empty and no confidence change)
    /// publish nothing, so idle readers keep hitting the same epoch.
    pub(crate) fn publish(
        &self,
        full: &Graph,
        delta: EpochDelta,
        confidence: Arc<HashMap<IdTriple, f64>>,
    ) {
        let prev = self.pin();
        if delta.is_empty() && Arc::ptr_eq(&prev.confidence, &confidence) {
            return;
        }

        let pending: usize =
            prev.runs.iter().map(|r| r.events()).sum::<usize>() + delta.changes.len();
        let rebuild = delta.rebuilt || pending > REBUILD_MIN_EVENTS.max(prev.base.spo.len() / 4);

        let (base, runs, len) = if rebuild {
            (
                Arc::new(FrozenIndex::from_graph(full)),
                Vec::new(),
                full.len(),
            )
        } else {
            // Net the delta against the previous epoch so the run
            // invariant holds (adds were absent, deletes were present)
            // even if the write side flapped a triple mid-batch.
            let mut adds = Vec::new();
            let mut dels = Vec::new();
            for (&triple, &added) in &delta.changes {
                if added != prev.contains_id(triple) {
                    if added {
                        adds.push(triple);
                    } else {
                        dels.push(triple);
                    }
                }
            }
            let new_len = prev.len + adds.len() - dels.len();
            let mut runs = prev.runs.clone();
            if !(adds.is_empty() && dels.is_empty()) {
                runs.push(Arc::new(DeltaRun::new(adds, dels)));
                // Size-tiered merging: fold the newest run into its
                // neighbor while the neighbor is not decisively bigger,
                // keeping the stack logarithmic in total events.
                while runs.len() >= 2 {
                    let n = runs.len();
                    if runs[n - 2].events() > 2 * runs[n - 1].events() {
                        break;
                    }
                    let newer = runs.pop().expect("run");
                    let older = runs.pop().expect("run");
                    runs.push(Arc::new(merge_runs(&older, &newer)));
                }
            }
            (prev.base.clone(), runs, new_len)
        };

        let next = Arc::new(EpochSnapshot {
            epoch: prev.epoch + 1,
            dict: full.dict().clone(),
            base,
            runs,
            len,
            confidence,
        });

        let mut ring = self.retained.lock().expect("epoch ring lock");
        *self.current.write().expect("epoch lock") = next.clone();
        ring.push_back(next);
        while ring.len() > RETAINED_EPOCHS {
            ring.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple(graph: &mut Graph, s: &str, p: &str, o: &str) -> IdTriple {
        graph
            .dict()
            .intern_statement(&Statement::new(Term::iri(s), Term::iri(p), Term::iri(o)))
    }

    fn store_over(graph: &Graph) -> EpochStore {
        EpochStore::new(graph, Arc::new(HashMap::new()))
    }

    fn publish_changes(store: &EpochStore, graph: &Graph, changes: &[(IdTriple, bool)]) {
        let mut delta = EpochDelta::default();
        for &(t, added) in changes {
            delta.record(t, added);
        }
        store.publish(graph, delta, store.pin().confidence.clone());
    }

    #[test]
    fn pinned_epoch_is_isolated_from_later_publishes() {
        let mut g = Graph::new();
        let t1 = triple(&mut g, "ex:a", "ex:p", "ex:x");
        g.insert_id(t1);
        let store = store_over(&g);
        let pinned = store.pin();
        assert_eq!(pinned.epoch(), 0);
        assert!(pinned.contains_id(t1));

        let t2 = triple(&mut g, "ex:b", "ex:p", "ex:y");
        g.insert_id(t2);
        publish_changes(&store, &g, &[(t2, true)]);

        // The old pin still sees exactly its epoch.
        assert!(!pinned.contains_id(t2));
        assert_eq!(pinned.len(), 1);
        let fresh = store.pin();
        assert_eq!(fresh.epoch(), 1);
        assert!(fresh.contains_id(t1) && fresh.contains_id(t2));
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn deletions_in_newer_runs_mask_base_triples() {
        let mut g = Graph::new();
        let t1 = triple(&mut g, "ex:a", "ex:p", "ex:x");
        let t2 = triple(&mut g, "ex:a", "ex:p", "ex:y");
        g.insert_id(t1);
        g.insert_id(t2);
        let store = store_over(&g);

        g.remove_id(t1);
        publish_changes(&store, &g, &[(t1, false)]);

        let snap = store.pin();
        assert!(!snap.contains_id(t1));
        assert!(snap.contains_id(t2));
        assert_eq!(snap.len(), 1);
        let scan = QueryView::match_ids(&*snap, Some(t1.0), Some(t1.1), None);
        assert_eq!(scan, vec![t2]);
    }

    #[test]
    fn re_add_after_delete_is_visible_again() {
        let mut g = Graph::new();
        let t = triple(&mut g, "ex:a", "ex:p", "ex:x");
        g.insert_id(t);
        let store = store_over(&g);

        g.remove_id(t);
        publish_changes(&store, &g, &[(t, false)]);
        assert!(!store.pin().contains_id(t));

        g.insert_id(t);
        publish_changes(&store, &g, &[(t, true)]);
        let snap = store.pin();
        assert!(snap.contains_id(t));
        assert_eq!(snap.len(), 1);
        assert_eq!(QueryView::match_ids(&*snap, None, None, None), vec![t]);
    }

    #[test]
    fn scans_agree_with_a_graph_across_many_random_publishes() {
        use cogsdk_sim::rng::Rng;
        let mut rng = Rng::new(0xE90C);
        let mut g = Graph::new();
        let store = store_over(&g);
        // Random insert/remove batches, each published; after every
        // publish the pinned epoch must agree with the live graph on
        // every pattern shape.
        for round in 0..30 {
            let mut delta = EpochDelta::default();
            for _ in 0..(1 + rng.below(40)) {
                let t = triple(
                    &mut g,
                    &format!("ex:s{}", rng.below(12)),
                    &format!("ex:p{}", rng.below(4)),
                    &format!("ex:o{}", rng.below(8)),
                );
                if rng.chance(0.7) {
                    if g.insert_id(t) {
                        delta.record(t, true);
                    }
                } else if g.remove_id(t) {
                    delta.record(t, false);
                }
            }
            store.publish(&g, delta, store.pin().confidence.clone());
            let snap = store.pin();
            assert_eq!(snap.len(), g.len(), "round {round}: len");

            let s = g.dict().lookup(&Term::iri("ex:s3"));
            let p = g.dict().lookup(&Term::iri("ex:p1"));
            let o = g.dict().lookup(&Term::iri("ex:o2"));
            for pattern in [
                (None, None, None),
                (s, None, None),
                (None, p, None),
                (None, None, o),
                (s, p, None),
                (s, None, o),
                (None, p, o),
                (s, p, o),
            ] {
                let got = QueryView::match_ids(&*snap, pattern.0, pattern.1, pattern.2);
                let want = g.match_ids(pattern.0, pattern.1, pattern.2);
                assert_eq!(got, want, "round {round}: pattern {pattern:?}");
                let est =
                    QueryView::count_ids_capped(&*snap, pattern.0, pattern.1, pattern.2, 4096);
                assert!(est >= want.len().min(4096), "estimate must upper-bound");
            }
        }
    }

    #[test]
    fn rebuild_flag_refreezes_the_base() {
        let mut g = Graph::new();
        let t1 = triple(&mut g, "ex:a", "ex:p", "ex:x");
        g.insert_id(t1);
        let store = store_over(&g);
        let delta = EpochDelta::rebuild();
        let mut replacement = Graph::with_dict(g.dict().clone());
        let t2 = triple(&mut replacement, "ex:b", "ex:p", "ex:y");
        replacement.insert_id(t2);
        store.publish(&replacement, delta, Arc::new(HashMap::new()));
        let snap = store.pin();
        assert!(snap.runs.is_empty(), "rebuild clears the run stack");
        assert!(snap.contains_id(t2));
        assert!(!snap.contains_id(t1));
    }

    #[test]
    fn retained_ring_serves_recent_epochs_only() {
        let mut g = Graph::new();
        let store = store_over(&g);
        for i in 0..(RETAINED_EPOCHS + 3) {
            let t = triple(&mut g, &format!("ex:s{i}"), "ex:p", "ex:o");
            g.insert_id(t);
            publish_changes(&store, &g, &[(t, true)]);
        }
        let newest = store.pin().epoch();
        assert_eq!(newest, (RETAINED_EPOCHS + 3) as u64);
        assert!(store.at(newest).is_some());
        assert!(store.at(newest - (RETAINED_EPOCHS as u64 - 1)).is_some());
        assert!(store.at(0).is_none(), "old epochs age out of the ring");
        // Epoch numbers line up with their snapshots.
        assert_eq!(store.at(newest).unwrap().epoch(), newest);
    }

    #[test]
    fn noop_publish_keeps_the_epoch() {
        let mut g = Graph::new();
        let t = triple(&mut g, "ex:a", "ex:p", "ex:x");
        g.insert_id(t);
        let store = store_over(&g);
        let conf = store.pin().confidence.clone();
        store.publish(&g, EpochDelta::default(), conf);
        assert_eq!(store.pin().epoch(), 0, "no-op publishes nothing");
    }

    #[test]
    fn confidence_travels_with_the_epoch() {
        let mut g = Graph::new();
        let t = triple(&mut g, "ex:a", "ex:p", "ex:x");
        g.insert_id(t);
        let store = store_over(&g);
        let pinned_before = store.pin();

        let mut conf = HashMap::new();
        conf.insert(t, 0.4);
        let mut delta = EpochDelta::default();
        delta.record(t, true); // no-op membership-wise, but confidence changed
        store.publish(&g, delta, Arc::new(conf));

        assert_eq!(store.pin().confidence_of(t), Some(0.4));
        assert_eq!(
            pinned_before.confidence_of(t),
            Some(1.0),
            "old pin unaffected"
        );
        let absent = triple(&mut g, "ex:ghost", "ex:p", "ex:x");
        assert_eq!(store.pin().confidence_of(absent), None);
    }
}
