//! Checksummed KB snapshots.
//!
//! A snapshot captures everything recovery needs except the derived
//! closure: the term dictionary (in interning order, so ids reproduce
//! exactly), the *base* id-triple set, and the standing
//! [`MaterializerConfig`]. Derived facts are deliberately absent —
//! recovery re-runs materialization, so inference state is never
//! trusted from disk.
//!
//! The file is written with the classic atomic-replace dance: serialize
//! to `snapshot.tmp`, fsync the contents, then rename over
//! `snapshot.db`. A crash before the rename leaves the old snapshot
//! untouched; a crash after leaves the new one — never a mixture. The
//! whole payload sits behind a CRC32, and any mismatch (or malformed
//! content behind a valid checksum) is a hard
//! [`DurableError::Corrupt`]: a damaged snapshot must be noticed, not
//! silently skipped.

use crate::dict::{IdTriple, TermDict, TermId};
use crate::incremental::MaterializerConfig;
use crate::wal::{
    crc32, put_rule, put_term, put_u32, put_u64, read_rule, read_term, DurableError, Reader,
};
use cogsdk_sim::fs::{FsError, Vfs};

/// Live snapshot file name.
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.db";
/// In-flight temp name, renamed over [`SNAPSHOT_FILE`] on completion.
pub(crate) const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Version 1 layout: dict + base triples + config.
const MAGIC_V1: &[u8; 8] = b"CGSNAP1\0";
/// Version 2 appends a weighted-confidence section. New snapshots are
/// always written as v2; v1 files still load (with no confidences).
const MAGIC: &[u8; 8] = b"CGSNAP2\0";

/// Decoded snapshot contents.
#[derive(Debug)]
pub(crate) struct SnapshotData {
    pub dict: TermDict,
    pub triples: Vec<IdTriple>,
    pub config: MaterializerConfig,
    pub confidence: Vec<(IdTriple, f64)>,
}

fn encode(
    dict: &TermDict,
    triples: &[IdTriple],
    config: &MaterializerConfig,
    confidence: &[(IdTriple, f64)],
) -> Vec<u8> {
    let terms = dict.terms_from(0);
    let mut payload = Vec::new();
    put_u32(&mut payload, terms.len() as u32);
    for term in &terms {
        put_term(&mut payload, term);
    }
    put_u64(&mut payload, triples.len() as u64);
    for &(s, p, o) in triples {
        put_u32(&mut payload, s.raw());
        put_u32(&mut payload, p.raw());
        put_u32(&mut payload, o.raw());
    }
    payload.push(config.rdfs as u8);
    payload.push(config.owl as u8);
    put_u32(&mut payload, config.transitive.len() as u32);
    for term in &config.transitive {
        put_term(&mut payload, term);
    }
    put_u32(&mut payload, config.rules.len() as u32);
    for rule in &config.rules {
        put_rule(&mut payload, rule);
    }
    put_u32(&mut payload, confidence.len() as u32);
    for &((s, p, o), value) in confidence {
        put_u32(&mut payload, s.raw());
        put_u32(&mut payload, p.raw());
        put_u32(&mut payload, o.raw());
        put_u64(&mut payload, value.to_bits());
    }

    let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, crc32(&payload));
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Validates a persisted raw id against the dictionary: issued seq,
/// and (for subject/predicate positions) the right structural kind.
fn check_id(raw: u32, dict_len: usize, what: &str) -> Result<TermId, DurableError> {
    let id = TermId::from_raw(raw);
    if id.seq() >= dict_len {
        return Err(DurableError::Corrupt(format!(
            "{what} id {raw} out of dictionary range ({dict_len} terms)"
        )));
    }
    Ok(id)
}

/// Validates one persisted triple against the dictionary.
pub(crate) fn check_triple(
    (s, p, o): (u32, u32, u32),
    dict_len: usize,
) -> Result<IdTriple, DurableError> {
    let s = check_id(s, dict_len, "subject")?;
    let p = check_id(p, dict_len, "predicate")?;
    let o = check_id(o, dict_len, "object")?;
    if !s.is_resource() {
        return Err(DurableError::Corrupt(format!(
            "subject id {} is a literal",
            s.raw()
        )));
    }
    if !p.is_iri() {
        return Err(DurableError::Corrupt(format!(
            "predicate id {} is not an IRI",
            p.raw()
        )));
    }
    Ok((s, p, o))
}

fn decode(data: &[u8]) -> Result<SnapshotData, DurableError> {
    if data.len() < MAGIC.len() + 12 {
        return Err(DurableError::Corrupt("snapshot header malformed".into()));
    }
    let magic = &data[..MAGIC.len()];
    let has_confidence = match () {
        _ if magic == MAGIC => true,
        _ if magic == MAGIC_V1 => false,
        _ => return Err(DurableError::Corrupt("snapshot header malformed".into())),
    };
    let mut header = Reader::new(&data[MAGIC.len()..MAGIC.len() + 12]);
    let crc = header.u32()?;
    let len = header.u64()? as usize;
    let payload = &data[MAGIC.len() + 12..];
    if payload.len() != len {
        return Err(DurableError::Corrupt(format!(
            "snapshot length mismatch: header says {len}, file holds {}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(DurableError::Corrupt("snapshot checksum mismatch".into()));
    }

    let mut r = Reader::new(payload);
    let dict = TermDict::new();
    let term_count = r.u32()? as usize;
    for seq in 0..term_count {
        let term = read_term(&mut r)?;
        let id = dict.intern(&term);
        if id.seq() != seq {
            return Err(DurableError::Corrupt(format!(
                "duplicate dictionary term at seq {seq}"
            )));
        }
    }
    let triple_count = r.u64()? as usize;
    let mut triples = Vec::with_capacity(triple_count.min(1 << 20));
    for _ in 0..triple_count {
        let raw = (r.u32()?, r.u32()?, r.u32()?);
        triples.push(check_triple(raw, term_count)?);
    }
    let rdfs = r.u8()? != 0;
    let owl = r.u8()? != 0;
    let n = r.u32()? as usize;
    let mut transitive = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        transitive.push(read_term(&mut r)?);
    }
    let n = r.u32()? as usize;
    let mut rules = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        rules.push(read_rule(&mut r)?);
    }
    let mut confidence = Vec::new();
    if has_confidence {
        let n = r.u32()? as usize;
        confidence.reserve(n.min(1 << 20));
        for _ in 0..n {
            let raw = (r.u32()?, r.u32()?, r.u32()?);
            let triple = check_triple(raw, term_count)?;
            let value = f64::from_bits(r.u64()?);
            if !value.is_finite() {
                return Err(DurableError::Corrupt(format!(
                    "confidence for {raw:?} is not finite"
                )));
            }
            confidence.push((triple, value));
        }
    }
    if !r.is_empty() {
        return Err(DurableError::Corrupt(
            "trailing bytes after snapshot payload".into(),
        ));
    }
    Ok(SnapshotData {
        dict,
        triples,
        config: MaterializerConfig {
            rdfs,
            owl,
            transitive,
            rules,
        },
        confidence,
    })
}

/// Serializes and atomically installs a snapshot; returns bytes written.
pub(crate) fn write_snapshot(
    fs: &dyn Vfs,
    dict: &TermDict,
    triples: &[IdTriple],
    config: &MaterializerConfig,
    confidence: &[(IdTriple, f64)],
) -> Result<u64, DurableError> {
    let bytes = encode(dict, triples, config, confidence);
    fs.write(SNAPSHOT_TMP, &bytes)?;
    fs.fsync(SNAPSHOT_TMP)?;
    fs.rename(SNAPSHOT_TMP, SNAPSHOT_FILE)?;
    Ok(bytes.len() as u64)
}

/// Loads the live snapshot, `Ok(None)` if none has ever been written.
pub(crate) fn load_snapshot(fs: &dyn Vfs) -> Result<Option<SnapshotData>, DurableError> {
    let data = match fs.read(SNAPSHOT_FILE) {
        Ok(data) => data,
        Err(FsError::NotFound(_)) => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    decode(&data).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Term;
    use crate::reason::Rule;
    use cogsdk_sim::fs::SimFs;

    fn sample() -> (TermDict, Vec<IdTriple>, MaterializerConfig) {
        let dict = TermDict::new();
        let a = dict.intern(&Term::iri("ex:a"));
        let p = dict.intern(&Term::iri("ex:p"));
        let lit = dict.intern(&Term::integer(42));
        let b = dict.intern(&Term::blank("b0"));
        let config = MaterializerConfig {
            rdfs: true,
            owl: false,
            transitive: vec![Term::iri("ex:p")],
            rules: vec![Rule::parse("[(?x ex:p ?y) -> (?y ex:q ?x)]").unwrap()],
        };
        (dict, vec![(a, p, lit), (b, p, a)], config)
    }

    #[test]
    fn snapshot_round_trips_dict_triples_and_config() {
        let fs = SimFs::new(1);
        let (dict, triples, config) = sample();
        let confidence = vec![(triples[0], 0.75), (triples[1], 0.4)];
        write_snapshot(&fs, &dict, &triples, &config, &confidence).unwrap();
        let loaded = load_snapshot(&fs).unwrap().expect("snapshot present");
        assert_eq!(loaded.dict.len(), dict.len());
        for triple in &triples {
            assert_eq!(
                loaded.dict.resolve_triple(*triple),
                dict.resolve_triple(*triple),
                "ids resolve to the same statements"
            );
        }
        assert_eq!(loaded.triples, triples);
        assert_eq!(loaded.config.rdfs, config.rdfs);
        assert_eq!(loaded.config.owl, config.owl);
        assert_eq!(loaded.config.transitive, config.transitive);
        assert_eq!(loaded.config.rules, config.rules);
        assert_eq!(loaded.confidence, confidence);
    }

    #[test]
    fn v1_snapshots_still_load_with_no_confidences() {
        let fs = SimFs::new(6);
        let (dict, triples, config) = sample();
        write_snapshot(&fs, &dict, &triples, &config, &[]).unwrap();
        // Rewrite the file as a v1 snapshot: v1 is exactly the v2 layout
        // minus the (empty here) confidence count, under the old magic.
        let v2 = fs.read(SNAPSHOT_FILE).unwrap();
        let mut payload = v2[MAGIC.len() + 12..v2.len() - 4].to_vec();
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        put_u32(&mut v1, crc32(&payload));
        put_u64(&mut v1, payload.len() as u64);
        v1.append(&mut payload);
        fs.write(SNAPSHOT_FILE, &v1).unwrap();
        let loaded = load_snapshot(&fs).unwrap().expect("v1 snapshot loads");
        assert_eq!(loaded.triples, triples);
        assert!(loaded.confidence.is_empty());
    }

    #[test]
    fn missing_snapshot_is_none_not_an_error() {
        let fs = SimFs::new(2);
        assert!(load_snapshot(&fs).unwrap().is_none());
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let fs = SimFs::new(3);
        let (dict, triples, config) = sample();
        write_snapshot(&fs, &dict, &triples, &config, &[]).unwrap();
        let size = fs.size(SNAPSHOT_FILE).unwrap();
        fs.flip_bit(SNAPSHOT_FILE, size / 2, 1);
        let err = load_snapshot(&fs).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn crash_before_rename_preserves_the_old_snapshot() {
        let fs = SimFs::new(4);
        let (dict, triples, config) = sample();
        write_snapshot(&fs, &dict, &triples, &config, &[]).unwrap();
        // Second snapshot crashes on the temp-file write.
        fs.fail_after_ops(0);
        let bigger = MaterializerConfig {
            owl: true,
            ..config.clone()
        };
        assert!(write_snapshot(&fs, &dict, &triples, &bigger, &[]).is_err());
        fs.crash();
        let loaded = load_snapshot(&fs).unwrap().expect("old snapshot intact");
        assert!(!loaded.config.owl, "old config survives");
    }

    #[test]
    fn invalid_triple_ids_are_rejected() {
        let fs = SimFs::new(5);
        let dict = TermDict::new();
        let a = dict.intern(&Term::iri("ex:a"));
        // Out-of-range object id.
        let bogus = TermId::from_raw(400);
        let config = MaterializerConfig::default();
        write_snapshot(&fs, &dict, &[(a, a, bogus)], &config, &[]).unwrap();
        let err = load_snapshot(&fs).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt(_)), "got {err}");
    }
}
