//! The lock-cheap structured tracer.
//!
//! A [`Tracer`] is a cloneable handle that is either *enabled* (an
//! `Arc` around a bounded ring buffer of [`Event`]s) or *disabled*
//! (`None`). Disabled emission is one branch; call sites pass the event
//! as a closure so no strings are built unless somebody is listening.

use crate::event::{Event, EventKind, SpanCtx, SpanId, TraceId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default ring-buffer capacity (events retained before the oldest are
/// dropped).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

struct TracerInner {
    /// Global event sequence number.
    seq: AtomicU64,
    /// Next trace id.
    traces: AtomicU64,
    /// Next span id.
    spans: AtomicU64,
    /// Wall-clock epoch for event timestamps.
    started: Instant,
    /// Bounded event log; oldest events fall off the front.
    events: Mutex<VecDeque<Event>>,
    capacity: usize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
}

/// Structured trace recorder. Clones share the same buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("events", &inner.events.lock().len())
                .field("capacity", &inner.capacity)
                .finish(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// An enabled tracer retaining up to [`DEFAULT_EVENT_CAPACITY`]
    /// events.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled tracer retaining up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                seq: AtomicU64::new(0),
                traces: AtomicU64::new(1),
                spans: AtomicU64::new(1),
                started: Instant::now(),
                events: Mutex::new(VecDeque::new()),
                capacity: capacity.max(1),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op tracer: every operation is a single branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a new trace with a fresh root span.
    pub fn new_trace(&self) -> SpanCtx {
        match &self.inner {
            Some(inner) => SpanCtx {
                trace: TraceId(inner.traces.fetch_add(1, Ordering::Relaxed)),
                span: SpanId(inner.spans.fetch_add(1, Ordering::Relaxed)),
                parent: None,
            },
            None => SpanCtx {
                trace: TraceId(0),
                span: SpanId(0),
                parent: None,
            },
        }
    }

    /// Opens a child span under `parent` (same trace).
    pub fn child(&self, parent: &SpanCtx) -> SpanCtx {
        match &self.inner {
            Some(inner) => SpanCtx {
                trace: parent.trace,
                span: SpanId(inner.spans.fetch_add(1, Ordering::Relaxed)),
                parent: Some(parent.span),
            },
            None => *parent,
        }
    }

    /// Records an event under `ctx`. The closure runs only when the
    /// tracer is enabled, so a disabled tracer pays no string building.
    pub fn emit(&self, ctx: &SpanCtx, kind: impl FnOnce() -> EventKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            trace: ctx.trace,
            span: ctx.span,
            parent: ctx.parent,
            at_ms: inner.started.elapsed().as_secs_f64() * 1e3,
            kind: kind(),
        };
        let mut events = inner.events.lock();
        if events.len() >= inner.capacity {
            events.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Snapshot of every retained event, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.events.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the retained events of one trace.
    pub fn events_for(&self, trace: TraceId) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner
                .events
                .lock()
                .iter()
                .filter(|e| e.trace == trace)
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().len(),
            None => 0,
        }
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Discards all retained events (sequence numbers keep counting).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.events.lock().clear();
        }
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        let ctx = t.new_trace();
        t.emit(&ctx, || panic!("must not build the event"));
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_nest_within_a_trace() {
        let t = Tracer::new();
        let root = t.new_trace();
        let child = t.child(&root);
        assert_eq!(child.trace, root.trace);
        assert_eq!(child.parent, Some(root.span));
        assert_ne!(child.span, root.span);

        let other = t.new_trace();
        assert_ne!(other.trace, root.trace);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let t = Tracer::with_capacity(3);
        let ctx = t.new_trace();
        for i in 0..5usize {
            t.emit(&ctx, || EventKind::PoolEnqueue { queue_depth: i });
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(events[0].seq, 2, "oldest two fell off");
    }

    #[test]
    fn events_for_filters_by_trace() {
        let t = Tracer::new();
        let a = t.new_trace();
        let b = t.new_trace();
        t.emit(&a, || EventKind::PoolEnqueue { queue_depth: 0 });
        t.emit(&b, || EventKind::PoolEnqueue { queue_depth: 1 });
        t.emit(&a, || EventKind::PoolDequeue { queue_wait_ms: 0.5 });
        assert_eq!(t.events_for(a.trace).len(), 2);
        assert_eq!(t.events_for(b.trace).len(), 1);
    }
}
