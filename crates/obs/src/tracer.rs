//! The lock-cheap structured tracer.
//!
//! A [`Tracer`] is a cloneable handle that is either *enabled* (an
//! `Arc` around a bounded ring buffer of [`Event`]s) or *disabled*
//! (`None`). Disabled emission is one branch; call sites pass the event
//! as a closure so no strings are built unless somebody is listening.

use crate::event::{Event, EventKind, SpanCtx, SpanId, TenantId, TraceId};
use crate::sampler::TailSampler;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default ring-buffer capacity (events retained before the oldest are
/// dropped).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Maximum distinct tenant names interned before new names collapse into
/// [`TenantId::OVERFLOW`] (label value `"other"`), bounding per-tenant
/// metric cardinality.
pub const MAX_TENANTS: usize = 256;

/// A deterministic millisecond clock for event timestamps (virtual sim
/// time in tests, wall clock by default).
pub type TimeSource = Arc<dyn Fn() -> f64 + Send + Sync>;

struct TracerInner {
    /// Global event sequence number.
    seq: AtomicU64,
    /// Next trace id.
    traces: AtomicU64,
    /// Next span id.
    spans: AtomicU64,
    /// Wall-clock epoch for event timestamps.
    started: Instant,
    /// Bounded event log; oldest events fall off the front.
    events: Mutex<VecDeque<Event>>,
    capacity: usize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
    /// Optional deterministic timestamp source (sim clock).
    time: RwLock<Option<TimeSource>>,
    /// Optional tail sampler fed a copy of every event.
    sink: RwLock<Option<Arc<TailSampler>>>,
    /// Interned tenant names; `TenantId(i + 1)` indexes `names[i]`.
    tenants: Mutex<Vec<Arc<str>>>,
}

/// Structured trace recorder. Clones share the same buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("events", &inner.events.lock().len())
                .field("capacity", &inner.capacity)
                .finish(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// An enabled tracer retaining up to [`DEFAULT_EVENT_CAPACITY`]
    /// events.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled tracer retaining up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                seq: AtomicU64::new(0),
                traces: AtomicU64::new(1),
                spans: AtomicU64::new(1),
                started: Instant::now(),
                events: Mutex::new(VecDeque::new()),
                capacity: capacity.max(1),
                dropped: AtomicU64::new(0),
                time: RwLock::new(None),
                sink: RwLock::new(None),
                tenants: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op tracer: every operation is a single branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Installs a deterministic timestamp source (milliseconds). The SDK
    /// wires its virtual clock here so event timestamps — and everything
    /// derived from them (SLO windows, the profiler) — are reproducible.
    pub fn set_time_source(&self, source: TimeSource) {
        if let Some(inner) = &self.inner {
            *inner.time.write() = Some(source);
        }
    }

    /// Attaches a tail sampler; every subsequent event is also offered to
    /// it (the ring buffer keeps recording independently).
    pub fn set_sampler(&self, sampler: Arc<TailSampler>) {
        if let Some(inner) = &self.inner {
            *inner.sink.write() = Some(sampler);
        }
    }

    /// The attached tail sampler, if any.
    pub fn sampler(&self) -> Option<Arc<TailSampler>> {
        self.inner.as_ref().and_then(|i| i.sink.read().clone())
    }

    /// Interns a tenant name, returning a stable id. Once [`MAX_TENANTS`]
    /// distinct names exist, further names map to
    /// [`TenantId::OVERFLOW`] (`"other"`) so cardinality stays bounded.
    pub fn intern_tenant(&self, name: &str) -> TenantId {
        let Some(inner) = &self.inner else {
            return TenantId::NONE;
        };
        if name.is_empty() {
            return TenantId::NONE;
        }
        let mut tenants = inner.tenants.lock();
        if let Some(pos) = tenants.iter().position(|t| &**t == name) {
            return TenantId(pos as u16 + 1);
        }
        if tenants.len() >= MAX_TENANTS {
            return TenantId::OVERFLOW;
        }
        tenants.push(Arc::from(name));
        TenantId(tenants.len() as u16)
    }

    /// The interned name of a tenant, if one is attached. The overflow
    /// bucket reports `"other"`.
    pub fn tenant_name(&self, tenant: TenantId) -> Option<Arc<str>> {
        if tenant == TenantId::NONE {
            return None;
        }
        if tenant == TenantId::OVERFLOW {
            return Some(Arc::from("other"));
        }
        let inner = self.inner.as_ref()?;
        inner.tenants.lock().get(tenant.0 as usize - 1).cloned()
    }

    /// Starts a new trace with a fresh root span.
    pub fn new_trace(&self) -> SpanCtx {
        self.new_trace_for(TenantId::NONE)
    }

    /// Starts a new trace with a fresh root span billed to `tenant`.
    /// Child spans inherit the tenant.
    pub fn new_trace_for(&self, tenant: TenantId) -> SpanCtx {
        match &self.inner {
            Some(inner) => SpanCtx {
                trace: TraceId(inner.traces.fetch_add(1, Ordering::Relaxed)),
                span: SpanId(inner.spans.fetch_add(1, Ordering::Relaxed)),
                parent: None,
                tenant,
            },
            None => SpanCtx {
                trace: TraceId(0),
                span: SpanId(0),
                parent: None,
                tenant: TenantId::NONE,
            },
        }
    }

    /// Opens a child span under `parent` (same trace, same tenant).
    pub fn child(&self, parent: &SpanCtx) -> SpanCtx {
        match &self.inner {
            Some(inner) => SpanCtx {
                trace: parent.trace,
                span: SpanId(inner.spans.fetch_add(1, Ordering::Relaxed)),
                parent: Some(parent.span),
                tenant: parent.tenant,
            },
            None => *parent,
        }
    }

    /// Current timestamp in milliseconds from the installed time source
    /// (wall clock since tracer creation when none is installed).
    pub fn now_ms(&self) -> f64 {
        match &self.inner {
            Some(inner) => match &*inner.time.read() {
                Some(source) => source(),
                None => inner.started.elapsed().as_secs_f64() * 1e3,
            },
            None => 0.0,
        }
    }

    /// Records an event under `ctx`. The closure runs only when the
    /// tracer is enabled, so a disabled tracer pays no string building.
    pub fn emit(&self, ctx: &SpanCtx, kind: impl FnOnce() -> EventKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let at_ms = match &*inner.time.read() {
            Some(source) => source(),
            None => inner.started.elapsed().as_secs_f64() * 1e3,
        };
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            trace: ctx.trace,
            span: ctx.span,
            parent: ctx.parent,
            tenant: ctx.tenant,
            at_ms,
            kind: kind(),
        };
        if let Some(sampler) = &*inner.sink.read() {
            sampler.observe(&event);
        }
        let mut events = inner.events.lock();
        if events.len() >= inner.capacity {
            events.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Snapshot of every retained event, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.events.lock().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the retained events of one trace.
    pub fn events_for(&self, trace: TraceId) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner
                .events
                .lock()
                .iter()
                .filter(|e| e.trace == trace)
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().len(),
            None => 0,
        }
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Discards all retained events (sequence numbers keep counting).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.events.lock().clear();
        }
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        let ctx = t.new_trace();
        t.emit(&ctx, || panic!("must not build the event"));
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_nest_within_a_trace() {
        let t = Tracer::new();
        let root = t.new_trace();
        let child = t.child(&root);
        assert_eq!(child.trace, root.trace);
        assert_eq!(child.parent, Some(root.span));
        assert_ne!(child.span, root.span);

        let other = t.new_trace();
        assert_ne!(other.trace, root.trace);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let t = Tracer::with_capacity(3);
        let ctx = t.new_trace();
        for i in 0..5usize {
            t.emit(&ctx, || EventKind::PoolEnqueue { queue_depth: i });
        }
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(events[0].seq, 2, "oldest two fell off");
    }

    #[test]
    fn events_for_filters_by_trace() {
        let t = Tracer::new();
        let a = t.new_trace();
        let b = t.new_trace();
        t.emit(&a, || EventKind::PoolEnqueue { queue_depth: 0 });
        t.emit(&b, || EventKind::PoolEnqueue { queue_depth: 1 });
        t.emit(&a, || EventKind::PoolDequeue { queue_wait_ms: 0.5 });
        assert_eq!(t.events_for(a.trace).len(), 2);
        assert_eq!(t.events_for(b.trace).len(), 1);
    }
}
