//! Tail-based trace sampling.
//!
//! Head sampling decides a trace's fate before anything happened; tail
//! sampling decides *after* the trace completes, when its outcome is
//! known. The [`TailSampler`] buffers every in-flight trace's span tree,
//! then at completion retains 100% of anomalous traces — errors,
//! deadline exhaustion, breaker rejections, SLO-violating requests —
//! while keeping only a deterministic fraction of healthy ones. The
//! buffer lives under a hard event bound; when it overflows, evictions
//! prefer healthy evidence and every drop is counted, never silent.

use crate::event::{Event, EventKind, TraceId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Why a completed trace was (or would be) retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceVerdict {
    /// Finished ok within its objective; subject to downsampling.
    Healthy,
    /// The invocation ultimately failed.
    Error,
    /// An end-to-end deadline ran out mid-trace.
    DeadlineExceeded,
    /// A circuit breaker refused the work.
    BreakerRejected,
    /// The request finished but violated a latency/availability
    /// objective (decided by the caller, e.g. the gateway's SLO engine).
    SloViolation,
}

impl TraceVerdict {
    /// Stable label value for metrics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TraceVerdict::Healthy => "healthy",
            TraceVerdict::Error => "error",
            TraceVerdict::DeadlineExceeded => "deadline_exceeded",
            TraceVerdict::BreakerRejected => "breaker_rejected",
            TraceVerdict::SloViolation => "slo_violation",
        }
    }

    /// Whether the verdict always retains the trace.
    pub fn is_anomalous(self) -> bool {
        !matches!(self, TraceVerdict::Healthy)
    }
}

/// Tail-sampler tuning.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Hard bound on buffered events (in-flight + retained together).
    pub max_buffered_events: usize,
    /// Cap on the number of retained (completed) traces.
    pub max_retained_traces: usize,
    /// Fraction of healthy traces retained, in `[0, 1]`.
    pub healthy_sample_rate: f64,
    /// Seed for the deterministic healthy-trace coin flip.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            max_buffered_events: 16_384,
            max_retained_traces: 256,
            healthy_sample_rate: 0.05,
            seed: 0,
        }
    }
}

/// One completed trace the sampler decided to keep.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The trace.
    pub trace: TraceId,
    /// Why it was kept.
    pub verdict: TraceVerdict,
    /// Its complete retained span tree, in emission order.
    pub events: Vec<Event>,
}

/// Point-in-time sampler accounting. Drops are never silent: every
/// eviction shows up in one of the counters here (and in the
/// `sdk_sampler_*` metrics the gateway publishes from them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SamplerStats {
    /// Events offered to the sampler since creation.
    pub observed_events: u64,
    /// Events currently buffered (in-flight + retained).
    pub buffered_events: usize,
    /// Traces still in flight.
    pub pending_traces: usize,
    /// Completed traces currently retained.
    pub retained_traces: usize,
    /// Healthy traces discarded by the sampling coin flip.
    pub healthy_sampled_out: u64,
    /// In-flight traces evicted by the memory bound before completion.
    pub dropped_pending_traces: u64,
    /// Retained traces evicted by the retention caps.
    pub dropped_retained_traces: u64,
    /// Of the dropped retained traces, how many were anomalous (these
    /// are the drops that actually lose evidence).
    pub dropped_anomalous_traces: u64,
    /// Total events discarded by every eviction path above.
    pub dropped_events: u64,
}

#[derive(Debug, Default)]
struct Pending {
    events: Vec<Event>,
    /// Held traces are under explicit caller control (`hold`/`finalize`)
    /// and are the last candidates for eviction.
    held: bool,
}

#[derive(Debug, Default)]
struct SamplerState {
    /// In-flight traces keyed by trace id; ids are allocated
    /// monotonically, so the smallest key is the oldest trace.
    pending: BTreeMap<u64, Pending>,
    retained: VecDeque<RetainedTrace>,
    buffered_events: usize,
    stats: SamplerStats,
}

/// Buffers complete span trees and applies outcome-aware retention.
#[derive(Debug)]
pub struct TailSampler {
    cfg: SamplerConfig,
    state: Mutex<SamplerState>,
}

impl TailSampler {
    /// A sampler with the given bounds.
    pub fn new(cfg: SamplerConfig) -> TailSampler {
        TailSampler {
            cfg,
            state: Mutex::new(SamplerState::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Offers one event. Called by the tracer for every emission; a
    /// root-span `invoke_end` auto-finalizes unheld traces so direct SDK
    /// use (no gateway) still gets tail sampling.
    pub fn observe(&self, event: &Event) {
        let mut state = self.state.lock();
        state.stats.observed_events += 1;
        let pending = state.pending.entry(event.trace.0).or_default();
        pending.events.push(event.clone());
        let auto_complete = !pending.held
            && event.parent.is_none()
            && matches!(event.kind, EventKind::InvokeEnd { .. });
        state.buffered_events += 1;
        if auto_complete {
            self.finalize_locked(&mut state, event.trace, None);
        }
        self.enforce_bound(&mut state);
    }

    /// Marks a trace as caller-managed: it will not auto-finalize and is
    /// evicted only as a last resort, so the caller's verdict (e.g. an
    /// SLO violation) can still attach.
    pub fn hold(&self, trace: TraceId) {
        let mut state = self.state.lock();
        state.pending.entry(trace.0).or_default().held = true;
    }

    /// Completes a trace. `verdict` overrides the event-derived verdict
    /// (pass `Some(TraceVerdict::SloViolation)` for objective misses the
    /// events alone cannot see); `None` derives it from the span tree.
    pub fn finalize(&self, trace: TraceId, verdict: Option<TraceVerdict>) {
        let mut state = self.state.lock();
        self.finalize_locked(&mut state, trace, verdict);
        self.enforce_bound(&mut state);
    }

    fn finalize_locked(
        &self,
        state: &mut SamplerState,
        trace: TraceId,
        verdict: Option<TraceVerdict>,
    ) {
        let Some(pending) = state.pending.remove(&trace.0) else {
            return;
        };
        let derived = derive_verdict(&pending.events);
        // An explicit Healthy cannot overrule error evidence in the tree.
        let verdict = match verdict {
            Some(v) if v.is_anomalous() => v,
            _ => derived,
        };
        if verdict == TraceVerdict::Healthy && !self.keep_healthy(trace) {
            state.stats.healthy_sampled_out += 1;
            state.buffered_events -= pending.events.len();
            return;
        }
        state.retained.push_back(RetainedTrace {
            trace,
            verdict,
            events: pending.events,
        });
        while state.retained.len() > self.cfg.max_retained_traces {
            Self::evict_retained(state);
        }
    }

    /// Deterministic coin flip: same seed + same trace id → same keep
    /// decision on every run.
    fn keep_healthy(&self, trace: TraceId) -> bool {
        if self.cfg.healthy_sample_rate >= 1.0 {
            return true;
        }
        if self.cfg.healthy_sample_rate <= 0.0 {
            return false;
        }
        let h = splitmix64(self.cfg.seed ^ trace.0);
        (h as f64 / u64::MAX as f64) < self.cfg.healthy_sample_rate
    }

    /// Evicts the oldest healthy retained trace, falling back to the
    /// oldest anomalous one (counted separately — that is real evidence
    /// loss and should page someone via the metric).
    fn evict_retained(state: &mut SamplerState) {
        let idx = state
            .retained
            .iter()
            .position(|t| t.verdict == TraceVerdict::Healthy)
            .unwrap_or(0);
        if let Some(victim) = state.retained.remove(idx) {
            if victim.verdict.is_anomalous() {
                state.stats.dropped_anomalous_traces += 1;
            }
            state.stats.dropped_retained_traces += 1;
            state.stats.dropped_events += victim.events.len() as u64;
            state.buffered_events -= victim.events.len();
        }
    }

    /// Brings `buffered_events` back under the hard bound. Eviction
    /// order: healthy retained traces, then the oldest unheld in-flight
    /// trace, then anomalous retained traces, then held in-flight traces
    /// — nothing survives above the bound, and every drop is counted.
    fn enforce_bound(&self, state: &mut SamplerState) {
        while state.buffered_events > self.cfg.max_buffered_events {
            if state
                .retained
                .iter()
                .any(|t| t.verdict == TraceVerdict::Healthy)
            {
                Self::evict_retained(state);
                continue;
            }
            let unheld = state
                .pending
                .iter()
                .find(|(_, p)| !p.held)
                .map(|(&id, _)| id);
            if let Some(id) = unheld {
                Self::drop_pending(state, id);
                continue;
            }
            if !state.retained.is_empty() {
                Self::evict_retained(state);
                continue;
            }
            let held = state.pending.keys().next().copied();
            match held {
                Some(id) => Self::drop_pending(state, id),
                None => break,
            }
        }
    }

    fn drop_pending(state: &mut SamplerState, id: u64) {
        if let Some(p) = state.pending.remove(&id) {
            state.stats.dropped_pending_traces += 1;
            state.stats.dropped_events += p.events.len() as u64;
            state.buffered_events -= p.events.len();
        }
    }

    /// Snapshot of every retained trace, oldest first.
    pub fn retained(&self) -> Vec<RetainedTrace> {
        self.state.lock().retained.iter().cloned().collect()
    }

    /// The retained trace with this id, if the sampler kept it.
    pub fn retained_trace(&self, trace: TraceId) -> Option<RetainedTrace> {
        self.state
            .lock()
            .retained
            .iter()
            .find(|t| t.trace == trace)
            .cloned()
    }

    /// The span trees of every retained trace (profiler input).
    pub fn retained_span_trees(&self) -> Vec<Vec<Event>> {
        self.state
            .lock()
            .retained
            .iter()
            .map(|t| t.events.clone())
            .collect()
    }

    /// Current accounting.
    pub fn stats(&self) -> SamplerStats {
        let state = self.state.lock();
        let mut stats = state.stats;
        stats.buffered_events = state.buffered_events;
        stats.pending_traces = state.pending.len();
        stats.retained_traces = state.retained.len();
        stats
    }

    /// Retained traces with a given verdict.
    pub fn retained_with_verdict(&self, verdict: TraceVerdict) -> usize {
        self.state
            .lock()
            .retained
            .iter()
            .filter(|t| t.verdict == verdict)
            .count()
    }
}

/// What the span tree alone says about the trace's outcome.
fn derive_verdict(events: &[Event]) -> TraceVerdict {
    let mut failed = false;
    let mut deadline = false;
    let mut breaker = false;
    for e in events {
        match &e.kind {
            EventKind::InvokeEnd { outcome, .. } if *outcome != "ok" => failed = true,
            EventKind::DeadlineExhausted { .. } => deadline = true,
            EventKind::BreakerRejected { .. } => breaker = true,
            _ => {}
        }
    }
    if failed || deadline || breaker {
        if deadline {
            TraceVerdict::DeadlineExceeded
        } else if breaker {
            TraceVerdict::BreakerRejected
        } else {
            TraceVerdict::Error
        }
    } else {
        TraceVerdict::Healthy
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanCtx, SpanId, TenantId};
    use crate::tracer::Tracer;

    fn root_ctx(t: &Tracer) -> SpanCtx {
        t.new_trace()
    }

    fn end_ok(t: &Tracer, ctx: &SpanCtx) {
        t.emit(ctx, || EventKind::InvokeEnd {
            service: "svc".into(),
            outcome: "ok",
            latency_ms: 1.0,
        });
    }

    fn end_err(t: &Tracer, ctx: &SpanCtx) {
        t.emit(ctx, || EventKind::InvokeEnd {
            service: "svc".into(),
            outcome: "unavailable",
            latency_ms: 1.0,
        });
    }

    fn sampler_on(t: &Tracer, cfg: SamplerConfig) -> std::sync::Arc<TailSampler> {
        let s = std::sync::Arc::new(TailSampler::new(cfg));
        t.set_sampler(s.clone());
        s
    }

    #[test]
    fn error_traces_are_always_retained() {
        let t = Tracer::new();
        let s = sampler_on(
            &t,
            SamplerConfig {
                healthy_sample_rate: 0.0,
                ..SamplerConfig::default()
            },
        );
        for _ in 0..20 {
            let ctx = root_ctx(&t);
            end_err(&t, &ctx);
        }
        assert_eq!(s.retained_with_verdict(TraceVerdict::Error), 20);
        assert_eq!(s.stats().healthy_sampled_out, 0);
    }

    #[test]
    fn healthy_traces_downsample_deterministically() {
        let run = || {
            let t = Tracer::new();
            let s = sampler_on(
                &t,
                SamplerConfig {
                    healthy_sample_rate: 0.25,
                    seed: 7,
                    ..SamplerConfig::default()
                },
            );
            for _ in 0..400 {
                let ctx = root_ctx(&t);
                end_ok(&t, &ctx);
            }
            (s.retained().len(), s.stats().healthy_sampled_out)
        };
        let (kept1, out1) = run();
        let (kept2, out2) = run();
        assert_eq!((kept1, out1), (kept2, out2), "must be deterministic");
        assert_eq!(kept1 + out1 as usize, 400);
        assert!(
            (50..=150).contains(&kept1),
            "~25% of 400 expected, got {kept1}"
        );
    }

    #[test]
    fn explicit_verdict_overrides_healthy_but_not_errors() {
        let t = Tracer::new();
        let s = sampler_on(
            &t,
            SamplerConfig {
                healthy_sample_rate: 0.0,
                ..SamplerConfig::default()
            },
        );
        let ctx = root_ctx(&t);
        s.hold(ctx.trace);
        end_ok(&t, &ctx);
        s.finalize(ctx.trace, Some(TraceVerdict::SloViolation));
        assert_eq!(s.retained_with_verdict(TraceVerdict::SloViolation), 1);

        let ctx2 = root_ctx(&t);
        s.hold(ctx2.trace);
        end_err(&t, &ctx2);
        s.finalize(ctx2.trace, Some(TraceVerdict::Healthy));
        assert_eq!(
            s.retained_with_verdict(TraceVerdict::Error),
            1,
            "error evidence wins over a caller's Healthy claim"
        );
    }

    #[test]
    fn memory_bound_holds_and_drops_are_counted() {
        let t = Tracer::new();
        let s = sampler_on(
            &t,
            SamplerConfig {
                max_buffered_events: 50,
                max_retained_traces: 1000,
                healthy_sample_rate: 1.0,
                seed: 0,
            },
        );
        for _ in 0..40 {
            let ctx = root_ctx(&t);
            t.emit(&ctx, || EventKind::CacheMiss { key: "k".into() });
            end_ok(&t, &ctx);
        }
        let stats = s.stats();
        assert!(
            stats.buffered_events <= 50,
            "bound violated: {}",
            stats.buffered_events
        );
        assert!(stats.dropped_retained_traces > 0);
        assert_eq!(
            stats.dropped_events + stats.buffered_events as u64,
            stats.observed_events,
            "every observed event is either buffered or counted dropped"
        );
    }

    #[test]
    fn anomalous_traces_survive_healthy_evictions() {
        let t = Tracer::new();
        let s = sampler_on(
            &t,
            SamplerConfig {
                max_buffered_events: 30,
                max_retained_traces: 1000,
                healthy_sample_rate: 1.0,
                seed: 0,
            },
        );
        let err_ctx = root_ctx(&t);
        end_err(&t, &err_ctx);
        for _ in 0..60 {
            let ctx = root_ctx(&t);
            end_ok(&t, &ctx);
        }
        assert!(
            s.retained_trace(err_ctx.trace).is_some(),
            "error trace evicted while healthy traces remained"
        );
        assert_eq!(s.stats().dropped_anomalous_traces, 0);
    }

    #[test]
    fn verdict_derivation_prefers_deadline_then_breaker() {
        let mk = |kind: EventKind| Event {
            seq: 0,
            trace: TraceId(1),
            span: SpanId(1),
            parent: None,
            tenant: TenantId::NONE,
            at_ms: 0.0,
            kind,
        };
        let events = vec![
            mk(EventKind::BreakerRejected {
                service: "svc".into(),
            }),
            mk(EventKind::DeadlineExhausted { stage: "backoff" }),
        ];
        assert_eq!(derive_verdict(&events), TraceVerdict::DeadlineExceeded);
        assert_eq!(derive_verdict(&events[..1]), TraceVerdict::BreakerRejected);
    }
}
