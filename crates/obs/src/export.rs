//! Exporters: Prometheus text exposition, JSON Lines, and a trace-tree
//! renderer.
//!
//! The Prometheus format is the standard `name{label="v"} value`
//! exposition (histograms as `_bucket`/`_sum`/`_count` with cumulative
//! `le` buckets). JSONL emits one JSON object per event, built through
//! `cogsdk-json` so escaping is correct. The tree renderer reconstructs
//! the span hierarchy of a trace for humans.

use crate::event::Event;
use crate::metrics::{HistogramSnapshot, MetricsRegistry, Sample};
use cogsdk_json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders every metric in Prometheus text exposition format.
pub fn prometheus_text(metrics: &MetricsRegistry) -> String {
    let snap = metrics.snapshot();
    let mut out = String::new();
    let mut last_name = None::<String>;
    for Sample {
        name,
        labels,
        value,
    } in &snap.counters
    {
        type_header(&mut out, &mut last_name, name, "counter");
        let _ = writeln!(out, "{}{} {}", name, label_block(labels, None), value);
    }
    for Sample {
        name,
        labels,
        value,
    } in &snap.gauges
    {
        type_header(&mut out, &mut last_name, name, "gauge");
        let _ = writeln!(
            out,
            "{}{} {}",
            name,
            label_block(labels, None),
            fmt_f64(*value)
        );
    }
    for HistogramSnapshot {
        name,
        labels,
        buckets,
        exemplars,
        sum,
        count,
    } in &snap.histograms
    {
        type_header(&mut out, &mut last_name, name, "histogram");
        let mut cumulative = 0u64;
        for (idx, (bound, bucket_count)) in buckets.iter().enumerate() {
            cumulative += bucket_count;
            let le = if bound.is_infinite() {
                "+Inf".to_string()
            } else {
                fmt_f64(*bound)
            };
            let _ = write!(
                out,
                "{}_bucket{} {}",
                name,
                label_block(labels, Some(&le)),
                cumulative
            );
            // OpenMetrics-style exemplar: link the bucket to one retained
            // trace so an operator can jump from a latency spike to the
            // trace that exemplifies it.
            if let Some(Some(ex)) = exemplars.get(idx) {
                let _ = write!(
                    out,
                    " # {{trace_id=\"t{}\"}} {}",
                    ex.trace,
                    fmt_f64(ex.value)
                );
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            name,
            label_block(labels, None),
            fmt_f64(*sum)
        );
        let _ = writeln!(out, "{}_count{} {}", name, label_block(labels, None), count);
    }
    out
}

fn type_header(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = Some(name.to_string());
    }
}

fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a float the way Prometheus expects (no exponent for the
/// values this SDK produces; integral values keep a trailing `.0`-free
/// form only when exact).
fn fmt_f64(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Converts one event to a JSON object.
pub fn event_to_json(event: &Event) -> Json {
    let mut obj = Json::object();
    obj.insert("seq", event.seq as i64);
    obj.insert("trace", event.trace.0 as i64);
    obj.insert("span", event.span.0 as i64);
    if let Some(parent) = event.parent {
        obj.insert("parent", parent.0 as i64);
    }
    if event.tenant.is_some() {
        obj.insert("tenant", event.tenant.0 as i64);
    }
    obj.insert("at_ms", event.at_ms);
    obj.insert("event", event.kind.name());
    obj.insert("detail", event.kind.to_string());
    obj
}

/// Renders events as JSON Lines: one object per line, in input order.
pub fn trace_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_to_json(event).to_json());
        out.push('\n');
    }
    out
}

/// Renders events as JSON Lines followed by a trailing summary object
/// reporting how many events the ring buffer discarded, so `/trace`
/// consumers know the dump is incomplete instead of silently trusting it.
pub fn trace_jsonl_with_summary(events: &[Event], dropped: u64) -> String {
    let mut out = trace_jsonl(events);
    let mut summary = Json::object();
    summary.insert("summary", true);
    summary.insert("events", events.len() as i64);
    summary.insert("dropped", dropped as i64);
    out.push_str(&summary.to_json());
    out.push('\n');
    out
}

/// Renders a human-readable tree of the given events, grouped by trace,
/// with child spans indented under their parents.
pub fn render_trace_tree(events: &[Event]) -> String {
    // Parent links: a span's parent is whatever its events report.
    let mut parent_of: BTreeMap<u64, Option<u64>> = BTreeMap::new();
    for e in events {
        parent_of.entry(e.span.0).or_insert(e.parent.map(|p| p.0));
    }
    let depth_of = |span: u64| -> usize {
        let mut depth = 0;
        let mut cursor = span;
        // Bounded walk guards against cyclic links in corrupt input.
        for _ in 0..64 {
            match parent_of.get(&cursor).copied().flatten() {
                Some(parent) => {
                    depth += 1;
                    cursor = parent;
                }
                None => break,
            }
        }
        depth
    };
    let mut out = String::new();
    let mut current_trace = None;
    for e in events {
        if current_trace != Some(e.trace) {
            let _ = writeln!(out, "trace {}", e.trace);
            current_trace = Some(e.trace);
        }
        let indent = "  ".repeat(depth_of(e.span.0) + 1);
        let _ = writeln!(out, "{indent}[{:9.3}ms] {} {}", e.at_ms, e.span, e.kind);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::tracer::Tracer;

    #[test]
    fn prometheus_counters_and_labels() {
        let m = MetricsRegistry::new();
        m.inc_counter("sdk_calls_total", &[("service", "a"), ("outcome", "ok")]);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE sdk_calls_total counter"), "{text}");
        assert!(
            text.contains("sdk_calls_total{outcome=\"ok\",service=\"a\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let m = MetricsRegistry::new();
        m.observe("lat_ms", &[], 0.4);
        m.observe("lat_ms", &[], 3.0);
        let text = prometheus_text(&m);
        assert!(text.contains("lat_ms_bucket{le=\"0.5\"} 1"), "{text}");
        assert!(text.contains("lat_ms_bucket{le=\"4\"} 2"), "{text}");
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_ms_count 2"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let m = MetricsRegistry::new();
        m.inc_counter("x", &[("k", "a\"b\\c")]);
        let text = prometheus_text(&m);
        assert!(text.contains("x{k=\"a\\\"b\\\\c\"} 1"), "{text}");
    }

    #[test]
    fn newlines_in_label_values_cannot_break_exposition_lines() {
        let m = MetricsRegistry::new();
        m.inc_counter("x", &[("k", "line1\nline2")]);
        let text = prometheus_text(&m);
        assert!(text.contains("x{k=\"line1\\nline2\"} 1"), "{text}");
        // Every non-comment line must still be a complete sample.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.contains(' '), "truncated exposition line: {line:?}");
        }
    }

    #[test]
    fn histogram_exemplars_render_after_bucket_counts() {
        let m = MetricsRegistry::new();
        m.observe_with_exemplar("lat_ms", &[], 0.4, 7);
        let text = prometheus_text(&m);
        assert!(
            text.contains("lat_ms_bucket{le=\"0.5\"} 1 # {trace_id=\"t7\"} 0.4"),
            "{text}"
        );
    }

    #[test]
    fn trace_tree_survives_cyclic_and_self_parent_links() {
        use crate::event::{Event, SpanId, TenantId, TraceId};
        // Corrupt input: a span that is its own parent, and a two-span
        // cycle. The renderer must terminate with bounded indentation.
        let mk = |seq: u64, span: u64, parent: u64| Event {
            seq,
            trace: TraceId(1),
            span: SpanId(span),
            parent: Some(SpanId(parent)),
            tenant: TenantId::NONE,
            at_ms: seq as f64,
            kind: EventKind::CacheMiss { key: "k".into() },
        };
        let events = vec![mk(0, 5, 5), mk(1, 6, 7), mk(2, 7, 6)];
        let tree = render_trace_tree(&events);
        for line in tree.lines() {
            let indent = line.chars().take_while(|c| *c == ' ').count();
            assert!(indent <= 2 * 66, "unbounded indent: {indent}");
        }
        assert_eq!(tree.lines().count(), 4, "{tree}");
    }

    #[test]
    fn jsonl_summary_reports_drops() {
        let t = Tracer::with_capacity(2);
        let ctx = t.new_trace();
        for _ in 0..5 {
            t.emit(&ctx, || EventKind::CacheMiss { key: "k".into() });
        }
        let dump = trace_jsonl_with_summary(&t.events(), t.dropped());
        let last = dump.lines().last().unwrap();
        let summary = Json::parse(last).unwrap();
        assert_eq!(summary.get("dropped").and_then(Json::as_i64), Some(3));
        assert_eq!(summary.get("events").and_then(Json::as_i64), Some(2));
    }

    #[test]
    fn jsonl_round_trips_through_parser() {
        let t = Tracer::new();
        let root = t.new_trace();
        let child = t.child(&root);
        t.emit(&root, || EventKind::InvokeStart {
            class: "demo".into(),
            operation: "op \"quoted\"".into(),
        });
        t.emit(&child, || EventKind::CacheMiss { key: "k1".into() });
        let jsonl = trace_jsonl(&t.events());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("event").and_then(Json::as_str),
            Some("invoke_start")
        );
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(
            second.get("parent").and_then(Json::as_i64),
            Some(root.span.0 as i64)
        );
    }

    #[test]
    fn tree_indents_children() {
        let t = Tracer::new();
        let root = t.new_trace();
        let child = t.child(&root);
        t.emit(&root, || EventKind::InvokeStart {
            class: "demo".into(),
            operation: "op".into(),
        });
        t.emit(&child, || EventKind::FailoverLeg {
            service: "svc".into(),
            rank: 0,
        });
        let tree = render_trace_tree(&t.events());
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("trace "));
        let root_indent = lines[1].chars().take_while(|c| *c == ' ').count();
        let child_indent = lines[2].chars().take_while(|c| *c == ' ').count();
        assert!(child_indent > root_indent, "{tree}");
    }
}
