//! Critical-path profiling of retained span trees.
//!
//! The tail sampler keeps the traces worth explaining; this module
//! explains them. Each trace's events are folded into span intervals,
//! then two attributions run per span: **self time** (the span's
//! duration minus the union of its children's intervals — time the span
//! itself burned) and **critical-path time** (walking backwards from
//! each span's end through its latest-ending child, the chain that
//! actually determined end-to-end latency; parallel legs off that chain
//! contribute nothing, which is the point). Aggregated per operation,
//! the result answers "where would optimization move the p99" rather
//! than "which code ran the most".

use crate::event::{Event, EventKind};
use cogsdk_json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Recursion guard for corrupt parent links.
const MAX_DEPTH: usize = 64;

/// Aggregate cost of one operation across every profiled trace.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStat {
    /// Operation name (e.g. `invoke:nlu`, `attempt:nlu-a`, `cache`).
    pub op: String,
    /// Spans attributed to this operation.
    pub spans: u64,
    /// Summed span durations (ms); overlapping children double-count
    /// here by design — it is wall time *covered*, not consumed.
    pub total_ms: f64,
    /// Summed self time (ms): duration minus child coverage.
    pub self_ms: f64,
    /// Summed critical-path contribution (ms).
    pub critical_ms: f64,
}

/// A profile over a set of span trees.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Traces profiled.
    pub traces: usize,
    /// Spans profiled.
    pub spans: usize,
    /// Per-operation stats, sorted by critical-path contribution
    /// descending.
    pub ops: Vec<OpStat>,
    /// Folded flamegraph stacks: `root;child;... -> self_ms`, sorted by
    /// weight descending.
    pub folded: Vec<(String, f64)>,
}

impl Profile {
    /// The `k` operations contributing most critical-path time.
    pub fn top_k(&self, k: usize) -> &[OpStat] {
        &self.ops[..k.min(self.ops.len())]
    }

    /// Flamegraph-style folded-stacks text (one `stack weight` line per
    /// stack, collapsible by standard tooling).
    pub fn flamegraph(&self) -> String {
        let mut out = String::new();
        for (stack, weight) in &self.folded {
            let _ = writeln!(out, "{stack} {weight:.3}");
        }
        out
    }

    /// JSON export (the `/profile` payload).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("traces", self.traces as i64);
        obj.insert("spans", self.spans as i64);
        let mut ops = Json::Array(Vec::new());
        for op in &self.ops {
            let mut o = Json::object();
            o.insert("op", op.op.as_str());
            o.insert("spans", op.spans as i64);
            o.insert("total_ms", op.total_ms);
            o.insert("self_ms", op.self_ms);
            o.insert("critical_ms", op.critical_ms);
            ops.push(o);
        }
        obj.insert("ops", ops);
        let mut folded = Json::Array(Vec::new());
        for (stack, weight) in &self.folded {
            let mut f = Json::object();
            f.insert("stack", stack.as_str());
            f.insert("self_ms", *weight);
            folded.push(f);
        }
        obj.insert("folded", folded);
        obj
    }
}

#[derive(Debug, Clone)]
struct SpanAgg {
    start: f64,
    end: f64,
    parent: Option<u64>,
    op_priority: u8,
    op: String,
}

/// Profiles a set of span trees (one `Vec<Event>` per trace).
pub fn profile_traces(traces: &[Vec<Event>]) -> Profile {
    let mut ops: BTreeMap<String, OpStat> = BTreeMap::new();
    let mut folded: BTreeMap<String, f64> = BTreeMap::new();
    let mut span_count = 0usize;

    for events in traces {
        let spans = build_spans(events);
        span_count += spans.len();
        let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (&id, agg) in &spans {
            if let Some(parent) = agg.parent {
                if parent != id && spans.contains_key(&parent) {
                    children.entry(parent).or_default().push(id);
                }
            }
        }
        let roots: Vec<u64> = spans
            .iter()
            .filter(|(&id, agg)| match agg.parent {
                Some(p) => p == id || !spans.contains_key(&p),
                None => true,
            })
            .map(|(&id, _)| id)
            .collect();

        // Self time + totals for every span.
        for (&id, agg) in &spans {
            let duration = (agg.end - agg.start).max(0.0);
            let mut covered: Vec<(f64, f64)> = children
                .get(&id)
                .into_iter()
                .flatten()
                .filter_map(|c| spans.get(c))
                .map(|c| (c.start.max(agg.start), c.end.min(agg.end)))
                .filter(|(s, e)| e > s)
                .collect();
            covered.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut union = 0.0;
            let mut cursor = f64::NEG_INFINITY;
            for (s, e) in covered {
                let s = s.max(cursor);
                if e > s {
                    union += e - s;
                    cursor = e;
                } else {
                    cursor = cursor.max(e);
                }
            }
            let entry = ops.entry(agg.op.clone()).or_insert_with(|| OpStat {
                op: agg.op.clone(),
                spans: 0,
                total_ms: 0.0,
                self_ms: 0.0,
                critical_ms: 0.0,
            });
            entry.spans += 1;
            entry.total_ms += duration;
            entry.self_ms += (duration - union).max(0.0);
        }

        // Critical path + folded stacks from each root.
        for root in roots {
            walk_critical(root, &spans, &children, &mut ops, 0);
            fold_stacks(root, &spans, &children, String::new(), &mut folded, 0);
        }
    }

    let mut ops: Vec<OpStat> = ops.into_values().collect();
    ops.sort_by(|a, b| b.critical_ms.total_cmp(&a.critical_ms));
    let mut folded: Vec<(String, f64)> = folded.into_iter().collect();
    folded.sort_by(|a, b| b.1.total_cmp(&a.1));
    Profile {
        traces: traces.len(),
        spans: span_count,
        ops,
        folded,
    }
}

/// Attributes critical-path time: walk backwards from `span`'s end
/// through its latest-ending child; gaps between child chains are this
/// span's own contribution.
fn walk_critical(
    id: u64,
    spans: &BTreeMap<u64, SpanAgg>,
    children: &BTreeMap<u64, Vec<u64>>,
    ops: &mut BTreeMap<String, OpStat>,
    depth: usize,
) {
    if depth > MAX_DEPTH {
        return;
    }
    let Some(agg) = spans.get(&id) else {
        return;
    };
    let mut kids: Vec<(u64, &SpanAgg)> = children
        .get(&id)
        .into_iter()
        .flatten()
        .filter_map(|c| spans.get(c).map(|agg| (*c, agg)))
        .collect();
    kids.sort_by(|a, b| b.1.end.total_cmp(&a.1.end));
    let mut cursor = agg.end;
    let mut own = 0.0;
    let mut on_path: Vec<u64> = Vec::new();
    for (kid_id, kid) in &kids {
        if kid.end <= cursor && kid.end > agg.start {
            own += (cursor - kid.end).max(0.0);
            cursor = kid.start.max(agg.start);
            on_path.push(*kid_id);
        }
    }
    own += (cursor - agg.start).max(0.0);
    if let Some(stat) = ops.get_mut(&agg.op) {
        stat.critical_ms += own;
    }
    // Only children the backwards walk actually consumed are on the
    // critical path; parallel losers contribute nothing.
    for kid in on_path {
        walk_critical(kid, spans, children, ops, depth + 1);
    }
}

/// Accumulates folded flamegraph stacks weighted by self time.
fn fold_stacks(
    id: u64,
    spans: &BTreeMap<u64, SpanAgg>,
    children: &BTreeMap<u64, Vec<u64>>,
    prefix: String,
    folded: &mut BTreeMap<String, f64>,
    depth: usize,
) {
    if depth > MAX_DEPTH {
        return;
    }
    let Some(agg) = spans.get(&id) else {
        return;
    };
    let stack = if prefix.is_empty() {
        agg.op.clone()
    } else {
        format!("{prefix};{}", agg.op)
    };
    let duration = (agg.end - agg.start).max(0.0);
    let child_sum: f64 = children
        .get(&id)
        .into_iter()
        .flatten()
        .filter_map(|c| spans.get(c))
        .map(|c| (c.end.min(agg.end) - c.start.max(agg.start)).max(0.0))
        .sum();
    *folded.entry(stack.clone()).or_insert(0.0) += (duration - child_sum).max(0.0);
    for kid in children.get(&id).into_iter().flatten() {
        fold_stacks(*kid, spans, children, stack.clone(), folded, depth + 1);
    }
}

fn build_spans(events: &[Event]) -> BTreeMap<u64, SpanAgg> {
    let mut spans: BTreeMap<u64, SpanAgg> = BTreeMap::new();
    for e in events {
        let (lo, hi) = event_interval(e);
        let (priority, op) = op_name(&e.kind);
        let agg = spans.entry(e.span.0).or_insert_with(|| SpanAgg {
            start: lo,
            end: hi,
            parent: e.parent.map(|p| p.0),
            op_priority: 0,
            op: String::new(),
        });
        agg.start = agg.start.min(lo);
        agg.end = agg.end.max(hi);
        if agg.parent.is_none() {
            agg.parent = e.parent.map(|p| p.0);
        }
        if priority > agg.op_priority || agg.op.is_empty() {
            agg.op_priority = priority;
            agg.op = op;
        }
    }
    spans
}

/// The interval one event covers: its timestamp, widened backwards by
/// any latency it reports (events are emitted at completion).
fn event_interval(e: &Event) -> (f64, f64) {
    let back = match &e.kind {
        EventKind::InvokeEnd { latency_ms, .. } | EventKind::Attempt { latency_ms, .. } => {
            *latency_ms
        }
        EventKind::RetryBackoff { delay_ms, .. } => *delay_ms,
        EventKind::PoolDequeue { queue_wait_ms } => *queue_wait_ms,
        _ => 0.0,
    };
    (e.at_ms - back.max(0.0), e.at_ms)
}

fn op_name(kind: &EventKind) -> (u8, String) {
    match kind {
        EventKind::InvokeStart { class, .. } => (3, format!("invoke:{class}")),
        EventKind::InvokeEnd { service, .. } => {
            if service.is_empty() {
                (2, "invoke".to_string())
            } else {
                (2, format!("invoke:{service}"))
            }
        }
        EventKind::Attempt { service, .. } => (2, format!("attempt:{service}")),
        EventKind::FailoverLeg { service, .. } => (2, format!("failover:{service}")),
        EventKind::RedundantLegWon { service } | EventKind::RedundantLegLost { service, .. } => {
            (2, format!("redundant:{service}"))
        }
        EventKind::RetryBackoff { service, .. } => (1, format!("backoff:{service}")),
        EventKind::CacheHit { .. }
        | EventKind::CacheMiss { .. }
        | EventKind::CacheEvict { .. }
        | EventKind::CacheCoalesced { .. }
        | EventKind::CacheStaleServed { .. } => (1, "cache".to_string()),
        EventKind::PoolEnqueue { .. } | EventKind::PoolDequeue { .. } => (1, "pool".to_string()),
        EventKind::PredictionIssued { service, .. } => (1, format!("prediction:{service}")),
        EventKind::BreakerTransition { service, .. } | EventKind::BreakerRejected { service } => {
            (1, format!("breaker:{service}"))
        }
        EventKind::DeadlineExhausted { stage } => (1, format!("deadline:{stage}")),
        EventKind::GatewayShed { route } => (1, format!("shed:{route}")),
        EventKind::SloBurnAlert { route, .. } => (0, format!("slo:{route}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanId, TenantId, TraceId};

    fn ev(span: u64, parent: Option<u64>, at_ms: f64, kind: EventKind) -> Event {
        Event {
            seq: 0,
            trace: TraceId(1),
            span: SpanId(span),
            parent: parent.map(SpanId),
            tenant: TenantId::NONE,
            at_ms,
            kind,
        }
    }

    fn attempt(service: &str, latency_ms: f64) -> EventKind {
        EventKind::Attempt {
            service: service.into(),
            attempt: 1,
            outcome: "ok",
            latency_ms,
        }
    }

    /// Root [0, 100]; child A (attempt, latest-ending, 40..90); child B
    /// (attempt, parallel loser, 10..30 — overlapped by the root's own
    /// tail and off the critical chain after A).
    fn sample_trace() -> Vec<Event> {
        vec![
            ev(
                1,
                None,
                0.0,
                EventKind::InvokeStart {
                    class: "nlu".into(),
                    operation: "analyze".into(),
                },
            ),
            ev(2, Some(1), 30.0, attempt("nlu-b", 20.0)),
            ev(3, Some(1), 90.0, attempt("nlu-a", 50.0)),
            ev(
                1,
                None,
                100.0,
                EventKind::InvokeEnd {
                    service: "nlu-a".into(),
                    outcome: "ok",
                    latency_ms: 100.0,
                },
            ),
        ]
    }

    #[test]
    fn self_time_subtracts_child_coverage() {
        let p = profile_traces(&[sample_trace()]);
        let root = p.ops.iter().find(|o| o.op == "invoke:nlu").unwrap();
        // Root covers 100ms; children cover [10,30] and [40,90] = 70ms.
        assert!((root.self_ms - 30.0).abs() < 1e-9, "{root:?}");
        assert!((root.total_ms - 100.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_follows_latest_ending_chain() {
        let p = profile_traces(&[sample_trace()]);
        let a = p.ops.iter().find(|o| o.op == "attempt:nlu-a").unwrap();
        let b = p.ops.iter().find(|o| o.op == "attempt:nlu-b").unwrap();
        let root = p.ops.iter().find(|o| o.op == "invoke:nlu").unwrap();
        assert!((a.critical_ms - 50.0).abs() < 1e-9, "{a:?}");
        // nlu-b ends before the critical cursor reaches it only via the
        // chain: cursor moves 100→90 (root tail), A covers 90→40, then
        // root owns 40→30 ... B covers 30→10, root owns 10→0.
        assert!((b.critical_ms - 20.0).abs() < 1e-9, "{b:?}");
        assert!((root.critical_ms - 30.0).abs() < 1e-9, "{root:?}");
        let total: f64 = p.ops.iter().map(|o| o.critical_ms).sum();
        assert!(
            (total - 100.0).abs() < 1e-9,
            "critical path must sum to end-to-end latency, got {total}"
        );
    }

    #[test]
    fn flamegraph_folds_stacks_with_self_weights() {
        let p = profile_traces(&[sample_trace()]);
        let text = p.flamegraph();
        assert!(text.contains("invoke:nlu 30.000"), "{text}");
        assert!(text.contains("invoke:nlu;attempt:nlu-a 50.000"), "{text}");
    }

    #[test]
    fn top_k_ranks_by_critical_contribution() {
        let p = profile_traces(&[sample_trace()]);
        let top = p.top_k(1);
        assert_eq!(top[0].op, "attempt:nlu-a");
        assert!(p.top_k(100).len() >= 3);
    }

    #[test]
    fn corrupt_parent_links_terminate() {
        let events = vec![
            ev(1, Some(1), 0.0, attempt("self-loop", 1.0)),
            ev(2, Some(3), 0.0, attempt("cycle-a", 1.0)),
            ev(3, Some(2), 0.0, attempt("cycle-b", 1.0)),
        ];
        let p = profile_traces(&[events]);
        assert!(p.spans == 3);
    }

    #[test]
    fn json_export_carries_ops() {
        let p = profile_traces(&[sample_trace()]);
        let json = p.to_json();
        assert_eq!(json.get("traces").and_then(Json::as_i64), Some(1));
        assert!(json.get("ops").is_some());
    }
}
