//! Observability for the rich SDK: structured invocation tracing, a
//! labeled metrics registry, and Prometheus/JSONL exporters.
//!
//! The paper's rich SDK monitors services to *drive decisions* (ranking,
//! failover, prediction — §2); this crate makes the same machinery
//! *inspectable*. Three layers:
//!
//! 1. **Tracing** ([`Tracer`], [`Event`], [`EventKind`]): every
//!    invocation step — attempts, backoff sleeps, failover legs,
//!    redundant-leg races, cache probes, pool handoffs, predicted-vs-
//!    observed latency — lands in a bounded ring buffer as a typed event
//!    with span coordinates.
//! 2. **Metrics** ([`MetricsRegistry`]): labeled counters, gauges, and
//!    log-bucketed latency histograms, including an error breakdown by
//!    failure kind.
//! 3. **Exporters** ([`prometheus_text`], [`trace_jsonl`],
//!    [`render_trace_tree`]): Prometheus text exposition for `/metrics`,
//!    JSON Lines for `/trace`, and a human-readable trace tree.
//!
//! The [`Telemetry`] bundle carries a tracer + registry pair through the
//! SDK. [`Telemetry::disabled`] is the default everywhere: emission
//! becomes a single branch and no strings are built, so instrumented
//! code costs near-zero until someone turns telemetry on.
//!
//! # Examples
//!
//! ```
//! use cogsdk_obs::{EventKind, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! let ctx = telemetry.tracer().new_trace();
//! telemetry.tracer().emit(&ctx, || EventKind::CacheMiss { key: "k".into() });
//! telemetry.metrics().inc_counter("cache_requests_total", &[("result", "miss")]);
//!
//! assert_eq!(telemetry.tracer().events().len(), 1);
//! let text = cogsdk_obs::prometheus_text(telemetry.metrics());
//! assert!(text.contains("cache_requests_total{result=\"miss\"} 1"));
//! ```

mod event;
mod export;
mod metrics;
mod tracer;

pub use event::{Event, EventKind, SpanCtx, SpanId, TraceId};
pub use export::{event_to_json, prometheus_text, render_trace_tree, trace_jsonl};
pub use metrics::{
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, Sample, LATENCY_BUCKETS_MS,
};
pub use tracer::{Tracer, DEFAULT_EVENT_CAPACITY};

use std::sync::{Arc, OnceLock};

/// A tracer + metrics pair, cloned cheaply through every SDK layer.
#[derive(Clone)]
pub struct Telemetry {
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Live telemetry with the default event capacity.
    pub fn new() -> Telemetry {
        Telemetry {
            tracer: Tracer::new(),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Live telemetry retaining up to `event_capacity` trace events.
    pub fn with_event_capacity(event_capacity: usize) -> Telemetry {
        Telemetry {
            tracer: Tracer::with_capacity(event_capacity),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// The shared no-op bundle: emission is a branch, nothing allocates.
    pub fn disabled() -> Telemetry {
        static DISABLED: OnceLock<Telemetry> = OnceLock::new();
        DISABLED
            .get_or_init(|| Telemetry {
                tracer: Tracer::disabled(),
                metrics: Arc::new(MetricsRegistry::disabled()),
            })
            .clone()
    }

    /// Whether this bundle records anything.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// The tracer half.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics half.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_shared_and_inert() {
        let a = Telemetry::disabled();
        let b = Telemetry::disabled();
        assert!(!a.is_enabled());
        assert!(Arc::ptr_eq(&a.metrics, &b.metrics));
        a.metrics().inc_counter("x", &[]);
        assert_eq!(a.metrics().counter_value("x", &[]), None);
    }

    #[test]
    fn enabled_records_both_halves() {
        let t = Telemetry::new();
        assert!(t.is_enabled());
        let ctx = t.tracer().new_trace();
        t.tracer()
            .emit(&ctx, || EventKind::PoolEnqueue { queue_depth: 1 });
        t.metrics().inc_counter("jobs", &[]);
        assert_eq!(t.tracer().len(), 1);
        assert_eq!(t.metrics().counter_value("jobs", &[]), Some(1));
    }
}
