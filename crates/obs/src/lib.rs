//! Observability for the rich SDK: structured invocation tracing, a
//! labeled metrics registry, and Prometheus/JSONL exporters.
//!
//! The paper's rich SDK monitors services to *drive decisions* (ranking,
//! failover, prediction — §2); this crate makes the same machinery
//! *inspectable*. Three layers:
//!
//! 1. **Tracing** ([`Tracer`], [`Event`], [`EventKind`]): every
//!    invocation step — attempts, backoff sleeps, failover legs,
//!    redundant-leg races, cache probes, pool handoffs, predicted-vs-
//!    observed latency — lands in a bounded ring buffer as a typed event
//!    with span coordinates.
//! 2. **Metrics** ([`MetricsRegistry`]): labeled counters, gauges, and
//!    log-bucketed latency histograms, including an error breakdown by
//!    failure kind.
//! 3. **Exporters** ([`prometheus_text`], [`trace_jsonl`],
//!    [`render_trace_tree`]): Prometheus text exposition for `/metrics`,
//!    JSON Lines for `/trace`, and a human-readable trace tree.
//!
//! The [`Telemetry`] bundle carries a tracer + registry pair through the
//! SDK. [`Telemetry::disabled`] is the default everywhere: emission
//! becomes a single branch and no strings are built, so instrumented
//! code costs near-zero until someone turns telemetry on.
//!
//! # Examples
//!
//! ```
//! use cogsdk_obs::{EventKind, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! let ctx = telemetry.tracer().new_trace();
//! telemetry.tracer().emit(&ctx, || EventKind::CacheMiss { key: "k".into() });
//! telemetry.metrics().inc_counter("cache_requests_total", &[("result", "miss")]);
//!
//! assert_eq!(telemetry.tracer().events().len(), 1);
//! let text = cogsdk_obs::prometheus_text(telemetry.metrics());
//! assert!(text.contains("cache_requests_total{result=\"miss\"} 1"));
//! ```

mod event;
mod export;
mod metrics;
pub mod profile;
pub mod sampler;
pub mod slo;
mod tracer;

pub use event::{Event, EventKind, SpanCtx, SpanId, TenantId, TraceId};
pub use export::{
    event_to_json, prometheus_text, render_trace_tree, trace_jsonl, trace_jsonl_with_summary,
};
pub use metrics::{
    Exemplar, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, Sample,
    DEFAULT_MAX_SERIES_PER_METRIC, LATENCY_BUCKETS_MS, SERIES_REJECTED_METRIC,
};
pub use profile::{profile_traces, OpStat, Profile};
pub use sampler::{RetainedTrace, SamplerConfig, SamplerStats, TailSampler, TraceVerdict};
pub use slo::{SloConfig, SloEngine, SloRecord, SloSpec, SloStatus};
pub use tracer::{TimeSource, Tracer, DEFAULT_EVENT_CAPACITY, MAX_TENANTS};

use std::sync::{Arc, OnceLock};

/// A tracer + metrics pair, cloned cheaply through every SDK layer.
#[derive(Clone)]
pub struct Telemetry {
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Live telemetry with the default event capacity.
    pub fn new() -> Telemetry {
        Telemetry {
            tracer: Tracer::new(),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Live telemetry retaining up to `event_capacity` trace events.
    pub fn with_event_capacity(event_capacity: usize) -> Telemetry {
        Telemetry {
            tracer: Tracer::with_capacity(event_capacity),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// The shared no-op bundle: emission is a branch, nothing allocates.
    pub fn disabled() -> Telemetry {
        static DISABLED: OnceLock<Telemetry> = OnceLock::new();
        DISABLED
            .get_or_init(|| Telemetry {
                tracer: Tracer::disabled(),
                metrics: Arc::new(MetricsRegistry::disabled()),
            })
            .clone()
    }

    /// Whether this bundle records anything.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// The tracer half.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics half.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Attaches a tail sampler to the tracer and returns the handle.
    /// Every subsequent event is offered to it.
    pub fn enable_tail_sampling(&self, cfg: SamplerConfig) -> Arc<TailSampler> {
        let sampler = Arc::new(TailSampler::new(cfg));
        self.tracer.set_sampler(sampler.clone());
        sampler
    }

    /// The attached tail sampler, if any.
    pub fn sampler(&self) -> Option<Arc<TailSampler>> {
        self.tracer.sampler()
    }

    /// Publishes internal health counters — the tracer's ring-buffer
    /// drops and the sampler's accounting — into the metrics registry.
    /// Called before each `/metrics` export so overflow is never silent.
    pub fn sync_health_metrics(&self) {
        if !self.is_enabled() {
            return;
        }
        self.metrics
            .set_counter("sdk_trace_events_dropped_total", &[], self.tracer.dropped());
        if let Some(sampler) = self.sampler() {
            let stats = sampler.stats();
            let m = self.metrics();
            m.set_counter(
                "sdk_sampler_events_observed_total",
                &[],
                stats.observed_events,
            );
            m.set_gauge(
                "sdk_sampler_buffered_events",
                &[],
                stats.buffered_events as f64,
            );
            m.set_gauge(
                "sdk_sampler_retained_traces",
                &[],
                stats.retained_traces as f64,
            );
            m.set_counter(
                "sdk_sampler_traces_dropped_total",
                &[("reason", "sampled_out")],
                stats.healthy_sampled_out,
            );
            m.set_counter(
                "sdk_sampler_traces_dropped_total",
                &[("reason", "pending_evicted")],
                stats.dropped_pending_traces,
            );
            m.set_counter(
                "sdk_sampler_traces_dropped_total",
                &[("reason", "retained_evicted")],
                stats.dropped_retained_traces,
            );
            m.set_counter(
                "sdk_sampler_anomalous_dropped_total",
                &[],
                stats.dropped_anomalous_traces,
            );
            m.set_counter(
                "sdk_sampler_events_dropped_total",
                &[],
                stats.dropped_events,
            );
        }
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_shared_and_inert() {
        let a = Telemetry::disabled();
        let b = Telemetry::disabled();
        assert!(!a.is_enabled());
        assert!(Arc::ptr_eq(&a.metrics, &b.metrics));
        a.metrics().inc_counter("x", &[]);
        assert_eq!(a.metrics().counter_value("x", &[]), None);
    }

    #[test]
    fn enabled_records_both_halves() {
        let t = Telemetry::new();
        assert!(t.is_enabled());
        let ctx = t.tracer().new_trace();
        t.tracer()
            .emit(&ctx, || EventKind::PoolEnqueue { queue_depth: 1 });
        t.metrics().inc_counter("jobs", &[]);
        assert_eq!(t.tracer().len(), 1);
        assert_eq!(t.metrics().counter_value("jobs", &[]), Some(1));
    }
}
