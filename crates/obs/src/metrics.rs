//! The labeled metrics registry.
//!
//! Counters, gauges, and log-bucketed histograms keyed by metric name
//! plus a sorted label set — the Prometheus data model, sized for a
//! single process. Write paths take `&[(&str, &str)]` so a disabled
//! registry allocates nothing: labels stay on the caller's stack and the
//! whole call is one branch.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Histogram bucket upper bounds in milliseconds: 0.5 ms doubling up to
/// ~65 s, plus an implicit `+Inf` bucket.
pub const LATENCY_BUCKETS_MS: [f64; 18] = [
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0,
];

/// A metric identity: name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    /// Per-bucket counts; `counts[i]` counts values `<= LATENCY_BUCKETS_MS[i]`
    /// exclusive of earlier buckets; the final slot is the `+Inf` bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            counts: vec![0; LATENCY_BUCKETS_MS.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = LATENCY_BUCKETS_MS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// One exported counter or gauge sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample<T> {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: T,
}

/// One exported histogram, with non-cumulative per-bucket counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// `(upper_bound_ms, count_in_bucket)`; the final entry is the
    /// `+Inf` bucket with bound `f64::INFINITY`.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// A point-in-time copy of every metric, for exporters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by (name, labels).
    pub counters: Vec<Sample<u64>>,
    /// All gauges, sorted by (name, labels).
    pub gauges: Vec<Sample<f64>>,
    /// All histograms, sorted by (name, labels).
    pub histograms: Vec<HistogramSnapshot>,
}

/// Process-local metrics store. A disabled registry ignores all writes.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    state: Mutex<State>,
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            state: Mutex::new(State::default()),
        }
    }

    /// A registry that drops every write (near-zero cost).
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry {
            enabled: false,
            state: Mutex::new(State::default()),
        }
    }

    /// Whether writes are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds 1 to a counter.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)]) {
        self.add_counter(name, labels, 1);
    }

    /// Adds `delta` to a counter.
    pub fn add_counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        *self.state.lock().counters.entry(key).or_insert(0) += delta;
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        self.state.lock().gauges.insert(key, value);
    }

    /// Adds `delta` (possibly negative) to a gauge.
    pub fn add_gauge(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        *self.state.lock().gauges.entry(key).or_insert(0.0) += delta;
    }

    /// Records one observation in a log-bucketed histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        self.state
            .lock()
            .histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    /// Current value of one counter series, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = Key::new(name, labels);
        self.state.lock().counters.get(&key).copied()
    }

    /// Sum of a counter across every label set (for reconciliation
    /// checks).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.state
            .lock()
            .counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Current value of one gauge series, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = Key::new(name, labels);
        self.state.lock().gauges.get(&key).copied()
    }

    /// Snapshot of one histogram series, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        let key = Key::new(name, labels);
        let state = self.state.lock();
        let h = state.histograms.get(&key)?;
        Some(snapshot_histogram(&key, h))
    }

    /// Total observation count of a histogram across every label set.
    pub fn histogram_total_count(&self, name: &str) -> u64 {
        self.state
            .lock()
            .histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, h)| h.count)
            .sum()
    }

    /// A point-in-time copy of everything, for exporters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.state.lock();
        MetricsSnapshot {
            counters: state
                .counters
                .iter()
                .map(|(k, &v)| Sample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v,
                })
                .collect(),
            gauges: state
                .gauges
                .iter()
                .map(|(k, &v)| Sample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v,
                })
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, h)| snapshot_histogram(k, h))
                .collect(),
        }
    }

    /// Forgets every recorded series.
    pub fn clear(&self) {
        let mut state = self.state.lock();
        *state = State::default();
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

fn snapshot_histogram(key: &Key, h: &Histogram) -> HistogramSnapshot {
    let mut buckets: Vec<(f64, u64)> = LATENCY_BUCKETS_MS
        .iter()
        .zip(&h.counts)
        .map(|(&bound, &count)| (bound, count))
        .collect();
    buckets.push((f64::INFINITY, h.counts[LATENCY_BUCKETS_MS.len()]));
    HistogramSnapshot {
        name: key.name.clone(),
        labels: key.labels.clone(),
        buckets,
        sum: h.sum,
        count: h.count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.inc_counter("calls", &[("service", "a")]);
        m.inc_counter("calls", &[("service", "a")]);
        m.inc_counter("calls", &[("service", "b")]);
        assert_eq!(m.counter_value("calls", &[("service", "a")]), Some(2));
        assert_eq!(m.counter_value("calls", &[("service", "b")]), Some(1));
        assert_eq!(m.counter_sum("calls"), 3);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let m = MetricsRegistry::new();
        m.inc_counter("x", &[("b", "2"), ("a", "1")]);
        assert_eq!(m.counter_value("x", &[("a", "1"), ("b", "2")]), Some(1));
    }

    #[test]
    fn histogram_buckets_values_logarithmically() {
        let m = MetricsRegistry::new();
        m.observe("lat", &[], 0.3); // <= 0.5
        m.observe("lat", &[], 3.0); // <= 4
        m.observe("lat", &[], 1e9); // +Inf
        let snap = m.histogram("lat", &[]).unwrap();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[0], (0.5, 1));
        assert_eq!(snap.buckets[3], (4.0, 1));
        let (inf_bound, inf_count) = *snap.buckets.last().unwrap();
        assert!(inf_bound.is_infinite());
        assert_eq!(inf_count, 1);
        assert!((snap.sum - (0.3 + 3.0 + 1e9)).abs() < 1e-6);
    }

    #[test]
    fn gauges_set_and_add() {
        let m = MetricsRegistry::new();
        m.set_gauge("depth", &[], 4.0);
        m.add_gauge("depth", &[], -1.0);
        assert_eq!(m.gauge_value("depth", &[]), Some(3.0));
    }

    #[test]
    fn disabled_registry_ignores_writes() {
        let m = MetricsRegistry::disabled();
        m.inc_counter("calls", &[]);
        m.observe("lat", &[], 1.0);
        m.set_gauge("g", &[], 1.0);
        assert_eq!(m.counter_value("calls", &[]), None);
        assert!(m.snapshot().counters.is_empty());
    }
}
