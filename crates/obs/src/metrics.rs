//! The labeled metrics registry.
//!
//! Counters, gauges, and log-bucketed histograms keyed by metric name
//! plus a sorted label set — the Prometheus data model, sized for a
//! single process. Write paths take `&[(&str, &str)]` so a disabled
//! registry allocates nothing: labels stay on the caller's stack and the
//! whole call is one branch.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Histogram bucket upper bounds in milliseconds: 0.5 ms doubling up to
/// ~65 s, plus an implicit `+Inf` bucket.
pub const LATENCY_BUCKETS_MS: [f64; 18] = [
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0,
];

/// Default cap on distinct label sets per metric name. Writes beyond the
/// cap are rejected (and counted) instead of growing the registry without
/// bound — a tenant label gone wild cannot OOM the process.
pub const DEFAULT_MAX_SERIES_PER_METRIC: usize = 1_024;

/// Synthetic counter reporting writes rejected by the per-metric series
/// cap, labeled by the offending metric name.
pub const SERIES_REJECTED_METRIC: &str = "sdk_metric_series_rejected_total";

/// A metric identity: name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key {
            name: name.to_string(),
            labels,
        }
    }
}

/// An exemplar: one concrete trace that landed in a histogram bucket,
/// linking the aggregate back to retained evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// The trace id of the exemplifying observation.
    pub trace: u64,
    /// The observed value.
    pub value: f64,
}

#[derive(Debug, Clone)]
struct Histogram {
    /// Per-bucket counts; `counts[i]` counts values `<= LATENCY_BUCKETS_MS[i]`
    /// exclusive of earlier buckets; the final slot is the `+Inf` bucket.
    counts: Vec<u64>,
    /// Most recent exemplar per bucket (lazily sized on first exemplar).
    exemplars: Vec<Option<Exemplar>>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            counts: vec![0; LATENCY_BUCKETS_MS.len() + 1],
            exemplars: Vec::new(),
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64, exemplar: Option<u64>) {
        let idx = LATENCY_BUCKETS_MS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
        if let Some(trace) = exemplar {
            if self.exemplars.is_empty() {
                self.exemplars = vec![None; LATENCY_BUCKETS_MS.len() + 1];
            }
            self.exemplars[idx] = Some(Exemplar { trace, value });
        }
    }
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
    /// Distinct label sets per metric name (across all three kinds).
    series_per_name: BTreeMap<String, usize>,
    /// Writes rejected by the series cap, per metric name.
    rejected: BTreeMap<String, u64>,
}

impl State {
    /// Admits `key` for a map that does not yet contain it: bumps the
    /// per-name series count unless the metric is at `max_series`, in
    /// which case the write is rejected and counted.
    fn admit(&mut self, key: &Key, max_series: usize) -> bool {
        let n = self.series_per_name.entry(key.name.clone()).or_insert(0);
        if *n >= max_series {
            *self.rejected.entry(key.name.clone()).or_insert(0) += 1;
            return false;
        }
        *n += 1;
        true
    }
}

/// One exported counter or gauge sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample<T> {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: T,
}

/// One exported histogram, with non-cumulative per-bucket counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// `(upper_bound_ms, count_in_bucket)`; the final entry is the
    /// `+Inf` bucket with bound `f64::INFINITY`.
    pub buckets: Vec<(f64, u64)>,
    /// Most recent exemplar per bucket (empty when no exemplars were
    /// recorded; otherwise one slot per bucket).
    pub exemplars: Vec<Option<Exemplar>>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// A point-in-time copy of every metric, for exporters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counters, sorted by (name, labels).
    pub counters: Vec<Sample<u64>>,
    /// All gauges, sorted by (name, labels).
    pub gauges: Vec<Sample<f64>>,
    /// All histograms, sorted by (name, labels).
    pub histograms: Vec<HistogramSnapshot>,
}

/// Process-local metrics store. A disabled registry ignores all writes.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    max_series: usize,
    state: Mutex<State>,
}

impl MetricsRegistry {
    /// A live registry with the default per-metric series cap.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_series_limit(DEFAULT_MAX_SERIES_PER_METRIC)
    }

    /// A live registry capping each metric name at `max_series` distinct
    /// label sets; further label sets are rejected and counted under
    /// [`SERIES_REJECTED_METRIC`].
    pub fn with_series_limit(max_series: usize) -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            max_series: max_series.max(1),
            state: Mutex::new(State::default()),
        }
    }

    /// A registry that drops every write (near-zero cost).
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry {
            enabled: false,
            max_series: DEFAULT_MAX_SERIES_PER_METRIC,
            state: Mutex::new(State::default()),
        }
    }

    /// Whether writes are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds 1 to a counter.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)]) {
        self.add_counter(name, labels, 1);
    }

    /// Adds `delta` to a counter.
    pub fn add_counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        let mut state = self.state.lock();
        if !state.counters.contains_key(&key) && !state.admit(&key, self.max_series) {
            return;
        }
        *state.counters.entry(key).or_insert(0) += delta;
    }

    /// Sets a counter to an absolute value (for syncing an external
    /// monotonic count, e.g. the tracer's dropped-event tally).
    pub fn set_counter(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        let mut state = self.state.lock();
        if !state.counters.contains_key(&key) && !state.admit(&key, self.max_series) {
            return;
        }
        state.counters.insert(key, value);
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        let mut state = self.state.lock();
        if !state.gauges.contains_key(&key) && !state.admit(&key, self.max_series) {
            return;
        }
        state.gauges.insert(key, value);
    }

    /// Adds `delta` (possibly negative) to a gauge.
    pub fn add_gauge(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        let mut state = self.state.lock();
        if !state.gauges.contains_key(&key) && !state.admit(&key, self.max_series) {
            return;
        }
        *state.gauges.entry(key).or_insert(0.0) += delta;
    }

    /// Records one observation in a log-bucketed histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.observe_inner(name, labels, value, None);
    }

    /// Records one observation plus an exemplar trace id, so the bucket
    /// the value lands in links back to a concrete retained trace.
    pub fn observe_with_exemplar(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        trace: u64,
    ) {
        self.observe_inner(name, labels, value, Some(trace));
    }

    fn observe_inner(&self, name: &str, labels: &[(&str, &str)], value: f64, trace: Option<u64>) {
        if !self.enabled {
            return;
        }
        let key = Key::new(name, labels);
        let mut state = self.state.lock();
        if !state.histograms.contains_key(&key) && !state.admit(&key, self.max_series) {
            return;
        }
        state
            .histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .observe(value, trace);
    }

    /// Writes rejected by the series cap for one metric name.
    pub fn rejected_series(&self, name: &str) -> u64 {
        self.state.lock().rejected.get(name).copied().unwrap_or(0)
    }

    /// Distinct label sets currently recorded under one metric name.
    pub fn series_count(&self, name: &str) -> usize {
        self.state
            .lock()
            .series_per_name
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Current value of one counter series, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = Key::new(name, labels);
        self.state.lock().counters.get(&key).copied()
    }

    /// Sum of a counter across every label set (for reconciliation
    /// checks).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.state
            .lock()
            .counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Current value of one gauge series, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = Key::new(name, labels);
        self.state.lock().gauges.get(&key).copied()
    }

    /// Snapshot of one histogram series, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        let key = Key::new(name, labels);
        let state = self.state.lock();
        let h = state.histograms.get(&key)?;
        Some(snapshot_histogram(&key, h))
    }

    /// Total observation count of a histogram across every label set.
    pub fn histogram_total_count(&self, name: &str) -> u64 {
        self.state
            .lock()
            .histograms
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, h)| h.count)
            .sum()
    }

    /// A point-in-time copy of everything, for exporters. Series-cap
    /// rejections are surfaced as synthetic
    /// [`SERIES_REJECTED_METRIC`]`{metric="..."}` counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.state.lock();
        let mut counters: Vec<Sample<u64>> = state
            .counters
            .iter()
            .map(|(k, &v)| Sample {
                name: k.name.clone(),
                labels: k.labels.clone(),
                value: v,
            })
            .collect();
        for (metric, &rejected) in &state.rejected {
            counters.push(Sample {
                name: SERIES_REJECTED_METRIC.to_string(),
                labels: vec![("metric".to_string(), metric.clone())],
                value: rejected,
            });
        }
        MetricsSnapshot {
            counters,
            gauges: state
                .gauges
                .iter()
                .map(|(k, &v)| Sample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v,
                })
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, h)| snapshot_histogram(k, h))
                .collect(),
        }
    }

    /// Forgets every recorded series.
    pub fn clear(&self) {
        let mut state = self.state.lock();
        *state = State::default();
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

fn snapshot_histogram(key: &Key, h: &Histogram) -> HistogramSnapshot {
    let mut buckets: Vec<(f64, u64)> = LATENCY_BUCKETS_MS
        .iter()
        .zip(&h.counts)
        .map(|(&bound, &count)| (bound, count))
        .collect();
    buckets.push((f64::INFINITY, h.counts[LATENCY_BUCKETS_MS.len()]));
    HistogramSnapshot {
        name: key.name.clone(),
        labels: key.labels.clone(),
        buckets,
        exemplars: h.exemplars.clone(),
        sum: h.sum,
        count: h.count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.inc_counter("calls", &[("service", "a")]);
        m.inc_counter("calls", &[("service", "a")]);
        m.inc_counter("calls", &[("service", "b")]);
        assert_eq!(m.counter_value("calls", &[("service", "a")]), Some(2));
        assert_eq!(m.counter_value("calls", &[("service", "b")]), Some(1));
        assert_eq!(m.counter_sum("calls"), 3);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let m = MetricsRegistry::new();
        m.inc_counter("x", &[("b", "2"), ("a", "1")]);
        assert_eq!(m.counter_value("x", &[("a", "1"), ("b", "2")]), Some(1));
    }

    #[test]
    fn histogram_buckets_values_logarithmically() {
        let m = MetricsRegistry::new();
        m.observe("lat", &[], 0.3); // <= 0.5
        m.observe("lat", &[], 3.0); // <= 4
        m.observe("lat", &[], 1e9); // +Inf
        let snap = m.histogram("lat", &[]).unwrap();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[0], (0.5, 1));
        assert_eq!(snap.buckets[3], (4.0, 1));
        let (inf_bound, inf_count) = *snap.buckets.last().unwrap();
        assert!(inf_bound.is_infinite());
        assert_eq!(inf_count, 1);
        assert!((snap.sum - (0.3 + 3.0 + 1e9)).abs() < 1e-6);
    }

    #[test]
    fn gauges_set_and_add() {
        let m = MetricsRegistry::new();
        m.set_gauge("depth", &[], 4.0);
        m.add_gauge("depth", &[], -1.0);
        assert_eq!(m.gauge_value("depth", &[]), Some(3.0));
    }

    #[test]
    fn series_cap_rejects_and_counts() {
        let m = MetricsRegistry::with_series_limit(2);
        m.inc_counter("calls", &[("tenant", "a")]);
        m.inc_counter("calls", &[("tenant", "b")]);
        m.inc_counter("calls", &[("tenant", "c")]); // rejected
        m.inc_counter("calls", &[("tenant", "a")]); // existing series still writable
        assert_eq!(m.counter_value("calls", &[("tenant", "a")]), Some(2));
        assert_eq!(m.counter_value("calls", &[("tenant", "c")]), None);
        assert_eq!(m.series_count("calls"), 2);
        assert_eq!(m.rejected_series("calls"), 1);
        let snap = m.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|s| s.name == SERIES_REJECTED_METRIC && s.value == 1));
    }

    #[test]
    fn set_counter_is_absolute() {
        let m = MetricsRegistry::new();
        m.set_counter("dropped", &[], 7);
        m.set_counter("dropped", &[], 9);
        assert_eq!(m.counter_value("dropped", &[]), Some(9));
    }

    #[test]
    fn exemplars_attach_to_buckets() {
        let m = MetricsRegistry::new();
        m.observe_with_exemplar("lat", &[], 0.4, 42);
        m.observe("lat", &[], 3.0);
        let snap = m.histogram("lat", &[]).unwrap();
        assert_eq!(
            snap.exemplars[0],
            Some(Exemplar {
                trace: 42,
                value: 0.4
            })
        );
        assert_eq!(snap.exemplars[3], None, "plain observe leaves no exemplar");
    }

    #[test]
    fn disabled_registry_ignores_writes() {
        let m = MetricsRegistry::disabled();
        m.inc_counter("calls", &[]);
        m.observe("lat", &[], 1.0);
        m.set_gauge("g", &[], 1.0);
        assert_eq!(m.counter_value("calls", &[]), None);
        assert!(m.snapshot().counters.is_empty());
    }
}
