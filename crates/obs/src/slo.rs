//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] states, per route (and optionally per tenant), what a
//! *good* request is — answered ok within a latency threshold — and what
//! fraction must be good. The [`SloEngine`] classifies every request
//! into time buckets and evaluates the classic two-window burn rate: the
//! error budget's consumption speed over a fast window (default 5 min,
//! catches cliffs) and a slow window (default 1 h, filters blips). An
//! alert fires only when *both* windows burn above threshold, emitting an
//! [`EventKind::SloBurnAlert`] trace event and `sdk_slo_*` metrics.
//!
//! All arithmetic runs on the tracer's timestamp source, so under the
//! deterministic sim clock the same scenario trips the same alert at the
//! same virtual instant on every run.

use crate::event::{EventKind, SpanCtx};
use crate::Telemetry;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One latency + availability objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// The route this objective covers (gateway route label).
    pub route: String,
    /// Restrict to one tenant; `None` covers all traffic on the route.
    pub tenant: Option<String>,
    /// A request slower than this is *bad* even if it succeeded.
    pub latency_ms: f64,
    /// Target good fraction in `[0, 1)`, e.g. `0.99`.
    pub objective: f64,
}

impl SloSpec {
    /// An objective over every tenant of a route.
    pub fn new(route: impl Into<String>, latency_ms: f64, objective: f64) -> SloSpec {
        SloSpec {
            route: route.into(),
            tenant: None,
            latency_ms,
            objective: objective.clamp(0.0, 0.999_999),
        }
    }

    /// Restricts the objective to one tenant.
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> SloSpec {
        self.tenant = Some(tenant.into());
        self
    }

    fn matches(&self, route: &str, tenant: Option<&str>) -> bool {
        self.route == route
            && match &self.tenant {
                Some(t) => tenant == Some(t.as_str()),
                None => true,
            }
    }
}

/// Engine tuning: window widths and the shared burn threshold.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Fast evaluation window (ms).
    pub fast_window_ms: f64,
    /// Slow evaluation window (ms); also the retention horizon.
    pub slow_window_ms: f64,
    /// Burn rate (budget consumption speed) at which both windows must
    /// burn for an alert. 14.4 exhausts a 30-day budget in 2 days.
    pub burn_threshold: f64,
    /// Classification bucket width (ms).
    pub bucket_ms: f64,
    /// Minimum requests in the fast window before alerting (avoids
    /// firing on the first bad request of an idle route).
    pub min_requests: u64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            fast_window_ms: 300_000.0,
            slow_window_ms: 3_600_000.0,
            burn_threshold: 14.4,
            bucket_ms: 10_000.0,
            min_requests: 10,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    start_ms: f64,
    good: u64,
    bad: u64,
}

#[derive(Debug)]
struct ObjectiveState {
    spec: SloSpec,
    buckets: VecDeque<Bucket>,
    alerting: bool,
    alerts_fired: u64,
}

/// Point-in-time view of one objective, served by `/slo`.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The objective.
    pub spec: SloSpec,
    /// Good/bad counts in the fast window.
    pub fast_good: u64,
    /// Bad count in the fast window.
    pub fast_bad: u64,
    /// Good count in the slow window.
    pub slow_good: u64,
    /// Bad count in the slow window.
    pub slow_bad: u64,
    /// Current fast-window burn rate.
    pub fast_burn: f64,
    /// Current slow-window burn rate.
    pub slow_burn: f64,
    /// Whether the alert is currently active.
    pub alerting: bool,
    /// Rising edges since creation.
    pub alerts_fired: u64,
}

/// Outcome of recording one request against every matching objective.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloRecord {
    /// The request was bad under at least one matching objective.
    pub violated: bool,
    /// Alerts that fired (rising edges) because of this request.
    pub alerts_fired: usize,
}

/// Evaluates requests against registered objectives.
pub struct SloEngine {
    cfg: SloConfig,
    telemetry: Telemetry,
    objectives: Mutex<Vec<ObjectiveState>>,
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("objectives", &self.objectives.lock().len())
            .finish_non_exhaustive()
    }
}

impl SloEngine {
    /// An engine emitting alerts and metrics through `telemetry`.
    pub fn new(telemetry: Telemetry, cfg: SloConfig) -> SloEngine {
        SloEngine {
            cfg,
            telemetry,
            objectives: Mutex::new(Vec::new()),
        }
    }

    /// Registers one objective.
    pub fn add_objective(&self, spec: SloSpec) {
        self.objectives.lock().push(ObjectiveState {
            spec,
            buckets: VecDeque::new(),
            alerting: false,
            alerts_fired: 0,
        });
    }

    /// The active configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Classifies one finished request against every matching objective
    /// and re-evaluates burn rates. `ctx` anchors any fired alert event
    /// to the offending trace.
    pub fn record(
        &self,
        route: &str,
        tenant: Option<&str>,
        ok: bool,
        latency_ms: f64,
        ctx: &SpanCtx,
    ) -> SloRecord {
        let now = self.telemetry.tracer().now_ms();
        let mut out = SloRecord::default();
        let mut fired: Vec<(SloSpec, f64, f64)> = Vec::new();
        {
            let mut objectives = self.objectives.lock();
            for obj in objectives.iter_mut() {
                if !obj.spec.matches(route, tenant) {
                    continue;
                }
                let good = ok && latency_ms <= obj.spec.latency_ms;
                if !good {
                    out.violated = true;
                }
                self.ingest(obj, now, good);
                let (fast, slow, fast_total) = self.burn_rates(obj, now);
                let over = fast >= self.cfg.burn_threshold
                    && slow >= self.cfg.burn_threshold
                    && fast_total >= self.cfg.min_requests;
                if over && !obj.alerting {
                    obj.alerting = true;
                    obj.alerts_fired += 1;
                    out.alerts_fired += 1;
                    fired.push((obj.spec.clone(), fast, slow));
                } else if !over && obj.alerting && fast < self.cfg.burn_threshold / 2.0 {
                    // Hysteresis: clear only once the fast window cools.
                    obj.alerting = false;
                }
                self.publish_gauges(&obj.spec, fast, slow);
            }
        }
        for (spec, fast, slow) in fired {
            self.publish_alert(&spec, fast, slow, ctx);
        }
        out
    }

    fn ingest(&self, obj: &mut ObjectiveState, now: f64, good: bool) {
        let start = (now / self.cfg.bucket_ms).floor() * self.cfg.bucket_ms;
        let fresh = match obj.buckets.back() {
            Some(last) => last.start_ms < start,
            None => true,
        };
        if fresh {
            obj.buckets.push_back(Bucket {
                start_ms: start,
                good: 0,
                bad: 0,
            });
        }
        let last = obj.buckets.back_mut().expect("bucket just ensured");
        if good {
            last.good += 1;
        } else {
            last.bad += 1;
        }
        let horizon = now - self.cfg.slow_window_ms;
        while obj
            .buckets
            .front()
            .is_some_and(|b| b.start_ms + self.cfg.bucket_ms < horizon)
        {
            obj.buckets.pop_front();
        }
    }

    /// `(fast_burn, slow_burn, fast_window_total)`.
    fn burn_rates(&self, obj: &ObjectiveState, now: f64) -> (f64, f64, u64) {
        let budget = (1.0 - obj.spec.objective).max(1e-6);
        let window = |width: f64| {
            let from = now - width;
            let (mut good, mut bad) = (0u64, 0u64);
            for b in &obj.buckets {
                if b.start_ms + self.cfg.bucket_ms >= from {
                    good += b.good;
                    bad += b.bad;
                }
            }
            (good, bad)
        };
        let (fg, fb) = window(self.cfg.fast_window_ms);
        let (sg, sb) = window(self.cfg.slow_window_ms);
        let rate = |good: u64, bad: u64| {
            let total = good + bad;
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            }
        };
        (rate(fg, fb), rate(sg, sb), fg + fb)
    }

    fn labels<'a>(&self, spec: &'a SloSpec) -> Vec<(&'static str, &'a str)> {
        let mut labels = vec![("route", spec.route.as_str())];
        if let Some(t) = &spec.tenant {
            labels.push(("tenant", t.as_str()));
        }
        labels
    }

    fn publish_gauges(&self, spec: &SloSpec, fast: f64, slow: f64) {
        let metrics = self.telemetry.metrics();
        let mut labels = self.labels(spec);
        labels.push(("window", "fast"));
        metrics.set_gauge("sdk_slo_burn_rate", &labels, fast);
        labels.pop();
        labels.push(("window", "slow"));
        metrics.set_gauge("sdk_slo_burn_rate", &labels, slow);
    }

    fn publish_alert(&self, spec: &SloSpec, fast: f64, slow: f64, ctx: &SpanCtx) {
        self.telemetry
            .metrics()
            .inc_counter("sdk_slo_burn_alerts_total", &self.labels(spec));
        let (route, tenant) = (spec.route.clone(), spec.tenant.clone());
        self.telemetry
            .tracer()
            .emit(ctx, move || EventKind::SloBurnAlert {
                route,
                tenant: tenant.unwrap_or_default(),
                fast_burn: fast,
                slow_burn: slow,
            });
    }

    /// Point-in-time status of every objective (the `/slo` payload).
    pub fn snapshot(&self) -> Vec<SloStatus> {
        let now = self.telemetry.tracer().now_ms();
        self.objectives
            .lock()
            .iter()
            .map(|obj| {
                let from_fast = now - self.cfg.fast_window_ms;
                let from_slow = now - self.cfg.slow_window_ms;
                let (mut fg, mut fb, mut sg, mut sb) = (0u64, 0u64, 0u64, 0u64);
                for b in &obj.buckets {
                    if b.start_ms + self.cfg.bucket_ms >= from_slow {
                        sg += b.good;
                        sb += b.bad;
                    }
                    if b.start_ms + self.cfg.bucket_ms >= from_fast {
                        fg += b.good;
                        fb += b.bad;
                    }
                }
                let (fast_burn, slow_burn, _) = self.burn_rates(obj, now);
                SloStatus {
                    spec: obj.spec.clone(),
                    fast_good: fg,
                    fast_bad: fb,
                    slow_good: sg,
                    slow_bad: sb,
                    fast_burn,
                    slow_burn,
                    alerting: obj.alerting,
                    alerts_fired: obj.alerts_fired,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(threshold: f64) -> (Telemetry, SloEngine) {
        let telemetry = Telemetry::new();
        let cfg = SloConfig {
            burn_threshold: threshold,
            min_requests: 5,
            ..SloConfig::default()
        };
        let engine = SloEngine::new(telemetry.clone(), cfg);
        engine.add_objective(SloSpec::new("invoke", 50.0, 0.99));
        (telemetry, engine)
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let (telemetry, engine) = engine(14.4);
        let ctx = telemetry.tracer().new_trace();
        for _ in 0..100 {
            let r = engine.record("invoke", None, true, 10.0, &ctx);
            assert_eq!(r.alerts_fired, 0);
            assert!(!r.violated);
        }
        let status = &engine.snapshot()[0];
        assert_eq!(status.fast_bad, 0);
        assert!(!status.alerting);
    }

    #[test]
    fn sustained_errors_fire_once_per_episode() {
        let (telemetry, engine) = engine(14.4);
        let ctx = telemetry.tracer().new_trace();
        let mut fired = 0;
        for _ in 0..50 {
            fired += engine
                .record("invoke", None, false, 10.0, &ctx)
                .alerts_fired;
        }
        assert_eq!(fired, 1, "alert deduplicates while the episode lasts");
        assert_eq!(
            telemetry
                .metrics()
                .counter_value("sdk_slo_burn_alerts_total", &[("route", "invoke")]),
            Some(1)
        );
        assert!(telemetry
            .tracer()
            .events()
            .iter()
            .any(|e| e.kind.name() == "slo_burn_alert"));
    }

    #[test]
    fn slow_requests_are_bad_even_when_ok() {
        let (telemetry, engine) = engine(14.4);
        let ctx = telemetry.tracer().new_trace();
        let r = engine.record("invoke", None, true, 500.0, &ctx);
        assert!(r.violated);
    }

    #[test]
    fn tenant_scoped_objective_ignores_other_tenants() {
        let telemetry = Telemetry::new();
        let engine = SloEngine::new(telemetry.clone(), SloConfig::default());
        engine.add_objective(SloSpec::new("invoke", 50.0, 0.99).for_tenant("acme"));
        let ctx = telemetry.tracer().new_trace();
        let r = engine.record("invoke", Some("globex"), false, 10.0, &ctx);
        assert!(!r.violated, "objective scoped to acme must not match");
        let r = engine.record("invoke", Some("acme"), false, 10.0, &ctx);
        assert!(r.violated);
    }
}
