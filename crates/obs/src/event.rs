//! Typed trace events.
//!
//! Every interesting moment in an invocation — an attempt, a backoff
//! sleep, a failover leg, a cache probe, a pool handoff — is recorded as
//! one [`Event`]: a sequence number, span coordinates, a timestamp, and a
//! typed [`EventKind`]. Events are data, not log lines; exporters and the
//! trace-tree renderer decide how to show them.

use std::fmt;

/// Identifies one trace (one logical SDK operation end to end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies one tenant (interned by the [`Tracer`](crate::Tracer)).
///
/// `TenantId::NONE` means "no tenant attached"; emitters must not add a
/// `tenant` label for it so single-tenant deployments keep their original
/// metric series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The absent tenant.
    pub const NONE: TenantId = TenantId(0);

    /// The overflow bucket: assigned once the tenant interner is full so
    /// label cardinality stays bounded.
    pub const OVERFLOW: TenantId = TenantId(u16::MAX);

    /// Whether a tenant is attached.
    pub fn is_some(self) -> bool {
        self != TenantId::NONE
    }
}

/// Identifies one span (one unit of work inside a trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The coordinates an emitting call site needs: which trace, which span,
/// and the span's parent (if any). Cheap to copy; threaded by value
/// through the invocation layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// The trace this work belongs to.
    pub trace: TraceId,
    /// This unit of work.
    pub span: SpanId,
    /// The enclosing span, if this is nested work.
    pub parent: Option<SpanId>,
    /// The tenant this work is billed to ([`TenantId::NONE`] when the
    /// caller is untenanted). Child spans inherit it.
    pub tenant: TenantId,
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An SDK entry point began (class may be a single service's name for
    /// direct invocations).
    InvokeStart {
        /// Service class (or service name) being invoked.
        class: String,
        /// The request operation.
        operation: String,
    },
    /// The SDK entry point finished.
    InvokeEnd {
        /// The service that produced the final outcome (empty if none).
        service: String,
        /// Outcome kind: `"ok"` or an error kind.
        outcome: &'static str,
        /// End-to-end latency in (virtual) milliseconds.
        latency_ms: f64,
    },
    /// One attempt against one service.
    Attempt {
        /// The service attempted.
        service: String,
        /// 1-based attempt number within the retry budget.
        attempt: usize,
        /// Outcome kind: `"ok"` or an error kind.
        outcome: &'static str,
        /// Attempt latency in (virtual) milliseconds.
        latency_ms: f64,
    },
    /// A backoff sleep before a retry.
    RetryBackoff {
        /// The service being retried.
        service: String,
        /// 1-based retry number (first retry = 1).
        retry: usize,
        /// The backoff delay in milliseconds.
        delay_ms: f64,
    },
    /// Failover moved on to the next ranked candidate.
    FailoverLeg {
        /// The candidate service.
        service: String,
        /// 0-based position in the ranked candidate list.
        rank: usize,
    },
    /// A redundant-invocation leg that supplied the winning response.
    RedundantLegWon {
        /// The winning service.
        service: String,
    },
    /// A redundant-invocation leg that did not win.
    RedundantLegLost {
        /// The losing service.
        service: String,
        /// Outcome kind of the losing leg.
        outcome: &'static str,
    },
    /// A cache probe found a live entry.
    CacheHit {
        /// The cache key.
        key: String,
    },
    /// A cache probe missed (absent or expired).
    CacheMiss {
        /// The cache key.
        key: String,
    },
    /// An entry was evicted to make room.
    CacheEvict {
        /// The evicted key.
        key: String,
    },
    /// A caller joined another caller's in-flight fetch for the same key
    /// instead of invoking upstream itself (single-flight coalescing).
    CacheCoalesced {
        /// The cache key whose flight was joined.
        key: String,
    },
    /// An expired-but-recent entry was served while a refresh runs
    /// (stale-while-revalidate).
    CacheStaleServed {
        /// The cache key served stale.
        key: String,
    },
    /// A job was enqueued on the thread pool.
    PoolEnqueue {
        /// Jobs waiting (including this one) at enqueue time.
        queue_depth: usize,
    },
    /// A worker dequeued a job.
    PoolDequeue {
        /// How long the job waited in the queue (wall-clock ms).
        queue_wait_ms: f64,
    },
    /// A ranked invocation completed; compares the ranking's latency
    /// prediction with what was observed.
    PredictionIssued {
        /// The service the prediction was for.
        service: String,
        /// Predicted response time (ms).
        predicted_ms: f64,
        /// Observed response time (ms).
        observed_ms: f64,
    },
    /// A circuit breaker changed state.
    BreakerTransition {
        /// The guarded service.
        service: String,
        /// State before the transition (`closed`/`open`/`half_open`).
        from: &'static str,
        /// State after the transition.
        to: &'static str,
    },
    /// A circuit breaker refused an invocation without attempting it.
    BreakerRejected {
        /// The guarded service.
        service: String,
    },
    /// An end-to-end deadline budget ran out before the work finished.
    DeadlineExhausted {
        /// Where the budget ran out (`backoff`, `failover`, `redundant`,
        /// `nlu`, `kb`...).
        stage: &'static str,
    },
    /// The gateway shed a request under overload (bulkhead full).
    GatewayShed {
        /// The shed route.
        route: String,
    },
    /// A multi-window SLO burn-rate alert fired (fast and slow windows
    /// both over threshold).
    SloBurnAlert {
        /// The route the objective covers.
        route: String,
        /// The tenant the objective covers (empty = all tenants).
        tenant: String,
        /// Fast-window burn rate at the moment the alert fired.
        fast_burn: f64,
        /// Slow-window burn rate at the moment the alert fired.
        slow_burn: f64,
    },
}

impl EventKind {
    /// Stable machine name of the variant (used as the JSONL `event`
    /// field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::InvokeStart { .. } => "invoke_start",
            EventKind::InvokeEnd { .. } => "invoke_end",
            EventKind::Attempt { .. } => "attempt",
            EventKind::RetryBackoff { .. } => "retry_backoff",
            EventKind::FailoverLeg { .. } => "failover_leg",
            EventKind::RedundantLegWon { .. } => "redundant_leg_won",
            EventKind::RedundantLegLost { .. } => "redundant_leg_lost",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheEvict { .. } => "cache_evict",
            EventKind::CacheCoalesced { .. } => "cache_coalesced",
            EventKind::CacheStaleServed { .. } => "cache_stale_served",
            EventKind::PoolEnqueue { .. } => "pool_enqueue",
            EventKind::PoolDequeue { .. } => "pool_dequeue",
            EventKind::PredictionIssued { .. } => "prediction_issued",
            EventKind::BreakerTransition { .. } => "breaker_transition",
            EventKind::BreakerRejected { .. } => "breaker_rejected",
            EventKind::DeadlineExhausted { .. } => "deadline_exhausted",
            EventKind::GatewayShed { .. } => "gateway_shed",
            EventKind::SloBurnAlert { .. } => "slo_burn_alert",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::InvokeStart { class, operation } => {
                write!(f, "invoke_start class={class} operation={operation}")
            }
            EventKind::InvokeEnd {
                service,
                outcome,
                latency_ms,
            } => write!(
                f,
                "invoke_end service={service} outcome={outcome} latency={latency_ms:.1}ms"
            ),
            EventKind::Attempt {
                service,
                attempt,
                outcome,
                latency_ms,
            } => write!(
                f,
                "attempt #{attempt} service={service} outcome={outcome} latency={latency_ms:.1}ms"
            ),
            EventKind::RetryBackoff {
                service,
                retry,
                delay_ms,
            } => write!(
                f,
                "retry_backoff #{retry} service={service} delay={delay_ms:.1}ms"
            ),
            EventKind::FailoverLeg { service, rank } => {
                write!(f, "failover_leg rank={rank} service={service}")
            }
            EventKind::RedundantLegWon { service } => {
                write!(f, "redundant_leg_won service={service}")
            }
            EventKind::RedundantLegLost { service, outcome } => {
                write!(f, "redundant_leg_lost service={service} outcome={outcome}")
            }
            EventKind::CacheHit { key } => write!(f, "cache_hit key={key}"),
            EventKind::CacheMiss { key } => write!(f, "cache_miss key={key}"),
            EventKind::CacheEvict { key } => write!(f, "cache_evict key={key}"),
            EventKind::CacheCoalesced { key } => write!(f, "cache_coalesced key={key}"),
            EventKind::CacheStaleServed { key } => write!(f, "cache_stale_served key={key}"),
            EventKind::PoolEnqueue { queue_depth } => {
                write!(f, "pool_enqueue queue_depth={queue_depth}")
            }
            EventKind::PoolDequeue { queue_wait_ms } => {
                write!(f, "pool_dequeue queue_wait={queue_wait_ms:.3}ms")
            }
            EventKind::PredictionIssued {
                service,
                predicted_ms,
                observed_ms,
            } => write!(
                f,
                "prediction service={service} predicted={predicted_ms:.1}ms observed={observed_ms:.1}ms"
            ),
            EventKind::BreakerTransition { service, from, to } => {
                write!(f, "breaker_transition service={service} {from}->{to}")
            }
            EventKind::BreakerRejected { service } => {
                write!(f, "breaker_rejected service={service}")
            }
            EventKind::DeadlineExhausted { stage } => {
                write!(f, "deadline_exhausted stage={stage}")
            }
            EventKind::GatewayShed { route } => {
                write!(f, "gateway_shed route={route}")
            }
            EventKind::SloBurnAlert {
                route,
                tenant,
                fast_burn,
                slow_burn,
            } => write!(
                f,
                "slo_burn_alert route={route} tenant={tenant} fast_burn={fast_burn:.1} slow_burn={slow_burn:.1}"
            ),
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number (total order across all traces).
    pub seq: u64,
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// The span that emitted it.
    pub span: SpanId,
    /// The emitting span's parent, if any.
    pub parent: Option<SpanId>,
    /// The tenant of the emitting span ([`TenantId::NONE`] when
    /// untenanted).
    pub tenant: TenantId,
    /// Milliseconds since the tracer was created (wall clock by default;
    /// virtual time when a time source is installed).
    pub at_ms: f64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let kind = EventKind::CacheHit { key: "k".into() };
        assert_eq!(kind.name(), "cache_hit");
        assert_eq!(kind.to_string(), "cache_hit key=k");
    }

    #[test]
    fn resilience_event_names_and_display() {
        let kind = EventKind::BreakerTransition {
            service: "nlu-a".into(),
            from: "closed",
            to: "open",
        };
        assert_eq!(kind.name(), "breaker_transition");
        assert_eq!(
            kind.to_string(),
            "breaker_transition service=nlu-a closed->open"
        );
        assert_eq!(
            EventKind::BreakerRejected {
                service: "nlu-a".into()
            }
            .to_string(),
            "breaker_rejected service=nlu-a"
        );
        assert_eq!(
            EventKind::DeadlineExhausted { stage: "failover" }.name(),
            "deadline_exhausted"
        );
        assert_eq!(
            EventKind::GatewayShed {
                route: "/invoke".into()
            }
            .to_string(),
            "gateway_shed route=/invoke"
        );
    }

    #[test]
    fn display_formats_latency() {
        let kind = EventKind::Attempt {
            service: "svc".into(),
            attempt: 2,
            outcome: "timeout",
            latency_ms: 12.34,
        };
        assert_eq!(
            kind.to_string(),
            "attempt #2 service=svc outcome=timeout latency=12.3ms"
        );
    }
}
