//! Named entity disambiguation.
//!
//! §3 of the paper: "the same entity can be referred to in different ways.
//! For example, the country United States of America is also referred to as
//! USA, US, United States, America, and even the states." Resolving every
//! surface form to one canonical identifier "prevents the proliferation of
//! redundant database entries". Users can also "provide their own files
//! which identify synonyms which map to the same entity" for domains with
//! no existing service.

use crate::lexicon::{builtin_entities, EntityDef, EntityType};
use crate::tokenize::normalize;
use std::collections::HashMap;

/// A successfully disambiguated entity reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedEntity {
    /// Canonical identifier (e.g. `united_states`).
    pub id: String,
    /// Display name (e.g. `United States`).
    pub name: String,
    /// Entity type.
    pub kind: EntityType,
    /// DBpedia-style reference URL.
    pub dbpedia: String,
    /// YAGO-style reference URL.
    pub yago: String,
}

/// A catalog mapping surface forms to canonical entities.
///
/// # Examples
///
/// ```
/// use cogsdk_text::EntityCatalog;
///
/// let catalog = EntityCatalog::builtin();
/// let a = catalog.resolve("United States of America").unwrap();
/// let b = catalog.resolve("USA").unwrap();
/// assert_eq!(a.id, b.id); // one entity, not two
/// ```
#[derive(Debug, Clone)]
pub struct EntityCatalog {
    entities: Vec<EntityDef>,
    /// normalized alias -> index into `entities`.
    alias_index: HashMap<String, usize>,
    /// User-provided synonyms: normalized surface -> canonical id string
    /// (for domains not covered by any service, e.g. disease names, §3).
    custom: HashMap<String, String>,
}

impl EntityCatalog {
    /// Builds the catalog from the built-in gazetteer.
    pub fn builtin() -> EntityCatalog {
        EntityCatalog::from_entities(builtin_entities())
    }

    /// Builds a catalog from explicit entity definitions.
    pub fn from_entities(entities: Vec<EntityDef>) -> EntityCatalog {
        let mut alias_index = HashMap::new();
        for (i, e) in entities.iter().enumerate() {
            for alias in e.aliases {
                alias_index.insert(normalize_alias(alias), i);
            }
        }
        EntityCatalog {
            entities,
            alias_index,
            custom: HashMap::new(),
        }
    }

    /// Registers user-provided synonym pairs `(surface, canonical_id)`.
    /// Later registrations win over earlier ones but never over the
    /// built-in gazetteer.
    pub fn add_synonyms<I, S1, S2>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (S1, S2)>,
        S1: AsRef<str>,
        S2: Into<String>,
    {
        for (surface, id) in pairs {
            self.custom
                .insert(normalize_alias(surface.as_ref()), id.into());
        }
    }

    /// Parses a synonym file in the paper's simple format — one entity per
    /// line, `canonical_id: surface1, surface2, …` — and registers it.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered message for lines without a `:` separator.
    pub fn add_synonym_file(&mut self, contents: &str) -> Result<usize, String> {
        let mut added = 0;
        for (lineno, line) in contents.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (id, surfaces) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: missing ':' separator", lineno + 1))?;
            let id = id.trim().to_string();
            for surface in surfaces.split(',') {
                let surface = surface.trim();
                if !surface.is_empty() {
                    self.custom.insert(normalize_alias(surface), id.clone());
                    added += 1;
                }
            }
        }
        Ok(added)
    }

    /// Resolves a surface form to its canonical entity, if known.
    ///
    /// Custom synonyms resolve too, but produce synthetic entries (no
    /// gazetteer URLs) unless the canonical id is itself in the gazetteer.
    pub fn resolve(&self, surface: &str) -> Option<ResolvedEntity> {
        let key = normalize_alias(surface);
        if let Some(&i) = self.alias_index.get(&key) {
            return Some(self.materialize(i));
        }
        if let Some(id) = self.custom.get(&key) {
            // The custom id may map onto a known entity.
            if let Some(i) = self.entities.iter().position(|e| e.id == *id) {
                return Some(self.materialize(i));
            }
            return Some(ResolvedEntity {
                id: id.clone(),
                name: id.clone(),
                kind: EntityType::Technology,
                dbpedia: String::new(),
                yago: String::new(),
            });
        }
        None
    }

    /// Looks an entity up by its canonical id.
    pub fn by_id(&self, id: &str) -> Option<ResolvedEntity> {
        self.entities
            .iter()
            .position(|e| e.id == id)
            .map(|i| self.materialize(i))
    }

    /// All entity definitions in the catalog.
    pub fn entities(&self) -> &[EntityDef] {
        &self.entities
    }

    /// The number of registered custom synonyms.
    pub fn custom_len(&self) -> usize {
        self.custom.len()
    }

    fn materialize(&self, i: usize) -> ResolvedEntity {
        let e = &self.entities[i];
        ResolvedEntity {
            id: e.id.to_string(),
            name: e.name.to_string(),
            kind: e.kind,
            dbpedia: e.dbpedia_url(),
            yago: e.yago_url(),
        }
    }
}

impl Default for EntityCatalog {
    fn default() -> EntityCatalog {
        EntityCatalog::builtin()
    }
}

/// Normalizes an alias: lowercase, collapse whitespace, strip punctuation
/// around words.
fn normalize_alias(s: &str) -> String {
    s.split_whitespace()
        .map(normalize)
        .filter(|w| !w.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_all_aliases_resolve_to_one_entity() {
        let c = EntityCatalog::builtin();
        let expect = c.resolve("United States of America").unwrap();
        for alias in [
            "USA",
            "US",
            "United States",
            "America",
            "the states",
            "u.s.",
        ] {
            let got = c
                .resolve(alias)
                .unwrap_or_else(|| panic!("unresolved: {alias}"));
            assert_eq!(got.id, expect.id, "{alias}");
        }
        assert_eq!(expect.dbpedia, "http://dbpedia.org/resource/United_States");
    }

    #[test]
    fn naive_string_match_would_split_what_we_merge() {
        // The failure mode the paper warns about: naive matching treats
        // distinct strings as distinct entities.
        let c = EntityCatalog::builtin();
        let s1 = "United States of America";
        let s2 = "USA";
        assert_ne!(s1, s2, "naive comparison says different");
        assert_eq!(c.resolve(s1).unwrap().id, c.resolve(s2).unwrap().id);
    }

    #[test]
    fn unknown_surface_is_none() {
        let c = EntityCatalog::builtin();
        assert!(c.resolve("Atlantis").is_none());
        assert!(c.resolve("").is_none());
    }

    #[test]
    fn resolution_is_case_and_whitespace_insensitive() {
        let c = EntityCatalog::builtin();
        assert_eq!(
            c.resolve("  uNiTeD   sTaTeS  ").unwrap().id,
            "united_states"
        );
    }

    #[test]
    fn custom_synonyms_resolve() {
        let mut c = EntityCatalog::builtin();
        c.add_synonyms([("the big apple", "new_york"), ("GERD", "gastro_reflux")]);
        // Synonym onto a gazetteer entity gets full URLs.
        let ny = c.resolve("The Big Apple").unwrap();
        assert_eq!(ny.id, "new_york");
        assert!(!ny.dbpedia.is_empty());
        // Synonym onto an unknown domain id resolves synthetically.
        let gerd = c.resolve("gerd").unwrap();
        assert_eq!(gerd.id, "gastro_reflux");
        assert!(gerd.dbpedia.is_empty());
    }

    #[test]
    fn builtin_gazetteer_wins_over_custom() {
        let mut c = EntityCatalog::builtin();
        c.add_synonyms([("usa", "some_other_thing")]);
        assert_eq!(c.resolve("USA").unwrap().id, "united_states");
    }

    #[test]
    fn synonym_file_round_trip() {
        let mut c = EntityCatalog::builtin();
        let file = "\
# disease synonyms (paper §3: domains with no disambiguation service)
influenza: flu, the flu, grippe
diabetes_mellitus: diabetes, type 2 diabetes
";
        let added = c.add_synonym_file(file).unwrap();
        assert_eq!(added, 5);
        assert_eq!(c.resolve("the flu").unwrap().id, "influenza");
        assert_eq!(
            c.resolve("Type 2 Diabetes").unwrap().id,
            "diabetes_mellitus"
        );
        assert_eq!(c.custom_len(), 5);
    }

    #[test]
    fn synonym_file_rejects_malformed_lines() {
        let mut c = EntityCatalog::builtin();
        let err = c.add_synonym_file("no separator here").unwrap_err();
        assert!(err.contains("line 1"));
    }

    #[test]
    fn by_id_lookup() {
        let c = EntityCatalog::builtin();
        assert_eq!(c.by_id("ibm").unwrap().name, "IBM");
        assert!(c.by_id("nope").is_none());
    }
}
