//! Lexicon-based sentiment analysis.
//!
//! §2.2: "Sentiment analysis can provide a quantitative value for a
//! document indicating how positive or negative the document is. However,
//! an entire document may describe several different entities. It is often
//! more meaningful to obtain sentiment scores for individual entities" —
//! this module provides both document-level and entity-targeted scores,
//! like the Watson Developer Cloud services the paper uses.

use crate::lexicon::Lexicons;
use crate::ner::Mention;
use crate::tokenize::{tokenize, Token};

/// A sentiment score in `[-1, 1]` with the evidence count behind it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sentiment {
    /// Polarity: negative < 0 < positive.
    pub score: f64,
    /// Number of sentiment-bearing words that contributed.
    pub evidence: usize,
}

impl Sentiment {
    /// Coarse label: `"positive"`, `"negative"` or `"neutral"`.
    pub fn label(&self) -> &'static str {
        if self.score > 0.05 {
            "positive"
        } else if self.score < -0.05 {
            "negative"
        } else {
            "neutral"
        }
    }
}

/// Words that invert the polarity of the following sentiment word.
const NEGATORS: &[&str] = &["not", "no", "never", "n't", "without", "hardly", "barely"];

/// Intensity modifiers applied to the following sentiment word.
const INTENSIFIERS: &[(&str, f64)] = &[
    ("very", 1.5),
    ("extremely", 1.8),
    ("highly", 1.4),
    ("slightly", 0.5),
    ("somewhat", 0.7),
];

/// Scores a token window; the core shared by document and entity scoring.
fn score_tokens(tokens: &[Token], lexicons: &Lexicons) -> Sentiment {
    let mut total = 0.0;
    let mut evidence = 0;
    for (i, tok) in tokens.iter().enumerate() {
        let w = tok.lower();
        let Some(&weight) = lexicons.sentiment.get(w.as_str()) else {
            continue;
        };
        let mut value = weight;
        // Look back up to two tokens for negators/intensifiers, staying in
        // the same sentence.
        for back in 1..=2 {
            let Some(prev) = i.checked_sub(back).map(|j| &tokens[j]) else {
                break;
            };
            if prev.sentence != tok.sentence {
                break;
            }
            let pw = prev.lower();
            if NEGATORS.contains(&pw.as_str()) || pw.ends_with("n't") {
                value = -value * 0.8;
            } else if let Some(&(_, factor)) = INTENSIFIERS.iter().find(|(word, _)| *word == pw) {
                value *= factor;
            }
        }
        total += value;
        evidence += 1;
    }
    if evidence == 0 {
        return Sentiment::default();
    }
    // Average, squashed into [-1, 1].
    let mean = total / evidence as f64;
    Sentiment {
        score: mean.clamp(-1.0, 1.0),
        evidence,
    }
}

/// Document-level sentiment.
///
/// # Examples
///
/// ```
/// use cogsdk_text::{sentiment, Lexicons};
///
/// let lex = Lexicons::builtin();
/// let pos = sentiment::document("An excellent, impressive result.", &lex);
/// let neg = sentiment::document("A terrible, disappointing failure.", &lex);
/// assert_eq!(pos.label(), "positive");
/// assert_eq!(neg.label(), "negative");
/// ```
pub fn document(text: &str, lexicons: &Lexicons) -> Sentiment {
    score_tokens(&tokenize(text), lexicons)
}

/// Targeted sentiment for one entity mention: scores the window of
/// `window` tokens on each side of the mention, restricted to the
/// mention's sentence.
pub fn targeted(
    tokens: &[Token],
    mention: &Mention,
    window: usize,
    lexicons: &Lexicons,
) -> Sentiment {
    let lo = mention.token_index.saturating_sub(window);
    let hi = (mention.token_index + mention.token_len + window).min(tokens.len());
    let in_sentence: Vec<Token> = tokens[lo..hi]
        .iter()
        .filter(|t| t.sentence == mention.sentence)
        .cloned()
        .collect();
    score_tokens(&in_sentence, lexicons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambig::EntityCatalog;
    use crate::ner::recognize_tokens;

    fn lex() -> Lexicons {
        Lexicons::builtin()
    }

    #[test]
    fn neutral_text_scores_zero() {
        let s = document("The train departs at noon.", &lex());
        assert_eq!(s.score, 0.0);
        assert_eq!(s.evidence, 0);
        assert_eq!(s.label(), "neutral");
    }

    #[test]
    fn negation_flips_polarity() {
        let lexicons = lex();
        let plain = document("The results were good.", &lexicons);
        let negated = document("The results were not good.", &lexicons);
        assert!(plain.score > 0.0);
        assert!(negated.score < 0.0, "negated={:?}", negated);
    }

    #[test]
    fn intensifier_scales_magnitude() {
        let lexicons = lex();
        let plain = document("It was good.", &lexicons);
        let strong = document("It was very good.", &lexicons);
        assert!(strong.score > plain.score);
    }

    #[test]
    fn negation_does_not_cross_sentences() {
        let lexicons = lex();
        // "not" ends the previous sentence; "good" must stay positive.
        let s = document("They did not. Good results followed.", &lexicons);
        assert!(s.score > 0.0, "{s:?}");
    }

    #[test]
    fn score_is_clamped() {
        let s = document("excellent excellent excellent amazing wonderful", &lex());
        assert!(s.score <= 1.0);
        assert_eq!(s.evidence, 5);
    }

    #[test]
    fn entity_targeted_sentiment_separates_entities() {
        // One sentence praises IBM, another pans Microsoft: per-entity
        // scores must differ even though the document mixes both.
        let lexicons = lex();
        let catalog = EntityCatalog::builtin();
        let text = "IBM reported excellent impressive growth. Microsoft suffered a terrible disappointing loss.";
        let tokens = tokenize(text);
        let mentions = recognize_tokens(&tokens, &catalog);
        assert_eq!(mentions.len(), 2);
        let ibm = targeted(&tokens, &mentions[0], 6, &lexicons);
        let msft = targeted(&tokens, &mentions[1], 6, &lexicons);
        assert!(ibm.score > 0.2, "ibm={ibm:?}");
        assert!(msft.score < -0.2, "msft={msft:?}");
    }

    #[test]
    fn targeted_window_respects_bounds() {
        let lexicons = lex();
        let catalog = EntityCatalog::builtin();
        let text = "IBM";
        let tokens = tokenize(text);
        let mentions = recognize_tokens(&tokens, &catalog);
        let s = targeted(&tokens, &mentions[0], 10, &lexicons);
        assert_eq!(s.evidence, 0);
    }
}
