//! Tokenization and text normalization.

/// A token with its position in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text as it appeared (original casing).
    pub text: String,
    /// Byte offset of the token start in the source.
    pub start: usize,
    /// Index of the sentence this token belongs to.
    pub sentence: usize,
}

impl Token {
    /// Lower-cased form used for lexicon lookups.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }
}

/// Splits text into word tokens, tracking sentence boundaries.
///
/// A token is a maximal run of alphanumeric characters, apostrophes and
/// hyphens. Sentences end at `.`, `!` or `?`.
///
/// # Examples
///
/// ```
/// let toks = cogsdk_text::tokenize::tokenize("Hello world! It's fine.");
/// let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(words, vec!["Hello", "world", "It's", "fine"]);
/// assert_eq!(toks[0].sentence, 0);
/// assert_eq!(toks[2].sentence, 1);
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut sentence = 0usize;
    let mut cur = String::new();
    let mut cur_start = 0usize;
    for (i, ch) in text.char_indices() {
        if ch.is_alphanumeric() || ch == '\'' || ch == '-' {
            if cur.is_empty() {
                cur_start = i;
            }
            cur.push(ch);
        } else {
            if !cur.is_empty() {
                tokens.push(Token {
                    text: std::mem::take(&mut cur),
                    start: cur_start,
                    sentence,
                });
            }
            if matches!(ch, '.' | '!' | '?') {
                sentence += 1;
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(Token {
            text: cur,
            start: cur_start,
            sentence,
        });
    }
    tokens
}

/// Splits text into sentence strings.
///
/// # Examples
///
/// ```
/// let s = cogsdk_text::tokenize::sentences("One. Two! Three?");
/// assert_eq!(s, vec!["One", "Two", "Three"]);
/// ```
pub fn sentences(text: &str) -> Vec<String> {
    text.split(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Lower-cases and strips non-alphanumeric edges: the normal form used as
/// dictionary keys.
pub fn normalize(word: &str) -> String {
    word.trim_matches(|c: char| !c.is_alphanumeric())
        .to_lowercase()
}

/// A crude English stemmer handling plural `-s`/`-es` and `-ing`/`-ed`
/// suffixes. Enough to make keyword counting collapse trivial variants.
pub fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    let strip = |s: &str, suffix: &str, min_stem: usize| -> Option<String> {
        s.strip_suffix(suffix)
            .filter(|stem| stem.len() >= min_stem)
            .map(str::to_string)
    };
    if let Some(s) = strip(&w, "sses", 3) {
        return s + "ss";
    }
    if let Some(s) = strip(&w, "ies", 3) {
        return s + "y";
    }
    if let Some(s) = strip(&w, "ing", 4) {
        return s;
    }
    if let Some(s) = strip(&w, "ed", 4) {
        return s;
    }
    if w.ends_with("ss") || w.ends_with("us") {
        return w;
    }
    if let Some(s) = strip(&w, "s", 3) {
        return s;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_tracks_offsets() {
        let toks = tokenize("ab cd");
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[1].start, 3);
    }

    #[test]
    fn tokenize_keeps_hyphens_and_apostrophes() {
        let toks = tokenize("state-of-the-art isn't bad");
        let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, vec!["state-of-the-art", "isn't", "bad"]);
    }

    #[test]
    fn tokenize_empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("...!?").is_empty());
    }

    #[test]
    fn sentence_counting() {
        let toks = tokenize("A b. C! D? E");
        let sents: Vec<usize> = toks.iter().map(|t| t.sentence).collect();
        assert_eq!(sents, vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn sentences_splits_and_trims() {
        assert_eq!(
            sentences("  First thing.  Second thing!  "),
            vec!["First thing", "Second thing"]
        );
        assert!(sentences("").is_empty());
    }

    #[test]
    fn normalize_strips_punctuation() {
        assert_eq!(normalize("(Hello!)"), "hello");
        assert_eq!(normalize("U.S."), "u.s");
        assert_eq!(normalize("---"), "");
    }

    #[test]
    fn stemming_collapses_variants() {
        assert_eq!(stem("companies"), "company");
        assert_eq!(stem("running"), "runn");
        assert_eq!(stem("walked"), "walk");
        assert_eq!(stem("services"), "service");
        assert_eq!(stem("class"), "class");
        assert_eq!(stem("bus"), "bus");
        assert_eq!(stem("cats"), "cat");
        // Short words are left alone.
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("ing"), "ing");
    }

    #[test]
    fn token_lower() {
        let toks = tokenize("HeLLo");
        assert_eq!(toks[0].lower(), "hello");
    }
}
