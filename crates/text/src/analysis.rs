//! Full-document NLU analysis: the output schema of a natural language
//! understanding service.
//!
//! [`Analyzer::analyze`] runs every analysis (entities + disambiguation,
//! targeted sentiment, keywords, concepts, relations, document sentiment)
//! and returns a [`DocumentAnalysis`] that serializes to/from the JSON
//! wire schema spoken by the simulated NLU services.
//!
//! [`NluConfig`] models vendor quality differences: a lower-quality vendor
//! misses entities (recall < 1) and reports noisier sentiment. Degradation
//! is *deterministic* (hash-based) so experiments are reproducible.

use crate::concepts::{classify, Concept};
use crate::disambig::EntityCatalog;
use crate::keywords::{extract, DocumentFrequencies, Keyword};
use crate::lexicon::Lexicons;
use crate::ner::recognize_tokens;
use crate::relations::{extract as extract_relations, Relation};
use crate::sentiment::{document as document_sentiment, targeted, Sentiment};
use crate::tokenize::tokenize;
use cogsdk_json::{json, Json};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// An entity in an analysis result: all mentions of one canonical entity,
/// with entity-targeted sentiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityResult {
    /// Canonical id (disambiguated).
    pub canonical: String,
    /// Display name.
    pub name: String,
    /// Type label (`"country"`, `"organization"`, …).
    pub kind: String,
    /// Number of mentions in the document.
    pub count: usize,
    /// Mean targeted sentiment over the mentions.
    pub sentiment: Sentiment,
    /// DBpedia-style URL (empty for synthetic entities).
    pub dbpedia: String,
}

/// The complete analysis of one document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DocumentAnalysis {
    /// Disambiguated entities.
    pub entities: Vec<EntityResult>,
    /// Extracted keywords (not disambiguated, per §2.2).
    pub keywords: Vec<Keyword>,
    /// Taxonomy categories.
    pub concepts: Vec<Concept>,
    /// Entity-to-entity relations.
    pub relations: Vec<Relation>,
    /// Document-level sentiment.
    pub sentiment: Sentiment,
}

impl DocumentAnalysis {
    /// Serializes to the JSON wire schema.
    pub fn to_json(&self) -> Json {
        json!({
            "entities": (Json::Array(
                self.entities
                    .iter()
                    .map(|e| json!({
                        "id": (e.canonical.as_str()),
                        "name": (e.name.as_str()),
                        "type": (e.kind.as_str()),
                        "count": (e.count),
                        "sentiment": (e.sentiment.score),
                        "dbpedia": (e.dbpedia.as_str()),
                    }))
                    .collect(),
            )),
            "keywords": (Json::Array(
                self.keywords
                    .iter()
                    .map(|k| json!({
                        "text": (k.text.as_str()),
                        "relevance": (k.relevance),
                        "count": (k.count),
                    }))
                    .collect(),
            )),
            "concepts": (Json::Array(
                self.concepts
                    .iter()
                    .map(|c| json!({
                        "label": (c.label.as_str()),
                        "confidence": (c.confidence),
                    }))
                    .collect(),
            )),
            "relations": (Json::Array(
                self.relations
                    .iter()
                    .map(|r| json!({
                        "subject": (r.subject.as_str()),
                        "predicate": (r.predicate.as_str()),
                        "object": (r.object.as_str()),
                    }))
                    .collect(),
            )),
            "sentiment": {
                "score": (self.sentiment.score),
                "label": (self.sentiment.label()),
                "evidence": (self.sentiment.evidence),
            },
        })
    }

    /// Parses the JSON wire schema back into an analysis.
    ///
    /// Fields absent from the payload parse as empty; this mirrors how a
    /// real SDK must tolerate vendors that omit analyses.
    pub fn from_json(v: &Json) -> DocumentAnalysis {
        let entities = v
            .get("entities")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|e| {
                Some(EntityResult {
                    canonical: e.get("id")?.as_str()?.to_string(),
                    name: e
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    kind: e
                        .get("type")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    count: e.get("count").and_then(Json::as_usize).unwrap_or(1),
                    sentiment: Sentiment {
                        score: e.get("sentiment").and_then(Json::as_f64).unwrap_or(0.0),
                        evidence: 1,
                    },
                    dbpedia: e
                        .get("dbpedia")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                })
            })
            .collect();
        let keywords = v
            .get("keywords")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|k| {
                Some(Keyword {
                    text: k.get("text")?.as_str()?.to_string(),
                    relevance: k.get("relevance").and_then(Json::as_f64).unwrap_or(0.0),
                    count: k.get("count").and_then(Json::as_usize).unwrap_or(1),
                })
            })
            .collect();
        let concepts = v
            .get("concepts")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|c| {
                Some(Concept {
                    label: c.get("label")?.as_str()?.to_string(),
                    confidence: c.get("confidence").and_then(Json::as_f64).unwrap_or(0.0),
                })
            })
            .collect();
        let relations = v
            .get("relations")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|r| {
                Some(Relation {
                    subject: r.get("subject")?.as_str()?.to_string(),
                    predicate: r.get("predicate")?.as_str()?.to_string(),
                    object: r.get("object")?.as_str()?.to_string(),
                    sentence: 0,
                })
            })
            .collect();
        let sentiment = Sentiment {
            score: v
                .pointer("/sentiment/score")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            evidence: v
                .pointer("/sentiment/evidence")
                .and_then(Json::as_usize)
                .unwrap_or(0),
        };
        DocumentAnalysis {
            entities,
            keywords,
            concepts,
            relations,
            sentiment,
        }
    }
}

/// Vendor quality profile for an NLU service.
#[derive(Debug, Clone, PartialEq)]
pub struct NluConfig {
    /// A salt distinguishing vendors; drives deterministic degradation.
    pub vendor: String,
    /// Probability of *keeping* each true entity (recall).
    pub entity_recall: f64,
    /// Half-width of uniform noise added to sentiment scores.
    pub sentiment_noise: f64,
    /// Maximum keywords returned.
    pub keyword_limit: usize,
    /// Maximum concepts returned.
    pub concept_limit: usize,
    /// Whether relations are extracted at all (some vendors don't offer
    /// relation extraction).
    pub relations: bool,
}

impl NluConfig {
    /// A perfect-quality configuration (ground truth).
    pub fn perfect() -> NluConfig {
        NluConfig {
            vendor: "perfect".into(),
            entity_recall: 1.0,
            sentiment_noise: 0.0,
            keyword_limit: 10,
            concept_limit: 5,
            relations: true,
        }
    }

    /// A named vendor with the given recall and noise.
    ///
    /// # Panics
    ///
    /// Panics if `entity_recall` is outside `[0, 1]` or `sentiment_noise`
    /// is negative.
    pub fn vendor(name: impl Into<String>, entity_recall: f64, sentiment_noise: f64) -> NluConfig {
        assert!(
            (0.0..=1.0).contains(&entity_recall),
            "recall must be in [0, 1]"
        );
        assert!(sentiment_noise >= 0.0, "noise must be non-negative");
        NluConfig {
            vendor: name.into(),
            entity_recall,
            sentiment_noise,
            ..NluConfig::perfect()
        }
    }

    /// The quality score in `[0, 1]` this configuration amounts to; used
    /// as ground truth by ranking experiments.
    pub fn quality(&self) -> f64 {
        (self.entity_recall * (1.0 - self.sentiment_noise.min(1.0) / 2.0)).clamp(0.0, 1.0)
    }
}

/// Deterministic "randomness" from hashes: the same vendor analyzing the
/// same item always degrades it the same way.
fn unit_hash(vendor: &str, item: &str) -> f64 {
    let mut h = DefaultHasher::new();
    vendor.hash(&mut h);
    item.hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// The document analyzer: lexicons + entity catalog + corpus statistics.
#[derive(Debug, Clone)]
pub struct Analyzer {
    lexicons: Lexicons,
    catalog: EntityCatalog,
    frequencies: DocumentFrequencies,
}

impl Analyzer {
    /// Builds an analyzer over the built-in lexicons and gazetteer.
    pub fn with_default_lexicons() -> Analyzer {
        Analyzer {
            lexicons: Lexicons::builtin(),
            catalog: EntityCatalog::builtin(),
            frequencies: DocumentFrequencies::new(),
        }
    }

    /// Builds an analyzer with a custom catalog (e.g. extended with user
    /// synonym files).
    pub fn with_catalog(catalog: EntityCatalog) -> Analyzer {
        Analyzer {
            lexicons: Lexicons::builtin(),
            catalog,
            frequencies: DocumentFrequencies::new(),
        }
    }

    /// The entity catalog in use.
    pub fn catalog(&self) -> &EntityCatalog {
        &self.catalog
    }

    /// The lexicons in use.
    pub fn lexicons(&self) -> &Lexicons {
        &self.lexicons
    }

    /// Folds a document into the IDF statistics used by keyword scoring.
    pub fn learn_document_frequencies(&mut self, text: &str) {
        self.frequencies.add_document(text, &self.lexicons);
    }

    /// Analyzes one document under a vendor quality profile.
    pub fn analyze(&self, text: &str, config: &NluConfig) -> DocumentAnalysis {
        let tokens = tokenize(text);
        let mentions = recognize_tokens(&tokens, &self.catalog);

        // Group mentions by canonical id, computing targeted sentiment.
        let mut grouped: BTreeMap<String, EntityResult> = BTreeMap::new();
        for m in &mentions {
            let s = targeted(&tokens, m, 6, &self.lexicons);
            let entry = grouped.entry(m.canonical.clone()).or_insert_with(|| {
                let dbpedia = self
                    .catalog
                    .resolve(&m.surface)
                    .map(|r| r.dbpedia)
                    .unwrap_or_default();
                EntityResult {
                    canonical: m.canonical.clone(),
                    name: m.name.clone(),
                    kind: m.kind.label().to_string(),
                    count: 0,
                    sentiment: Sentiment::default(),
                    dbpedia,
                }
            });
            // Running mean of targeted sentiment over mentions.
            let n = entry.count as f64;
            entry.sentiment.score = (entry.sentiment.score * n + s.score) / (n + 1.0);
            entry.sentiment.evidence += s.evidence;
            entry.count += 1;
        }

        // Vendor degradation: drop entities deterministically by recall,
        // perturb sentiment by hash noise.
        let mut entities: Vec<EntityResult> = grouped
            .into_values()
            .filter(|e| {
                config.entity_recall >= 1.0
                    || unit_hash(&config.vendor, &e.canonical) < config.entity_recall
            })
            .map(|mut e| {
                if config.sentiment_noise > 0.0 {
                    let noise = (unit_hash(&config.vendor, &format!("s:{}", e.canonical)) - 0.5)
                        * 2.0
                        * config.sentiment_noise;
                    e.sentiment.score = (e.sentiment.score + noise).clamp(-1.0, 1.0);
                }
                e
            })
            .collect();
        entities.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.canonical.cmp(&b.canonical))
        });

        let keywords = extract(
            text,
            &self.lexicons,
            &self.frequencies,
            config.keyword_limit,
        );
        let concepts = classify(text, &self.lexicons, config.concept_limit);
        let relations = if config.relations {
            extract_relations(&tokens, &mentions)
        } else {
            Vec::new()
        };
        let mut sentiment = document_sentiment(text, &self.lexicons);
        if config.sentiment_noise > 0.0 {
            let noise = (unit_hash(&config.vendor, text) - 0.5) * 2.0 * config.sentiment_noise;
            sentiment.score = (sentiment.score + noise).clamp(-1.0, 1.0);
        }

        DocumentAnalysis {
            entities,
            keywords,
            concepts,
            relations,
            sentiment,
        }
    }
}

impl Default for Analyzer {
    fn default() -> Analyzer {
        Analyzer::with_default_lexicons()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "IBM reported excellent growth in the United States. \
        Microsoft acquired Oracle in a terrible deal. \
        The market praised IBM's innovative cloud strategy.";

    #[test]
    fn full_analysis_has_all_sections() {
        let a = Analyzer::with_default_lexicons();
        let r = a.analyze(DOC, &NluConfig::perfect());
        assert!(r.entities.len() >= 4, "{:?}", r.entities);
        assert!(!r.keywords.is_empty());
        assert!(!r.concepts.is_empty());
        assert_eq!(r.relations.len(), 1);
        assert_eq!(r.relations[0].predicate, "acquired");
        assert!(r.sentiment.evidence > 0);
    }

    #[test]
    fn entity_grouping_counts_mentions() {
        let a = Analyzer::with_default_lexicons();
        let r = a.analyze(DOC, &NluConfig::perfect());
        let ibm = r.entities.iter().find(|e| e.canonical == "ibm").unwrap();
        assert_eq!(ibm.count, 2);
        // Entities are sorted by mention count.
        assert_eq!(r.entities[0].canonical, "ibm");
    }

    #[test]
    fn targeted_sentiment_differs_between_entities() {
        let a = Analyzer::with_default_lexicons();
        let r = a.analyze(DOC, &NluConfig::perfect());
        let ibm = r.entities.iter().find(|e| e.canonical == "ibm").unwrap();
        let msft = r
            .entities
            .iter()
            .find(|e| e.canonical == "microsoft")
            .unwrap();
        assert!(ibm.sentiment.score > 0.0, "{ibm:?}");
        assert!(msft.sentiment.score < 0.0, "{msft:?}");
    }

    #[test]
    fn json_round_trip_preserves_analysis() {
        let a = Analyzer::with_default_lexicons();
        let r = a.analyze(DOC, &NluConfig::perfect());
        let back = DocumentAnalysis::from_json(&r.to_json());
        assert_eq!(back.entities.len(), r.entities.len());
        assert_eq!(back.keywords.len(), r.keywords.len());
        assert_eq!(back.relations.len(), r.relations.len());
        assert_eq!(back.entities[0].canonical, r.entities[0].canonical);
        assert!((back.sentiment.score - r.sentiment.score).abs() < 1e-9);
    }

    #[test]
    fn from_json_tolerates_missing_sections() {
        let r = DocumentAnalysis::from_json(&json!({"entities": []}));
        assert!(r.entities.is_empty());
        assert!(r.keywords.is_empty());
        assert_eq!(r.sentiment.score, 0.0);
    }

    #[test]
    fn degraded_vendor_misses_entities_deterministically() {
        let a = Analyzer::with_default_lexicons();
        let lossy = NluConfig::vendor("cheap-nlu", 0.5, 0.0);
        let r1 = a.analyze(DOC, &lossy);
        let r2 = a.analyze(DOC, &lossy);
        assert_eq!(r1, r2, "degradation must be deterministic");
        let perfect = a.analyze(DOC, &NluConfig::perfect());
        assert!(r1.entities.len() < perfect.entities.len());
    }

    #[test]
    fn different_vendors_differ() {
        let a = Analyzer::with_default_lexicons();
        let v1 = a.analyze(DOC, &NluConfig::vendor("v1", 0.6, 0.2));
        let v2 = a.analyze(DOC, &NluConfig::vendor("v2", 0.6, 0.2));
        let ids = |r: &DocumentAnalysis| {
            r.entities
                .iter()
                .map(|e| e.canonical.clone())
                .collect::<Vec<_>>()
        };
        // With 5+ entities and 60% recall, two vendors almost surely keep
        // different subsets (hash-based, but fixed for all time).
        assert!(ids(&v1) != ids(&v2) || v1.sentiment.score != v2.sentiment.score);
    }

    #[test]
    fn sentiment_noise_perturbs_but_clamps() {
        let a = Analyzer::with_default_lexicons();
        let noisy = a.analyze(DOC, &NluConfig::vendor("noisy", 1.0, 0.5));
        let clean = a.analyze(DOC, &NluConfig::perfect());
        assert_ne!(noisy.sentiment.score, clean.sentiment.score);
        assert!(noisy.sentiment.score.abs() <= 1.0);
    }

    #[test]
    fn quality_score_orders_vendors() {
        let good = NluConfig::vendor("good", 0.95, 0.05);
        let bad = NluConfig::vendor("bad", 0.5, 0.4);
        assert!(good.quality() > bad.quality());
        assert_eq!(NluConfig::perfect().quality(), 1.0);
    }

    #[test]
    #[should_panic(expected = "recall")]
    fn invalid_recall_rejected() {
        let _ = NluConfig::vendor("x", 1.5, 0.0);
    }

    #[test]
    fn disabled_relations_are_omitted() {
        let a = Analyzer::with_default_lexicons();
        let mut cfg = NluConfig::perfect();
        cfg.relations = false;
        let r = a.analyze(DOC, &cfg);
        assert!(r.relations.is_empty());
    }

    #[test]
    fn idf_learning_changes_keyword_ranking() {
        let mut a = Analyzer::with_default_lexicons();
        for _ in 0..30 {
            a.learn_document_frequencies("growth market growth market");
        }
        a.learn_document_frequencies("quantum leap");
        let r = a.analyze("growth quantum growth quantum", &NluConfig::perfect());
        assert_eq!(r.keywords[0].text, "quantum", "{:?}", r.keywords);
    }
}
