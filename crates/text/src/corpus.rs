//! Synthetic document corpus generation.
//!
//! The paper's experiments need "several text documents", "documents
//! returned by a Web search", and "news stories" (§2.2). This generator
//! produces a deterministic corpus of short articles — each about known
//! entities, slanted positive or negative, in a topic category — that the
//! search substrate indexes and the NLU substrate analyzes. Because the
//! generator plants the entities, topics and sentiment, experiments have
//! ground truth to score aggregation against.

use crate::lexicon::{builtin_entities, EntityDef, Lexicons};
use cogsdk_sim::rng::Rng;

/// One generated document.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedDoc {
    /// Stable document id.
    pub id: usize,
    /// Title (first sentence).
    pub title: String,
    /// Simulated URL where the document "lives".
    pub url: String,
    /// Body text.
    pub body: String,
    /// The topic category the document was generated in.
    pub topic: String,
    /// Whether the document is a news story (vs. a reference page).
    pub is_news: bool,
    /// Publication day (for news recency experiments).
    pub day: u32,
    /// Planted sentiment slant in [-1, 1]: the ground truth an analysis
    /// should approximately recover.
    pub slant: f64,
    /// Canonical ids of the entities planted in this document.
    pub planted_entities: Vec<String>,
}

/// Deterministic corpus generator.
///
/// # Examples
///
/// ```
/// use cogsdk_text::corpus::CorpusGenerator;
///
/// let docs = CorpusGenerator::new(7).generate(50);
/// assert_eq!(docs.len(), 50);
/// // Deterministic: same seed, same corpus.
/// assert_eq!(CorpusGenerator::new(7).generate(50), docs);
/// ```
#[derive(Debug)]
pub struct CorpusGenerator {
    rng: Rng,
    entities: Vec<EntityDef>,
    lexicons: Lexicons,
}

impl CorpusGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> CorpusGenerator {
        CorpusGenerator {
            rng: Rng::new(seed),
            entities: builtin_entities(),
            lexicons: Lexicons::builtin(),
        }
    }

    /// Generates `n` documents.
    pub fn generate(&mut self, n: usize) -> Vec<GeneratedDoc> {
        (0..n).map(|id| self.generate_one(id)).collect()
    }

    fn generate_one(&mut self, id: usize) -> GeneratedDoc {
        let topics: Vec<&&str> = self.lexicons.taxonomy.keys().collect();
        let topic = (**self.rng.choose(&topics)).to_string();
        let triggers = self.lexicons.taxonomy[topic.as_str()].clone();

        // Plant 1–3 entities.
        let n_entities = 1 + self.rng.below(3) as usize;
        let mut planted = Vec::new();
        for _ in 0..n_entities {
            let e = self.rng.choose(&self.entities).clone();
            if !planted.iter().any(|p: &EntityDef| p.id == e.id) {
                planted.push(e);
            }
        }

        // Slant: strength and sign of the sentiment vocabulary used.
        let slant = self.rng.uniform(-1.0, 1.0);
        let (pos_words, neg_words): (Vec<&str>, Vec<&str>) = {
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for (w, v) in &self.lexicons.sentiment {
                if *v > 0.0 {
                    pos.push(*w);
                } else {
                    neg.push(*w);
                }
            }
            pos.sort_unstable();
            neg.sort_unstable();
            (pos, neg)
        };

        let is_news = self.rng.chance(0.6);
        let day = self.rng.below(365) as u32;

        let mut sentences: Vec<String> = Vec::new();
        let n_sentences = 4 + self.rng.below(5) as usize;
        for s in 0..n_sentences {
            let entity = &planted[s % planted.len()];
            // Pick the display-cased alias (use name for the first
            // mention, then a random alias to exercise disambiguation).
            let surface = if s == 0 {
                entity.name.to_string()
            } else {
                {
                    // Explicit deref: `choose` returns `&&str`, and the
                    // inference for `T = str` fails without it.
                    #[allow(clippy::explicit_auto_deref)]
                    let alias: &str = *self.rng.choose(entity.aliases);
                    title_case(alias)
                }
            };
            let trigger_a = *self.rng.choose(&triggers);
            let trigger_b = *self.rng.choose(&triggers);
            let sentiment_word = if self.rng.next_f64() < (slant + 1.0) / 2.0 {
                *self.rng.choose(&pos_words)
            } else {
                *self.rng.choose(&neg_words)
            };
            let template = self.rng.below(4);
            let sentence = match template {
                0 => format!(
                    "{surface} announced {sentiment_word} {trigger_a} results this quarter"
                ),
                1 => format!(
                    "Analysts called the {trigger_a} {trigger_b} plans of {surface} {sentiment_word}"
                ),
                2 => format!(
                    "The {trigger_a} report described {surface} as {sentiment_word} for the {trigger_b} sector"
                ),
                _ => format!(
                    "{surface} faces {sentiment_word} {trigger_a} conditions in the {trigger_b} market"
                ),
            };
            sentences.push(sentence);
        }
        let title = sentences[0].clone();
        let body = sentences.join(". ") + ".";
        let host = if is_news {
            "news.example.com"
        } else {
            "ref.example.org"
        };
        GeneratedDoc {
            url: format!("https://{host}/{topic}/{id}"),
            id,
            title,
            body,
            topic,
            is_news,
            day,
            slant,
            planted_entities: planted.iter().map(|e| e.id.to_string()).collect(),
        }
    }
}

fn title_case(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(f) => f.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Analyzer, NluConfig};

    #[test]
    fn generation_is_deterministic() {
        let a = CorpusGenerator::new(99).generate(20);
        let b = CorpusGenerator::new(99).generate(20);
        assert_eq!(a, b);
        let c = CorpusGenerator::new(100).generate(20);
        assert_ne!(a, c);
    }

    #[test]
    fn documents_have_sane_structure() {
        let docs = CorpusGenerator::new(1).generate(30);
        for d in &docs {
            assert!(!d.title.is_empty());
            assert!(d.body.len() > d.title.len());
            assert!(d.url.starts_with("https://"));
            assert!(!d.planted_entities.is_empty());
            assert!(d.day < 365);
            assert!((-1.0..=1.0).contains(&d.slant));
        }
        assert!(docs.iter().any(|d| d.is_news));
        assert!(docs.iter().any(|d| !d.is_news));
    }

    #[test]
    fn planted_entities_are_recoverable_by_ner() {
        let docs = CorpusGenerator::new(5).generate(20);
        let analyzer = Analyzer::with_default_lexicons();
        let mut recovered = 0usize;
        let mut planted_total = 0usize;
        for d in &docs {
            let r = analyzer.analyze(&d.body, &NluConfig::perfect());
            let found: Vec<&str> = r.entities.iter().map(|e| e.canonical.as_str()).collect();
            for p in &d.planted_entities {
                planted_total += 1;
                if found.contains(&p.as_str()) {
                    recovered += 1;
                }
            }
        }
        let recall = recovered as f64 / planted_total as f64;
        assert!(recall > 0.9, "NER recall on planted entities: {recall}");
    }

    #[test]
    fn slant_correlates_with_measured_sentiment() {
        let docs = CorpusGenerator::new(11).generate(60);
        let analyzer = Analyzer::with_default_lexicons();
        let slants: Vec<f64> = docs.iter().map(|d| d.slant).collect();
        let measured: Vec<f64> = docs
            .iter()
            .map(|d| {
                analyzer
                    .analyze(&d.body, &NluConfig::perfect())
                    .sentiment
                    .score
            })
            .collect();
        let r = cogsdk_stats_free_pearson(&slants, &measured);
        assert!(r > 0.5, "slant/sentiment correlation too weak: {r}");
    }

    // A tiny local Pearson to avoid a dev-dependency cycle with
    // cogsdk-stats (which does not depend on this crate, but keeping the
    // text crate leaf-light is deliberate).
    fn cogsdk_stats_free_pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let sxx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
        let syy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
        sxy / (sxx * syy).sqrt()
    }

    #[test]
    fn topics_cover_taxonomy() {
        let docs = CorpusGenerator::new(3).generate(200);
        let mut topics: Vec<&str> = docs.iter().map(|d| d.topic.as_str()).collect();
        topics.sort_unstable();
        topics.dedup();
        assert!(topics.len() >= 8, "topics seen: {topics:?}");
    }
}
