//! Keyword extraction by TF-IDF.
//!
//! §2.2: language understanding services "extract things such as named
//! entities, keywords, concepts, taxonomies, and sentiment from a
//! document… Named entities are disambiguated, while keywords are not."

use crate::lexicon::Lexicons;
use crate::tokenize::{stem, tokenize};
use std::collections::HashMap;

/// An extracted keyword with its relevance score.
#[derive(Debug, Clone, PartialEq)]
pub struct Keyword {
    /// The keyword in stemmed, lowercase form.
    pub text: String,
    /// Relevance in `[0, 1]`, 1 being the most relevant in the document.
    pub relevance: f64,
    /// Raw occurrence count in the document.
    pub count: usize,
}

/// Document-frequency statistics for IDF weighting, built from a corpus.
#[derive(Debug, Clone, Default)]
pub struct DocumentFrequencies {
    docs: usize,
    freq: HashMap<String, usize>,
}

impl DocumentFrequencies {
    /// Creates empty statistics (IDF falls back to a constant).
    pub fn new() -> DocumentFrequencies {
        DocumentFrequencies::default()
    }

    /// Folds one document into the statistics.
    pub fn add_document(&mut self, text: &str, lexicons: &Lexicons) {
        self.docs += 1;
        let mut seen = std::collections::HashSet::new();
        for tok in tokenize(text) {
            let raw = tok.lower();
            let w = stem(&raw);
            if w.len() < 2
                || lexicons.stopwords.contains(raw.as_str())
                || lexicons.stopwords.contains(w.as_str())
            {
                continue;
            }
            if seen.insert(w.clone()) {
                *self.freq.entry(w).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents folded in.
    pub fn len(&self) -> usize {
        self.docs
    }

    /// Whether any documents have been folded in.
    pub fn is_empty(&self) -> bool {
        self.docs == 0
    }

    /// Smoothed inverse document frequency of `word`.
    pub fn idf(&self, word: &str) -> f64 {
        if self.docs == 0 {
            return 1.0;
        }
        let df = self.freq.get(word).copied().unwrap_or(0);
        ((1.0 + self.docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }
}

/// Extracts up to `limit` keywords from `text`, scored by TF-IDF and
/// normalized so the top keyword has relevance 1.0.
///
/// # Examples
///
/// ```
/// use cogsdk_text::{keywords, Lexicons};
///
/// let lex = Lexicons::builtin();
/// let df = keywords::DocumentFrequencies::new();
/// let kws = keywords::extract(
///     "The vaccine trial results: the vaccine was effective.",
///     &lex, &df, 5);
/// assert_eq!(kws[0].text, "vaccine");
/// assert_eq!(kws[0].count, 2);
/// ```
pub fn extract(
    text: &str,
    lexicons: &Lexicons,
    df: &DocumentFrequencies,
    limit: usize,
) -> Vec<Keyword> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut total = 0usize;
    for tok in tokenize(text) {
        let raw = tok.lower();
        let w = stem(&raw);
        if w.len() < 2
            || lexicons.stopwords.contains(raw.as_str())
            || lexicons.stopwords.contains(w.as_str())
        {
            continue;
        }
        // Purely numeric tokens are not keywords.
        if w.chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        *counts.entry(w).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(String, usize, f64)> = counts
        .into_iter()
        .map(|(w, c)| {
            let tf = c as f64 / total as f64;
            let s = tf * df.idf(&w);
            (w, c, s)
        })
        .collect();
    scored.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(limit);
    let top = scored.first().map(|(_, _, s)| *s).unwrap_or(1.0);
    scored
        .into_iter()
        .map(|(text, count, s)| Keyword {
            text,
            count,
            relevance: if top > 0.0 { s / top } else { 0.0 },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> Lexicons {
        Lexicons::builtin()
    }

    #[test]
    fn repeated_content_words_rank_first() {
        let kws = extract(
            "Solar power and solar panels: solar energy is growing. Energy!",
            &lex(),
            &DocumentFrequencies::new(),
            10,
        );
        assert_eq!(kws[0].text, "solar");
        assert_eq!(kws[0].count, 3);
        assert!((kws[0].relevance - 1.0).abs() < 1e-12);
        assert!(kws.iter().any(|k| k.text == "energy" && k.count == 2));
    }

    #[test]
    fn stopwords_and_numbers_excluded() {
        let kws = extract(
            "the and of 42 1234 data",
            &lex(),
            &DocumentFrequencies::new(),
            10,
        );
        let words: Vec<&str> = kws.iter().map(|k| k.text.as_str()).collect();
        assert_eq!(words, vec!["data"]);
    }

    #[test]
    fn empty_text_yields_no_keywords() {
        assert!(extract("", &lex(), &DocumentFrequencies::new(), 5).is_empty());
        assert!(extract("the of and", &lex(), &DocumentFrequencies::new(), 5).is_empty());
    }

    #[test]
    fn idf_downweights_corpus_wide_words() {
        let lexicons = lex();
        let mut df = DocumentFrequencies::new();
        // "market" appears in every document; "fusion" in one.
        for i in 0..20 {
            df.add_document(&format!("market report number {i}"), &lexicons);
        }
        df.add_document("fusion breakthrough market", &lexicons);
        assert_eq!(df.len(), 21);
        let kws = extract("fusion market fusion market", &lexicons, &df, 5);
        assert_eq!(kws[0].text, "fusion");
        assert!(kws[0].relevance > kws[1].relevance);
    }

    #[test]
    fn limit_is_respected() {
        let kws = extract(
            "alpha beta gamma delta epsilon zeta eta theta",
            &lex(),
            &DocumentFrequencies::new(),
            3,
        );
        assert_eq!(kws.len(), 3);
    }

    #[test]
    fn stemming_collapses_word_forms() {
        let kws = extract("vaccines vaccine", &lex(), &DocumentFrequencies::new(), 5);
        assert_eq!(kws.len(), 1);
        assert_eq!(kws[0].count, 2);
    }
}
