//! Relation extraction between entity mentions.
//!
//! §2.1: "if a text document is being analyzed for named entity recognition
//! or relationship extraction, it may be desirable to use multiple …
//! services. The results from these services could be combined." This
//! module implements the local relationship-extraction substrate: a
//! pattern-based extractor that links two entity mentions in the same
//! sentence through a known relation verb.

use crate::ner::Mention;
use crate::tokenize::Token;

/// A `(subject, predicate, object)` relation between two entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Canonical id of the subject entity.
    pub subject: String,
    /// The normalized relation predicate (e.g. `"acquired"`).
    pub predicate: String,
    /// Canonical id of the object entity.
    pub object: String,
    /// Sentence the relation was found in.
    pub sentence: usize,
}

/// Relation-bearing verbs the extractor recognizes, mapped to their
/// normalized predicate.
const RELATION_VERBS: &[(&str, &str)] = &[
    ("acquired", "acquired"),
    ("acquires", "acquired"),
    ("bought", "acquired"),
    ("buys", "acquired"),
    ("founded", "founded"),
    ("founds", "founded"),
    ("established", "founded"),
    ("partnered", "partnered_with"),
    ("partners", "partnered_with"),
    ("sued", "sued"),
    ("sues", "sued"),
    ("invested", "invested_in"),
    ("invests", "invested_in"),
    ("joined", "joined"),
    ("joins", "joined"),
    ("leads", "leads"),
    ("led", "leads"),
    ("visited", "visited"),
    ("visits", "visited"),
    ("supplies", "supplies"),
    ("supplied", "supplies"),
    ("competes", "competes_with"),
    ("competed", "competes_with"),
];

/// Extracts relations: for each pair of consecutive mentions in one
/// sentence, if a relation verb occurs strictly between them, a relation
/// is emitted with the left mention as subject.
///
/// # Examples
///
/// ```
/// use cogsdk_text::{relations, ner, tokenize, EntityCatalog};
///
/// let catalog = EntityCatalog::builtin();
/// let text = "IBM acquired Oracle last year.";
/// let tokens = tokenize::tokenize(text);
/// let mentions = ner::recognize_tokens(&tokens, &catalog);
/// let rels = relations::extract(&tokens, &mentions);
/// assert_eq!(rels[0].subject, "ibm");
/// assert_eq!(rels[0].predicate, "acquired");
/// assert_eq!(rels[0].object, "oracle");
/// ```
pub fn extract(tokens: &[Token], mentions: &[Mention]) -> Vec<Relation> {
    let mut relations = Vec::new();
    for pair in mentions.windows(2) {
        let (left, right) = (&pair[0], &pair[1]);
        if left.sentence != right.sentence {
            continue;
        }
        let between_start = left.token_index + left.token_len;
        let between_end = right.token_index;
        if between_start >= between_end {
            continue;
        }
        for tok in &tokens[between_start..between_end] {
            let w = tok.lower();
            if let Some((_, predicate)) = RELATION_VERBS.iter().find(|(v, _)| *v == w) {
                relations.push(Relation {
                    subject: left.canonical.clone(),
                    predicate: (*predicate).to_string(),
                    object: right.canonical.clone(),
                    sentence: left.sentence,
                });
                break;
            }
        }
    }
    relations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disambig::EntityCatalog;
    use crate::ner::recognize_tokens;
    use crate::tokenize::tokenize;

    fn rels(text: &str) -> Vec<Relation> {
        let catalog = EntityCatalog::builtin();
        let tokens = tokenize(text);
        let mentions = recognize_tokens(&tokens, &catalog);
        extract(&tokens, &mentions)
    }

    #[test]
    fn verb_variants_normalize_to_one_predicate() {
        for text in [
            "IBM acquired Oracle.",
            "IBM buys Oracle.",
            "IBM bought Oracle.",
        ] {
            let r = rels(text);
            assert_eq!(r.len(), 1, "{text}");
            assert_eq!(r[0].predicate, "acquired", "{text}");
        }
    }

    #[test]
    fn subject_object_order_is_textual() {
        let r = rels("Microsoft sued Google.");
        assert_eq!(r[0].subject, "microsoft");
        assert_eq!(r[0].object, "google");
    }

    #[test]
    fn relation_requires_verb_between_mentions() {
        assert!(rels("IBM Oracle collaborate quietly.").is_empty());
        assert!(rels("IBM and Oracle.").is_empty());
    }

    #[test]
    fn relations_do_not_cross_sentences() {
        assert!(rels("IBM acquired. Oracle celebrated.").is_empty());
    }

    #[test]
    fn multiple_relations_in_one_document() {
        let r = rels("IBM acquired Oracle. Google partnered Samsung.");
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].predicate, "acquired");
        assert_eq!(r[1].predicate, "partnered_with");
        assert_eq!(r[1].sentence, 1);
    }

    #[test]
    fn chain_of_three_mentions_yields_pairwise_relations() {
        let r = rels("IBM acquired Oracle acquired Intel.");
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].object, "oracle");
        assert_eq!(r[1].subject, "oracle");
        assert_eq!(r[1].object, "intel");
    }
}
