//! NLU vendors as simulated remote services.
//!
//! Wraps the analyzer ([`Analyzer`]) into [`SimService`] endpoints:
//!
//! [`Analyzer`]: crate::analysis::Analyzer
//! each vendor has its own quality profile ([`NluConfig`]), latency model,
//! cost model and failure plan, reproducing the heterogeneous fleet of
//! "natural language understanding services … available from several
//! companies including IBM, Amazon, Google, and Microsoft" (§2.2).
//!
//! Wire protocol (all vendors):
//! request `{"text": "..."}` → response: the
//! [`DocumentAnalysis`](crate::DocumentAnalysis) JSON schema.

use crate::analysis::{Analyzer, NluConfig};
use cogsdk_json::Json;
use cogsdk_sim::cost::{CostModel, MicroDollars};
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::service::SimService;
use cogsdk_sim::SimEnv;
use std::sync::Arc;

/// Specification of one NLU vendor.
#[derive(Debug, Clone)]
pub struct NluVendorSpec {
    /// Unique service name (e.g. `"nlu-alpha"`).
    pub name: String,
    /// Quality profile.
    pub config: NluConfig,
    /// Latency model.
    pub latency: LatencyModel,
    /// Cost model.
    pub cost: CostModel,
    /// Failure plan.
    pub failures: FailurePlan,
}

impl NluVendorSpec {
    /// A reasonable default spec for a named vendor.
    pub fn new(name: impl Into<String>, config: NluConfig) -> NluVendorSpec {
        NluVendorSpec {
            name: name.into(),
            config,
            latency: LatencyModel::lognormal_ms(60.0, 0.4),
            cost: CostModel::PerCall(MicroDollars::from_micros(300)),
            failures: FailurePlan::flaky(0.02),
        }
    }
}

/// Builds one NLU service from a spec, sharing `analyzer`.
pub fn nlu_service(env: &SimEnv, analyzer: Arc<Analyzer>, spec: NluVendorSpec) -> Arc<SimService> {
    let config = spec.config.clone();
    SimService::builder(spec.name, "nlu")
        .latency(spec.latency)
        .cost(spec.cost)
        .failures(spec.failures)
        .quality(config.quality())
        .handler(move |req| {
            let text = req
                .payload
                .get("text")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing required field 'text'".to_string())?;
            Ok(analyzer.analyze(text, &config).to_json())
        })
        .build(env)
}

/// Builds the standard three-vendor fleet used across experiments:
///
/// * `nlu-alpha` — high quality, slow, expensive;
/// * `nlu-beta` — medium quality, fast, mid-priced;
/// * `nlu-gamma` — low quality, fastest, cheap, flakier.
pub fn standard_fleet(env: &SimEnv, analyzer: Arc<Analyzer>) -> Vec<Arc<SimService>> {
    let specs = vec![
        NluVendorSpec {
            name: "nlu-alpha".into(),
            config: NluConfig::vendor("alpha", 0.98, 0.02),
            latency: LatencyModel::lognormal_ms(120.0, 0.3),
            cost: CostModel::PerCall(MicroDollars::from_micros(1_000)),
            failures: FailurePlan::flaky(0.01),
        },
        NluVendorSpec {
            name: "nlu-beta".into(),
            config: NluConfig::vendor("beta", 0.85, 0.10),
            latency: LatencyModel::lognormal_ms(60.0, 0.4),
            cost: CostModel::PerCall(MicroDollars::from_micros(400)),
            failures: FailurePlan::flaky(0.03),
        },
        NluVendorSpec {
            name: "nlu-gamma".into(),
            config: NluConfig::vendor("gamma", 0.65, 0.25),
            latency: LatencyModel::lognormal_ms(25.0, 0.5),
            cost: CostModel::PerCall(MicroDollars::from_micros(100)),
            failures: FailurePlan::flaky(0.08),
        },
    ];
    specs
        .into_iter()
        .map(|s| nlu_service(env, analyzer.clone(), s))
        .collect()
}

/// Builds a simulated *remote* spell-check service (the slow, metered
/// alternative to the local [`SpellChecker`](crate::SpellChecker), §3).
///
/// Protocol: `{"text": "..."}` →
/// `{"corrections": [{"word": w, "suggestion": s|null}, …]}`.
pub fn remote_spell_service(env: &SimEnv) -> Arc<SimService> {
    let checker = crate::spell::SpellChecker::with_builtin_dictionary();
    SimService::builder("spell-remote", "spellcheck")
        .latency(LatencyModel::lognormal_ms(45.0, 0.4))
        .cost(CostModel::PerCall(MicroDollars::from_micros(50)))
        .failures(FailurePlan::flaky(0.02))
        .handler(move |req| {
            let text = req
                .payload
                .get("text")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing required field 'text'".to_string())?;
            let mut corrections = Json::Array(Vec::new());
            for (word, fix) in checker.check_text(text) {
                let mut item = Json::object();
                item.insert("word", word);
                item.insert("suggestion", fix);
                corrections.push(item);
            }
            let mut out = Json::object();
            out.insert("corrections", corrections);
            Ok(out)
        })
        .build(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DocumentAnalysis;
    use cogsdk_json::json;
    use cogsdk_sim::service::Request;

    #[test]
    fn nlu_service_analyzes_text_over_json() {
        let env = SimEnv::with_seed(1);
        let analyzer = Arc::new(Analyzer::with_default_lexicons());
        let svc = nlu_service(
            &env,
            analyzer,
            NluVendorSpec::new("nlu-test", NluConfig::perfect()),
        );
        // Make reliability certain for this test.
        let req = Request::new("analyze", json!({"text": "IBM reported excellent growth."}));
        let out = loop {
            let o = svc.invoke(&req);
            if o.result.is_ok() {
                break o;
            }
        };
        let analysis = DocumentAnalysis::from_json(&out.result.unwrap().payload);
        assert_eq!(analysis.entities[0].canonical, "ibm");
        assert!(analysis.sentiment.score > 0.0);
    }

    #[test]
    fn nlu_service_rejects_missing_text() {
        let env = SimEnv::with_seed(2);
        let analyzer = Arc::new(Analyzer::with_default_lexicons());
        let mut spec = NluVendorSpec::new("nlu-test", NluConfig::perfect());
        spec.failures = FailurePlan::reliable();
        let svc = nlu_service(&env, analyzer, spec);
        let out = svc.invoke(&Request::new("analyze", json!({"nope": 1})));
        assert!(matches!(
            out.result,
            Err(cogsdk_sim::ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn standard_fleet_has_quality_ordering() {
        let env = SimEnv::with_seed(3);
        let analyzer = Arc::new(Analyzer::with_default_lexicons());
        let fleet = standard_fleet(&env, analyzer);
        assert_eq!(fleet.len(), 3);
        assert!(fleet[0].quality() > fleet[1].quality());
        assert!(fleet[1].quality() > fleet[2].quality());
        assert!(fleet.iter().all(|s| s.class() == "nlu"));
        // Cheapest is fastest in expectation.
        assert!(
            fleet[2].latency_model().expected_ms(100) < fleet[0].latency_model().expected_ms(100)
        );
    }

    #[test]
    fn remote_spell_service_corrects() {
        let env = SimEnv::with_seed(4);
        let svc = remote_spell_service(&env);
        let req = Request::new("check", json!({"text": "the markt is good"}));
        let out = loop {
            let o = svc.invoke(&req);
            if o.result.is_ok() {
                break o;
            }
        };
        let body = out.result.unwrap().payload;
        let corrections = body.get("corrections").unwrap().as_array().unwrap();
        assert_eq!(corrections.len(), 1);
        assert_eq!(
            corrections[0].pointer("/suggestion").and_then(Json::as_str),
            Some("market")
        );
    }
}
