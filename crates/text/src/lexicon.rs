//! Built-in lexicons: entity gazetteer, sentiment lexicon, stopwords,
//! concept taxonomy, and word frequencies.
//!
//! These play the role of the knowledge the paper's cloud NLU services
//! embody. They are small but real: the entity catalog includes the paper's
//! own running example (the many aliases of the United States, §3) with
//! DBpedia/YAGO-style reference URLs.

use std::collections::{BTreeMap, HashMap, HashSet};

/// The kind of a named entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityType {
    /// A country or other geopolitical entity.
    Country,
    /// A company or institution.
    Organization,
    /// A person.
    Person,
    /// A city.
    City,
    /// A technology, product, or scientific concept.
    Technology,
}

impl EntityType {
    /// Stable lowercase label used in JSON payloads.
    pub fn label(self) -> &'static str {
        match self {
            EntityType::Country => "country",
            EntityType::Organization => "organization",
            EntityType::Person => "person",
            EntityType::City => "city",
            EntityType::Technology => "technology",
        }
    }
}

/// One entry of the entity gazetteer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityDef {
    /// Stable canonical identifier (snake_case).
    pub id: &'static str,
    /// Human-readable display name.
    pub name: &'static str,
    /// Entity type.
    pub kind: EntityType,
    /// Surface forms that refer to this entity (lowercase; multi-word
    /// aliases use single spaces).
    pub aliases: &'static [&'static str],
}

impl EntityDef {
    /// A DBpedia-style reference URL for the entity, as returned by the
    /// paper's disambiguation services.
    pub fn dbpedia_url(&self) -> String {
        format!("http://dbpedia.org/resource/{}", camel(self.name))
    }

    /// A YAGO-style reference URL for the entity.
    pub fn yago_url(&self) -> String {
        format!("http://yago-knowledge.org/resource/{}", camel(self.name))
    }
}

fn camel(name: &str) -> String {
    name.split_whitespace().collect::<Vec<_>>().join("_")
}

/// The full set of built-in lexicons used by the analyzer.
#[derive(Debug, Clone)]
pub struct Lexicons {
    /// Entity gazetteer.
    pub entities: Vec<EntityDef>,
    /// Word → sentiment weight in `[-1, 1]`.
    pub sentiment: HashMap<&'static str, f64>,
    /// Words carrying no topical content.
    pub stopwords: HashSet<&'static str>,
    /// Concept taxonomy: category → trigger words.
    pub taxonomy: BTreeMap<&'static str, Vec<&'static str>>,
    /// Word → relative frequency rank weight (higher = more common); the
    /// spell checker's language model.
    pub word_freq: HashMap<String, u64>,
}

impl Lexicons {
    /// Builds the built-in lexicons.
    pub fn builtin() -> Lexicons {
        let entities = builtin_entities();
        let sentiment = builtin_sentiment();
        let stopwords: HashSet<&'static str> = STOPWORDS.iter().copied().collect();
        let taxonomy = builtin_taxonomy();
        let mut word_freq: HashMap<String, u64> = HashMap::new();
        for (i, w) in COMMON_WORDS.iter().enumerate() {
            // Zipf-ish: earlier words are far more common.
            word_freq.insert((*w).to_string(), (COMMON_WORDS.len() - i) as u64 * 10);
        }
        for e in &entities {
            for alias in e.aliases {
                for word in alias.split(' ') {
                    word_freq.entry(word.to_string()).or_insert(50);
                }
            }
        }
        for w in sentiment.keys() {
            word_freq.entry((*w).to_string()).or_insert(40);
        }
        for words in taxonomy.values() {
            for w in words {
                word_freq.entry((*w).to_string()).or_insert(40);
            }
        }
        Lexicons {
            entities,
            sentiment,
            stopwords,
            taxonomy,
            word_freq,
        }
    }
}

/// The built-in entity gazetteer.
pub fn builtin_entities() -> Vec<EntityDef> {
    use EntityType::*;
    vec![
        // The paper's running example, with every alias it lists.
        EntityDef {
            id: "united_states",
            name: "United States",
            kind: Country,
            aliases: &[
                "united states of america",
                "united states",
                "usa",
                "us",
                "america",
                "the states",
                "u.s",
                "u.s.a",
            ],
        },
        EntityDef {
            id: "united_kingdom",
            name: "United Kingdom",
            kind: Country,
            aliases: &["united kingdom", "uk", "britain", "great britain", "u.k"],
        },
        EntityDef {
            id: "germany",
            name: "Germany",
            kind: Country,
            aliases: &["germany", "deutschland", "federal republic of germany"],
        },
        EntityDef {
            id: "france",
            name: "France",
            kind: Country,
            aliases: &["france", "french republic"],
        },
        EntityDef {
            id: "china",
            name: "China",
            kind: Country,
            aliases: &["china", "prc", "people's republic of china"],
        },
        EntityDef {
            id: "japan",
            name: "Japan",
            kind: Country,
            aliases: &["japan", "nippon"],
        },
        EntityDef {
            id: "india",
            name: "India",
            kind: Country,
            aliases: &["india", "republic of india", "bharat"],
        },
        EntityDef {
            id: "brazil",
            name: "Brazil",
            kind: Country,
            aliases: &["brazil", "brasil"],
        },
        EntityDef {
            id: "canada",
            name: "Canada",
            kind: Country,
            aliases: &["canada"],
        },
        EntityDef {
            id: "australia",
            name: "Australia",
            kind: Country,
            aliases: &["australia"],
        },
        EntityDef {
            id: "russia",
            name: "Russia",
            kind: Country,
            aliases: &["russia", "russian federation"],
        },
        EntityDef {
            id: "south_korea",
            name: "South Korea",
            kind: Country,
            aliases: &["south korea", "korea", "republic of korea"],
        },
        EntityDef {
            id: "mexico",
            name: "Mexico",
            kind: Country,
            aliases: &["mexico"],
        },
        EntityDef {
            id: "italy",
            name: "Italy",
            kind: Country,
            aliases: &["italy", "italia"],
        },
        EntityDef {
            id: "spain",
            name: "Spain",
            kind: Country,
            aliases: &["spain", "espana"],
        },
        EntityDef {
            id: "netherlands",
            name: "Netherlands",
            kind: Country,
            aliases: &["netherlands", "holland", "the netherlands"],
        },
        EntityDef {
            id: "switzerland",
            name: "Switzerland",
            kind: Country,
            aliases: &["switzerland", "swiss confederation"],
        },
        EntityDef {
            id: "sweden",
            name: "Sweden",
            kind: Country,
            aliases: &["sweden"],
        },
        EntityDef {
            id: "norway",
            name: "Norway",
            kind: Country,
            aliases: &["norway"],
        },
        EntityDef {
            id: "singapore",
            name: "Singapore",
            kind: Country,
            aliases: &["singapore"],
        },
        EntityDef {
            id: "egypt",
            name: "Egypt",
            kind: Country,
            aliases: &["egypt", "arab republic of egypt"],
        },
        EntityDef {
            id: "south_africa",
            name: "South Africa",
            kind: Country,
            aliases: &["south africa"],
        },
        EntityDef {
            id: "argentina",
            name: "Argentina",
            kind: Country,
            aliases: &["argentina"],
        },
        EntityDef {
            id: "turkey",
            name: "Turkey",
            kind: Country,
            aliases: &["turkey", "turkiye"],
        },
        EntityDef {
            id: "poland",
            name: "Poland",
            kind: Country,
            aliases: &["poland", "polska"],
        },
        // Organizations (the paper names several cognitive-service vendors).
        EntityDef {
            id: "ibm",
            name: "IBM",
            kind: Organization,
            aliases: &["ibm", "international business machines", "big blue"],
        },
        EntityDef {
            id: "microsoft",
            name: "Microsoft",
            kind: Organization,
            aliases: &["microsoft", "msft"],
        },
        EntityDef {
            id: "google",
            name: "Google",
            kind: Organization,
            aliases: &["google", "alphabet"],
        },
        EntityDef {
            id: "amazon",
            name: "Amazon",
            kind: Organization,
            aliases: &["amazon", "aws", "amazon web services"],
        },
        EntityDef {
            id: "apple",
            name: "Apple",
            kind: Organization,
            aliases: &["apple", "apple inc"],
        },
        EntityDef {
            id: "facebook",
            name: "Facebook",
            kind: Organization,
            aliases: &["facebook", "meta"],
        },
        EntityDef {
            id: "intel",
            name: "Intel",
            kind: Organization,
            aliases: &["intel"],
        },
        EntityDef {
            id: "oracle",
            name: "Oracle",
            kind: Organization,
            aliases: &["oracle"],
        },
        EntityDef {
            id: "samsung",
            name: "Samsung",
            kind: Organization,
            aliases: &["samsung"],
        },
        EntityDef {
            id: "toyota",
            name: "Toyota",
            kind: Organization,
            aliases: &["toyota"],
        },
        EntityDef {
            id: "siemens",
            name: "Siemens",
            kind: Organization,
            aliases: &["siemens"],
        },
        EntityDef {
            id: "nestle",
            name: "Nestle",
            kind: Organization,
            aliases: &["nestle"],
        },
        EntityDef {
            id: "united_nations",
            name: "United Nations",
            kind: Organization,
            aliases: &["united nations", "un"],
        },
        EntityDef {
            id: "world_bank",
            name: "World Bank",
            kind: Organization,
            aliases: &["world bank"],
        },
        EntityDef {
            id: "wikipedia",
            name: "Wikipedia",
            kind: Organization,
            aliases: &["wikipedia", "wikimedia", "wikimedia foundation"],
        },
        EntityDef {
            id: "nasa",
            name: "NASA",
            kind: Organization,
            aliases: &["nasa"],
        },
        EntityDef {
            id: "mit",
            name: "MIT",
            kind: Organization,
            aliases: &["mit", "massachusetts institute of technology"],
        },
        EntityDef {
            id: "stanford",
            name: "Stanford University",
            kind: Organization,
            aliases: &["stanford", "stanford university"],
        },
        EntityDef {
            id: "max_planck",
            name: "Max Planck Institute",
            kind: Organization,
            aliases: &["max planck institute", "max planck"],
        },
        // People.
        EntityDef {
            id: "alan_turing",
            name: "Alan Turing",
            kind: Person,
            aliases: &["alan turing", "turing"],
        },
        EntityDef {
            id: "grace_hopper",
            name: "Grace Hopper",
            kind: Person,
            aliases: &["grace hopper", "admiral hopper"],
        },
        EntityDef {
            id: "ada_lovelace",
            name: "Ada Lovelace",
            kind: Person,
            aliases: &["ada lovelace", "countess of lovelace"],
        },
        EntityDef {
            id: "marie_curie",
            name: "Marie Curie",
            kind: Person,
            aliases: &["marie curie", "madame curie"],
        },
        EntityDef {
            id: "albert_einstein",
            name: "Albert Einstein",
            kind: Person,
            aliases: &["albert einstein", "einstein"],
        },
        EntityDef {
            id: "isaac_newton",
            name: "Isaac Newton",
            kind: Person,
            aliases: &["isaac newton", "newton"],
        },
        EntityDef {
            id: "charles_darwin",
            name: "Charles Darwin",
            kind: Person,
            aliases: &["charles darwin", "darwin"],
        },
        EntityDef {
            id: "nikola_tesla",
            name: "Nikola Tesla",
            kind: Person,
            aliases: &["nikola tesla", "tesla"],
        },
        EntityDef {
            id: "claude_shannon",
            name: "Claude Shannon",
            kind: Person,
            aliases: &["claude shannon", "shannon"],
        },
        EntityDef {
            id: "john_von_neumann",
            name: "John von Neumann",
            kind: Person,
            aliases: &["john von neumann", "von neumann"],
        },
        // Cities.
        EntityDef {
            id: "new_york",
            name: "New York",
            kind: City,
            aliases: &["new york", "new york city", "nyc"],
        },
        EntityDef {
            id: "london",
            name: "London",
            kind: City,
            aliases: &["london"],
        },
        EntityDef {
            id: "paris",
            name: "Paris",
            kind: City,
            aliases: &["paris"],
        },
        EntityDef {
            id: "tokyo",
            name: "Tokyo",
            kind: City,
            aliases: &["tokyo"],
        },
        EntityDef {
            id: "berlin",
            name: "Berlin",
            kind: City,
            aliases: &["berlin"],
        },
        EntityDef {
            id: "beijing",
            name: "Beijing",
            kind: City,
            aliases: &["beijing", "peking"],
        },
        EntityDef {
            id: "mumbai",
            name: "Mumbai",
            kind: City,
            aliases: &["mumbai", "bombay"],
        },
        EntityDef {
            id: "sao_paulo",
            name: "Sao Paulo",
            kind: City,
            aliases: &["sao paulo"],
        },
        EntityDef {
            id: "sydney",
            name: "Sydney",
            kind: City,
            aliases: &["sydney"],
        },
        EntityDef {
            id: "toronto",
            name: "Toronto",
            kind: City,
            aliases: &["toronto"],
        },
        // Technologies / concepts.
        EntityDef {
            id: "machine_learning",
            name: "Machine Learning",
            kind: Technology,
            aliases: &["machine learning", "ml"],
        },
        EntityDef {
            id: "artificial_intelligence",
            name: "Artificial Intelligence",
            kind: Technology,
            aliases: &["artificial intelligence", "ai"],
        },
        EntityDef {
            id: "cloud_computing",
            name: "Cloud Computing",
            kind: Technology,
            aliases: &["cloud computing", "the cloud"],
        },
        EntityDef {
            id: "quantum_computing",
            name: "Quantum Computing",
            kind: Technology,
            aliases: &["quantum computing", "quantum computers"],
        },
        EntityDef {
            id: "blockchain",
            name: "Blockchain",
            kind: Technology,
            aliases: &["blockchain", "distributed ledger"],
        },
        EntityDef {
            id: "renewable_energy",
            name: "Renewable Energy",
            kind: Technology,
            aliases: &["renewable energy", "renewables", "clean energy"],
        },
        EntityDef {
            id: "electric_vehicles",
            name: "Electric Vehicles",
            kind: Technology,
            aliases: &["electric vehicles", "electric cars", "evs"],
        },
        EntityDef {
            id: "semiconductors",
            name: "Semiconductors",
            kind: Technology,
            aliases: &["semiconductors", "microchips", "chips"],
        },
        EntityDef {
            id: "vaccines",
            name: "Vaccines",
            kind: Technology,
            aliases: &["vaccines", "vaccination", "immunization"],
        },
        EntityDef {
            id: "internet_of_things",
            name: "Internet of Things",
            kind: Technology,
            aliases: &["internet of things", "iot"],
        },
    ]
}

fn builtin_sentiment() -> HashMap<&'static str, f64> {
    let positive: &[(&str, f64)] = &[
        ("good", 0.5),
        ("great", 0.8),
        ("excellent", 1.0),
        ("amazing", 0.9),
        ("wonderful", 0.9),
        ("fantastic", 0.9),
        ("superb", 0.9),
        ("positive", 0.6),
        ("success", 0.7),
        ("successful", 0.7),
        ("win", 0.6),
        ("winning", 0.6),
        ("growth", 0.5),
        ("growing", 0.5),
        ("profit", 0.6),
        ("profitable", 0.7),
        ("strong", 0.5),
        ("stronger", 0.6),
        ("improve", 0.5),
        ("improved", 0.6),
        ("improvement", 0.5),
        ("innovative", 0.7),
        ("innovation", 0.6),
        ("breakthrough", 0.8),
        ("record", 0.4),
        ("efficient", 0.6),
        ("reliable", 0.6),
        ("robust", 0.5),
        ("love", 0.8),
        ("loved", 0.8),
        ("best", 0.8),
        ("better", 0.5),
        ("benefit", 0.5),
        ("beneficial", 0.6),
        ("opportunity", 0.4),
        ("optimistic", 0.6),
        ("promising", 0.6),
        ("thriving", 0.8),
        ("boom", 0.6),
        ("booming", 0.7),
        ("surge", 0.4),
        ("gain", 0.5),
        ("gains", 0.5),
        ("advance", 0.4),
        ("advanced", 0.4),
        ("progress", 0.5),
        ("leading", 0.4),
        ("leader", 0.4),
        ("praised", 0.7),
        ("praise", 0.6),
        ("celebrated", 0.7),
        ("outstanding", 0.9),
        ("impressive", 0.7),
        ("remarkable", 0.6),
        ("safe", 0.4),
        ("secure", 0.4),
        ("stable", 0.4),
        ("recovery", 0.5),
        ("recovered", 0.5),
        ("rally", 0.5),
        ("upbeat", 0.6),
        ("favorable", 0.6),
        ("happy", 0.7),
        ("delighted", 0.8),
    ];
    let negative: &[(&str, f64)] = &[
        ("bad", -0.5),
        ("terrible", -0.9),
        ("awful", -0.9),
        ("horrible", -0.9),
        ("poor", -0.6),
        ("negative", -0.6),
        ("failure", -0.8),
        ("fail", -0.7),
        ("failed", -0.7),
        ("failing", -0.7),
        ("loss", -0.6),
        ("losses", -0.6),
        ("losing", -0.6),
        ("decline", -0.5),
        ("declining", -0.5),
        ("drop", -0.4),
        ("dropped", -0.4),
        ("weak", -0.5),
        ("weaker", -0.6),
        ("crisis", -0.8),
        ("collapse", -0.9),
        ("collapsed", -0.9),
        ("crash", -0.8),
        ("crashed", -0.8),
        ("scandal", -0.8),
        ("fraud", -0.9),
        ("corruption", -0.8),
        ("lawsuit", -0.5),
        ("fined", -0.6),
        ("fine", -0.3),
        ("penalty", -0.5),
        ("risk", -0.3),
        ("risky", -0.5),
        ("danger", -0.6),
        ("dangerous", -0.7),
        ("threat", -0.6),
        ("worst", -0.9),
        ("worse", -0.6),
        ("problem", -0.4),
        ("problems", -0.4),
        ("trouble", -0.5),
        ("troubled", -0.6),
        ("concern", -0.3),
        ("concerns", -0.3),
        ("warning", -0.4),
        ("warned", -0.4),
        ("recession", -0.7),
        ("layoffs", -0.7),
        ("bankruptcy", -0.9),
        ("bankrupt", -0.9),
        ("delay", -0.3),
        ("delayed", -0.3),
        ("outage", -0.6),
        ("breach", -0.7),
        ("hacked", -0.7),
        ("vulnerable", -0.5),
        ("unsafe", -0.6),
        ("unstable", -0.5),
        ("slump", -0.6),
        ("plunge", -0.6),
        ("plunged", -0.6),
        ("disaster", -0.9),
        ("hate", -0.8),
        ("hated", -0.8),
        ("disappointing", -0.7),
        ("disappointed", -0.7),
        ("sad", -0.5),
        ("angry", -0.6),
    ];
    positive.iter().chain(negative).copied().collect()
}

fn builtin_taxonomy() -> BTreeMap<&'static str, Vec<&'static str>> {
    let mut t = BTreeMap::new();
    t.insert(
        "technology",
        vec![
            "software",
            "computer",
            "computing",
            "digital",
            "internet",
            "data",
            "algorithm",
            "chip",
            "chips",
            "semiconductor",
            "cloud",
            "ai",
            "robot",
            "app",
            "platform",
            "device",
        ],
    );
    t.insert(
        "finance",
        vec![
            "market",
            "markets",
            "stock",
            "stocks",
            "bank",
            "banks",
            "investment",
            "investor",
            "trading",
            "earnings",
            "revenue",
            "profit",
            "shares",
            "bond",
            "currency",
            "dividend",
        ],
    );
    t.insert(
        "health",
        vec![
            "health",
            "disease",
            "vaccine",
            "vaccines",
            "hospital",
            "doctor",
            "patient",
            "patients",
            "medicine",
            "medical",
            "drug",
            "treatment",
            "clinical",
            "therapy",
            "virus",
        ],
    );
    t.insert(
        "politics",
        vec![
            "government",
            "election",
            "elections",
            "president",
            "minister",
            "parliament",
            "congress",
            "senate",
            "policy",
            "vote",
            "voters",
            "campaign",
            "law",
            "legislation",
            "treaty",
        ],
    );
    t.insert(
        "science",
        vec![
            "research",
            "researchers",
            "study",
            "scientists",
            "experiment",
            "physics",
            "chemistry",
            "biology",
            "discovery",
            "laboratory",
            "theory",
            "evidence",
            "journal",
            "telescope",
        ],
    );
    t.insert(
        "sports",
        vec![
            "game",
            "team",
            "teams",
            "player",
            "players",
            "season",
            "championship",
            "tournament",
            "coach",
            "league",
            "match",
            "goal",
            "olympics",
            "stadium",
        ],
    );
    t.insert(
        "energy",
        vec![
            "energy",
            "oil",
            "gas",
            "solar",
            "wind",
            "power",
            "electricity",
            "grid",
            "renewable",
            "renewables",
            "battery",
            "batteries",
            "nuclear",
            "carbon",
            "emissions",
        ],
    );
    t.insert(
        "climate",
        vec![
            "climate",
            "warming",
            "emissions",
            "carbon",
            "weather",
            "temperature",
            "drought",
            "flood",
            "storm",
            "environment",
            "environmental",
            "pollution",
            "sustainability",
        ],
    );
    t.insert(
        "business",
        vec![
            "company",
            "companies",
            "ceo",
            "merger",
            "acquisition",
            "startup",
            "startups",
            "industry",
            "manufacturing",
            "supply",
            "retail",
            "customers",
            "product",
            "products",
            "sales",
        ],
    );
    t.insert(
        "education",
        vec![
            "school",
            "schools",
            "university",
            "universities",
            "students",
            "teachers",
            "education",
            "curriculum",
            "degree",
            "college",
            "learning",
            "tuition",
        ],
    );
    t
}

/// Stopwords: words ignored by keyword extraction.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "but", "if", "then", "else", "when", "while", "of", "at", "by",
    "for", "with", "about", "against", "between", "into", "through", "during", "before", "after",
    "above", "below", "to", "from", "up", "down", "in", "out", "on", "off", "over", "under",
    "again", "further", "is", "are", "was", "were", "be", "been", "being", "have", "has", "had",
    "having", "do", "does", "did", "doing", "will", "would", "shall", "should", "can", "could",
    "may", "might", "must", "it", "its", "this", "that", "these", "those", "i", "you", "he", "she",
    "we", "they", "them", "his", "her", "their", "our", "your", "my", "me", "him", "us", "as",
    "so", "than", "too", "very", "not", "no", "nor", "only", "own", "same", "such", "both", "each",
    "few", "more", "most", "other", "some", "any", "all", "also", "just", "now", "there", "here",
    "what", "which", "who", "whom", "how", "why", "where", "said", "says",
];

/// Common English words powering the spell checker's language model,
/// ordered roughly by frequency (most common first).
pub const COMMON_WORDS: &[&str] = &[
    "the",
    "be",
    "to",
    "of",
    "and",
    "a",
    "in",
    "that",
    "have",
    "it",
    "for",
    "not",
    "on",
    "with",
    "he",
    "as",
    "you",
    "do",
    "at",
    "this",
    "but",
    "his",
    "by",
    "from",
    "they",
    "we",
    "say",
    "her",
    "she",
    "or",
    "an",
    "will",
    "my",
    "one",
    "all",
    "would",
    "there",
    "their",
    "what",
    "so",
    "up",
    "out",
    "if",
    "about",
    "who",
    "get",
    "which",
    "go",
    "me",
    "when",
    "make",
    "can",
    "like",
    "time",
    "no",
    "just",
    "him",
    "know",
    "take",
    "people",
    "into",
    "year",
    "your",
    "good",
    "some",
    "could",
    "them",
    "see",
    "other",
    "than",
    "then",
    "now",
    "look",
    "only",
    "come",
    "its",
    "over",
    "think",
    "also",
    "back",
    "after",
    "use",
    "two",
    "how",
    "our",
    "work",
    "first",
    "well",
    "way",
    "even",
    "new",
    "want",
    "because",
    "any",
    "these",
    "give",
    "day",
    "most",
    "us",
    "is",
    "was",
    "are",
    "been",
    "has",
    "had",
    "were",
    "said",
    "did",
    "having",
    "may",
    "should",
    "company",
    "market",
    "service",
    "services",
    "data",
    "world",
    "government",
    "president",
    "report",
    "reports",
    "news",
    "announced",
    "billion",
    "million",
    "percent",
    "growth",
    "economy",
    "economic",
    "technology",
    "research",
    "business",
    "industry",
    "energy",
    "health",
    "science",
    "study",
    "analysis",
    "country",
    "countries",
    "city",
    "national",
    "international",
    "global",
    "public",
    "private",
    "financial",
    "investment",
    "development",
    "production",
    "system",
    "systems",
    "program",
    "project",
    "plan",
    "plans",
    "deal",
    "agreement",
    "trade",
    "quarter",
    "revenue",
    "profit",
    "shares",
    "stock",
    "computer",
    "software",
    "internet",
    "digital",
    "cloud",
    "mobile",
    "online",
    "network",
    "security",
    "customers",
    "products",
    "launch",
    "launched",
    "release",
    "released",
    "university",
    "school",
    "students",
    "team",
    "game",
    "season",
    "water",
    "power",
    "oil",
    "gas",
    "climate",
    "weather",
    "change",
    "changes",
    "future",
    "history",
    "results",
    "result",
    "increase",
    "increased",
    "decrease",
    "decreased",
    "high",
    "higher",
    "low",
    "lower",
    "large",
    "largest",
    "small",
    "smallest",
    "long",
    "short",
    "early",
    "late",
    "recent",
    "recently",
    "important",
    "major",
    "minor",
    "several",
    "many",
    "much",
    "around",
    "between",
    "during",
    "against",
    "through",
    "without",
    "within",
    "across",
    "million",
    "language",
    "speech",
    "recognition",
    "understanding",
    "knowledge",
    "information",
    "statement",
    "statements",
    "database",
    "storage",
    "application",
    "applications",
    "performance",
    "quality",
    "cost",
    "costs",
    "price",
    "prices",
    "value",
    "values",
    "number",
    "numbers",
    "level",
    "levels",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lexicons_are_populated() {
        let lex = Lexicons::builtin();
        assert!(lex.entities.len() >= 60, "entities: {}", lex.entities.len());
        assert!(
            lex.sentiment.len() >= 120,
            "sentiment: {}",
            lex.sentiment.len()
        );
        assert!(lex.stopwords.len() >= 80);
        assert_eq!(lex.taxonomy.len(), 10);
        assert!(lex.word_freq.len() >= 300);
    }

    #[test]
    fn entity_ids_are_unique() {
        let lex = Lexicons::builtin();
        let mut ids: Vec<&str> = lex.entities.iter().map(|e| e.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate entity ids");
    }

    #[test]
    fn aliases_are_lowercase() {
        for e in builtin_entities() {
            for a in e.aliases {
                assert_eq!(*a, a.to_lowercase(), "alias not lowercase: {a}");
            }
        }
    }

    #[test]
    fn usa_aliases_match_paper_example() {
        let entities = builtin_entities();
        let usa = entities.iter().find(|e| e.id == "united_states").unwrap();
        for alias in [
            "usa",
            "us",
            "united states",
            "america",
            "united states of america",
            "the states",
        ] {
            assert!(usa.aliases.contains(&alias), "missing alias {alias}");
        }
        assert_eq!(
            usa.dbpedia_url(),
            "http://dbpedia.org/resource/United_States"
        );
        assert_eq!(
            usa.yago_url(),
            "http://yago-knowledge.org/resource/United_States"
        );
    }

    #[test]
    fn sentiment_weights_in_range() {
        for (w, v) in builtin_sentiment() {
            assert!((-1.0..=1.0).contains(&v), "{w} weight {v} out of range");
        }
    }

    #[test]
    fn entity_type_labels() {
        assert_eq!(EntityType::Country.label(), "country");
        assert_eq!(EntityType::Organization.label(), "organization");
        assert_eq!(EntityType::Person.label(), "person");
        assert_eq!(EntityType::City.label(), "city");
        assert_eq!(EntityType::Technology.label(), "technology");
    }
}
