//! Natural-language-understanding substrate.
//!
//! The paper's key use case (§2.2) is "to help applications use intelligent
//! services which understand language": named entity recognition with
//! disambiguation, keyword extraction, concept/taxonomy classification,
//! document- and entity-level sentiment, relation extraction, and a local
//! spell checker. Real deployments call IBM Watson NLU and its competitors;
//! this crate implements the same analyses locally (dictionary/lexicon
//! driven) so multiple simulated "vendors" with different quality and
//! latency profiles can be spun up deterministically.
//!
//! The analyses are intentionally classical (gazetteer NER, TF-IDF
//! keywords, lexicon sentiment with negation, pattern-based relations,
//! Norvig-style spell checking): the SDK under study treats NLU services as
//! opaque JSON-producing endpoints, so what matters is output *schema* and
//! controllable quality differences between vendors, not state-of-the-art
//! accuracy.
//!
//! # Examples
//!
//! ```
//! use cogsdk_text::analysis::{Analyzer, NluConfig};
//!
//! let analyzer = Analyzer::with_default_lexicons();
//! let doc = analyzer.analyze("The USA signed an excellent trade deal with IBM.",
//!                            &NluConfig::perfect());
//! assert!(doc.entities.iter().any(|e| e.canonical == "united_states"));
//! assert!(doc.sentiment.score > 0.0);
//! ```

pub mod analysis;
pub mod concepts;
pub mod corpus;
pub mod disambig;
pub mod keywords;
pub mod lexicon;
pub mod ner;
pub mod relations;
pub mod sentiment;
pub mod services;
pub mod spell;
pub mod tokenize;

pub use analysis::{Analyzer, DocumentAnalysis, NluConfig};
pub use disambig::EntityCatalog;
pub use lexicon::Lexicons;
pub use spell::SpellChecker;
