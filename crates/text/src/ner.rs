//! Named entity recognition: longest-match gazetteer scanning.
//!
//! Produces *disambiguated* mentions (§2.2: "Named entities are
//! disambiguated, while keywords are not"): every mention carries the
//! canonical id from the [`EntityCatalog`].
//!
//! [`EntityCatalog`]: crate::disambig::EntityCatalog

use crate::disambig::EntityCatalog;
use crate::lexicon::EntityType;
use crate::tokenize::{tokenize, Token};

/// One recognized entity mention.
#[derive(Debug, Clone, PartialEq)]
pub struct Mention {
    /// The surface text as matched (original casing).
    pub surface: String,
    /// Canonical entity id after disambiguation.
    pub canonical: String,
    /// Display name of the canonical entity.
    pub name: String,
    /// Entity type.
    pub kind: EntityType,
    /// Index of the first token of the mention.
    pub token_index: usize,
    /// Number of tokens in the mention.
    pub token_len: usize,
    /// Sentence index of the mention.
    pub sentence: usize,
}

/// Recognizes entity mentions in `text` against `catalog`, preferring the
/// longest alias at each position.
///
/// # Examples
///
/// ```
/// use cogsdk_text::{ner, EntityCatalog};
///
/// let catalog = EntityCatalog::builtin();
/// let mentions = ner::recognize("IBM opened a lab in New York City.", &catalog);
/// let ids: Vec<&str> = mentions.iter().map(|m| m.canonical.as_str()).collect();
/// assert_eq!(ids, vec!["ibm", "new_york"]);
/// ```
pub fn recognize(text: &str, catalog: &EntityCatalog) -> Vec<Mention> {
    let tokens = tokenize(text);
    recognize_tokens(&tokens, catalog)
}

/// The maximum alias length in tokens the matcher will try.
const MAX_ALIAS_TOKENS: usize = 6;

/// Recognizes mentions over a pre-tokenized text.
pub fn recognize_tokens(tokens: &[Token], catalog: &EntityCatalog) -> Vec<Mention> {
    let mut mentions = Vec::new();
    // Possessive forms ("IBM's") refer to the same entity as the bare name.
    let lowered: Vec<String> = tokens
        .iter()
        .map(|t| {
            let w = t.lower();
            w.strip_suffix("'s").map(str::to_string).unwrap_or(w)
        })
        .collect();
    let mut i = 0;
    while i < tokens.len() {
        let mut matched = None;
        let max_len = MAX_ALIAS_TOKENS.min(tokens.len() - i);
        // Longest match first.
        for len in (1..=max_len).rev() {
            // Aliases never cross sentence boundaries.
            if tokens[i + len - 1].sentence != tokens[i].sentence {
                continue;
            }
            let candidate = lowered[i..i + len].join(" ");
            if let Some(resolved) = catalog.resolve(&candidate) {
                matched = Some((len, resolved));
                break;
            }
        }
        if let Some((len, resolved)) = matched {
            let surface = tokens[i..i + len]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            mentions.push(Mention {
                surface,
                canonical: resolved.id,
                name: resolved.name,
                kind: resolved.kind,
                token_index: i,
                token_len: len,
                sentence: tokens[i].sentence,
            });
            i += len;
        } else {
            i += 1;
        }
    }
    mentions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> EntityCatalog {
        EntityCatalog::builtin()
    }

    #[test]
    fn longest_match_wins() {
        // "United States of America" should match as one mention, not as
        // "United States" + stray tokens.
        let m = recognize("The United States of America grew.", &catalog());
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].canonical, "united_states");
        assert_eq!(m[0].surface, "United States of America");
        assert_eq!(m[0].token_len, 4);
    }

    #[test]
    fn multiple_mentions_in_order() {
        let m = recognize("IBM and Microsoft compete in France.", &catalog());
        let ids: Vec<&str> = m.iter().map(|x| x.canonical.as_str()).collect();
        assert_eq!(ids, vec!["ibm", "microsoft", "france"]);
    }

    #[test]
    fn different_aliases_share_canonical_id() {
        let m = recognize("The USA and America and the United States.", &catalog());
        assert!(m.len() >= 3);
        assert!(m.iter().all(|x| x.canonical == "united_states"));
    }

    #[test]
    fn mentions_do_not_cross_sentences() {
        // "New" ends one sentence, "York" begins the next: no mention.
        let m = recognize("It was new. York is elsewhere.", &catalog());
        assert!(m.is_empty(), "{m:?}");
    }

    #[test]
    fn sentence_and_position_metadata() {
        let m = recognize("Paris is nice. IBM ships code.", &catalog());
        assert_eq!(m[0].sentence, 0);
        assert_eq!(m[1].sentence, 1);
        assert_eq!(m[1].canonical, "ibm");
        assert!(m[1].token_index >= 3);
    }

    #[test]
    fn no_entities_in_plain_text() {
        let m = recognize("nothing interesting happens here", &catalog());
        assert!(m.is_empty());
    }

    #[test]
    fn custom_synonyms_are_recognized() {
        let mut c = catalog();
        c.add_synonyms([("big blue machines", "ibm")]);
        let m = recognize("Big Blue Machines released results.", &c);
        assert_eq!(m[0].canonical, "ibm");
    }

    #[test]
    fn case_insensitive_matching_preserves_surface() {
        let m = recognize("GERMANY and germany", &catalog());
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].surface, "GERMANY");
        assert_eq!(m[1].surface, "germany");
        assert_eq!(m[0].canonical, m[1].canonical);
    }
}
