//! A local spell checker.
//!
//! §3: "the spell checker included with the knowledge base is generally
//! faster as it avoids the overheads of remote communication. Some online
//! spell checkers also cost money." Norvig-style: candidates within edit
//! distance ≤ 2, ranked by corpus frequency (the language model in
//! [`Lexicons::word_freq`](crate::Lexicons)).

use crate::lexicon::Lexicons;
use crate::tokenize::tokenize;
use std::collections::HashMap;

/// A dictionary-driven spell checker.
///
/// # Examples
///
/// ```
/// use cogsdk_text::SpellChecker;
///
/// let sc = SpellChecker::with_builtin_dictionary();
/// assert!(sc.is_correct("market"));
/// assert_eq!(sc.correct("markt"), Some("market".to_string()));
/// ```
#[derive(Debug, Clone)]
pub struct SpellChecker {
    freq: HashMap<String, u64>,
}

impl SpellChecker {
    /// Builds a checker over the built-in word-frequency dictionary.
    pub fn with_builtin_dictionary() -> SpellChecker {
        SpellChecker {
            freq: Lexicons::builtin().word_freq,
        }
    }

    /// Builds a checker over an explicit word → frequency table.
    pub fn from_frequencies(freq: HashMap<String, u64>) -> SpellChecker {
        SpellChecker { freq }
    }

    /// Adds (or boosts) a dictionary word.
    pub fn add_word(&mut self, word: impl Into<String>, frequency: u64) {
        let w = word.into().to_lowercase();
        let entry = self.freq.entry(w).or_insert(0);
        *entry = (*entry).max(frequency);
    }

    /// Dictionary size.
    pub fn len(&self) -> usize {
        self.freq.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.freq.is_empty()
    }

    /// Whether `word` is in the dictionary (case-insensitive). Single
    /// characters and numbers count as correct.
    pub fn is_correct(&self, word: &str) -> bool {
        let w = word.to_lowercase();
        w.chars().count() <= 1
            || w.chars().all(|c| c.is_ascii_digit())
            || self.freq.contains_key(&w)
    }

    /// Suggests the best correction for `word`, or `None` if the word is
    /// already correct or no candidate within edit distance 2 exists.
    pub fn correct(&self, word: &str) -> Option<String> {
        if self.is_correct(word) {
            return None;
        }
        let w = word.to_lowercase();
        self.best(edits1(&w)).or_else(|| {
            // Distance 2: expand the distance-1 set once more. Bounded
            // input keeps this tractable.
            let mut second = Vec::new();
            for e1 in edits1(&w) {
                second.extend(edits1(&e1));
            }
            self.best(second)
        })
    }

    /// Checks a whole text, returning `(misspelled_word, Option<fix>)`
    /// pairs in order of appearance.
    pub fn check_text(&self, text: &str) -> Vec<(String, Option<String>)> {
        tokenize(text)
            .into_iter()
            .filter(|t| !self.is_correct(&t.text))
            .map(|t| {
                let fix = self.correct(&t.text);
                (t.text, fix)
            })
            .collect()
    }

    fn best(&self, candidates: Vec<String>) -> Option<String> {
        candidates
            .into_iter()
            .filter_map(|c| self.freq.get(&c).map(|&f| (c, f)))
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(c, _)| c)
    }
}

/// All strings at edit distance exactly 1 from `w` (deletes, transposes,
/// replaces, inserts) over a–z.
fn edits1(w: &str) -> Vec<String> {
    let chars: Vec<char> = w.chars().collect();
    let n = chars.len();
    let mut out = Vec::with_capacity(54 * n + 25);
    let alphabet = 'a'..='z';
    for i in 0..n {
        // delete
        let mut d: String = chars[..i].iter().collect();
        d.extend(&chars[i + 1..]);
        out.push(d);
        // transpose
        if i + 1 < n {
            let mut t = chars.clone();
            t.swap(i, i + 1);
            out.push(t.into_iter().collect());
        }
        // replace
        for c in alphabet.clone() {
            if c != chars[i] {
                let mut r = chars.clone();
                r[i] = c;
                out.push(r.into_iter().collect());
            }
        }
    }
    // insert
    for i in 0..=n {
        for c in alphabet.clone() {
            let mut ins: String = chars[..i].iter().collect();
            ins.push(c);
            ins.extend(&chars[i..]);
            out.push(ins);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> SpellChecker {
        SpellChecker::with_builtin_dictionary()
    }

    #[test]
    fn correct_words_pass() {
        let sc = sc();
        for w in ["market", "Market", "data", "service", "a", "42"] {
            assert!(sc.is_correct(w), "{w}");
        }
    }

    #[test]
    fn distance_one_typos_fixed() {
        let sc = sc();
        assert_eq!(sc.correct("markt"), Some("market".into())); // delete
        assert_eq!(sc.correct("marekt"), Some("market".into())); // transpose
        assert_eq!(sc.correct("narket"), Some("market".into())); // replace
        assert_eq!(sc.correct("marrket"), Some("market".into())); // insert
    }

    #[test]
    fn distance_two_typos_fixed() {
        let sc = sc();
        assert_eq!(sc.correct("algortm"), Some("algorithm".into()));
        // Frequency decides among equidistant candidates: "mrkt" is edit
        // distance 2 from both "market" and the far more common "make".
        assert_eq!(sc.correct("mrkt"), Some("make".into()));
    }

    #[test]
    fn gibberish_has_no_suggestion() {
        let sc = sc();
        assert_eq!(sc.correct("zzxqjv"), None);
    }

    #[test]
    fn already_correct_words_return_none() {
        assert_eq!(sc().correct("market"), None);
    }

    #[test]
    fn frequency_breaks_ties() {
        // "tha" is distance 1 from both "the" (very common) and "than";
        // the more frequent word must win.
        let sc = sc();
        assert_eq!(sc.correct("tha"), Some("the".into()));
    }

    #[test]
    fn custom_words_extend_dictionary() {
        let mut sc = sc();
        assert!(!sc.is_correct("cogsdk"));
        sc.add_word("cogsdk", 100);
        assert!(sc.is_correct("cogsdk"));
        assert_eq!(sc.correct("cogsdkk"), Some("cogsdk".into()));
    }

    #[test]
    fn check_text_reports_in_order() {
        let sc = sc();
        let found = sc.check_text("The markt and the servce grew.");
        assert_eq!(found.len(), 3, "{found:?}"); // markt, servce, grew(?)
    }

    #[test]
    fn check_text_on_clean_input_is_empty() {
        let sc = sc();
        assert!(sc.check_text("the market is good").is_empty());
    }

    #[test]
    fn empty_dictionary_behaves() {
        let sc = SpellChecker::from_frequencies(HashMap::new());
        assert!(sc.is_empty());
        assert!(!sc.is_correct("word"));
        assert_eq!(sc.correct("word"), None);
    }
}
