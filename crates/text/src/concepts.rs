//! Concept / taxonomy classification.
//!
//! Maps a document onto the built-in category taxonomy by counting trigger
//! words — the "concepts, taxonomies" output of the paper's NLU services
//! (§2.2).

use crate::lexicon::Lexicons;
use crate::tokenize::tokenize;
use std::collections::HashMap;

/// A taxonomy category with a confidence score.
#[derive(Debug, Clone, PartialEq)]
pub struct Concept {
    /// Category label (e.g. `"finance"`).
    pub label: String,
    /// Confidence in `(0, 1]`; the top category has the highest value.
    pub confidence: f64,
}

/// Classifies `text` into up to `limit` taxonomy categories.
///
/// Confidence is the category's share of all trigger-word hits, so the
/// values over the returned set sum to at most 1.
///
/// # Examples
///
/// ```
/// use cogsdk_text::{concepts, Lexicons};
///
/// let lex = Lexicons::builtin();
/// let cs = concepts::classify(
///     "The bank reported earnings; investors traded stocks.", &lex, 3);
/// assert_eq!(cs[0].label, "finance");
/// ```
pub fn classify(text: &str, lexicons: &Lexicons, limit: usize) -> Vec<Concept> {
    let mut hits: HashMap<&str, usize> = HashMap::new();
    let mut total = 0usize;
    for tok in tokenize(text) {
        let w = tok.lower();
        for (category, triggers) in &lexicons.taxonomy {
            if triggers.contains(&w.as_str()) {
                *hits.entry(category).or_insert(0) += 1;
                total += 1;
            }
        }
    }
    if total == 0 {
        return Vec::new();
    }
    let mut scored: Vec<Concept> = hits
        .into_iter()
        .map(|(label, count)| Concept {
            label: label.to_string(),
            confidence: count as f64 / total as f64,
        })
        .collect();
    scored.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then_with(|| a.label.cmp(&b.label))
    });
    scored.truncate(limit);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> Lexicons {
        Lexicons::builtin()
    }

    #[test]
    fn finance_text_classified_as_finance() {
        let cs = classify(
            "Stocks rallied as the bank posted record earnings and investors cheered the dividend.",
            &lex(),
            3,
        );
        assert_eq!(cs[0].label, "finance");
        assert!(cs[0].confidence > 0.5);
    }

    #[test]
    fn mixed_text_ranks_dominant_topic_first() {
        let cs = classify(
            "The hospital treated patients with the new vaccine while the stock market dipped.",
            &lex(),
            5,
        );
        assert_eq!(cs[0].label, "health");
        assert!(cs.iter().any(|c| c.label == "finance"));
    }

    #[test]
    fn confidences_sum_to_one_over_full_set() {
        let cs = classify(
            "software algorithm market earnings vaccine hospital",
            &lex(),
            10,
        );
        let sum: f64 = cs.iter().map(|c| c.confidence).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn no_triggers_yields_empty() {
        assert!(classify("lorem ipsum dolor", &lex(), 5).is_empty());
        assert!(classify("", &lex(), 5).is_empty());
    }

    #[test]
    fn limit_truncates() {
        let cs = classify(
            "software market vaccine election research game energy climate company school",
            &lex(),
            2,
        );
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn deterministic_tie_break_is_alphabetical() {
        let cs = classify("software market", &lex(), 2);
        assert_eq!(cs[0].label, "finance");
        assert_eq!(cs[1].label, "technology");
    }
}
