//! Format conversion: CSV ↔ relational tables ↔ RDF statements, plus a
//! line-oriented statement serialization for persistence.
//!
//! §3: "Data in CSV files can be added to a relational database table in
//! MySQL or an RDF model in Jena… A Jena statement can be added to a
//! MySQL table. Conversely, MySQL tables can be converted to Jena
//! statements. The ability to convert data between different formats is a
//! key property of our personalized knowledge base."

use crate::KbError;
use cogsdk_rdf::model::Literal;
use cogsdk_rdf::{Graph, Statement, Term};
use cogsdk_store::table::{ColumnType, Row, Schema, Table, Value};

/// Converts a table to RDF statements.
///
/// Each row becomes a subject `<ns:row_key>` (the value of `subject_col`,
/// sanitized) with one statement per remaining column:
/// `(<ns:key> <ns:column> value)`.
///
/// # Errors
///
/// [`KbError::Store`] if `subject_col` is not a column of the table.
///
/// # Examples
///
/// ```
/// use cogsdk_store::csv::csv_to_table;
/// use cogsdk_kb::convert::table_to_statements;
///
/// let t = csv_to_table("country,gdp\nusa,21000.5\n").unwrap();
/// let stmts = table_to_statements(&t, "country", "ex").unwrap();
/// assert_eq!(stmts.len(), 1);
/// assert_eq!(stmts[0].to_string(), "<ex:usa> <ex:gdp> 21000.5 .");
/// ```
pub fn table_to_statements(
    table: &Table,
    subject_col: &str,
    namespace: &str,
) -> Result<Vec<Statement>, KbError> {
    let subject_idx = table
        .schema()
        .column_index(subject_col)
        .ok_or_else(|| KbError::Store(format!("no column {subject_col}")))?;
    let mut out = Vec::new();
    for row in table.rows() {
        let subject = Term::iri(format!(
            "{namespace}:{}",
            sanitize(&row[subject_idx].to_string())
        ));
        for (i, (col_name, _)) in table.schema().columns().iter().enumerate() {
            if i == subject_idx {
                continue;
            }
            let object = match &row[i] {
                Value::Null => continue, // NULLs produce no statement
                Value::Int(v) => Term::integer(*v),
                Value::Float(v) => Term::double(*v),
                Value::Text(v) => Term::string(v.clone()),
                Value::Bool(v) => Term::boolean(*v),
            };
            out.push(Statement::new(
                subject.clone(),
                Term::iri(format!("{namespace}:{}", sanitize(col_name))),
                object,
            ));
        }
    }
    Ok(out)
}

/// Converts a graph to a three-column relational table
/// `(subject, predicate, object)` — the Jena-statement-into-MySQL
/// direction. Objects are rendered via their display form.
pub fn statements_to_table(graph: &Graph) -> Table {
    let schema = Schema::new(vec![
        ("subject", ColumnType::Text),
        ("predicate", ColumnType::Text),
        ("object", ColumnType::Text),
    ])
    .expect("static schema is valid");
    let mut table = Table::new(schema);
    for st in graph.iter() {
        let row: Row = vec![
            Value::Text(st.subject.to_string()),
            Value::Text(st.predicate.to_string()),
            Value::Text(st.object.to_string()),
        ];
        table.insert(row).expect("schema matches construction");
    }
    table
}

/// Serializes a graph to a line-oriented N-Triples-like text form used
/// for persistence (one statement per line).
pub fn graph_to_text(graph: &Graph) -> String {
    let mut out = String::new();
    for st in graph.iter() {
        out.push_str(&statement_to_line(&st));
        out.push('\n');
    }
    out
}

/// Parses the output of [`graph_to_text`].
///
/// # Errors
///
/// [`KbError::Corrupt`] with the offending line number on malformed
/// input.
pub fn text_to_graph(text: &str) -> Result<Graph, KbError> {
    let mut graph = Graph::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let st = parse_statement_line(line)
            .map_err(|e| KbError::Corrupt(format!("line {}: {e}", lineno + 1)))?;
        graph.insert(st);
    }
    Ok(graph)
}

fn statement_to_line(st: &Statement) -> String {
    format!(
        "{} {} {} .",
        term_to_token(&st.subject),
        term_to_token(&st.predicate),
        term_to_token(&st.object)
    )
}

fn term_to_token(term: &Term) -> String {
    match term {
        Term::Iri(iri) => format!("<{iri}>"),
        Term::Blank(b) => format!("_:{b}"),
        Term::Literal(Literal::String(s)) => {
            format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
        }
        Term::Literal(Literal::Integer(i)) => format!("{i}"),
        Term::Literal(Literal::Double(d)) => {
            if d.fract() == 0.0 && d.is_finite() && d.abs() < 1e15 {
                format!("{d:.1}")
            } else {
                format!("{d}")
            }
        }
        Term::Literal(Literal::Boolean(b)) => format!("{b}"),
    }
}

fn parse_statement_line(line: &str) -> Result<Statement, String> {
    let body = line
        .strip_suffix('.')
        .ok_or("missing trailing '.'")?
        .trim_end();
    let mut terms = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        let (term, remainder) = parse_term_token(rest)?;
        terms.push(term);
        rest = remainder.trim_start();
    }
    if terms.len() != 3 {
        return Err(format!("expected 3 terms, found {}", terms.len()));
    }
    let object = terms.pop().expect("len checked");
    let predicate = terms.pop().expect("len checked");
    let subject = terms.pop().expect("len checked");
    if !subject.is_resource() {
        return Err("subject must be a resource".into());
    }
    if !matches!(predicate, Term::Iri(_)) {
        return Err("predicate must be an IRI".into());
    }
    Ok(Statement::new(subject, predicate, object))
}

fn parse_term_token(input: &str) -> Result<(Term, &str), String> {
    if let Some(rest) = input.strip_prefix('<') {
        let end = rest.find('>').ok_or("unterminated IRI")?;
        return Ok((Term::iri(&rest[..end]), &rest[end + 1..]));
    }
    if let Some(rest) = input.strip_prefix("_:") {
        let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
        return Ok((Term::blank(&rest[..end]), &rest[end..]));
    }
    if let Some(rest) = input.strip_prefix('"') {
        // Scan for the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '"')) => value.push('"'),
                    Some((_, '\\')) => value.push('\\'),
                    _ => return Err("bad escape in string literal".into()),
                },
                '"' => return Ok((Term::string(value), &rest[i + 1..])),
                other => value.push(other),
            }
        }
        return Err("unterminated string literal".into());
    }
    let end = input.find(char::is_whitespace).unwrap_or(input.len());
    let word = &input[..end];
    let remainder = &input[end..];
    if word == "true" || word == "false" {
        return Ok((Term::boolean(word == "true"), remainder));
    }
    if let Ok(i) = word.parse::<i64>() {
        return Ok((Term::integer(i), remainder));
    }
    if let Ok(d) = word.parse::<f64>() {
        return Ok((Term::double(d), remainder));
    }
    Err(format!("unrecognized term token: {word}"))
}

/// Sanitizes free text into an IRI-safe local name.
pub fn sanitize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
        } else if c == '_' || c == '-' || c == '.' {
            out.push(c);
        } else if c.is_whitespace() && !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_store::csv::csv_to_table;

    const CSV: &str = "country,gdp,population,developed\n\
                       united states,21000.5,331,true\n\
                       germany,4200.0,83,true\n\
                       mystery,,,false\n";

    #[test]
    fn table_to_statements_typed_objects() {
        let t = csv_to_table(CSV).unwrap();
        let stmts = table_to_statements(&t, "country", "ex").unwrap();
        // Row 1 and 2 contribute 3 statements each; mystery row has two
        // NULLs, contributing only 1.
        assert_eq!(stmts.len(), 7);
        let us_gdp = stmts
            .iter()
            .find(|s| {
                s.subject == Term::iri("ex:united_states") && s.predicate == Term::iri("ex:gdp")
            })
            .unwrap();
        assert_eq!(us_gdp.object, Term::double(21000.5));
        let dev = stmts
            .iter()
            .find(|s| {
                s.subject == Term::iri("ex:mystery") && s.predicate == Term::iri("ex:developed")
            })
            .unwrap();
        assert_eq!(dev.object, Term::boolean(false));
    }

    #[test]
    fn unknown_subject_column_errors() {
        let t = csv_to_table(CSV).unwrap();
        assert!(table_to_statements(&t, "nope", "ex").is_err());
    }

    #[test]
    fn statements_to_table_has_three_columns() {
        let t = csv_to_table(CSV).unwrap();
        let stmts = table_to_statements(&t, "country", "ex").unwrap();
        let graph: Graph = stmts.into_iter().collect();
        let triple_table = statements_to_table(&graph);
        assert_eq!(triple_table.len(), graph.len());
        assert_eq!(triple_table.schema().columns().len(), 3);
    }

    #[test]
    fn graph_text_round_trip() {
        let mut g = Graph::new();
        g.insert(Statement::new(
            Term::iri("ex:a"),
            Term::iri("ex:p"),
            Term::iri("ex:b"),
        ));
        g.insert(Statement::new(
            Term::iri("ex:a"),
            Term::iri("ex:n"),
            Term::integer(-5),
        ));
        g.insert(Statement::new(
            Term::iri("ex:a"),
            Term::iri("ex:d"),
            Term::double(2.5),
        ));
        g.insert(Statement::new(
            Term::iri("ex:a"),
            Term::iri("ex:f"),
            Term::double(3.0),
        ));
        g.insert(Statement::new(
            Term::iri("ex:a"),
            Term::iri("ex:b"),
            Term::boolean(true),
        ));
        g.insert(Statement::new(
            Term::iri("ex:a"),
            Term::iri("ex:s"),
            Term::string("with \"quotes\" and \\slash\\"),
        ));
        g.insert(Statement::new(
            Term::blank("n0"),
            Term::iri("ex:p"),
            Term::string("x"),
        ));
        let text = graph_to_text(&g);
        let back = text_to_graph(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn text_parser_tolerates_comments_and_blanks() {
        let g = text_to_graph("# comment\n\n<a> <p> <b> .\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn text_parser_rejects_malformed_lines() {
        for bad in [
            "<a> <p>",           // no dot, two terms
            "<a> <p> .",         // two terms
            "<a> <p> <b> <c> .", // four terms
            "\"lit\" <p> <b> .", // literal subject
            "<a> \"p\" <b> .",   // literal predicate
            "<a> <p> \"unterminated .",
            "<a> <p> what .",
        ] {
            assert!(text_to_graph(bad).is_err(), "{bad}");
        }
        let err = text_to_graph("<a> <p> <b> .\nbroken").unwrap_err();
        assert!(matches!(err, KbError::Corrupt(m) if m.contains("line 2")));
    }

    #[test]
    fn float_round_trip_preserves_type() {
        let mut g = Graph::new();
        g.insert(Statement::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::double(4.0),
        ));
        let back = text_to_graph(&graph_to_text(&g)).unwrap();
        let st = back.iter().next().unwrap();
        assert_eq!(st.object, Term::double(4.0));
        assert_ne!(st.object, Term::integer(4));
    }

    #[test]
    fn sanitize_produces_iri_safe_names() {
        assert_eq!(sanitize("United States"), "united_states");
        assert_eq!(sanitize("  A   B  "), "a_b");
        assert_eq!(sanitize("GDP ($bn)!"), "gdp_bn");
        assert_eq!(sanitize("already_fine-1.2"), "already_fine-1.2");
    }
}
