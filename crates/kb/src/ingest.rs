//! Pipelined streaming bulk ingest — the Fig. 5 analytics loop gone wide.
//!
//! [`PersonalKnowledgeBase::ingest_text`] runs one document at a time:
//! NLU analysis, term interning, the WAL group commit, and delta
//! materialization all serialize on the caller's thread, and every
//! document pays a full epoch publish. This module turns that loop into
//! a staged pipeline:
//!
//! ```text
//!   parse ──► [analyze queue] ──► NLU workers ──► [reorder] ──► intern ──► [commit queue] ──► commit
//!   (doc ids,    bounded          (SDK thread      (restore      (batched                    (one WAL group
//!    chunking)                     pool fan-out)    input order)  TermDict::intern_all)       commit + one
//!                                                                                             epoch publish
//!                                                                                             per batch)
//! ```
//!
//! * **Parse** — the caller's thread ([`IngestSession::push`] or the
//!   [`PersonalKnowledgeBase::ingest_stream`] driver) chunks the input
//!   into documents, assigns document ids in input order, and feeds a
//!   bounded queue.
//! * **Analyze** — a configurable number of workers on the SDK
//!   [`ThreadPool`] run the cognitive-service analysis (under the KB's
//!   configured [`NluConfig`], not a hardwired perfect profile) and
//!   build each document's RDF statements.
//! * **Intern** — completed documents are restored to input order and
//!   grouped into batches; each batch's terms are interned into the
//!   shared [`TermDict`] *before* the store lock is taken, so the commit
//!   stage's own interning is a read-only fast path.
//! * **Commit** — one thread owns the store: each batch is exactly one
//!   WAL group commit and one closure-complete epoch publish, so crash
//!   recovery yields a durable *prefix of acked batches* — never a
//!   half-applied batch.
//!
//! Every queue is bounded and a global credit gate caps in-flight
//! documents at [`IngestConfig::max_in_flight`]: a slow stage throttles
//! the stages upstream of it instead of ballooning memory. Stage depth,
//! throughput, and stall time are published as `sdk_ingest_stage_*`
//! metrics.

use crate::kb::PersonalKnowledgeBase;
use crate::KbError;
use cogsdk_core::ThreadPool;
use cogsdk_rdf::{Statement, Term};
use cogsdk_text::analysis::{DocumentAnalysis, NluConfig};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `rdf:type`, built once and shared across every ingested document
/// (the per-document allocation was measurable at bulk-load rates).
pub(crate) static RDF_TYPE: LazyLock<Term> = LazyLock::new(|| Term::iri("rdf:type"));
/// `kb:mentions`, built once (see [`RDF_TYPE`]).
pub(crate) static KB_MENTIONS: LazyLock<Term> = LazyLock::new(|| Term::iri("kb:mentions"));
/// `kb:Document`, built once (see [`RDF_TYPE`]).
pub(crate) static KB_DOCUMENT: LazyLock<Term> = LazyLock::new(|| Term::iri("kb:Document"));

/// The RDF statements one analyzed document contributes: the document
/// node, entity types, mentions with per-document sentiment, and
/// extracted relations. Shared by the document-at-a-time
/// [`PersonalKnowledgeBase::ingest_text_with`] and the streaming
/// pipeline so both produce byte-identical knowledge.
pub(crate) fn doc_statements(doc_id: usize, analysis: &DocumentAnalysis) -> Vec<Statement> {
    let doc = Term::iri(format!("kb:doc_{doc_id}"));
    let mut batch = Vec::with_capacity(1 + analysis.entities.len() * 3 + analysis.relations.len());
    batch.push(Statement::new(
        doc.clone(),
        RDF_TYPE.clone(),
        KB_DOCUMENT.clone(),
    ));
    for e in &analysis.entities {
        let entity = Term::iri(format!("kb:{}", e.canonical));
        batch.push(Statement::new(
            entity.clone(),
            RDF_TYPE.clone(),
            Term::iri(format!("kb:{}", e.kind)),
        ));
        batch.push(Statement::new(
            doc.clone(),
            KB_MENTIONS.clone(),
            entity.clone(),
        ));
        batch.push(Statement::new(
            entity,
            Term::iri(format!("kb:sentiment_in_doc_{doc_id}")),
            Term::double(e.sentiment.score),
        ));
    }
    for r in &analysis.relations {
        batch.push(Statement::new(
            Term::iri(format!("kb:{}", r.subject)),
            Term::iri(format!("kb:{}", r.predicate)),
            Term::iri(format!("kb:{}", r.object)),
        ));
    }
    batch
}

/// Splits a bulk text payload into documents on blank-line boundaries —
/// the parse stage's chunker for corpus-shaped input (e.g. the gateway's
/// `text` body field).
pub fn chunk_documents(text: &str) -> impl Iterator<Item = &str> {
    text.split("\n\n")
        .map(str::trim)
        .filter(|chunk| !chunk.is_empty())
}

/// Tuning knobs for the streaming bulk loader.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Documents per committed batch: one WAL group commit and one epoch
    /// publish each. Clamped to at least 1.
    pub batch_size: usize,
    /// Analysis workers fanned out on the SDK thread pool. Clamped to at
    /// least 1. Each worker occupies one pool slot for the session's
    /// lifetime, so keep `workers` below the pool size when the pool is
    /// shared.
    pub workers: usize,
    /// Hard cap on in-flight documents (parsed but not yet committed or
    /// abandoned) — the pipeline's memory bound. Clamped to at least
    /// `batch_size` so a batch can always fill.
    pub max_in_flight: usize,
    /// NLU quality profile for the analyze stage; `None` uses the
    /// knowledge base's configured profile.
    pub nlu: Option<NluConfig>,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            batch_size: 256,
            workers: 4,
            max_in_flight: 1024,
            nlu: None,
        }
    }
}

impl IngestConfig {
    fn normalized(mut self) -> IngestConfig {
        self.batch_size = self.batch_size.max(1);
        self.workers = self.workers.max(1);
        self.max_in_flight = self.max_in_flight.max(self.batch_size);
        self
    }
}

/// What one streaming ingest did. `documents`/`batches`/`statements`
/// count *acked* (durably committed) work only — on failure they
/// describe the exact recoverable prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Documents whose batch was committed.
    pub documents: usize,
    /// Batches committed (each one WAL group commit + one epoch publish).
    pub batches: usize,
    /// Statements new to the full view across all committed batches.
    pub statements: usize,
    /// Documents pushed into the pipeline (≥ `documents` on failure).
    pub pushed: usize,
    /// Wall-clock session time, push of the first document to finish.
    pub elapsed: Duration,
    /// Committed documents per second of session time.
    pub docs_per_sec: f64,
    /// Peak in-flight documents observed — never exceeds
    /// [`IngestConfig::max_in_flight`].
    pub peak_in_flight: usize,
    /// Time the parse stage spent blocked on the in-flight credit gate.
    pub parse_stall: Duration,
    /// Time the analyze stage spent blocked pushing into the reorder
    /// queue.
    pub analyze_stall: Duration,
    /// Time the intern stage spent blocked pushing into the commit queue.
    pub intern_stall: Duration,
}

/// A bounded MPMC queue: `push` blocks while full (recording the stall),
/// `pop` blocks while empty until closed. Purpose-built so stage depth
/// and stall time fall out of the structure itself.
struct Bounded<T> {
    inner: Mutex<BoundedInner<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
    depth: AtomicUsize,
    push_stall_ns: AtomicU64,
}

struct BoundedInner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    fn new(capacity: usize) -> Arc<Bounded<T>> {
        Arc::new(Bounded {
            inner: Mutex::new(BoundedInner {
                queue: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            depth: AtomicUsize::new(0),
            push_stall_ns: AtomicU64::new(0),
        })
    }

    /// Enqueues, blocking while the queue is at capacity — this block is
    /// the backpressure that throttles the upstream stage.
    fn push(&self, item: T) {
        let mut inner = self.inner.lock();
        if inner.queue.len() >= self.capacity && !inner.closed {
            let stalled = Instant::now();
            while inner.queue.len() >= self.capacity && !inner.closed {
                self.not_full.wait(&mut inner);
            }
            self.push_stall_ns
                .fetch_add(stalled.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        inner.queue.push_back(item);
        self.depth.store(inner.queue.len(), Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Dequeues, blocking while empty; `None` once closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                self.depth.store(inner.queue.len(), Ordering::Relaxed);
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// Marks the queue closed; blocked producers and consumers wake.
    fn close(&self) {
        self.inner.lock().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    fn stall(&self) -> Duration {
        Duration::from_nanos(self.push_stall_ns.load(Ordering::Relaxed))
    }
}

/// The global in-flight credit gate: one credit per parsed document,
/// returned when the document's batch commits (or is abandoned after a
/// failure). Because *every* stage's buffers hold only credited
/// documents, peak pipeline memory is bounded by the credit count no
/// matter which stage stalls.
struct Credits {
    available: Mutex<usize>,
    freed: Condvar,
    bound: usize,
    peak_in_flight: AtomicUsize,
    stall_ns: AtomicU64,
}

impl Credits {
    fn new(bound: usize) -> Arc<Credits> {
        Arc::new(Credits {
            available: Mutex::new(bound),
            freed: Condvar::new(),
            bound,
            peak_in_flight: AtomicUsize::new(0),
            stall_ns: AtomicU64::new(0),
        })
    }

    /// Takes one credit, blocking while none are free (the parse stage's
    /// backpressure point).
    fn acquire(&self) {
        let mut available = self.available.lock();
        if *available == 0 {
            let stalled = Instant::now();
            while *available == 0 {
                self.freed.wait(&mut available);
            }
            self.stall_ns
                .fetch_add(stalled.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        *available -= 1;
        let in_flight = self.bound - *available;
        drop(available);
        self.peak_in_flight.fetch_max(in_flight, Ordering::Relaxed);
    }

    fn release(&self, n: usize) {
        let mut available = self.available.lock();
        *available = (*available + n).min(self.bound);
        drop(available);
        self.freed.notify_all();
    }

    fn in_flight(&self) -> usize {
        self.bound - *self.available.lock()
    }

    fn peak(&self) -> usize {
        self.peak_in_flight.load(Ordering::Relaxed)
    }

    fn stall(&self) -> Duration {
        Duration::from_nanos(self.stall_ns.load(Ordering::Relaxed))
    }
}

/// Cross-stage counters, shared by every stage thread and the watcher.
#[derive(Default)]
struct StageCounters {
    parsed: AtomicU64,
    analyzed: AtomicU64,
    interned: AtomicU64,
    committed_docs: AtomicU64,
    committed_batches: AtomicU64,
    committed_statements: AtomicU64,
}

/// A clonable, read-only view of a running session's progress — safe to
/// poll from another thread while the session owner is blocked pushing.
#[derive(Clone)]
pub struct IngestWatcher {
    credits: Arc<Credits>,
    counters: Arc<StageCounters>,
}

impl IngestWatcher {
    /// Documents currently in flight (parsed, not yet committed or
    /// abandoned).
    pub fn in_flight(&self) -> usize {
        self.credits.in_flight()
    }

    /// Highest in-flight count observed so far.
    pub fn peak_in_flight(&self) -> usize {
        self.credits.peak()
    }

    /// Documents whose batch has committed so far.
    pub fn committed_documents(&self) -> usize {
        self.counters.committed_docs.load(Ordering::Relaxed) as usize
    }

    /// Documents analyzed so far.
    pub fn analyzed_documents(&self) -> usize {
        self.counters.analyzed.load(Ordering::Relaxed) as usize
    }
}

struct AnalyzeJob {
    index: usize,
    doc_id: usize,
    text: String,
}

struct PreparedBatch {
    documents: usize,
    statements: Vec<Statement>,
}

/// A push-style streaming bulk-ingest session. Build one with
/// [`IngestSession::new`], feed it documents with
/// [`push`](IngestSession::push) (which blocks when the pipeline's
/// in-flight bound is reached), and call
/// [`finish`](IngestSession::finish) to drain and collect the report.
///
/// Dropping a session without finishing shuts the pipeline down cleanly
/// (committing whatever had reached the commit stage).
pub struct IngestSession {
    kb: Arc<PersonalKnowledgeBase>,
    analyze_q: Arc<Bounded<AnalyzeJob>>,
    done_q: Arc<Bounded<(usize, Vec<Statement>)>>,
    commit_q: Arc<Bounded<PreparedBatch>>,
    credits: Arc<Credits>,
    counters: Arc<StageCounters>,
    failed: Arc<Mutex<Option<KbError>>>,
    failed_flag: Arc<AtomicBool>,
    workers: Vec<cogsdk_core::ListenableFuture<()>>,
    batcher: Option<JoinHandle<()>>,
    committer: Option<JoinHandle<()>>,
    started: Instant,
    pushed: usize,
}

impl IngestSession {
    /// Spins up the pipeline: `config.workers` analysis jobs on `pool`,
    /// an intern/batcher thread, and a committer thread. The session
    /// holds the knowledge base by `Arc` so the stages outlive the
    /// caller's stack frame.
    pub fn new(
        kb: Arc<PersonalKnowledgeBase>,
        pool: &ThreadPool,
        config: IngestConfig,
    ) -> IngestSession {
        let config = config.normalized();
        let nlu = config.nlu.clone().unwrap_or_else(|| kb.nlu_config());
        let analyzer = Arc::new(kb.clone_analyzer());
        let dict = kb.shared_dict();

        let analyze_q: Arc<Bounded<AnalyzeJob>> = Bounded::new(config.max_in_flight);
        let done_q = Bounded::new(config.max_in_flight);
        let commit_q = Bounded::new((config.max_in_flight / config.batch_size).max(1));
        let credits = Credits::new(config.max_in_flight);
        let counters = Arc::new(StageCounters::default());
        let failed = Arc::new(Mutex::new(None));
        let failed_flag = Arc::new(AtomicBool::new(false));

        // Analyze stage: NLU fan-out on the SDK pool. The last worker to
        // drain the queue closes the reorder queue behind itself.
        let live_workers = Arc::new(AtomicUsize::new(config.workers));
        let workers = (0..config.workers)
            .map(|_| {
                let analyze_q = analyze_q.clone();
                let done_q = done_q.clone();
                let analyzer = analyzer.clone();
                let nlu = nlu.clone();
                let counters = counters.clone();
                let live = live_workers.clone();
                pool.submit(move || {
                    while let Some(job) = analyze_q.pop() {
                        let analysis = analyzer.analyze(&job.text, &nlu);
                        counters.analyzed.fetch_add(1, Ordering::Relaxed);
                        done_q.push((job.index, doc_statements(job.doc_id, &analysis)));
                    }
                    if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        done_q.close();
                    }
                })
            })
            .collect();

        // Intern stage: restore input order, group into batches, intern
        // each batch's terms into the shared dictionary *off* the store
        // lock, hand the prepared batch to the committer.
        let batcher = {
            let done_q = done_q.clone();
            let commit_q = commit_q.clone();
            let counters = counters.clone();
            let batch_size = config.batch_size;
            std::thread::Builder::new()
                .name("cogsdk-ingest-intern".into())
                .spawn(move || {
                    let mut reorder: BTreeMap<usize, Vec<Statement>> = BTreeMap::new();
                    let mut next = 0usize;
                    let mut pending_docs = 0usize;
                    let mut pending: Vec<Statement> = Vec::new();
                    let flush = |pending: &mut Vec<Statement>, pending_docs: &mut usize| {
                        if *pending_docs == 0 {
                            return;
                        }
                        let statements = std::mem::take(pending);
                        dict.intern_all(&statements);
                        counters
                            .interned
                            .fetch_add(*pending_docs as u64, Ordering::Relaxed);
                        commit_q.push(PreparedBatch {
                            documents: std::mem::take(pending_docs),
                            statements,
                        });
                    };
                    while let Some((index, statements)) = done_q.pop() {
                        reorder.insert(index, statements);
                        while let Some(statements) = reorder.remove(&next) {
                            next += 1;
                            pending.extend(statements);
                            pending_docs += 1;
                            if pending_docs == batch_size {
                                flush(&mut pending, &mut pending_docs);
                            }
                        }
                    }
                    flush(&mut pending, &mut pending_docs);
                    commit_q.close();
                })
                .expect("spawn ingest intern thread")
        };

        // Commit stage: the single store owner. One WAL group commit and
        // one epoch publish per batch; the first failure stops all
        // further commits (preserving the acked-prefix crash contract)
        // but keeps draining so upstream stages unwind instead of
        // deadlocking on credits.
        let committer = {
            let kb = kb.clone();
            let commit_q = commit_q.clone();
            let credits = credits.clone();
            let counters = counters.clone();
            let failed = failed.clone();
            let failed_flag = failed_flag.clone();
            let analyze_q = analyze_q.clone();
            let done_q = done_q.clone();
            std::thread::Builder::new()
                .name("cogsdk-ingest-commit".into())
                .spawn(move || {
                    while let Some(batch) = commit_q.pop() {
                        if !failed_flag.load(Ordering::Acquire) {
                            match kb.commit_ingest_batch(batch.statements) {
                                Ok(added) => {
                                    counters
                                        .committed_docs
                                        .fetch_add(batch.documents as u64, Ordering::Relaxed);
                                    counters.committed_batches.fetch_add(1, Ordering::Relaxed);
                                    counters
                                        .committed_statements
                                        .fetch_add(added as u64, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    *failed.lock() = Some(e);
                                    failed_flag.store(true, Ordering::Release);
                                }
                            }
                        }
                        credits.release(batch.documents);
                        publish_stage_metrics(
                            &kb, &counters, &analyze_q, &done_q, &commit_q, &credits,
                        );
                    }
                })
                .expect("spawn ingest commit thread")
        };

        IngestSession {
            kb,
            analyze_q,
            done_q,
            commit_q,
            credits,
            counters,
            failed,
            failed_flag,
            workers,
            batcher: Some(batcher),
            committer: Some(committer),
            started: Instant::now(),
            pushed: 0,
        }
    }

    /// Feeds one document into the pipeline, blocking while the
    /// in-flight bound is reached (backpressure). Fails fast once a
    /// commit has failed — later documents would never be acked.
    ///
    /// # Errors
    ///
    /// The committer's first error, once one occurred.
    pub fn push(&mut self, doc: impl Into<String>) -> Result<(), KbError> {
        if let Some(e) = self.failure() {
            return Err(e);
        }
        self.credits.acquire();
        if let Some(e) = self.failure() {
            self.credits.release(1);
            return Err(e);
        }
        let doc_id = self.kb.allocate_doc_id();
        self.analyze_q.push(AnalyzeJob {
            index: self.pushed,
            doc_id,
            text: doc.into(),
        });
        self.pushed += 1;
        self.counters.parsed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The committer's first error, if any.
    pub fn failure(&self) -> Option<KbError> {
        if !self.failed_flag.load(Ordering::Acquire) {
            return None;
        }
        self.failed.lock().clone()
    }

    /// A clonable progress handle, safe to poll from other threads.
    pub fn watcher(&self) -> IngestWatcher {
        IngestWatcher {
            credits: self.credits.clone(),
            counters: self.counters.clone(),
        }
    }

    /// Documents currently in flight.
    pub fn in_flight(&self) -> usize {
        self.credits.in_flight()
    }

    /// Drains the pipeline and reports. On a commit failure the report
    /// still describes the acked prefix; the error rides alongside.
    pub fn finish_detailed(mut self) -> (IngestReport, Option<KbError>) {
        self.shutdown();
        let error = self.failure();
        let elapsed = self.started.elapsed();
        let documents = self.counters.committed_docs.load(Ordering::Relaxed) as usize;
        let report = IngestReport {
            documents,
            batches: self.counters.committed_batches.load(Ordering::Relaxed) as usize,
            statements: self.counters.committed_statements.load(Ordering::Relaxed) as usize,
            pushed: self.pushed,
            elapsed,
            docs_per_sec: documents as f64 / elapsed.as_secs_f64().max(1e-9),
            peak_in_flight: self.credits.peak(),
            parse_stall: self.credits.stall(),
            analyze_stall: self.done_q.stall(),
            intern_stall: self.commit_q.stall(),
        };
        (report, error)
    }

    /// As [`finish_detailed`](Self::finish_detailed), erroring if any
    /// batch failed to commit.
    ///
    /// # Errors
    ///
    /// The committer's first error; the acked prefix is still durable.
    pub fn finish(self) -> Result<IngestReport, KbError> {
        let (report, error) = self.finish_detailed();
        match error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Closes the intake and joins every stage. Idempotent; shared by
    /// `finish_detailed` and `Drop`.
    fn shutdown(&mut self) {
        self.analyze_q.close();
        for worker in self.workers.drain(..) {
            worker.wait();
        }
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        if let Some(committer) = self.committer.take() {
            let _ = committer.join();
        }
        publish_stage_metrics(
            &self.kb,
            &self.counters,
            &self.analyze_q,
            &self.done_q,
            &self.commit_q,
            &self.credits,
        );
    }
}

impl Drop for IngestSession {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for IngestSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestSession")
            .field("pushed", &self.pushed)
            .field("in_flight", &self.in_flight())
            .finish_non_exhaustive()
    }
}

/// Publishes the pipeline's per-stage depth, throughput, and stall-time
/// gauges as `sdk_ingest_stage_*` metrics, tenant-labeled when the base
/// is attributed to one. Everything is a `set`-style gauge over the
/// session's monotone atomics, so republishing per batch overwrites
/// rather than double counts.
fn publish_stage_metrics(
    kb: &PersonalKnowledgeBase,
    counters: &StageCounters,
    analyze_q: &Bounded<AnalyzeJob>,
    done_q: &Bounded<(usize, Vec<Statement>)>,
    commit_q: &Bounded<PreparedBatch>,
    credits: &Credits,
) {
    let Some((metrics, tenant)) = kb.ingest_metrics_handle() else {
        return;
    };
    let labeled = |stage: &'static str| -> Vec<(&str, &str)> {
        let mut labels = vec![("stage", stage)];
        if let Some(t) = tenant {
            labels.push(("tenant", t));
        }
        labels
    };
    for (stage, depth) in [
        ("analyze", analyze_q.depth()),
        ("intern", done_q.depth()),
        ("commit", commit_q.depth()),
    ] {
        metrics.set_gauge("sdk_ingest_stage_depth", &labeled(stage), depth as f64);
    }
    for (stage, docs) in [
        ("parse", counters.parsed.load(Ordering::Relaxed)),
        ("analyze", counters.analyzed.load(Ordering::Relaxed)),
        ("intern", counters.interned.load(Ordering::Relaxed)),
        ("commit", counters.committed_docs.load(Ordering::Relaxed)),
    ] {
        metrics.set_gauge("sdk_ingest_stage_docs", &labeled(stage), docs as f64);
    }
    for (stage, stall) in [
        ("parse", credits.stall()),
        ("analyze", done_q.stall()),
        ("intern", commit_q.stall()),
    ] {
        metrics.set_gauge(
            "sdk_ingest_stage_stall_ms",
            &labeled(stage),
            stall.as_secs_f64() * 1e3,
        );
    }
    let base: Vec<(&str, &str)> = match tenant {
        Some(t) => vec![("tenant", t)],
        None => Vec::new(),
    };
    metrics.set_gauge("sdk_ingest_in_flight", &base, credits.in_flight() as f64);
    metrics.set_gauge(
        "sdk_ingest_committed_documents",
        &base,
        counters.committed_docs.load(Ordering::Relaxed) as f64,
    );
    metrics.set_gauge(
        "sdk_ingest_committed_batches",
        &base,
        counters.committed_batches.load(Ordering::Relaxed) as f64,
    );
    metrics.set_gauge(
        "sdk_ingest_committed_statements",
        &base,
        counters.committed_statements.load(Ordering::Relaxed) as f64,
    );
}

impl PersonalKnowledgeBase {
    /// Streaming bulk ingest: drives `docs` through the staged pipeline
    /// (chunked parse → parallel NLU on `pool` → batched interning →
    /// grouped WAL commit + epoch publish per batch) and blocks until
    /// every document is committed. Equivalent to calling
    /// [`ingest_text`](Self::ingest_text) per document — same statements,
    /// same document ids, same final epoch contents — but each committed
    /// batch costs one group commit and one epoch publish instead of one
    /// per document.
    ///
    /// Crash contract (durable bases): recovery after a crash mid-stream
    /// yields exactly the documents of a *prefix of acked batches*,
    /// closure re-derived from scratch — never a torn batch.
    ///
    /// # Errors
    ///
    /// The first batch-commit failure; earlier batches stay durable,
    /// later ones are not applied. Use [`IngestSession`] directly for
    /// the acked-prefix report alongside the error.
    pub fn ingest_stream<I, S>(
        self: &Arc<Self>,
        pool: &ThreadPool,
        docs: I,
        config: IngestConfig,
    ) -> Result<IngestReport, KbError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut session = IngestSession::new(self.clone(), pool, config);
        for doc in docs {
            session.push(doc)?;
        }
        session.finish()
    }
}
