//! The `PersonalKnowledgeBase` facade.

use crate::analytics::{regress_table, RegressionFacts};
use crate::convert::{graph_to_text, sanitize, table_to_statements, text_to_graph};
use crate::KbError;
use bytes::Bytes;
use cogsdk_obs::Telemetry;
use cogsdk_rdf::query::Solution;
use cogsdk_rdf::reason::TriplePattern;
use cogsdk_rdf::weighted::{WeightedGraph, WeightedReasoner};
use cogsdk_rdf::{
    DurableOptions, DurableStore, EpochSnapshot, EpochStore, GenericRuleReasoner, Graph, Query,
    QueryStats, RecoveryStats, Statement, Term, TermId, WalStats,
};
use cogsdk_sim::fs::Vfs;
use cogsdk_store::crypto::Key;
use cogsdk_store::csv::{csv_to_table, table_to_csv};
use cogsdk_store::enhanced::{EnhancedClient, EnhancedOptions};
use cogsdk_store::kv::{KeyValueStore, MemoryKv};
use cogsdk_store::sync::{LocalFirstStore, SyncReport};
use cogsdk_store::table::{Schema, Table, TableStore};
use cogsdk_text::analysis::{Analyzer, NluConfig};
use cogsdk_text::disambig::{EntityCatalog, ResolvedEntity};
use cogsdk_text::SpellChecker;
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A candidate object in a conflict, with its accuracy level.
pub type ConflictCandidate = (Term, f64);

/// One conflict: the `(subject, predicate)` pair and its candidate
/// objects, most-trusted first.
pub type Conflict = ((Term, Term), Vec<ConflictCandidate>);

/// Construction options for the knowledge base.
#[derive(Debug, Clone, Default)]
pub struct KbOptions {
    /// Encrypt persisted knowledge with a key derived from this
    /// passphrase before it reaches the remote store (§3's
    /// confidentiality requirement for untrusted stores).
    pub encryption_passphrase: Option<String>,
    /// Compress persisted knowledge before upload.
    pub compress: bool,
    /// Client-side cache entries for the remote store.
    pub cache_capacity: usize,
    /// NLU quality profile used by text ingest (`None` = perfect
    /// analysis, the historical default). Reconfigurable later via
    /// [`PersonalKnowledgeBase::set_nlu_config`].
    pub nlu: Option<NluConfig>,
}

/// The personalized knowledge base.
///
/// Holds data in every §3 form at once — relational tables, an RDF graph,
/// and a key-value persistence layer (local-first with an
/// encrypting/compressing client in front of the remote store) — and
/// converts between them.
///
/// # Examples
///
/// ```
/// use cogsdk_kb::{PersonalKnowledgeBase, KbOptions};
/// use cogsdk_store::MemoryKv;
/// use std::sync::Arc;
///
/// let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());
/// kb.ingest_csv("gdp", "country,gdp\nusa,21000.5\ngermany,4200.0\n").unwrap();
/// kb.table_to_rdf("gdp", "country", "kb").unwrap();
/// let rows = kb.query("SELECT ?c WHERE { ?c <kb:gdp> ?g . FILTER (?g > 10000) }").unwrap();
/// assert_eq!(rows.len(), 1);
/// ```
pub struct PersonalKnowledgeBase {
    tables: TableStore,
    /// The RDF store, wrapped in an incremental materializer: once a
    /// reasoner is enabled (via `infer_*`), its closure is *maintained*
    /// across later ingests and retractions instead of being recomputed
    /// from scratch per call (the Fig. 5 loop's hot path). When the base
    /// was opened durably, every mutation is WAL-logged before it
    /// applies, so a crash loses at most the in-flight operation.
    graph: RwLock<DurableStore>,
    /// The store's immutable epoch snapshots, shared with the
    /// [`DurableStore`] *outside* the `graph` lock: readers pin an epoch
    /// with one refcount bump and never contend with writers. Weighted
    /// confidences travel inside each epoch (§5 future work: accuracy
    /// levels on stored and inferred facts) and are durably owned by the
    /// store itself.
    epochs: Arc<EpochStore>,
    catalog: RwLock<EntityCatalog>,
    analyzer: Analyzer,
    /// NLU quality profile applied by `ingest_text` (and the streaming
    /// pipeline when its config doesn't override it) — degraded/chaos
    /// analysis paths are reachable from ingest by configuring this.
    nlu: RwLock<NluConfig>,
    spell: SpellChecker,
    store: LocalFirstStore,
    /// Retained handle on the enhanced client so its cache counters can
    /// be surfaced through telemetry.
    enhanced: Arc<EnhancedClient>,
    telemetry: Telemetry,
    /// Owning tenant: when set, published metrics carry a `tenant` label
    /// so a multi-tenant host can attribute KB cache traffic.
    tenant: Option<String>,
    /// Cache counters already pushed into the metrics registry
    /// (hits, misses) — publishing is delta-based.
    published_cache: Mutex<(u64, u64)>,
    /// WAL counters already pushed into the metrics registry —
    /// publishing is delta-based, like the cache counters.
    published_wal: Mutex<WalStats>,
    doc_counter: AtomicUsize,
}

impl std::fmt::Debug for PersonalKnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersonalKnowledgeBase")
            .field("tables", &self.tables.table_names())
            .field("statements", &self.graph.read().len())
            .finish_non_exhaustive()
    }
}

impl PersonalKnowledgeBase {
    /// Creates a knowledge base persisting to `remote` through an
    /// enhanced client configured by `options`.
    pub fn new(remote: Arc<dyn KeyValueStore>, options: KbOptions) -> PersonalKnowledgeBase {
        PersonalKnowledgeBase::with_telemetry(remote, options, Telemetry::disabled())
    }

    /// As [`PersonalKnowledgeBase::new`], publishing the enhanced
    /// client's cache hit/miss counters into `telemetry` (labeled
    /// `cache="kb-enhanced"`) whenever the store is touched.
    pub fn with_telemetry(
        remote: Arc<dyn KeyValueStore>,
        options: KbOptions,
        telemetry: Telemetry,
    ) -> PersonalKnowledgeBase {
        PersonalKnowledgeBase::build(remote, options, telemetry, DurableStore::in_memory())
    }

    /// Opens a *durable* knowledge base whose RDF store is
    /// crash-recoverable under `path`: every ingest, import, retraction,
    /// and ruleset change is appended to a write-ahead log before it
    /// applies, and recovery (snapshot load + WAL replay + closure
    /// re-derivation) runs before this returns. See
    /// [`DurableStore`](cogsdk_rdf::DurableStore) for the recovery
    /// contract.
    ///
    /// # Errors
    ///
    /// [`KbError::Durability`] if existing state is corrupt beyond a
    /// torn tail record or storage fails.
    pub fn open_durable(
        path: impl AsRef<Path>,
        remote: Arc<dyn KeyValueStore>,
        options: KbOptions,
    ) -> Result<PersonalKnowledgeBase, KbError> {
        let graph = DurableStore::open_dir(path, DurableOptions::default())?;
        Ok(PersonalKnowledgeBase::build(
            remote,
            options,
            Telemetry::disabled(),
            graph,
        ))
    }

    /// As [`open_durable`](Self::open_durable) on an explicit virtual
    /// filesystem (e.g. a fault-injecting `SimFs`), with telemetry:
    /// recovery stats are published once at open and WAL counters on
    /// every logged mutation.
    ///
    /// # Errors
    ///
    /// As for [`open_durable`](Self::open_durable).
    pub fn open_durable_on(
        fs: Arc<dyn Vfs>,
        remote: Arc<dyn KeyValueStore>,
        options: KbOptions,
        telemetry: Telemetry,
    ) -> Result<PersonalKnowledgeBase, KbError> {
        let graph = DurableStore::open(fs, DurableOptions::default())?;
        Ok(PersonalKnowledgeBase::build(
            remote, options, telemetry, graph,
        ))
    }

    fn build(
        remote: Arc<dyn KeyValueStore>,
        options: KbOptions,
        telemetry: Telemetry,
        graph: DurableStore,
    ) -> PersonalKnowledgeBase {
        let enhanced = Arc::new(EnhancedClient::new(
            remote,
            EnhancedOptions {
                cache_capacity: options.cache_capacity,
                compress: options.compress,
                encryption_key: options.encryption_passphrase.as_deref().map(Key::derive),
            },
        ));
        let kb = PersonalKnowledgeBase {
            tables: TableStore::new(),
            doc_counter: AtomicUsize::new(next_doc_id(&graph)),
            epochs: graph.epochs().clone(),
            graph: RwLock::new(graph),
            catalog: RwLock::new(EntityCatalog::builtin()),
            analyzer: Analyzer::with_default_lexicons(),
            nlu: RwLock::new(options.nlu.clone().unwrap_or_else(NluConfig::perfect)),
            spell: SpellChecker::with_builtin_dictionary(),
            store: LocalFirstStore::new(Arc::new(MemoryKv::new()), enhanced.clone()),
            enhanced,
            telemetry,
            tenant: None,
            published_cache: Mutex::new((0, 0)),
            published_wal: Mutex::new(WalStats::default()),
        };
        kb.publish_recovery_metrics();
        kb
    }

    /// Attributes this knowledge base to one tenant: published cache
    /// counters gain a `tenant` label (untenanted bases keep their
    /// original series).
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> PersonalKnowledgeBase {
        self.tenant = Some(tenant.into());
        self
    }

    /// Remote-store cache effectiveness counters (hits/misses of the
    /// enhanced client's read cache).
    pub fn store_cache_stats(&self) -> cogsdk_store::enhanced::EnhancedStats {
        self.enhanced.stats()
    }

    /// Pushes the enhanced client's cache counters into the metrics
    /// registry as `cache_requests_total{cache="kb-enhanced",result=…}`.
    /// Delta-based: safe to call as often as convenient. Invoked
    /// automatically by the persistence entry points.
    pub fn publish_cache_metrics(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let stats = self.enhanced.stats();
        let mut last = self.published_cache.lock();
        let hits = stats.cache_hits.saturating_sub(last.0);
        let misses = stats.cache_misses.saturating_sub(last.1);
        *last = (stats.cache_hits, stats.cache_misses);
        drop(last);
        let metrics = self.telemetry.metrics();
        const KB_CACHE: (&str, &str) = ("cache", "kb-enhanced");
        for (result, delta) in [("hit", hits), ("miss", misses)] {
            if delta == 0 {
                continue;
            }
            match self.tenant.as_deref() {
                Some(t) => metrics.add_counter(
                    "cache_requests_total",
                    &[KB_CACHE, ("result", result), ("tenant", t)],
                    delta,
                ),
                None => metrics.add_counter(
                    "cache_requests_total",
                    &[KB_CACHE, ("result", result)],
                    delta,
                ),
            }
        }
    }

    /// Publishes the recovery stats of a durable open as
    /// `sdk_recovery_*` metrics. Called once from construction; a no-op
    /// for in-memory bases or disabled telemetry.
    fn publish_recovery_metrics(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let Some(stats) = self.graph.read().recovery_stats() else {
            return;
        };
        let metrics = self.telemetry.metrics();
        metrics.add_counter(
            "sdk_recovery_replayed_records_total",
            &[],
            stats.replayed_records,
        );
        metrics.add_counter("sdk_recovery_torn_tail_total", &[], stats.torn_tails);
        metrics.set_gauge("sdk_recovery_duration_ms", &[], stats.duration_ms);
        metrics.set_gauge("sdk_recovery_base_triples", &[], stats.base_triples as f64);
    }

    /// Pushes WAL activity counters (`sdk_wal_appends_total`,
    /// `sdk_wal_fsyncs_total`, `sdk_wal_bytes_total`) into the metrics
    /// registry. Delta-based like the cache counters; invoked by every
    /// mutation entry point that may have logged.
    pub fn publish_durability_metrics(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let stats = self.graph.read().wal_stats();
        let mut last = self.published_wal.lock();
        let appends = stats.appends.saturating_sub(last.appends);
        let fsyncs = stats.fsyncs.saturating_sub(last.fsyncs);
        let bytes = stats.bytes.saturating_sub(last.bytes);
        *last = stats;
        drop(last);
        let metrics = self.telemetry.metrics();
        for (name, delta) in [
            ("sdk_wal_appends_total", appends),
            ("sdk_wal_fsyncs_total", fsyncs),
            ("sdk_wal_bytes_total", bytes),
        ] {
            if delta != 0 {
                metrics.add_counter(name, &[], delta);
            }
        }
    }

    /// Runs `f` under the graph write lock, then publishes any WAL
    /// activity it produced.
    fn with_graph_mut<R>(&self, f: impl FnOnce(&mut DurableStore) -> R) -> R {
        let result = f(&mut self.graph.write());
        self.publish_durability_metrics();
        result
    }

    // ------------------------------------------------------------------
    // Relational and CSV storage
    // ------------------------------------------------------------------

    /// Ingests CSV text (with header) as a new table; returns the row
    /// count.
    ///
    /// # Errors
    ///
    /// Malformed CSV or a duplicate table name.
    pub fn ingest_csv(&self, name: &str, csv_text: &str) -> Result<usize, KbError> {
        let table = csv_to_table(csv_text)?;
        let rows = table.len();
        self.tables.create_table(name, table.schema().clone())?;
        for row in table.rows() {
            self.tables.insert(name, row.clone())?;
        }
        Ok(rows)
    }

    /// Creates an empty table with an explicit schema.
    ///
    /// # Errors
    ///
    /// Duplicate name.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), KbError> {
        Ok(self.tables.create_table(name, schema)?)
    }

    /// Exports a table as CSV text (§3: output "which can be analyzed by
    /// other data analysis tools such as MATLAB, Excel, … R").
    ///
    /// # Errors
    ///
    /// Unknown table.
    pub fn export_csv(&self, name: &str) -> Result<String, KbError> {
        Ok(self.tables.with_table(name, table_to_csv)?)
    }

    /// The table store, for direct relational work.
    pub fn tables(&self) -> &TableStore {
        &self.tables
    }

    /// Runs `f` against a named table.
    ///
    /// # Errors
    ///
    /// Unknown table.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> Result<R, KbError> {
        Ok(self.tables.with_table(name, f)?)
    }

    // ------------------------------------------------------------------
    // RDF storage, conversion, querying, inference
    // ------------------------------------------------------------------

    /// Converts a table to RDF statements in the graph; returns how many
    /// statements were added.
    ///
    /// # Errors
    ///
    /// Unknown table or subject column.
    pub fn table_to_rdf(
        &self,
        table: &str,
        subject_col: &str,
        namespace: &str,
    ) -> Result<usize, KbError> {
        let statements = self
            .tables
            .with_table(table, |t| table_to_statements(t, subject_col, namespace))??;
        // One batch delta propagation (and one WAL group commit) for the
        // whole table.
        Ok(self.with_graph_mut(|g| g.insert_batch(statements))?)
    }

    /// Adds one statement directly; returns whether it was new.
    ///
    /// # Errors
    ///
    /// [`KbError::Durability`] if the WAL append fails (the statement is
    /// then *not* applied in memory).
    pub fn add_statement(&self, statement: Statement) -> Result<bool, KbError> {
        Ok(self.with_graph_mut(|g| g.insert(statement))?)
    }

    /// Adds a fact given *surface forms*: subject and object are
    /// disambiguated against the entity catalog so "USA" and "United
    /// States of America" land on one canonical resource (§3). An object
    /// that resolves to no entity is stored as a string literal.
    ///
    /// # Errors
    ///
    /// [`KbError::UnknownEntity`] if the subject cannot be resolved.
    pub fn add_fact(
        &self,
        subject: &str,
        predicate: &str,
        object: &str,
    ) -> Result<Statement, KbError> {
        let catalog = self.catalog.read();
        let subj = catalog
            .resolve(subject)
            .ok_or_else(|| KbError::UnknownEntity(subject.to_string()))?;
        let object_term = match catalog.resolve(object) {
            Some(e) => Term::iri(format!("kb:{}", e.id)),
            None => Term::string(object),
        };
        drop(catalog);
        let st = Statement::new(
            Term::iri(format!("kb:{}", subj.id)),
            Term::iri(format!("kb:{}", sanitize(predicate))),
            object_term,
        );
        self.with_graph_mut(|g| g.insert(st.clone()))?;
        Ok(st)
    }

    /// Resolves a surface form through the catalog.
    pub fn disambiguate(&self, surface: &str) -> Option<ResolvedEntity> {
        self.catalog.read().resolve(surface)
    }

    /// Registers user synonym pairs (§3: user-provided synonym files for
    /// domains with no disambiguation service).
    pub fn add_synonyms<I, S1, S2>(&self, pairs: I)
    where
        I: IntoIterator<Item = (S1, S2)>,
        S1: AsRef<str>,
        S2: Into<String>,
    {
        self.catalog.write().add_synonyms(pairs);
    }

    /// Loads a synonym file (`canonical: surface1, surface2` lines).
    ///
    /// # Errors
    ///
    /// [`KbError::Corrupt`] on malformed lines.
    pub fn add_synonym_file(&self, contents: &str) -> Result<usize, KbError> {
        self.catalog
            .write()
            .add_synonym_file(contents)
            .map_err(KbError::Corrupt)
    }

    /// Ingests unstructured text: runs the local analyzer and stores the
    /// findings as RDF — entity types, document mentions with sentiment,
    /// and extracted relations. Returns the number of statements added.
    /// On a durable base the whole document lands in one WAL group
    /// commit: after a crash either the document's facts are all
    /// recoverable or none are half-applied.
    ///
    /// # Errors
    ///
    /// [`KbError::Durability`] if the WAL append fails (nothing is
    /// applied in memory).
    pub fn ingest_text(&self, text: &str) -> Result<usize, KbError> {
        self.ingest_text_with(text, &self.nlu_config())
    }

    /// As [`ingest_text`](Self::ingest_text) under an explicit NLU
    /// quality profile, overriding the base's configured one for this
    /// document only.
    ///
    /// # Errors
    ///
    /// As for [`ingest_text`](Self::ingest_text).
    pub fn ingest_text_with(&self, text: &str, config: &NluConfig) -> Result<usize, KbError> {
        let analysis = self.analyzer.analyze(text, config);
        let doc_id = self.doc_counter.fetch_add(1, Ordering::Relaxed);
        let batch = crate::ingest::doc_statements(doc_id, &analysis);
        Ok(self.with_graph_mut(|g| g.insert_batch(batch))?)
    }

    /// The NLU quality profile text ingest currently analyzes under.
    pub fn nlu_config(&self) -> NluConfig {
        self.nlu.read().clone()
    }

    /// Reconfigures the NLU quality profile for later text ingest —
    /// e.g. a degraded vendor profile so chaos experiments exercise the
    /// same ingest path production does.
    pub fn set_nlu_config(&self, config: NluConfig) {
        *self.nlu.write() = config;
    }

    /// Reserves the next document id. Ids are handed out in call order,
    /// so a streaming session that pushes documents sequentially gets
    /// the same ids a sequential `ingest_text` loop would.
    pub(crate) fn allocate_doc_id(&self) -> usize {
        self.doc_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// A clone of the analyzer for pipeline workers (the lexicon tables
    /// inside are `Arc`-shared, so this is cheap).
    pub(crate) fn clone_analyzer(&self) -> Analyzer {
        self.analyzer.clone()
    }

    /// The live term dictionary (shared with every epoch), for the
    /// ingest pipeline's off-lock intern stage. Interning ahead of the
    /// commit is safe: the WAL's dictionary watermark logs *all* terms
    /// interned since the last commit, whichever thread interned them.
    pub(crate) fn shared_dict(&self) -> cogsdk_rdf::TermDict {
        self.epochs.pin().dict().clone()
    }

    /// Commits one prepared ingest batch: a single WAL group commit and
    /// a single closure-complete epoch publish. The streaming loader's
    /// whole crash contract rests on this being the only way a batch
    /// lands.
    pub(crate) fn commit_ingest_batch(&self, batch: Vec<Statement>) -> Result<usize, KbError> {
        Ok(self.with_graph_mut(|g| g.insert_batch(batch))?)
    }

    /// The metrics registry and tenant attribution for ingest-pipeline
    /// gauges, or `None` when telemetry is disabled.
    pub(crate) fn ingest_metrics_handle(
        &self,
    ) -> Option<(&cogsdk_obs::MetricsRegistry, Option<&str>)> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        Some((self.telemetry.metrics(), self.tenant.as_deref()))
    }

    /// An order-insensitive digest of the full view (stated plus
    /// inferred), computed over *resolved* statements so two bases whose
    /// dictionaries interned the same knowledge in different orders —
    /// e.g. a pipelined bulk load vs a sequential one — digest equal.
    pub fn contents_digest(&self) -> u64 {
        let snap = self.epochs.pin();
        let dict = snap.dict();
        let mut lines: Vec<String> = snap
            .iter_ids()
            .into_iter()
            .map(|triple| {
                let st = dict.resolve_triple(triple);
                format!("{} {} {}", st.subject, st.predicate, st.object)
            })
            .collect();
        lines.sort_unstable();
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for line in &lines {
            for &b in line.as_bytes() {
                digest ^= u64::from(b);
                digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
            }
            digest ^= u64::from(b'\n');
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
        digest
    }

    /// Runs a SPARQL-subset query against the graph.
    ///
    /// Conjunctive (multi-pattern) queries compile through the cost-based
    /// BGP planner: join order by index-cardinality selectivity, merge
    /// joins where the sort orders line up, index nested loops otherwise.
    ///
    /// # Errors
    ///
    /// Parse errors from the query engine.
    pub fn query(&self, sparql: &str) -> Result<Vec<Solution>, KbError> {
        Ok(self.query_with_stats(sparql)?.0)
    }

    /// Like [`query`](Self::query), also returning the planner's stats
    /// record (plan time, join strategy counts, rows). Publishes the
    /// `sdk_query_*` metrics — tenant-labeled when the base is attributed
    /// to one.
    ///
    /// # Errors
    ///
    /// Parse errors from the query engine.
    pub fn query_with_stats(&self, sparql: &str) -> Result<(Vec<Solution>, QueryStats), KbError> {
        self.query_on(&self.query_snapshot(), sparql)
    }

    /// Runs a query against an explicitly pinned epoch snapshot (from
    /// [`query_snapshot`](Self::query_snapshot) or
    /// [`query_snapshot_at`](Self::query_snapshot_at)) — the stable-paging
    /// primitive the gateway uses. Publishes the same `sdk_query_*`
    /// metrics as [`query`](Self::query).
    ///
    /// # Errors
    ///
    /// Parse errors from the query engine.
    pub fn query_on(
        &self,
        snapshot: &EpochSnapshot,
        sparql: &str,
    ) -> Result<(Vec<Solution>, QueryStats), KbError> {
        let q = Query::parse(sparql)?;
        let (rows, stats) = q.execute_with_stats(snapshot);
        self.publish_query_metrics(&stats);
        Ok((rows, stats))
    }

    /// Renders the execution plan the planner chooses for `sparql` against
    /// the current graph (join order, per-pattern index and operator,
    /// cardinality estimates) without running it.
    ///
    /// # Errors
    ///
    /// Parse errors from the query engine.
    pub fn query_explain(&self, sparql: &str) -> Result<String, KbError> {
        let q = Query::parse(sparql)?;
        Ok(q.explain(&*self.query_snapshot()))
    }

    /// A point-in-time snapshot of the graph (stated plus inferred) for
    /// stable paging: offset/limit pages drawn from one snapshot stay
    /// consistent while concurrent ingest moves the live indexes on.
    ///
    /// Pinning is O(1) — one `Arc` refcount bump on the current
    /// [`EpochSnapshot`] — and holds no lock, so queries on the snapshot
    /// never block (and are never blocked by) writers. The snapshot
    /// shares the term dictionary, so plans built on it resolve the same
    /// ids as the live graph.
    pub fn query_snapshot(&self) -> Arc<EpochSnapshot> {
        self.epochs.pin()
    }

    /// Re-pins a specific epoch for continued paging, if the store still
    /// retains it. `None` means the epoch expired (or never existed) and
    /// the pager must restart from a fresh snapshot.
    pub fn query_snapshot_at(&self, epoch: u64) -> Option<Arc<EpochSnapshot>> {
        self.epochs.at(epoch)
    }

    /// Pushes one query's planner counters into the metrics registry:
    /// `sdk_query_total`, `sdk_query_rows_total`,
    /// `sdk_query_joins_total{strategy=…}` and the `sdk_query_plan_micros`
    /// histogram. Tenant-labeled like the cache counters.
    fn publish_query_metrics(&self, stats: &QueryStats) {
        if !self.telemetry.is_enabled() {
            return;
        }
        fn labeled<'a>(
            mut labels: Vec<(&'a str, &'a str)>,
            tenant: Option<&'a str>,
        ) -> Vec<(&'a str, &'a str)> {
            if let Some(t) = tenant {
                labels.push(("tenant", t));
            }
            labels
        }
        let metrics = self.telemetry.metrics();
        let tenant = self.tenant.as_deref();
        let base = labeled(Vec::new(), tenant);
        metrics.add_counter("sdk_query_total", &base, 1);
        metrics.add_counter("sdk_query_rows_total", &base, stats.rows as u64);
        metrics.observe("sdk_query_plan_micros", &base, stats.plan_micros as f64);
        for (strategy, count) in [
            ("merge", stats.merge_joins),
            ("nested_loop", stats.loop_joins),
        ] {
            if count > 0 {
                let labels = labeled(vec![("strategy", strategy)], tenant);
                metrics.add_counter("sdk_query_joins_total", &labels, count as u64);
            }
        }
    }

    /// Number of statements in the graph (stated plus inferred).
    pub fn statement_count(&self) -> usize {
        self.epochs.pin().len()
    }

    /// Runs `f` with read access to the graph (stated plus inferred).
    pub fn with_graph<R>(&self, f: impl FnOnce(&Graph) -> R) -> R {
        f(self.graph.read().full())
    }

    /// Enables RDFS entailment as a *standing* ruleset: the closure is
    /// materialized now and maintained incrementally on every later
    /// ingest or retraction. Returns how many facts this call inferred.
    ///
    /// # Errors
    ///
    /// [`KbError::Durability`] if logging the ruleset change fails.
    pub fn infer_rdfs(&self) -> Result<usize, KbError> {
        self.with_graph_mut(|graph| {
            graph.enable_rdfs()?;
            Ok(graph.materialize())
        })
    }

    /// Enables transitive closure over the given predicates as a standing
    /// ruleset; returns how many facts this call inferred.
    ///
    /// # Errors
    ///
    /// [`KbError::Durability`] if logging the ruleset change fails.
    pub fn infer_transitive(&self, predicates: Vec<Term>) -> Result<usize, KbError> {
        self.with_graph_mut(|graph| {
            graph.add_transitive(predicates)?;
            Ok(graph.materialize())
        })
    }

    /// Enables the OWL/Lite-subset rules (inverseOf, symmetric/transitive/
    /// functional properties, sameAs smushing — the third Jena reasoner
    /// the paper lists) plus RDFS as a standing ruleset; returns how many
    /// facts this call inferred.
    ///
    /// # Errors
    ///
    /// [`KbError::Durability`] if logging the ruleset change fails.
    pub fn infer_owl(&self) -> Result<usize, KbError> {
        self.with_graph_mut(|graph| {
            graph.enable_owl()?;
            Ok(graph.materialize())
        })
    }

    /// Proves a goal with *tabled backward chaining* over user rules —
    /// Jena's on-demand alternative to forward saturation, listed in §3.
    /// The goal uses rule-pattern syntax, e.g.
    /// `"(?who kb:ancestor kb:carol)"`; returns one binding set per proof.
    ///
    /// # Errors
    ///
    /// Parse errors in the goal or rules.
    pub fn prove(
        &self,
        rules_text: &str,
        goal: &str,
        max_depth: usize,
    ) -> Result<Vec<cogsdk_rdf::query::Solution>, KbError> {
        let reasoner = GenericRuleReasoner::from_rules_text(rules_text)?;
        let goal = TriplePattern::parse(goal)?;
        Ok(reasoner.prove(self.graph.read().full(), &goal, max_depth))
    }

    /// Runs user-defined rules (Jena-like syntax, one per line) with
    /// forward chaining. The rules become *standing*: their conclusions
    /// are maintained incrementally as later facts arrive.
    ///
    /// # Errors
    ///
    /// Rule parse errors.
    pub fn infer_rules(&self, rules_text: &str) -> Result<usize, KbError> {
        let reasoner = GenericRuleReasoner::from_rules_text(rules_text)?;
        self.with_graph_mut(|graph| {
            graph.add_rules(reasoner.rules().to_vec())?;
            Ok(graph.materialize())
        })
    }

    // ------------------------------------------------------------------
    // Federation: remote knowledge sources (§3)
    // ------------------------------------------------------------------

    /// Runs a SPARQL query against the local graph *and* a remote
    /// knowledge source, merging the solutions (local first). The paper's
    /// KB "uses \[SPARQL\] to query data sources such as DBpedia" alongside
    /// its own store.
    ///
    /// # Errors
    ///
    /// Local parse errors or remote failures.
    pub fn query_federated(
        &self,
        service: &Arc<cogsdk_sim::SimService>,
        monitor: &cogsdk_core::ServiceMonitor,
        sparql: &str,
    ) -> Result<Vec<Solution>, KbError> {
        self.query_federated_within(service, monitor, sparql, cogsdk_core::Deadline::NONE)
    }

    /// As [`query_federated`](Self::query_federated), with the remote leg
    /// bounded by an end-to-end deadline: the local graph always answers,
    /// but no remote attempt starts past the budget.
    ///
    /// # Errors
    ///
    /// As for [`query_federated`](Self::query_federated); deadline
    /// exhaustion surfaces as [`KbError::Store`].
    pub fn query_federated_within(
        &self,
        service: &Arc<cogsdk_sim::SimService>,
        monitor: &cogsdk_core::ServiceMonitor,
        sparql: &str,
        deadline: cogsdk_core::Deadline,
    ) -> Result<Vec<Solution>, KbError> {
        let mut local = self.query(sparql)?;
        let remote = crate::federation::query_remote_within(service, monitor, sparql, deadline)?;
        for solution in remote {
            if !local.contains(&solution) {
                local.push(solution);
            }
        }
        Ok(local)
    }

    /// Runs a SPARQL query against the local graph *and several* remote
    /// knowledge sources at once, fanning the remote legs out over the
    /// SDK thread pool so total latency tracks the *slowest* source, not
    /// the sum. Each leg runs under the same retry/monitoring governance
    /// as [`query_federated`](Self::query_federated); solutions merge
    /// local-first with duplicates dropped.
    ///
    /// # Errors
    ///
    /// Local parse errors, or the first remote failure (every leg still
    /// runs to completion before this returns).
    pub fn query_federated_many(
        &self,
        pool: &cogsdk_core::ThreadPool,
        services: &[Arc<cogsdk_sim::SimService>],
        monitor: &Arc<cogsdk_core::ServiceMonitor>,
        sparql: &str,
    ) -> Result<Vec<Solution>, KbError> {
        self.query_federated_many_within(
            pool,
            services,
            monitor,
            sparql,
            cogsdk_core::Deadline::NONE,
        )
    }

    /// As [`query_federated_many`](Self::query_federated_many), with every
    /// remote leg bounded by one shared end-to-end deadline. Because the
    /// legs run concurrently, the deadline buys the slowest source's
    /// latency, not the sum of all sources'.
    ///
    /// # Errors
    ///
    /// As for [`query_federated_many`](Self::query_federated_many);
    /// deadline exhaustion surfaces as [`KbError::Store`].
    pub fn query_federated_many_within(
        &self,
        pool: &cogsdk_core::ThreadPool,
        services: &[Arc<cogsdk_sim::SimService>],
        monitor: &Arc<cogsdk_core::ServiceMonitor>,
        sparql: &str,
        deadline: cogsdk_core::Deadline,
    ) -> Result<Vec<Solution>, KbError> {
        let mut local = self.query(sparql)?;
        // Launch every remote leg before waiting on any of them.
        let legs: Vec<_> = services
            .iter()
            .map(|service| {
                let service = service.clone();
                let monitor = monitor.clone();
                let sparql = sparql.to_string();
                pool.submit(move || {
                    crate::federation::query_remote_within(&service, &monitor, &sparql, deadline)
                })
            })
            .collect();
        let mut first_err = None;
        for leg in legs {
            match leg.wait().as_ref() {
                Ok(remote) => {
                    for solution in remote {
                        if !local.contains(solution) {
                            local.push(solution.clone());
                        }
                    }
                }
                Err(e) => {
                    first_err.get_or_insert_with(|| e.clone());
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(local),
        }
    }

    /// Imports every fact a remote source has about `entity_id`, tagging
    /// each with `source_confidence` (§5: sources "may not be completely
    /// accurate"). Returns how many statements were added.
    ///
    /// # Errors
    ///
    /// Unknown entity at the source, or remote failure.
    ///
    /// # Panics
    ///
    /// Panics if `source_confidence` is outside `[0, 1]`.
    pub fn import_entity(
        &self,
        service: &Arc<cogsdk_sim::SimService>,
        monitor: &cogsdk_core::ServiceMonitor,
        entity_id: &str,
        source_confidence: f64,
    ) -> Result<usize, KbError> {
        self.import_entity_within(
            service,
            monitor,
            entity_id,
            source_confidence,
            cogsdk_core::Deadline::NONE,
        )
    }

    /// As [`import_entity`](Self::import_entity), bounded by an
    /// end-to-end deadline so a slow or flapping source cannot stall a
    /// KB refresh indefinitely.
    ///
    /// # Errors
    ///
    /// As for [`import_entity`](Self::import_entity); deadline exhaustion
    /// surfaces as [`KbError::Store`].
    ///
    /// # Panics
    ///
    /// Panics if `source_confidence` is outside `[0, 1]`.
    pub fn import_entity_within(
        &self,
        service: &Arc<cogsdk_sim::SimService>,
        monitor: &cogsdk_core::ServiceMonitor,
        entity_id: &str,
        source_confidence: f64,
        deadline: cogsdk_core::Deadline,
    ) -> Result<usize, KbError> {
        assert!(
            (0.0..=1.0).contains(&source_confidence),
            "confidence must be in [0, 1]"
        );
        let facts =
            crate::federation::describe_remote_within(service, monitor, entity_id, deadline)?;
        // One delta propagation (and one WAL group commit each for the
        // confidences and the facts) for the imported batch.
        self.with_graph_mut(|g| {
            if source_confidence < 1.0 {
                let merged: Vec<(Statement, f64)> = facts
                    .statements
                    .iter()
                    .map(|st| (st.clone(), merge_confidence(g, st, source_confidence)))
                    .collect();
                g.set_confidence_batch(merged)?;
            }
            Ok(g.insert_batch(facts.statements)?)
        })
    }

    // ------------------------------------------------------------------
    // Accuracy levels (the paper’s §5 future work, implemented)
    // ------------------------------------------------------------------

    /// Adds a fact with an accuracy level in `[0, 1]`. Subject/object are
    /// disambiguated exactly as in [`add_fact`](Self::add_fact).
    ///
    /// # Errors
    ///
    /// [`KbError::UnknownEntity`] for an unresolvable subject.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is outside `[0, 1]`.
    pub fn add_fact_with_confidence(
        &self,
        subject: &str,
        predicate: &str,
        object: &str,
        confidence: f64,
    ) -> Result<Statement, KbError> {
        assert!(
            (0.0..=1.0).contains(&confidence),
            "confidence must be in [0, 1]"
        );
        let st = self.add_fact(subject, predicate, object)?;
        self.with_graph_mut(|g| {
            let merged = merge_confidence(g, &st, confidence);
            g.set_confidence(&st, merged)
        })?;
        Ok(st)
    }

    /// The accuracy level of a stored statement: `None` if absent,
    /// `Some(1.0)` for plainly asserted facts. Reads from the current
    /// epoch without taking the store lock.
    pub fn fact_confidence(&self, st: &Statement) -> Option<f64> {
        let snap = self.epochs.pin();
        let triple = snap.dict().lookup_statement(st)?;
        if !snap.contains_id(triple) {
            return None;
        }
        Some(snap.confidence_of(triple).unwrap_or(1.0))
    }

    /// Runs user rules with confidence propagation: each inferred fact
    /// receives `rule_strength × min(premise confidences)` and is stored
    /// with that accuracy level. Returns the new facts.
    ///
    /// # Errors
    ///
    /// Rule parse errors.
    pub fn infer_rules_weighted(
        &self,
        rules_text: &str,
        rule_strength: f64,
    ) -> Result<Vec<(Statement, f64)>, KbError> {
        let reasoner = WeightedReasoner::from_rules_text(rules_text, rule_strength)?;
        let mut wg = {
            let snap = self.epochs.pin();
            let mut wg = WeightedGraph::from_graph(snap.to_graph());
            for (&triple, &c) in snap.confidence().iter() {
                wg.insert_with_confidence(snap.dict().resolve_triple(triple), c);
            }
            wg
        };
        let added = reasoner.infer(&mut wg);
        // One group commit for every fact the rules produced, one more
        // for their confidences.
        self.with_graph_mut(|g| {
            g.insert_batch(added.iter().map(|(st, _)| st.clone()))?;
            g.set_confidence_batch(added.clone())?;
            Ok::<_, KbError>(())
        })?;
        Ok(added)
    }

    /// Detects conflicts: `(subject, predicate)` pairs holding more than
    /// one distinct object, with each candidate's accuracy level — §5's
    /// "data sources … may not be consistent with data obtained from
    /// other sources". Candidates are ordered most-trusted first, so
    /// `conflicts()[i].1[0]` is the resolution a confidence-greedy policy
    /// would pick.
    pub fn conflicts(&self) -> Vec<Conflict> {
        // One pinned epoch gives facts and confidences from the same
        // instant, without holding the store lock while grouping.
        let snap = self.epochs.pin();
        // Group on dictionary ids; only the conflicting minority of
        // statements is ever materialized back into terms.
        let mut by_sp: std::collections::BTreeMap<(TermId, TermId), Vec<TermId>> =
            std::collections::BTreeMap::new();
        for (s, p, o) in snap.iter_ids() {
            by_sp.entry((s, p)).or_default().push(o);
        }
        let dict = snap.dict();
        let mut out: Vec<Conflict> = by_sp
            .into_iter()
            .filter(|(_, objects)| objects.len() > 1)
            .map(|((s, p), objects)| {
                let subject = dict.resolve(s);
                let predicate = dict.resolve(p);
                let mut candidates: Vec<ConflictCandidate> = objects
                    .into_iter()
                    .map(|o| {
                        let object = dict.resolve(o);
                        let c = snap.confidence_of((s, p, o)).unwrap_or(1.0);
                        (object, c)
                    })
                    .collect();
                candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                ((subject, predicate), candidates)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Resolves conflicts on one *single-valued* predicate by keeping
    /// only the most-trusted object per subject; returns how many
    /// statements were dropped. The caller names the predicate because
    /// only the application knows which predicates are functional —
    /// multi-valued predicates like `kb:mentions` are legitimate
    /// "conflicts" that must not be pruned.
    ///
    /// Retraction runs through the materializer's DRed maintenance, so
    /// facts that were inferred *from* a dropped statement are retracted
    /// with it (unless independently derivable).
    ///
    /// # Errors
    ///
    /// [`KbError::Durability`] if logging a retraction fails; dropped
    /// counts retractions applied before the failure.
    pub fn resolve_conflicts_for(&self, predicate: &Term) -> Result<usize, KbError> {
        let conflicts = self.conflicts();
        self.with_graph_mut(|graph| {
            let mut dropped = 0;
            for ((subject, p), candidates) in conflicts {
                if &p != predicate {
                    continue;
                }
                for (object, _) in candidates.into_iter().skip(1) {
                    let st = Statement::new(subject.clone(), p.clone(), object);
                    if graph.remove(&st)? {
                        // Restore the default so the dropped statement's
                        // stale accuracy level doesn't outlive it.
                        graph.set_confidence(&st, 1.0)?;
                        dropped += 1;
                    }
                }
            }
            Ok(dropped)
        })
    }

    /// Facts whose accuracy is below `threshold`, weakest first — the
    /// review queue for uncertain knowledge.
    pub fn weak_facts(&self, threshold: f64) -> Vec<(Statement, f64)> {
        let snap = self.epochs.pin();
        let mut out: Vec<(Statement, f64)> = snap
            .confidence()
            .iter()
            .filter(|&(&triple, &c)| c < threshold && snap.contains_id(triple))
            .map(|(&triple, &c)| (snap.dict().resolve_triple(triple), c))
            .collect();
        out.sort_by(|a, b| {
            a.1.total_cmp(&b.1)
                .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
        });
        out
    }

    // ------------------------------------------------------------------
    // Analytics (Figure 5)
    // ------------------------------------------------------------------

    /// Fits `y_col ~ x_col` over a table and stores the results as RDF
    /// statements, enabling rule-based inference over them.
    ///
    /// # Errors
    ///
    /// Unknown table/columns or degenerate data.
    pub fn regress_and_store(
        &self,
        table: &str,
        x_col: &str,
        y_col: &str,
        model_name: &str,
    ) -> Result<RegressionFacts, KbError> {
        let facts = self
            .tables
            .with_table(table, |t| regress_table(t, x_col, y_col, model_name))??;
        self.with_graph_mut(|g| g.insert_batch(facts.to_statements()))?;
        Ok(facts)
    }

    // ------------------------------------------------------------------
    // Spell checking (§3: local, fast, free)
    // ------------------------------------------------------------------

    /// Checks text, returning `(misspelled, suggestion)` pairs.
    pub fn spell_check(&self, text: &str) -> Vec<(String, Option<String>)> {
        self.spell.check_text(text)
    }

    // ------------------------------------------------------------------
    // Persistence and offline operation
    // ------------------------------------------------------------------

    /// Persists the RDF graph under `key` (local-first; pushed to the
    /// remote store through the enhanced client when connected).
    ///
    /// # Errors
    ///
    /// Local storage failure (remote failures leave the key dirty for
    /// the next synchronization instead of failing).
    pub fn persist_graph(&self, key: &str) -> Result<(), KbError> {
        let text = graph_to_text(self.graph.read().full());
        let result = self.store.put(key, Bytes::from(text.into_bytes()));
        self.publish_cache_metrics();
        Ok(result?)
    }

    /// Loads a previously persisted graph under `key`, *replacing* the
    /// current graph.
    ///
    /// # Errors
    ///
    /// Missing key or corrupt data.
    pub fn load_graph(&self, key: &str) -> Result<usize, KbError> {
        let bytes = self.store.get(key);
        self.publish_cache_metrics();
        let bytes = bytes?;
        let text =
            String::from_utf8(bytes.to_vec()).map_err(|e| KbError::Corrupt(e.to_string()))?;
        let graph = text_to_graph(&text)?;
        let n = graph.len();
        self.with_graph_mut(|g| g.reset(graph))?;
        Ok(n)
    }

    /// Whether the RDF store is crash-recoverable (opened through
    /// [`open_durable`](Self::open_durable) or
    /// [`open_durable_on`](Self::open_durable_on)).
    pub fn is_durable(&self) -> bool {
        self.graph.read().is_durable()
    }

    /// Writes a checksummed snapshot of the RDF store and truncates its
    /// write-ahead log, bounding future recovery time. Returns bytes
    /// written (0 for in-memory bases).
    ///
    /// # Errors
    ///
    /// [`KbError::Durability`] on storage failure.
    pub fn snapshot(&self) -> Result<u64, KbError> {
        Ok(self.with_graph_mut(|g| g.snapshot())?)
    }

    /// Stats from the recovery this base was opened with, if durable.
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.graph.read().recovery_stats()
    }

    /// Cumulative WAL activity since open (zeroes when in-memory).
    pub fn wal_stats(&self) -> WalStats {
        self.graph.read().wal_stats()
    }

    /// Sets the (client-observed) connectivity state (§3's disconnected
    /// operation).
    pub fn set_connected(&self, connected: bool) {
        self.store.set_connected(connected);
    }

    /// Pushes offline writes to the remote store after reconnecting.
    pub fn synchronize(&self) -> SyncReport {
        let report = self.store.synchronize();
        self.publish_cache_metrics();
        report
    }

    /// Keys written locally but not yet remote.
    pub fn dirty_keys(&self) -> Vec<String> {
        self.store.dirty_keys()
    }
}

/// Max-merges a new accuracy level into a statement's stored one: an
/// unrated statement takes the incoming level; a rated one keeps the
/// most-trusted rating seen so far.
fn merge_confidence(graph: &DurableStore, st: &Statement, incoming: f64) -> f64 {
    graph
        .full()
        .lookup_statement(st)
        .and_then(|t| graph.confidences().get(&t).copied())
        .map_or(incoming, |current| current.max(incoming))
}

/// The first document id [`PersonalKnowledgeBase::ingest_text`] may use:
/// past the highest `kb:doc_{n}` subject already in the store, so a
/// durably recovered base never reuses a document id.
fn next_doc_id(graph: &DurableStore) -> usize {
    let full = graph.full();
    let dict = full.dict();
    let mut next = 0;
    for (s, _, _) in full.iter_ids() {
        if let Some(iri) = dict.resolve(s).as_iri() {
            if let Some(n) = iri
                .strip_prefix("kb:doc_")
                .and_then(|n| n.parse::<usize>().ok())
            {
                next = next.max(n + 1);
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_store::StoreError;

    fn kb() -> PersonalKnowledgeBase {
        PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default())
    }

    #[test]
    fn telemetry_publishes_kb_cache_counters() {
        let remote: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
        // Writer KB seeds the shared remote store.
        let writer = PersonalKnowledgeBase::new(remote.clone(), KbOptions::default());
        writer
            .add_statement(Statement::new(
                Term::iri("kb:a"),
                Term::iri("kb:b"),
                Term::iri("kb:c"),
            ))
            .unwrap();
        writer.persist_graph("g").unwrap();
        // Reader KB has an empty local store, so loads fall through to
        // the enhanced client and register in its cache counters.
        let t = Telemetry::new();
        let reader = PersonalKnowledgeBase::with_telemetry(
            remote,
            KbOptions {
                cache_capacity: 8,
                ..KbOptions::default()
            },
            t.clone(),
        );
        reader.load_graph("g").unwrap();
        let stats = reader.store_cache_stats();
        assert!(
            stats.cache_misses >= 1,
            "remote read must register a cache miss: {stats:?}"
        );
        let count = |result: &str| {
            t.metrics()
                .counter_value(
                    "cache_requests_total",
                    &[("cache", "kb-enhanced"), ("result", result)],
                )
                .unwrap_or(0)
        };
        assert_eq!(count("hit"), stats.cache_hits);
        assert_eq!(count("miss"), stats.cache_misses);
        // Publishing is delta-based: republish with no traffic adds nothing.
        reader.publish_cache_metrics();
        assert_eq!(count("hit"), stats.cache_hits);
        assert_eq!(count("miss"), stats.cache_misses);
    }

    #[test]
    fn tenant_attributed_kb_labels_its_cache_series() {
        let remote: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
        let writer = PersonalKnowledgeBase::new(remote.clone(), KbOptions::default());
        writer
            .add_statement(Statement::new(
                Term::iri("kb:a"),
                Term::iri("kb:b"),
                Term::iri("kb:c"),
            ))
            .unwrap();
        writer.persist_graph("g").unwrap();
        let t = Telemetry::new();
        let reader = PersonalKnowledgeBase::with_telemetry(remote, KbOptions::default(), t.clone())
            .for_tenant("acme");
        reader.load_graph("g").unwrap();
        let stats = reader.store_cache_stats();
        assert_eq!(
            t.metrics().counter_value(
                "cache_requests_total",
                &[
                    ("cache", "kb-enhanced"),
                    ("result", "miss"),
                    ("tenant", "acme")
                ],
            ),
            Some(stats.cache_misses)
        );
        // The untenanted series stays untouched for a tenanted base.
        assert_eq!(
            t.metrics().counter_value(
                "cache_requests_total",
                &[("cache", "kb-enhanced"), ("result", "miss")],
            ),
            None
        );
    }

    #[test]
    fn query_metrics_are_tenant_labeled() {
        let remote: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
        let t = Telemetry::new();
        let kb = PersonalKnowledgeBase::with_telemetry(remote, KbOptions::default(), t.clone())
            .for_tenant("acme");
        for (s, name) in [("kb:usa", "US"), ("kb:germany", "Germany")] {
            kb.add_statement(Statement::new(
                Term::iri(s),
                Term::iri("kb:name"),
                Term::string(name),
            ))
            .unwrap();
            kb.add_statement(Statement::new(
                Term::iri(s),
                Term::iri("kb:kind"),
                Term::iri("kb:Country"),
            ))
            .unwrap();
        }
        let (rows, stats) = kb
            .query_with_stats("SELECT ?n WHERE { ?c <kb:kind> <kb:Country> . ?c <kb:name> ?n }")
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(stats.patterns, 2);
        assert_eq!(stats.merge_joins + stats.loop_joins, 1);

        let m = t.metrics();
        assert_eq!(
            m.counter_value("sdk_query_total", &[("tenant", "acme")]),
            Some(1)
        );
        assert_eq!(
            m.counter_value("sdk_query_rows_total", &[("tenant", "acme")]),
            Some(2)
        );
        let merge = m
            .counter_value(
                "sdk_query_joins_total",
                &[("strategy", "merge"), ("tenant", "acme")],
            )
            .unwrap_or(0);
        let nested = m
            .counter_value(
                "sdk_query_joins_total",
                &[("strategy", "nested_loop"), ("tenant", "acme")],
            )
            .unwrap_or(0);
        assert_eq!(merge + nested, 1, "exactly one join, strategy-labeled");
        assert!(
            m.histogram("sdk_query_plan_micros", &[("tenant", "acme")])
                .is_some(),
            "plan time observed"
        );
        // The untenanted series stays untouched for a tenanted base.
        assert_eq!(m.counter_value("sdk_query_total", &[]), None);

        // EXPLAIN goes through the same planner.
        let plan = kb
            .query_explain("SELECT ?n WHERE { ?c <kb:kind> <kb:Country> . ?c <kb:name> ?n }")
            .unwrap();
        assert!(plan.starts_with("bgp 2 patterns"), "{plan}");
    }

    const GDP_CSV: &str = "country,gdp,year\nusa,20000.0,2015\nusa,21000.0,2016\ngermany,4100.0,2015\ngermany,4200.0,2016\n";

    #[test]
    fn csv_ingest_and_export_round_trip() {
        let kb = kb();
        assert_eq!(kb.ingest_csv("gdp", GDP_CSV).unwrap(), 4);
        let out = kb.export_csv("gdp").unwrap();
        assert!(out.starts_with("country,gdp,year\n"));
        assert_eq!(out.lines().count(), 5);
        assert!(kb.ingest_csv("gdp", GDP_CSV).is_err(), "duplicate table");
        assert!(kb.export_csv("nope").is_err());
    }

    #[test]
    fn table_to_rdf_and_query() {
        let kb = kb();
        kb.ingest_csv("gdp", GDP_CSV).unwrap();
        let added = kb.table_to_rdf("gdp", "country", "kb").unwrap();
        assert!(added > 0);
        let rows = kb
            .query("SELECT ?g WHERE { <kb:usa> <kb:gdp> ?g . } ORDER BY ?g")
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn add_fact_disambiguates_aliases_to_one_resource() {
        let kb = kb();
        kb.add_fact("USA", "trades with", "Germany").unwrap();
        kb.add_fact("United States of America", "trades with", "Deutschland")
            .unwrap();
        // Both facts landed on the same canonical statement.
        assert_eq!(kb.statement_count(), 1, "no redundant entries");
        let rows = kb
            .query("SELECT ?o WHERE { <kb:united_states> <kb:trades_with> ?o . }")
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn add_fact_unknown_subject_errors_and_object_falls_back_to_literal() {
        let kb = kb();
        assert!(matches!(
            kb.add_fact("Atlantis", "is", "fiction"),
            Err(KbError::UnknownEntity(_))
        ));
        let st = kb.add_fact("IBM", "slogan", "Think").unwrap();
        assert_eq!(st.object, Term::string("Think"));
    }

    #[test]
    fn synonyms_extend_disambiguation() {
        let kb = kb();
        kb.add_synonym_file("influenza: flu, the flu\n").unwrap();
        assert_eq!(kb.disambiguate("the flu").unwrap().id, "influenza");
        kb.add_synonyms([("big blue", "ibm")]);
        assert_eq!(kb.disambiguate("Big Blue").unwrap().id, "ibm");
    }

    #[test]
    fn ingest_text_stores_entities_and_relations() {
        let kb = kb();
        let added = kb
            .ingest_text("IBM acquired Oracle. The USA praised the excellent deal.")
            .unwrap();
        assert!(added >= 6, "added {added}");
        let rows = kb
            .query("SELECT ?o WHERE { <kb:ibm> <kb:acquired> ?o . }")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["o"], Term::iri("kb:oracle"));
        // Entity types recorded.
        let types = kb
            .query("SELECT ?t WHERE { <kb:united_states> <rdf:type> ?t . }")
            .unwrap();
        assert!(!types.is_empty());
    }

    #[test]
    fn rdfs_inference_in_kb() {
        let kb = kb();
        kb.add_statement(Statement::new(
            Term::iri("kb:organization"),
            Term::iri("rdfs:subClassOf"),
            Term::iri("kb:agent"),
        ))
        .unwrap();
        kb.ingest_text("IBM announced results.").unwrap();
        let inferred = kb.infer_rdfs().unwrap();
        assert!(inferred > 0);
        let rows = kb
            .query("SELECT ?x WHERE { ?x <rdf:type> <kb:agent> . }")
            .unwrap();
        assert!(rows.iter().any(|r| r["x"] == Term::iri("kb:ibm")));
    }

    #[test]
    fn transitive_inference_in_kb() {
        let kb = kb();
        kb.add_fact("IBM", "supplies", "Microsoft").unwrap();
        kb.add_fact("Microsoft", "supplies", "Google").unwrap();
        let n = kb.infer_transitive(vec![Term::iri("kb:supplies")]).unwrap();
        assert_eq!(n, 1);
        let rows = kb
            .query("SELECT ?o WHERE { <kb:ibm> <kb:supplies> ?o . }")
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn figure5_regression_plus_rules() {
        let kb = kb();
        kb.ingest_csv("gdp", GDP_CSV).unwrap();
        let facts = kb
            .regress_and_store("gdp", "year", "gdp", "gdp trend")
            .unwrap();
        assert!(facts.slope > 0.0);
        let inferred = kb
            .infer_rules(
                "[(?m kb:trend \"increasing\") -> (?m kb:classification kb:GrowthIndicator)]",
            )
            .unwrap();
        assert_eq!(inferred, 1);
        let rows = kb
            .query("SELECT ?m WHERE { ?m <kb:classification> <kb:GrowthIndicator> . }")
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn spell_checking_local() {
        let kb = kb();
        let found = kb.spell_check("the markt grew");
        assert!(found
            .iter()
            .any(|(w, s)| w == "markt" && s.as_deref() == Some("market")));
    }

    #[test]
    fn persistence_round_trip() {
        let kb = kb();
        kb.add_fact("IBM", "hq", "New York").unwrap();
        kb.ingest_text("Germany praised France.").unwrap();
        let before = kb.statement_count();
        kb.persist_graph("snapshot").unwrap();
        kb.add_fact("Google", "hq", "California").unwrap();
        assert!(kb.statement_count() > before);
        let loaded = kb.load_graph("snapshot").unwrap();
        assert_eq!(loaded, before);
        assert_eq!(kb.statement_count(), before);
    }

    #[test]
    fn encrypted_compressed_persistence_round_trips() {
        let remote = Arc::new(MemoryKv::new());
        let kb = PersonalKnowledgeBase::new(
            remote.clone(),
            KbOptions {
                encryption_passphrase: Some("kb secret".into()),
                compress: true,
                cache_capacity: 16,
                ..KbOptions::default()
            },
        );
        kb.add_fact("IBM", "ticker", "IBM common stock").unwrap();
        kb.persist_graph("g").unwrap();
        // The remote copy must not contain plaintext.
        let raw = remote.get("g").unwrap();
        assert!(!raw.windows(3).any(|w| w == b"IBM"));
        kb.load_graph("g").unwrap();
        assert_eq!(kb.statement_count(), 1);
    }

    #[test]
    fn offline_persist_and_resync() {
        let remote = Arc::new(MemoryKv::new());
        let kb = PersonalKnowledgeBase::new(remote.clone(), KbOptions::default());
        kb.set_connected(false);
        kb.add_fact("IBM", "founded in", "New York").unwrap();
        kb.persist_graph("g").unwrap();
        assert_eq!(kb.dirty_keys(), vec!["g"]);
        assert!(matches!(remote.get("g"), Err(StoreError::NotFound(_))));
        // Still loadable locally while offline.
        assert_eq!(kb.load_graph("g").unwrap(), 1);
        kb.set_connected(true);
        let report = kb.synchronize();
        assert_eq!(report.pushed, vec!["g"]);
        assert!(remote.get("g").is_ok());
    }

    #[test]
    fn accuracy_levels_on_facts() {
        let kb = kb();
        let st = kb
            .add_fact_with_confidence("IBM", "rumored to acquire", "Oracle", 0.4)
            .unwrap();
        assert_eq!(kb.fact_confidence(&st), Some(0.4));
        // Plain facts default to full confidence.
        let plain = kb.add_fact("IBM", "hq", "New York").unwrap();
        assert_eq!(kb.fact_confidence(&plain), Some(1.0));
        // Absent facts have no confidence.
        let missing = Statement::new(Term::iri("kb:x"), Term::iri("kb:y"), Term::iri("kb:z"));
        assert_eq!(kb.fact_confidence(&missing), None);
        // Corroboration raises, never lowers.
        kb.add_fact_with_confidence("IBM", "rumored to acquire", "Oracle", 0.7)
            .unwrap();
        assert_eq!(kb.fact_confidence(&st), Some(0.7));
        kb.add_fact_with_confidence("IBM", "rumored to acquire", "Oracle", 0.1)
            .unwrap();
        assert_eq!(kb.fact_confidence(&st), Some(0.7));
    }

    #[test]
    fn weighted_inference_assigns_accuracy_to_new_facts() {
        let kb = kb();
        kb.add_fact_with_confidence("IBM", "supplies", "Microsoft", 0.9)
            .unwrap();
        kb.add_fact_with_confidence("Microsoft", "supplies", "Google", 0.5)
            .unwrap();
        let added = kb
            .infer_rules_weighted(
                "[(?a kb:supplies ?b), (?b kb:supplies ?c) -> (?a kb:indirect_supplier_of ?c)]",
                0.8,
            )
            .unwrap();
        assert_eq!(added.len(), 1);
        let (fact, conf) = &added[0];
        assert_eq!(fact.predicate, Term::iri("kb:indirect_supplier_of"));
        // 0.8 (rule) × min(0.9, 0.5) = 0.40.
        assert!((conf - 0.4).abs() < 1e-9, "conf={conf}");
        assert_eq!(kb.fact_confidence(fact), Some(*conf));
        // The inferred fact is queryable like any other.
        let rows = kb
            .query("SELECT ?c WHERE { <kb:ibm> <kb:indirect_supplier_of> ?c . }")
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn conflicting_sources_are_detected_and_resolved_by_trust() {
        let kb = kb();
        // Two sources disagree on Germany's capital; one is official.
        kb.add_fact_with_confidence("Germany", "capital", "Berlin", 0.95)
            .unwrap();
        kb.add_fact_with_confidence("Germany", "capital", "Bonn", 0.40)
            .unwrap();
        // And an unrelated consistent fact.
        kb.add_fact("Germany", "continent", "Europe").unwrap();
        let conflicts = kb.conflicts();
        assert_eq!(conflicts.len(), 1, "{conflicts:?}");
        let ((s, p), candidates) = &conflicts[0];
        assert_eq!(s, &Term::iri("kb:germany"));
        assert_eq!(p, &Term::iri("kb:capital"));
        assert_eq!(candidates.len(), 2);
        // "Berlin" disambiguates to the catalog city; "Bonn" does not.
        assert_eq!(
            candidates[0].0,
            Term::iri("kb:berlin"),
            "most trusted first"
        );
        assert!((candidates[0].1 - 0.95).abs() < 1e-9);

        // Resolving a different predicate touches nothing.
        assert_eq!(
            kb.resolve_conflicts_for(&Term::iri("kb:continent"))
                .unwrap(),
            0
        );
        let dropped = kb.resolve_conflicts_for(&Term::iri("kb:capital")).unwrap();
        assert_eq!(dropped, 1);
        assert!(kb.conflicts().is_empty());
        let rows = kb
            .query("SELECT ?c WHERE { <kb:germany> <kb:capital> ?c . }")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["c"], Term::iri("kb:berlin"));
    }

    #[test]
    fn weak_facts_review_queue() {
        let kb = kb();
        kb.add_fact("IBM", "hq", "New York").unwrap();
        kb.add_fact_with_confidence("IBM", "rumor a", "x1", 0.2)
            .unwrap();
        kb.add_fact_with_confidence("IBM", "rumor b", "x2", 0.45)
            .unwrap();
        let weak = kb.weak_facts(0.5);
        assert_eq!(weak.len(), 2);
        assert!(weak[0].1 <= weak[1].1, "sorted weakest first");
        assert!(kb.weak_facts(0.1).is_empty());
    }

    #[test]
    fn owl_reasoning_smushes_aliases() {
        let kb = kb();
        kb.add_statement(Statement::new(
            Term::iri("kb:big_blue"),
            Term::iri("owl:sameAs"),
            Term::iri("kb:ibm"),
        ))
        .unwrap();
        kb.add_statement(Statement::new(
            Term::iri("kb:big_blue"),
            Term::iri("kb:founded"),
            Term::integer(1911),
        ))
        .unwrap();
        let n = kb.infer_owl().unwrap();
        assert!(n >= 2, "inferred {n}");
        let rows = kb
            .query("SELECT ?y WHERE { <kb:ibm> <kb:founded> ?y . }")
            .unwrap();
        assert_eq!(rows[0]["y"], Term::integer(1911));
    }

    #[test]
    fn backward_chaining_proves_on_demand() {
        let kb = kb();
        kb.add_fact("IBM", "supplies", "Microsoft").unwrap();
        kb.add_fact("Microsoft", "supplies", "Google").unwrap();
        let rules = "[(?a kb:supplies ?b) -> (?a kb:reaches ?b)]\n\
                     [(?a kb:supplies ?b), (?b kb:reaches ?c) -> (?a kb:reaches ?c)]";
        // Nothing was forward-materialized...
        assert!(kb
            .query("SELECT ?x WHERE { <kb:ibm> <kb:reaches> ?x . }")
            .unwrap()
            .is_empty());
        // ...yet the goal proves on demand.
        let proofs = kb.prove(rules, "(kb:ibm kb:reaches ?who)", 6).unwrap();
        let whos: Vec<&Term> = proofs.iter().filter_map(|b| b.get("who")).collect();
        assert!(whos.contains(&&Term::iri("kb:microsoft")), "{whos:?}");
        assert!(whos.contains(&&Term::iri("kb:google")), "{whos:?}");
        // Bad goals surface as errors.
        assert!(kb.prove(rules, "(?a ?b)", 4).is_err());
    }

    #[test]
    fn federated_fan_out_runs_sources_concurrently() {
        use cogsdk_json::{json, Json};
        use cogsdk_sim::latency::LatencyModel;
        use cogsdk_sim::service::SimService;

        // Four sources, each really sleeping 40 ms: sequential federation
        // would cost ~160 ms, concurrent ~40 ms.
        let env = cogsdk_sim::SimEnv::with_seed_scaled(7, 1.0);
        let services: Vec<Arc<SimService>> = (0..4)
            .map(|i| {
                SimService::builder(format!("kb-source-{i}"), "knowledge")
                    .latency(LatencyModel::constant_ms(40.0))
                    .handler(
                        move |req| match req.payload.get("op").and_then(Json::as_str) {
                            Some("sparql") => Ok(json!({
                                "bindings": [
                                    {"c": {"type": "iri", "value": (format!("db:entity_{i}"))}},
                                ],
                            })),
                            _ => Err("unknown op".into()),
                        },
                    )
                    .build(&env)
            })
            .collect();
        let kb = kb();
        let pool = cogsdk_core::ThreadPool::new(4);
        let monitor = Arc::new(cogsdk_core::ServiceMonitor::new());
        let started = std::time::Instant::now();
        let rows = kb
            .query_federated_many(
                &pool,
                &services,
                &monitor,
                "SELECT ?c WHERE { ?c <rdf:type> <kb:Entity> . }",
            )
            .unwrap();
        let elapsed = started.elapsed();
        assert_eq!(rows.len(), 4, "one distinct binding per source");
        for i in 0..4 {
            assert!(rows
                .iter()
                .any(|r| r["c"] == Term::iri(format!("db:entity_{i}"))));
        }
        // ~max, not ~sum: well under the 160 ms sequential cost even
        // with generous scheduler slack.
        assert!(
            elapsed < std::time::Duration::from_millis(120),
            "fan-out took {elapsed:?}, expected ~40 ms"
        );
        // Every leg was monitored individually.
        for i in 0..4 {
            assert!(monitor.history(&format!("kb-source-{i}")).is_some());
        }
    }

    #[test]
    fn federated_fan_out_surfaces_remote_failure() {
        use cogsdk_json::json;
        use cogsdk_sim::service::SimService;

        let env = cogsdk_sim::SimEnv::with_seed(8);
        let good = SimService::builder("kb-good", "knowledge")
            .handler(|_| Ok(json!({"bindings": []})))
            .build(&env);
        let bad = SimService::builder("kb-bad", "knowledge")
            .handler(|_| Err("boom".into()))
            .build(&env);
        let kb = kb();
        let pool = cogsdk_core::ThreadPool::new(2);
        let monitor = Arc::new(cogsdk_core::ServiceMonitor::new());
        let err = kb
            .query_federated_many(
                &pool,
                &[good, bad],
                &monitor,
                "SELECT ?c WHERE { ?c <rdf:type> <kb:Entity> . }",
            )
            .unwrap_err();
        assert!(
            matches!(err, KbError::Rdf(_) | KbError::Store(_)),
            "{err:?}"
        );
    }

    #[test]
    fn durable_kb_survives_crash_and_recovers() {
        let fs = Arc::new(cogsdk_sim::SimFs::new(11));
        let t = Telemetry::new();
        let kb = PersonalKnowledgeBase::open_durable_on(
            fs.clone(),
            Arc::new(MemoryKv::new()),
            KbOptions::default(),
            t.clone(),
        )
        .unwrap();
        assert!(kb.is_durable());
        kb.add_fact("IBM", "hq", "New York").unwrap();
        kb.ingest_text("IBM acquired Oracle.").unwrap();
        kb.infer_rdfs().unwrap();
        let before = kb.statement_count();
        assert!(kb.wal_stats().appends > 0);
        assert!(
            t.metrics()
                .counter_value("sdk_wal_appends_total", &[])
                .unwrap_or(0)
                > 0,
            "WAL activity must be published"
        );
        drop(kb);
        fs.crash();

        let t2 = Telemetry::new();
        let kb = PersonalKnowledgeBase::open_durable_on(
            fs,
            Arc::new(MemoryKv::new()),
            KbOptions::default(),
            t2.clone(),
        )
        .unwrap();
        assert_eq!(kb.statement_count(), before, "every fact recovered");
        let stats = kb.recovery_stats().unwrap();
        assert!(stats.replayed_records > 0);
        assert_eq!(
            t2.metrics()
                .counter_value("sdk_recovery_replayed_records_total", &[]),
            Some(stats.replayed_records)
        );
        // RDFS stayed a standing ruleset across the crash.
        assert!(kb
            .query("SELECT ?x WHERE { ?x <rdf:type> <kb:Document> . }")
            .unwrap()
            .len()
            .eq(&1));
        // The recovered base keeps issuing fresh document ids.
        kb.ingest_text("Google praised Microsoft.").unwrap();
        let docs = kb
            .query("SELECT ?d WHERE { ?d <rdf:type> <kb:Document> . }")
            .unwrap();
        assert_eq!(docs.len(), 2, "no document id reuse after recovery");
    }

    #[test]
    fn durable_kb_snapshot_bounds_replay() {
        let fs = Arc::new(cogsdk_sim::SimFs::new(12));
        let open = |fs| {
            PersonalKnowledgeBase::open_durable_on(
                fs,
                Arc::new(MemoryKv::new()),
                KbOptions::default(),
                Telemetry::disabled(),
            )
            .unwrap()
        };
        let kb = open(fs.clone() as Arc<dyn Vfs>);
        kb.add_fact("IBM", "hq", "New York").unwrap();
        assert!(kb.snapshot().unwrap() > 0);
        kb.add_fact("Google", "hq", "California").unwrap();
        drop(kb);

        let kb = open(fs);
        let stats = kb.recovery_stats().unwrap();
        assert!(stats.snapshot_loaded, "{stats:?}");
        assert!(
            stats.replayed_records >= 1,
            "only the post-snapshot fact replays: {stats:?}"
        );
        assert_eq!(kb.statement_count(), 2);
    }

    #[test]
    fn confidences_survive_crash_and_still_order_conflicts() {
        let fs = Arc::new(cogsdk_sim::SimFs::new(13));
        let open = |fs| {
            PersonalKnowledgeBase::open_durable_on(
                fs,
                Arc::new(MemoryKv::new()),
                KbOptions::default(),
                Telemetry::disabled(),
            )
            .unwrap()
        };
        let kb = open(fs.clone() as Arc<dyn Vfs>);
        // Two sources disagree on Germany's capital. The first accuracy
        // level rides into the snapshot; the second lives only in the WAL
        // tail, so recovery must merge both persistence paths.
        kb.add_fact_with_confidence("Germany", "capital", "Berlin", 0.95)
            .unwrap();
        assert!(kb.snapshot().unwrap() > 0);
        kb.add_fact_with_confidence("Germany", "capital", "Bonn", 0.40)
            .unwrap();
        drop(kb);
        fs.crash();

        let kb = open(fs);
        let stats = kb.recovery_stats().unwrap();
        assert!(stats.snapshot_loaded, "{stats:?}");
        let conflicts = kb.conflicts();
        assert_eq!(conflicts.len(), 1, "{conflicts:?}");
        let ((s, p), candidates) = &conflicts[0];
        assert_eq!(s, &Term::iri("kb:germany"));
        assert_eq!(p, &Term::iri("kb:capital"));
        assert_eq!(
            candidates[0],
            (Term::iri("kb:berlin"), 0.95),
            "recovered confidences still rank the official source first"
        );
        // "Bonn" never disambiguated, so it recovered as the plain
        // string literal it was stored as.
        assert_eq!(candidates[1], (Term::string("Bonn"), 0.40));
        let berlin = Statement::new(
            Term::iri("kb:germany"),
            Term::iri("kb:capital"),
            Term::iri("kb:berlin"),
        );
        assert_eq!(kb.fact_confidence(&berlin), Some(0.95));
        let weak = kb.weak_facts(0.5);
        assert_eq!(weak.len(), 1, "{weak:?}");
        assert!((weak[0].1 - 0.40).abs() < 1e-12);
        // A confidence-greedy resolution on the recovered store keeps the
        // trusted object — proof the ordering is live, not cosmetic.
        assert_eq!(
            kb.resolve_conflicts_for(&Term::iri("kb:capital")).unwrap(),
            1
        );
        assert!(kb.conflicts().is_empty());
        assert_eq!(kb.fact_confidence(&berlin), Some(0.95));
    }

    #[test]
    fn query_parse_errors_surface() {
        let kb = kb();
        assert!(matches!(kb.query("garbage"), Err(KbError::Rdf(_))));
        assert!(matches!(kb.infer_rules("bad rule"), Err(KbError::Rdf(_))));
    }
}
