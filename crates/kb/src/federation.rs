//! Querying and importing from remote knowledge sources.
//!
//! §3: "Jena includes a SPARQL query engine which the personalized
//! knowledge base uses to query data sources such as DBpedia" and "the
//! personalized knowledge base incorporates data from multiple sources."
//! §5 adds the open problem of "data sources which contain data which may
//! not be completely accurate" — handled here by tagging every imported
//! fact with a per-source accuracy level.
//!
//! The wire protocol is the one `cogsdk-datasvc`'s knowledge service
//! speaks (`{"op": "sparql"|"describe", …}`), documented independently so
//! any conforming endpoint works.
//!
//! Imported facts are inserted as a batch into the KB's incrementally
//! maintained graph (`cogsdk_rdf::IncrementalMaterializer`), so an
//! import only propagates its own delta through any standing rulesets —
//! repeated federation pulls do not re-pay full re-materialization.

use crate::KbError;
use cogsdk_core::invoke::invoke_with_retry_within;
use cogsdk_core::{Deadline, ServiceMonitor};
use cogsdk_json::{json, Json};
use cogsdk_rdf::query::Solution;
use cogsdk_rdf::{Statement, Term};
use cogsdk_sim::service::{Request, ServiceError, SimService};
use std::sync::Arc;

/// Decodes the knowledge-service JSON term encoding
/// (`{"type": "iri"|"literal"|"bnode", "value": …}`).
fn decode_term(v: &Json) -> Option<Term> {
    let kind = v.get("type")?.as_str()?;
    let value = v.get("value")?;
    match kind {
        "iri" => Some(Term::iri(value.as_str()?)),
        "bnode" => Some(Term::blank(value.as_str()?)),
        "literal" => Some(match value {
            Json::Bool(b) => Term::boolean(*b),
            Json::String(s) => Term::string(s.clone()),
            other => {
                if let Some(i) = other.as_i64() {
                    Term::integer(i)
                } else {
                    Term::double(other.as_f64()?)
                }
            }
        }),
        _ => None,
    }
}

/// Runs a SPARQL query against a remote knowledge service and returns its
/// bindings as [`Solution`]s (the same shape local queries produce, so
/// results merge trivially).
///
/// # Errors
///
/// [`KbError::Store`] for unreachable services, [`KbError::Rdf`] for
/// query rejections or malformed responses.
pub fn query_remote(
    service: &Arc<SimService>,
    monitor: &ServiceMonitor,
    sparql: &str,
) -> Result<Vec<Solution>, KbError> {
    query_remote_within(service, monitor, sparql, Deadline::NONE)
}

/// As [`query_remote`], bounded by an end-to-end deadline: the query is
/// refused outright once the budget is spent, and retries never start
/// past it — a slow federated source cannot stall a refresh forever.
///
/// # Errors
///
/// As for [`query_remote`], with deadline exhaustion surfacing as
/// [`KbError::Store`].
pub fn query_remote_within(
    service: &Arc<SimService>,
    monitor: &ServiceMonitor,
    sparql: &str,
    deadline: Deadline,
) -> Result<Vec<Solution>, KbError> {
    let request = Request::new("sparql", json!({"op": "sparql", "query": (sparql)}));
    let outcome = invoke_with_retry_within(service, &request, 2, monitor, deadline)
        .map_err(|e| KbError::Store(e.to_string()))?;
    let payload = match outcome.result {
        Ok(resp) => resp.payload,
        Err(ServiceError::BadRequest(m)) => return Err(KbError::Rdf(m)),
        Err(e) => return Err(KbError::Store(format!("{}: {e}", service.name()))),
    };
    let bindings = payload
        .get("bindings")
        .and_then(Json::as_array)
        .ok_or_else(|| KbError::Rdf("response missing bindings".into()))?;
    let mut solutions = Vec::with_capacity(bindings.len());
    for row in bindings {
        let entries = row
            .as_object()
            .ok_or_else(|| KbError::Rdf("binding row is not an object".into()))?;
        let mut solution = Solution::new();
        for (var, term) in entries {
            let term = decode_term(term)
                .ok_or_else(|| KbError::Rdf(format!("undecodable term for ?{var}")))?;
            solution.insert(var.clone(), term);
        }
        solutions.push(solution);
    }
    Ok(solutions)
}

/// The facts a remote `describe` returned for one entity, ready to import.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteFacts {
    /// The entity id the source used.
    pub entity: String,
    /// The statements, subjects rewritten into the local `kb:` namespace.
    pub statements: Vec<Statement>,
}

/// Fetches every fact a knowledge source has about `entity_id` and
/// rewrites the subject into the local `kb:` namespace.
///
/// # Errors
///
/// [`KbError::UnknownEntity`] when the source has no such entity;
/// [`KbError::Store`]/[`KbError::Rdf`] as for [`query_remote`].
pub fn describe_remote(
    service: &Arc<SimService>,
    monitor: &ServiceMonitor,
    entity_id: &str,
) -> Result<RemoteFacts, KbError> {
    describe_remote_within(service, monitor, entity_id, Deadline::NONE)
}

/// As [`describe_remote`], bounded by an end-to-end deadline (see
/// [`query_remote_within`]).
///
/// # Errors
///
/// As for [`describe_remote`], with deadline exhaustion surfacing as
/// [`KbError::Store`].
pub fn describe_remote_within(
    service: &Arc<SimService>,
    monitor: &ServiceMonitor,
    entity_id: &str,
    deadline: Deadline,
) -> Result<RemoteFacts, KbError> {
    let request = Request::new("describe", json!({"op": "describe", "entity": (entity_id)}));
    let outcome = invoke_with_retry_within(service, &request, 2, monitor, deadline)
        .map_err(|e| KbError::Store(e.to_string()))?;
    let payload = match outcome.result {
        Ok(resp) => resp.payload,
        Err(ServiceError::BadRequest(m)) if m.starts_with("404") => {
            return Err(KbError::UnknownEntity(entity_id.to_string()))
        }
        Err(ServiceError::BadRequest(m)) => return Err(KbError::Rdf(m)),
        Err(e) => return Err(KbError::Store(format!("{}: {e}", service.name()))),
    };
    let facts = payload
        .get("facts")
        .and_then(Json::as_array)
        .ok_or_else(|| KbError::Rdf("response missing facts".into()))?;
    let subject = Term::iri(format!("kb:{entity_id}"));
    let mut statements = Vec::with_capacity(facts.len());
    for fact in facts {
        let predicate_text = fact
            .get("predicate")
            .and_then(Json::as_str)
            .ok_or_else(|| KbError::Rdf("fact missing predicate".into()))?;
        // Predicates arrive in display form `<db:capital>`; rebase the
        // `db:` namespace onto the local `kb:` namespace.
        let predicate_iri = predicate_text
            .trim_start_matches('<')
            .trim_end_matches('>')
            .replace("db:", "kb:");
        let object = fact
            .get("object")
            .and_then(decode_term)
            .ok_or_else(|| KbError::Rdf("fact missing object".into()))?;
        let object = match object {
            // Rebase IRIs from the source namespace too.
            Term::Iri(iri) => Term::iri(iri.replace("db:", "kb:")),
            other => other,
        };
        statements.push(Statement::new(
            subject.clone(),
            Term::iri(predicate_iri),
            object,
        ));
    }
    Ok(RemoteFacts {
        entity: entity_id.to_string(),
        statements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_datasvc_protocol_tests::*;

    /// A tiny in-test knowledge service speaking the documented protocol
    /// (avoids a dev-dependency cycle on `cogsdk-datasvc`).
    mod cogsdk_datasvc_protocol_tests {
        use cogsdk_json::{json, Json};
        use cogsdk_sim::latency::LatencyModel;
        use cogsdk_sim::service::SimService;
        use cogsdk_sim::SimEnv;
        use std::sync::Arc;

        pub fn mini_knowledge_service(env: &SimEnv) -> Arc<SimService> {
            SimService::builder("mini-kb", "knowledge")
                .latency(LatencyModel::constant_ms(5.0))
                .handler(|req| match req.payload.get("op").and_then(Json::as_str) {
                    Some("sparql") => Ok(json!({
                        "bindings": [
                            {"c": {"type": "iri", "value": "db:germany"},
                             "p": {"type": "literal", "value": 82}},
                            {"c": {"type": "iri", "value": "db:france"},
                             "p": {"type": "literal", "value": 67}},
                        ],
                    })),
                    Some("describe") => {
                        let entity = req
                            .payload
                            .get("entity")
                            .and_then(Json::as_str)
                            .unwrap_or("");
                        if entity != "germany" {
                            return Err(format!("404 no facts about: {entity}"));
                        }
                        Ok(json!({
                            "entity": "germany",
                            "facts": [
                                {"predicate": "<db:capital>",
                                 "object": {"type": "iri", "value": "db:berlin"}},
                                {"predicate": "<db:population_millions>",
                                 "object": {"type": "literal", "value": 82}},
                                {"predicate": "<db:label>",
                                 "object": {"type": "literal", "value": "Germany"}},
                            ],
                        }))
                    }
                    _ => Err("unknown op".into()),
                })
                .build(env)
        }
    }

    use cogsdk_sim::SimEnv;

    #[test]
    fn remote_sparql_decodes_bindings() {
        let env = SimEnv::with_seed(1);
        let svc = mini_knowledge_service(&env);
        let monitor = ServiceMonitor::new();
        let rows = query_remote(&svc, &monitor, "SELECT ?c ?p WHERE { ... }").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["c"], Term::iri("db:germany"));
        assert_eq!(rows[0]["p"], Term::integer(82));
        // The call was monitored like any other service call.
        assert!(monitor.history("mini-kb").is_some());
    }

    #[test]
    fn describe_rebases_namespaces() {
        let env = SimEnv::with_seed(2);
        let svc = mini_knowledge_service(&env);
        let monitor = ServiceMonitor::new();
        let facts = describe_remote(&svc, &monitor, "germany").unwrap();
        assert_eq!(facts.statements.len(), 3);
        assert!(facts.statements.contains(&Statement::new(
            Term::iri("kb:germany"),
            Term::iri("kb:capital"),
            Term::iri("kb:berlin"),
        )));
        assert!(facts.statements.contains(&Statement::new(
            Term::iri("kb:germany"),
            Term::iri("kb:population_millions"),
            Term::integer(82),
        )));
    }

    #[test]
    fn describe_unknown_entity_is_unknown_entity_error() {
        let env = SimEnv::with_seed(3);
        let svc = mini_knowledge_service(&env);
        let monitor = ServiceMonitor::new();
        assert!(matches!(
            describe_remote(&svc, &monitor, "atlantis"),
            Err(KbError::UnknownEntity(_))
        ));
    }

    #[test]
    fn expired_deadline_refuses_remote_work() {
        let env = SimEnv::with_seed(4);
        let svc = mini_knowledge_service(&env);
        let monitor = ServiceMonitor::new();
        let expired = Deadline::within(env.clock(), std::time::Duration::ZERO);
        env.clock().advance(std::time::Duration::from_micros(1));
        let err =
            query_remote_within(&svc, &monitor, "SELECT ?c WHERE { ... }", expired).unwrap_err();
        assert!(matches!(err, KbError::Store(_)), "{err:?}");
        let err = describe_remote_within(&svc, &monitor, "germany", expired).unwrap_err();
        assert!(matches!(err, KbError::Store(_)), "{err:?}");
        assert_eq!(svc.stats().0, 0, "no budget, no remote calls");
        // An unbounded deadline behaves exactly like the plain calls.
        let rows =
            query_remote_within(&svc, &monitor, "SELECT ?c WHERE { ... }", Deadline::NONE).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn term_decoding_covers_all_kinds() {
        assert_eq!(
            decode_term(&json!({"type": "iri", "value": "x"})),
            Some(Term::iri("x"))
        );
        assert_eq!(
            decode_term(&json!({"type": "bnode", "value": "b0"})),
            Some(Term::blank("b0"))
        );
        assert_eq!(
            decode_term(&json!({"type": "literal", "value": "s"})),
            Some(Term::string("s"))
        );
        assert_eq!(
            decode_term(&json!({"type": "literal", "value": 3})),
            Some(Term::integer(3))
        );
        assert_eq!(
            decode_term(&json!({"type": "literal", "value": 2.5})),
            Some(Term::double(2.5))
        );
        assert_eq!(
            decode_term(&json!({"type": "literal", "value": true})),
            Some(Term::boolean(true))
        );
        assert_eq!(decode_term(&json!({"type": "mystery", "value": 1})), None);
        assert_eq!(decode_term(&json!({})), None);
    }
}
