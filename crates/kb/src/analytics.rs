//! Statistical analysis whose results become RDF facts (Figure 5).
//!
//! §3: "One powerful way of using mathematical analysis is to store the
//! key mathematical results as RDF statements. The RDF store has the
//! ability to perform inferencing on the statements … Therefore,
//! mathematical analysis combined with inferencing on the RDF store can
//! generate new knowledge beyond that produced by just the mathematical
//! analysis itself."
//!
//! The loop runs continuously — analyze, store, infer, repeat — so the
//! statements produced here land in [`PersonalKnowledgeBase`](crate::PersonalKnowledgeBase)'s
//! incrementally-maintained graph: any ruleset already enabled on the KB
//! propagates each new batch of analysis facts as a delta instead of
//! re-materializing the whole closure per turn (see
//! `cogsdk_rdf::IncrementalMaterializer`).

use crate::convert::sanitize;
use crate::KbError;
use cogsdk_rdf::{Statement, Term};
use cogsdk_stats::regression::LinearRegression;
use cogsdk_store::table::{Predicate, Table};

/// The RDF-ready result of one regression analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionFacts {
    /// IRI of the model resource (e.g. `kb:model_gdp_by_year`).
    pub model_iri: String,
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Number of points.
    pub n: usize,
}

impl RegressionFacts {
    /// Renders the analysis as RDF statements, the Figure-5 step
    /// "store analysis results in RDF store".
    ///
    /// Statements produced:
    /// * `(model rdf:type kb:RegressionModel)`
    /// * `(model kb:slope <double>)`, `(model kb:intercept <double>)`,
    ///   `(model kb:r_squared <double>)`, `(model kb:n <int>)`
    /// * `(model kb:trend "increasing"|"decreasing"|"flat")` — a derived
    ///   symbolic fact rules can chain on.
    pub fn to_statements(&self) -> Vec<Statement> {
        let model = Term::iri(self.model_iri.clone());
        let trend = if self.slope > 1e-9 {
            "increasing"
        } else if self.slope < -1e-9 {
            "decreasing"
        } else {
            "flat"
        };
        vec![
            Statement::new(
                model.clone(),
                Term::iri("rdf:type"),
                Term::iri("kb:RegressionModel"),
            ),
            Statement::new(
                model.clone(),
                Term::iri("kb:slope"),
                Term::double(self.slope),
            ),
            Statement::new(
                model.clone(),
                Term::iri("kb:intercept"),
                Term::double(self.intercept),
            ),
            Statement::new(
                model.clone(),
                Term::iri("kb:r_squared"),
                Term::double(self.r_squared),
            ),
            Statement::new(
                model.clone(),
                Term::iri("kb:n"),
                Term::integer(self.n as i64),
            ),
            Statement::new(model, Term::iri("kb:trend"), Term::string(trend)),
        ]
    }

    /// Predicts `y` at `x` with the fitted line.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y_col ~ x_col` over the numeric rows of a table (rows with NULL
/// or non-numeric cells in either column are skipped).
///
/// # Errors
///
/// [`KbError::Store`] for unknown columns, [`KbError::Stats`] if fewer
/// than two usable rows remain or x is constant.
pub fn regress_table(
    table: &Table,
    x_col: &str,
    y_col: &str,
    model_name: &str,
) -> Result<RegressionFacts, KbError> {
    let xi = table
        .schema()
        .column_index(x_col)
        .ok_or_else(|| KbError::Store(format!("no column {x_col}")))?;
    let yi = table
        .schema()
        .column_index(y_col)
        .ok_or_else(|| KbError::Store(format!("no column {y_col}")))?;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for row in table.rows() {
        if let (Some(x), Some(y)) = (row[xi].as_f64(), row[yi].as_f64()) {
            xs.push(x);
            ys.push(y);
        }
    }
    let fit = LinearRegression::fit(&xs, &ys)?;
    Ok(RegressionFacts {
        model_iri: format!("kb:model_{}", sanitize(model_name)),
        slope: fit.slope(),
        intercept: fit.intercept(),
        r_squared: fit.r_squared(),
        n: fit.n(),
    })
}

/// Summary statistics of one numeric column as RDF statements —
/// `(kb:stat_<table>_<col> kb:mean/…)`.
///
/// # Errors
///
/// [`KbError::Store`] for unknown columns, [`KbError::Stats`] when the
/// column has no numeric values.
pub fn summarize_column(
    table: &Table,
    col: &str,
    stat_name: &str,
) -> Result<Vec<Statement>, KbError> {
    let ci = table
        .schema()
        .column_index(col)
        .ok_or_else(|| KbError::Store(format!("no column {col}")))?;
    let values: Vec<f64> = table.rows().iter().filter_map(|r| r[ci].as_f64()).collect();
    let summary = cogsdk_stats::Summary::from_slice(&values)?;
    let subject = Term::iri(format!("kb:stat_{}", sanitize(stat_name)));
    Ok(vec![
        Statement::new(
            subject.clone(),
            Term::iri("rdf:type"),
            Term::iri("kb:ColumnSummary"),
        ),
        Statement::new(
            subject.clone(),
            Term::iri("kb:mean"),
            Term::double(summary.mean()),
        ),
        Statement::new(
            subject.clone(),
            Term::iri("kb:median"),
            Term::double(summary.median()),
        ),
        Statement::new(
            subject.clone(),
            Term::iri("kb:min"),
            Term::double(summary.min()),
        ),
        Statement::new(
            subject.clone(),
            Term::iri("kb:max"),
            Term::double(summary.max()),
        ),
        Statement::new(
            subject,
            Term::iri("kb:std_dev"),
            Term::double(summary.std_dev()),
        ),
    ])
}

/// Selects numeric pairs from a table under a predicate — the typical
/// pre-analysis filtering step.
///
/// # Errors
///
/// Propagates unknown-column errors.
pub fn column_pairs(
    table: &Table,
    predicate: &Predicate,
    x_col: &str,
    y_col: &str,
) -> Result<Vec<(f64, f64)>, KbError> {
    let rows = table.select(predicate, &[x_col, y_col])?;
    Ok(rows
        .iter()
        .filter_map(|r| Some((r[0].as_f64()?, r[1].as_f64()?)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_rdf::{GenericRuleReasoner, Graph};
    use cogsdk_store::csv::csv_to_table;

    fn growth_table() -> Table {
        // revenue = 100 + 10*year, exactly.
        let mut csv = String::from("year,revenue,region\n");
        for year in 0..10 {
            csv.push_str(&format!("{year},{},emea\n", 100 + 10 * year));
        }
        csv_to_table(&csv).unwrap()
    }

    #[test]
    fn regression_over_table_columns() {
        let t = growth_table();
        let facts = regress_table(&t, "year", "revenue", "revenue by year").unwrap();
        assert!((facts.slope - 10.0).abs() < 1e-9);
        assert!((facts.intercept - 100.0).abs() < 1e-9);
        assert!(facts.r_squared > 0.999);
        assert_eq!(facts.n, 10);
        assert_eq!(facts.predict(20.0), 300.0);
        assert_eq!(facts.model_iri, "kb:model_revenue_by_year");
    }

    #[test]
    fn regression_skips_non_numeric_rows() {
        let t = csv_to_table("x,y\n1,2\n2,4\n,6\n3,6\n").unwrap();
        let facts = regress_table(&t, "x", "y", "m").unwrap();
        assert_eq!(facts.n, 3);
        assert!((facts.slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn regression_errors_on_bad_input() {
        let t = growth_table();
        assert!(matches!(
            regress_table(&t, "nope", "revenue", "m"),
            Err(KbError::Store(_))
        ));
        assert!(matches!(
            regress_table(&t, "region", "revenue", "m"),
            Err(KbError::Stats(_)),
        ));
    }

    #[test]
    fn facts_to_statements_include_trend() {
        let t = growth_table();
        let facts = regress_table(&t, "year", "revenue", "m").unwrap();
        let stmts = facts.to_statements();
        assert_eq!(stmts.len(), 6);
        assert!(stmts.iter().any(
            |s| s.predicate == Term::iri("kb:trend") && s.object == Term::string("increasing")
        ));
    }

    #[test]
    fn inference_generates_knowledge_beyond_the_analysis() {
        // Figure 5 end-to-end: regression facts + a user rule produce a
        // fact the statistics alone did not state.
        let t = growth_table();
        let facts = regress_table(&t, "year", "revenue", "revenue").unwrap();
        let mut graph: Graph = facts.to_statements().into_iter().collect();
        let reasoner = GenericRuleReasoner::from_rules_text(
            "[(?m kb:trend \"increasing\") -> (?m kb:classification kb:GrowthIndicator)]",
        )
        .unwrap();
        let inferred = reasoner.infer(&graph);
        assert_eq!(inferred.len(), 1);
        graph.extend_from(&inferred);
        assert!(graph
            .iter()
            .any(|s| s.predicate == Term::iri("kb:classification")));
    }

    #[test]
    fn column_summary_statements() {
        let t = growth_table();
        let stmts = summarize_column(&t, "revenue", "rev").unwrap();
        assert_eq!(stmts.len(), 6);
        let mean = stmts
            .iter()
            .find(|s| s.predicate == Term::iri("kb:mean"))
            .unwrap();
        assert_eq!(mean.object, Term::double(145.0));
        assert!(summarize_column(&t, "region", "r").is_err(), "non-numeric");
    }

    #[test]
    fn column_pairs_with_predicate() {
        let t = growth_table();
        let pairs =
            column_pairs(&t, &Predicate::Gt("year".into(), 6.5), "year", "revenue").unwrap();
        assert_eq!(pairs, vec![(7.0, 170.0), (8.0, 180.0), (9.0, 190.0)]);
    }
}
