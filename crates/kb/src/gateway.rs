//! Gateway glue: `POST /query` and `POST /ingest/bulk` handlers over a
//! shared knowledge base.
//!
//! The HTTP gateway (§2's cross-language surface) carries no KB
//! dependency; hosts wire query evaluation in as a closure. This module
//! builds that closure: it parses a `{"sparql": …}` body, runs the query
//! through the knowledge base's cost-based planner, and serializes rows
//! plus planner stats (and, on request, the `explain()` plan text) back
//! as JSON.
//!
//! ```text
//! POST /query
//! {"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g }", "explain": true}
//! →
//! {"rows": [{"c": "<kb:usa>"}], "stats": {…}, "plan": "bgp 1 patterns …"}
//! ```

use crate::ingest::{chunk_documents, IngestConfig};
use crate::kb::PersonalKnowledgeBase;
use cogsdk_core::gateway::{IngestHandler, QueryHandler};
use cogsdk_core::ThreadPool;
use cogsdk_json::Json;
use std::sync::Arc;

/// Builds a [`QueryHandler`] for
/// [`HttpGateway::set_query_handler`](cogsdk_core::HttpGateway::set_query_handler)
/// over a shared knowledge base.
///
/// Each call runs through [`PersonalKnowledgeBase::query_with_stats`], so
/// the base's `sdk_query_*` metrics (plan time, result rows, join
/// strategy counts — tenant-labeled when the base is attributed to one)
/// are published per request. Body fields:
///
/// * `sparql` (string, required) — the query text.
/// * `explain` (bool, optional) — include the planner's `explain()`
///   rendering as a `plan` field.
/// * `epoch` (integer, optional) — pin the query to a previously
///   reported snapshot epoch instead of the current one, so
///   `OFFSET`/`LIMIT` pages tile one consistent result set while ingest
///   continues. The response's `epoch` field reports the epoch actually
///   used; send it back on the next page. A request naming an epoch the
///   store no longer retains fails, telling the pager to restart.
pub fn gateway_query_handler(kb: Arc<PersonalKnowledgeBase>) -> QueryHandler {
    Box::new(move |request| {
        let body = Json::parse(&request.body).map_err(|e| format!("invalid JSON body: {e}"))?;
        let sparql = body
            .get("sparql")
            .and_then(Json::as_str)
            .ok_or("body needs a string 'sparql' field")?;
        let explain = body.get("explain").and_then(Json::as_bool).unwrap_or(false);
        let snapshot = match body.get("epoch").and_then(Json::as_usize) {
            Some(epoch) => kb.query_snapshot_at(epoch as u64).ok_or(format!(
                "epoch {epoch} is no longer retained; restart paging from a fresh snapshot"
            ))?,
            None => kb.query_snapshot(),
        };
        let (rows, stats) = kb
            .query_on(&snapshot, sparql)
            .map_err(|e| format!("query failed: {e}"))?;
        let mut rows_json = Json::Array(Vec::new());
        for row in &rows {
            let mut obj = Json::object();
            // Deterministic field order: sort by variable name (HashMap
            // iteration order would leak into the wire format otherwise).
            let mut entries: Vec<_> = row.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            for (var, term) in entries {
                obj.insert(var.clone(), term.to_string());
            }
            rows_json.push(obj);
        }
        let mut stats_json = Json::object();
        stats_json.insert("rows", stats.rows);
        stats_json.insert("plan_micros", stats.plan_micros as usize);
        stats_json.insert("merge_joins", stats.merge_joins);
        stats_json.insert("nested_loop_joins", stats.loop_joins);
        stats_json.insert("patterns", stats.patterns);
        let mut out = Json::object();
        out.insert("rows", rows_json);
        out.insert("stats", stats_json);
        out.insert("epoch", snapshot.epoch() as usize);
        if explain {
            out.insert(
                "plan",
                kb.query_explain(sparql)
                    .map_err(|e| format!("explain failed: {e}"))?,
            );
        }
        Ok(out)
    })
}

/// Builds an [`IngestHandler`] for
/// [`HttpGateway::set_ingest_handler`](cogsdk_core::HttpGateway::set_ingest_handler):
/// `POST /ingest/bulk` streams the request's documents through the
/// knowledge base's pipelined bulk loader
/// ([`PersonalKnowledgeBase::ingest_stream`]) on the shared thread pool.
/// Body fields:
///
/// * `documents` (array of strings) — one entry per document; **or**
/// * `text` (string) — a corpus chunked into documents on blank-line
///   boundaries.
/// * `batch_size`, `workers`, `max_in_flight` (integers, optional) —
///   pipeline tuning; defaults from [`IngestConfig::default`].
///
/// The response reports the committed work:
///
/// ```text
/// {"documents": 1000, "batches": 4, "statements": 5210,
///  "docs_per_sec": 8421.3, "peak_in_flight": 512}
/// ```
///
/// A commit failure answers as an error (the gateway serves it as a
/// 400); batches acked before the failure remain durable.
pub fn gateway_ingest_handler(
    kb: Arc<PersonalKnowledgeBase>,
    pool: Arc<ThreadPool>,
) -> IngestHandler {
    Box::new(move |request| {
        let body = Json::parse(&request.body).map_err(|e| format!("invalid JSON body: {e}"))?;
        let docs: Vec<String> = if let Some(list) = body.get("documents").and_then(Json::as_array) {
            list.iter()
                .map(|d| {
                    d.as_str()
                        .map(str::to_string)
                        .ok_or("'documents' entries must be strings")
                })
                .collect::<Result<_, _>>()?
        } else if let Some(text) = body.get("text").and_then(Json::as_str) {
            chunk_documents(text).map(str::to_string).collect()
        } else {
            return Err("body needs a 'documents' array or a 'text' string".to_string());
        };
        let mut config = IngestConfig::default();
        if let Some(n) = body.get("batch_size").and_then(Json::as_usize) {
            config.batch_size = n;
        }
        if let Some(n) = body.get("workers").and_then(Json::as_usize) {
            config.workers = n;
        }
        if let Some(n) = body.get("max_in_flight").and_then(Json::as_usize) {
            config.max_in_flight = n;
        }
        let report = kb
            .ingest_stream(&pool, docs, config)
            .map_err(|e| format!("ingest failed: {e}"))?;
        let mut out = Json::object();
        out.insert("documents", report.documents);
        out.insert("batches", report.batches);
        out.insert("statements", report.statements);
        out.insert("docs_per_sec", report.docs_per_sec);
        out.insert("peak_in_flight", report.peak_in_flight);
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KbOptions;
    use cogsdk_core::gateway::HttpRequest;
    use cogsdk_rdf::{Statement, Term};
    use cogsdk_store::kv::{KeyValueStore, MemoryKv};

    fn sample_kb() -> Arc<PersonalKnowledgeBase> {
        let remote: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
        let kb = PersonalKnowledgeBase::new(remote, KbOptions::default());
        for (s, g) in [("kb:usa", 21000), ("kb:germany", 4200)] {
            kb.add_statement(Statement::new(
                Term::iri(s),
                Term::iri("kb:gdp"),
                Term::integer(g),
            ))
            .unwrap();
        }
        Arc::new(kb)
    }

    fn post(body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".to_string(),
            path: "/query".to_string(),
            query: Vec::new(),
            tenant: None,
            body: body.to_string(),
        }
    }

    #[test]
    fn handler_runs_a_query_and_reports_stats() {
        let handler = gateway_query_handler(sample_kb());
        let out = handler(&post(
            r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g } ORDER BY ?g"}"#,
        ))
        .unwrap();
        assert_eq!(
            out.pointer("/rows/0/c").and_then(Json::as_str),
            Some("<kb:germany>")
        );
        assert_eq!(
            out.pointer("/rows/1/c").and_then(Json::as_str),
            Some("<kb:usa>")
        );
        assert_eq!(out.pointer("/stats/rows").and_then(Json::as_usize), Some(2));
        assert_eq!(
            out.pointer("/stats/patterns").and_then(Json::as_usize),
            Some(1)
        );
        assert!(out.get("plan").is_none(), "plan only on explain=true");
    }

    #[test]
    fn handler_attaches_the_plan_on_request() {
        let handler = gateway_query_handler(sample_kb());
        let out = handler(&post(
            r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g }", "explain": true}"#,
        ))
        .unwrap();
        let plan = out.get("plan").and_then(Json::as_str).unwrap();
        assert!(plan.starts_with("bgp 1 patterns"), "{plan}");
    }

    #[test]
    fn paging_pinned_to_an_epoch_ignores_later_ingest() {
        let kb = sample_kb();
        let handler = gateway_query_handler(kb.clone());
        let first = handler(&post(
            r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g } ORDER BY ?g LIMIT 1"}"#,
        ))
        .unwrap();
        let epoch = first.get("epoch").and_then(Json::as_usize).unwrap();
        // Ingest moves the live graph on between pages.
        kb.add_statement(Statement::new(
            Term::iri("kb:japan"),
            Term::iri("kb:gdp"),
            Term::integer(5000),
        ))
        .unwrap();
        // The second page, pinned to the first page's epoch, tiles the
        // original result set — kb:japan is invisible to it.
        let body = format!(
            r#"{{"sparql": "SELECT ?c WHERE {{ ?c <kb:gdp> ?g }} ORDER BY ?g OFFSET 1 LIMIT 10", "epoch": {epoch}}}"#
        );
        let page2 = handler(&post(&body)).unwrap();
        assert_eq!(
            page2.pointer("/rows/0/c").and_then(Json::as_str),
            Some("<kb:usa>")
        );
        assert_eq!(
            page2.pointer("/stats/rows").and_then(Json::as_usize),
            Some(1)
        );
        assert_eq!(page2.get("epoch").and_then(Json::as_usize), Some(epoch));
        // An unpinned query runs on the newest epoch and sees the ingest.
        let fresh = handler(&post(r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g }"}"#)).unwrap();
        assert_eq!(
            fresh.pointer("/stats/rows").and_then(Json::as_usize),
            Some(3)
        );
        assert!(fresh.get("epoch").and_then(Json::as_usize).unwrap() > epoch);
    }

    #[test]
    fn unretained_epochs_are_rejected() {
        let handler = gateway_query_handler(sample_kb());
        let err = handler(&post(
            r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g }", "epoch": 999}"#,
        ))
        .unwrap_err();
        assert!(err.contains("no longer retained"), "{err}");
    }

    #[test]
    fn handler_rejects_bad_bodies() {
        let handler = gateway_query_handler(sample_kb());
        assert!(handler(&post("not json"))
            .unwrap_err()
            .starts_with("invalid JSON body"));
        assert!(handler(&post(r#"{"explain": true}"#))
            .unwrap_err()
            .contains("sparql"));
        assert!(handler(&post(r#"{"sparql": "SELECT"}"#))
            .unwrap_err()
            .starts_with("query failed"));
    }

    fn post_ingest(body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".to_string(),
            path: "/ingest/bulk".to_string(),
            query: Vec::new(),
            tenant: None,
            body: body.to_string(),
        }
    }

    #[test]
    fn ingest_handler_streams_a_documents_array() {
        let kb = sample_kb();
        let pool = Arc::new(cogsdk_core::ThreadPool::new(2));
        let handler = gateway_ingest_handler(kb.clone(), pool);
        let out = handler(&post_ingest(
            r#"{"documents": ["IBM acquired Oracle.", "The USA praised the deal."],
                "batch_size": 2, "workers": 1}"#,
        ))
        .unwrap();
        assert_eq!(out.get("documents").and_then(Json::as_usize), Some(2));
        assert_eq!(out.get("batches").and_then(Json::as_usize), Some(1));
        assert!(out.get("statements").and_then(Json::as_usize).unwrap() > 0);
        let mentions = kb
            .query("SELECT ?d WHERE { ?d <kb:mentions> <kb:ibm> }")
            .unwrap();
        assert_eq!(mentions.len(), 1);
    }

    #[test]
    fn ingest_handler_chunks_a_text_corpus_on_blank_lines() {
        let kb = sample_kb();
        let pool = Arc::new(cogsdk_core::ThreadPool::new(2));
        let handler = gateway_ingest_handler(kb.clone(), pool);
        let out = handler(&post_ingest(
            r#"{"text": "IBM acquired Oracle.\n\nThe USA praised the deal."}"#,
        ))
        .unwrap();
        assert_eq!(out.get("documents").and_then(Json::as_usize), Some(2));
        let docs = kb
            .query("SELECT ?d WHERE { ?d <rdf:type> <kb:Document> }")
            .unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn ingest_handler_rejects_bad_bodies() {
        let pool = Arc::new(cogsdk_core::ThreadPool::new(1));
        let handler = gateway_ingest_handler(sample_kb(), pool);
        assert!(handler(&post_ingest("not json"))
            .unwrap_err()
            .starts_with("invalid JSON body"));
        assert!(handler(&post_ingest(r#"{"batch_size": 4}"#))
            .unwrap_err()
            .contains("documents"));
        assert!(handler(&post_ingest(r#"{"documents": [42]}"#))
            .unwrap_err()
            .contains("strings"));
    }
}
