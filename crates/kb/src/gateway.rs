//! Gateway glue: a `POST /query` handler over a shared knowledge base.
//!
//! The HTTP gateway (§2's cross-language surface) carries no KB
//! dependency; hosts wire query evaluation in as a closure. This module
//! builds that closure: it parses a `{"sparql": …}` body, runs the query
//! through the knowledge base's cost-based planner, and serializes rows
//! plus planner stats (and, on request, the `explain()` plan text) back
//! as JSON.
//!
//! ```text
//! POST /query
//! {"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g }", "explain": true}
//! →
//! {"rows": [{"c": "<kb:usa>"}], "stats": {…}, "plan": "bgp 1 patterns …"}
//! ```

use crate::kb::PersonalKnowledgeBase;
use cogsdk_core::gateway::QueryHandler;
use cogsdk_json::Json;
use std::sync::Arc;

/// Builds a [`QueryHandler`] for
/// [`HttpGateway::set_query_handler`](cogsdk_core::HttpGateway::set_query_handler)
/// over a shared knowledge base.
///
/// Each call runs through [`PersonalKnowledgeBase::query_with_stats`], so
/// the base's `sdk_query_*` metrics (plan time, result rows, join
/// strategy counts — tenant-labeled when the base is attributed to one)
/// are published per request. Body fields:
///
/// * `sparql` (string, required) — the query text.
/// * `explain` (bool, optional) — include the planner's `explain()`
///   rendering as a `plan` field.
/// * `epoch` (integer, optional) — pin the query to a previously
///   reported snapshot epoch instead of the current one, so
///   `OFFSET`/`LIMIT` pages tile one consistent result set while ingest
///   continues. The response's `epoch` field reports the epoch actually
///   used; send it back on the next page. A request naming an epoch the
///   store no longer retains fails, telling the pager to restart.
pub fn gateway_query_handler(kb: Arc<PersonalKnowledgeBase>) -> QueryHandler {
    Box::new(move |request| {
        let body = Json::parse(&request.body).map_err(|e| format!("invalid JSON body: {e}"))?;
        let sparql = body
            .get("sparql")
            .and_then(Json::as_str)
            .ok_or("body needs a string 'sparql' field")?;
        let explain = body.get("explain").and_then(Json::as_bool).unwrap_or(false);
        let snapshot = match body.get("epoch").and_then(Json::as_usize) {
            Some(epoch) => kb.query_snapshot_at(epoch as u64).ok_or(format!(
                "epoch {epoch} is no longer retained; restart paging from a fresh snapshot"
            ))?,
            None => kb.query_snapshot(),
        };
        let (rows, stats) = kb
            .query_on(&snapshot, sparql)
            .map_err(|e| format!("query failed: {e}"))?;
        let mut rows_json = Json::Array(Vec::new());
        for row in &rows {
            let mut obj = Json::object();
            // Deterministic field order: sort by variable name (HashMap
            // iteration order would leak into the wire format otherwise).
            let mut entries: Vec<_> = row.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            for (var, term) in entries {
                obj.insert(var.clone(), term.to_string());
            }
            rows_json.push(obj);
        }
        let mut stats_json = Json::object();
        stats_json.insert("rows", stats.rows);
        stats_json.insert("plan_micros", stats.plan_micros as usize);
        stats_json.insert("merge_joins", stats.merge_joins);
        stats_json.insert("nested_loop_joins", stats.loop_joins);
        stats_json.insert("patterns", stats.patterns);
        let mut out = Json::object();
        out.insert("rows", rows_json);
        out.insert("stats", stats_json);
        out.insert("epoch", snapshot.epoch() as usize);
        if explain {
            out.insert(
                "plan",
                kb.query_explain(sparql)
                    .map_err(|e| format!("explain failed: {e}"))?,
            );
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KbOptions;
    use cogsdk_core::gateway::HttpRequest;
    use cogsdk_rdf::{Statement, Term};
    use cogsdk_store::kv::{KeyValueStore, MemoryKv};

    fn sample_kb() -> Arc<PersonalKnowledgeBase> {
        let remote: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
        let kb = PersonalKnowledgeBase::new(remote, KbOptions::default());
        for (s, g) in [("kb:usa", 21000), ("kb:germany", 4200)] {
            kb.add_statement(Statement::new(
                Term::iri(s),
                Term::iri("kb:gdp"),
                Term::integer(g),
            ))
            .unwrap();
        }
        Arc::new(kb)
    }

    fn post(body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".to_string(),
            path: "/query".to_string(),
            query: Vec::new(),
            tenant: None,
            body: body.to_string(),
        }
    }

    #[test]
    fn handler_runs_a_query_and_reports_stats() {
        let handler = gateway_query_handler(sample_kb());
        let out = handler(&post(
            r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g } ORDER BY ?g"}"#,
        ))
        .unwrap();
        assert_eq!(
            out.pointer("/rows/0/c").and_then(Json::as_str),
            Some("<kb:germany>")
        );
        assert_eq!(
            out.pointer("/rows/1/c").and_then(Json::as_str),
            Some("<kb:usa>")
        );
        assert_eq!(out.pointer("/stats/rows").and_then(Json::as_usize), Some(2));
        assert_eq!(
            out.pointer("/stats/patterns").and_then(Json::as_usize),
            Some(1)
        );
        assert!(out.get("plan").is_none(), "plan only on explain=true");
    }

    #[test]
    fn handler_attaches_the_plan_on_request() {
        let handler = gateway_query_handler(sample_kb());
        let out = handler(&post(
            r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g }", "explain": true}"#,
        ))
        .unwrap();
        let plan = out.get("plan").and_then(Json::as_str).unwrap();
        assert!(plan.starts_with("bgp 1 patterns"), "{plan}");
    }

    #[test]
    fn paging_pinned_to_an_epoch_ignores_later_ingest() {
        let kb = sample_kb();
        let handler = gateway_query_handler(kb.clone());
        let first = handler(&post(
            r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g } ORDER BY ?g LIMIT 1"}"#,
        ))
        .unwrap();
        let epoch = first.get("epoch").and_then(Json::as_usize).unwrap();
        // Ingest moves the live graph on between pages.
        kb.add_statement(Statement::new(
            Term::iri("kb:japan"),
            Term::iri("kb:gdp"),
            Term::integer(5000),
        ))
        .unwrap();
        // The second page, pinned to the first page's epoch, tiles the
        // original result set — kb:japan is invisible to it.
        let body = format!(
            r#"{{"sparql": "SELECT ?c WHERE {{ ?c <kb:gdp> ?g }} ORDER BY ?g OFFSET 1 LIMIT 10", "epoch": {epoch}}}"#
        );
        let page2 = handler(&post(&body)).unwrap();
        assert_eq!(
            page2.pointer("/rows/0/c").and_then(Json::as_str),
            Some("<kb:usa>")
        );
        assert_eq!(
            page2.pointer("/stats/rows").and_then(Json::as_usize),
            Some(1)
        );
        assert_eq!(page2.get("epoch").and_then(Json::as_usize), Some(epoch));
        // An unpinned query runs on the newest epoch and sees the ingest.
        let fresh = handler(&post(r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g }"}"#)).unwrap();
        assert_eq!(
            fresh.pointer("/stats/rows").and_then(Json::as_usize),
            Some(3)
        );
        assert!(fresh.get("epoch").and_then(Json::as_usize).unwrap() > epoch);
    }

    #[test]
    fn unretained_epochs_are_rejected() {
        let handler = gateway_query_handler(sample_kb());
        let err = handler(&post(
            r#"{"sparql": "SELECT ?c WHERE { ?c <kb:gdp> ?g }", "epoch": 999}"#,
        ))
        .unwrap_err();
        assert!(err.contains("no longer retained"), "{err}");
    }

    #[test]
    fn handler_rejects_bad_bodies() {
        let handler = gateway_query_handler(sample_kb());
        assert!(handler(&post("not json"))
            .unwrap_err()
            .starts_with("invalid JSON body"));
        assert!(handler(&post(r#"{"explain": true}"#))
            .unwrap_err()
            .contains("sparql"));
        assert!(handler(&post(r#"{"sparql": "SELECT"}"#))
            .unwrap_err()
            .starts_with("query failed"));
    }
}
