//! The personalized knowledge base (§3 of the paper), built on top of the
//! rich SDK.
//!
//! "The personal knowledge base can store data persistently in a variety
//! of forms including files, relational database management systems
//! (RDBMS), key-value stores, and RDF triple stores… The personalized
//! knowledge base provides methods to allow data to be converted to
//! different formats… can analyze data for patterns and perform predictive
//! analytics; it also provides inferencing capabilities."
//!
//! Feature map (Figure 4):
//!
//! | Paper feature | Module |
//! |---|---|
//! | Multi-backend storage (CSV / tables / KV / RDF) | [`kb`] over `cogsdk-store` + `cogsdk-rdf` |
//! | Format conversion (CSV ↔ table ↔ RDF) | [`convert`] |
//! | Entity disambiguation (incl. user synonym files) | [`kb`] via `cogsdk-text` |
//! | Local spell checker | [`kb`] via `cogsdk_text::SpellChecker` |
//! | Statistical analysis + prediction, stored as RDF, then inferenced (Fig. 5) | [`analytics`] |
//! | Encryption + compression before untrusted remote storage | construction option via `cogsdk_store::EnhancedClient` |
//! | Offline operation + resynchronization | [`kb`] via `cogsdk_store::sync` |

pub mod analytics;
pub mod convert;
pub mod federation;
pub mod gateway;
pub mod ingest;
pub mod kb;

pub use analytics::RegressionFacts;
pub use gateway::{gateway_ingest_handler, gateway_query_handler};
pub use ingest::{chunk_documents, IngestConfig, IngestReport, IngestSession, IngestWatcher};
pub use kb::{KbOptions, PersonalKnowledgeBase};

use std::error::Error;
use std::fmt;

/// Error type for knowledge-base operations.
#[derive(Debug, Clone, PartialEq)]
pub enum KbError {
    /// Underlying storage failure.
    Store(String),
    /// RDF / query failure.
    Rdf(String),
    /// Statistics failure (degenerate data).
    Stats(String),
    /// A surface form could not be disambiguated.
    UnknownEntity(String),
    /// Serialized knowledge could not be parsed.
    Corrupt(String),
    /// The durability layer (WAL or snapshot) failed.
    Durability(String),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Store(m) => write!(f, "storage: {m}"),
            KbError::Rdf(m) => write!(f, "rdf: {m}"),
            KbError::Stats(m) => write!(f, "statistics: {m}"),
            KbError::UnknownEntity(m) => write!(f, "unknown entity: {m}"),
            KbError::Corrupt(m) => write!(f, "corrupt knowledge data: {m}"),
            KbError::Durability(m) => write!(f, "durability: {m}"),
        }
    }
}

impl Error for KbError {}

impl From<cogsdk_store::StoreError> for KbError {
    fn from(e: cogsdk_store::StoreError) -> KbError {
        KbError::Store(e.to_string())
    }
}

impl From<cogsdk_rdf::RdfError> for KbError {
    fn from(e: cogsdk_rdf::RdfError) -> KbError {
        KbError::Rdf(e.to_string())
    }
}

impl From<cogsdk_rdf::DurableError> for KbError {
    fn from(e: cogsdk_rdf::DurableError) -> KbError {
        KbError::Durability(e.to_string())
    }
}

impl From<cogsdk_stats::StatsError> for KbError {
    fn from(e: cogsdk_stats::StatsError) -> KbError {
        KbError::Stats(e.to_string())
    }
}
