//! Gateway-driven paging stability: `POST /query` pages pinned to a
//! snapshot epoch must tile one consistent result set — stable and
//! duplicate-free — while a writer keeps ingesting into the live base.
//!
//! The rdf-level contract (crates/rdf/tests/query_paging.rs) proves the
//! snapshot itself is stable; this test proves the property survives the
//! full HTTP surface: the first page reports the epoch it ran on, every
//! later page sends that epoch back, and when sustained ingest ages the
//! pinned epoch out of the retention ring the handler rejects the page
//! with a restartable error instead of silently switching epochs.

use cogsdk_core::gateway::{HttpRequest, QueryHandler};
use cogsdk_json::Json;
use cogsdk_kb::gateway::gateway_query_handler;
use cogsdk_kb::kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk_rdf::{Statement, Term};
use cogsdk_store::kv::{KeyValueStore, MemoryKv};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;

const PAGE: usize = 37; // deliberately not a divisor of the seed count
const SPARQL: &str = "SELECT ?x WHERE { ?x <rdf:type> <ex:Item> . } ORDER BY ?x";

fn item(i: usize) -> Statement {
    Statement::new(
        Term::iri(format!("ex:item_{i}")),
        Term::iri("rdf:type"),
        Term::iri("ex:Item"),
    )
}

fn post(body: &str) -> HttpRequest {
    HttpRequest {
        method: "POST".to_string(),
        path: "/query".to_string(),
        query: Vec::new(),
        tenant: None,
        body: body.to_string(),
    }
}

fn rows_of(out: &Json) -> Vec<String> {
    let mut rows = Vec::new();
    let mut i = 0;
    while let Some(x) = out.pointer(&format!("/rows/{i}/x")).and_then(Json::as_str) {
        rows.push(x.to_string());
        i += 1;
    }
    rows
}

/// Pages to exhaustion against whatever epoch the first page pins.
/// Returns the pinned epoch and every row seen, or the handler error if
/// the epoch aged out of retention mid-walk.
fn page_to_exhaustion(handler: &QueryHandler) -> Result<(usize, BTreeSet<String>), String> {
    let first = handler(&post(&format!(r#"{{"sparql": "{SPARQL} LIMIT {PAGE}"}}"#)))?;
    let epoch = first.get("epoch").and_then(Json::as_usize).unwrap();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut rows = rows_of(&first);
    let mut offset = 0;
    loop {
        let short = rows.len() < PAGE;
        for row in rows {
            assert!(seen.insert(row), "duplicate row at offset {offset}");
        }
        if short {
            return Ok((epoch, seen));
        }
        offset += PAGE;
        let out = handler(&post(&format!(
            r#"{{"sparql": "{SPARQL} OFFSET {offset} LIMIT {PAGE}", "epoch": {epoch}}}"#
        )))?;
        assert_eq!(
            out.get("epoch").and_then(Json::as_usize),
            Some(epoch),
            "a pinned page must run on the epoch it named"
        );
        rows = rows_of(&out);
    }
}

#[test]
fn gateway_pages_pinned_to_an_epoch_tile_one_result_set_under_ingest() {
    const SEEDED: usize = 500;
    const INGESTED: usize = 1500;

    let remote: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
    let kb = Arc::new(PersonalKnowledgeBase::new(remote, KbOptions::default()));
    for i in 0..SEEDED {
        kb.add_statement(item(i)).unwrap();
    }
    let handler = gateway_query_handler(kb.clone());

    // Writer: keeps ingesting new items while the reader pages. Every
    // insert publishes an epoch, so the reader's pinned epoch will age
    // out of the retention ring mid-walk — the only acceptable failure.
    let writer_kb = Arc::clone(&kb);
    let writer = thread::spawn(move || {
        for i in SEEDED..SEEDED + INGESTED {
            writer_kb.add_statement(item(i)).unwrap();
        }
    });

    // Concurrent phase: follow the restart protocol the handler's error
    // message dictates — on eviction, re-pin a fresh epoch and retile
    // from scratch. Terminates because the writer does.
    let (epoch, seen) = loop {
        match page_to_exhaustion(&handler) {
            Ok(done) => break done,
            Err(e) => assert!(
                e.contains("no longer retained"),
                "only eviction may interrupt paging: {e}"
            ),
        }
    };
    writer.join().unwrap();

    // Whatever epoch the successful walk pinned, its pages tiled one
    // consistent universe: the seed set plus however much of the ingest
    // had landed at pin time, never a torn mixture.
    assert!(
        (SEEDED..=SEEDED + INGESTED).contains(&seen.len()),
        "pinned epoch size out of range: {}",
        seen.len()
    );

    // Deterministic phase: the writer is done, epochs have stopped
    // moving, so a fresh walk must complete without restarts and tile
    // the final graph exactly.
    let (final_epoch, final_seen) = page_to_exhaustion(&handler).unwrap();
    assert!(final_epoch >= epoch);
    assert_eq!(final_seen.len(), SEEDED + INGESTED);
    let expected: BTreeSet<String> = (0..SEEDED + INGESTED)
        .map(|i| format!("<ex:item_{i}>"))
        .collect();
    assert_eq!(
        final_seen, expected,
        "pages must tile the final graph exactly"
    );

    // An unpinned query agrees with the tiled total.
    let fresh = handler(&post(&format!(r#"{{"sparql": "{SPARQL}"}}"#))).unwrap();
    assert_eq!(
        fresh.pointer("/stats/rows").and_then(Json::as_usize),
        Some(SEEDED + INGESTED)
    );
}
