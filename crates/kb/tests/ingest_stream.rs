//! The streaming bulk loader's contracts, end to end:
//!
//! 1. **Equivalence** — a pipelined bulk load produces exactly the
//!    knowledge a sequential `ingest_text` loop would: same statement
//!    count, same resolved-contents digest, under perfect and degraded
//!    NLU profiles alike.
//! 2. **Acked-prefix crash semantics** — a seeded mid-stream storage
//!    failure loses only unacked batches: the reopened base equals a
//!    from-scratch sequential ingest of exactly the acked documents,
//!    closure included.
//! 3. **Bounded memory** — with the materializer stage deliberately
//!    stalled (the store's write lock held by a reader), in-flight
//!    documents never exceed the configured bound.

use cogsdk_core::ThreadPool;
use cogsdk_kb::{IngestConfig, IngestSession, KbOptions, PersonalKnowledgeBase};
use cogsdk_obs::Telemetry;
use cogsdk_sim::fs::Vfs;
use cogsdk_sim::SimFs;
use cogsdk_store::kv::MemoryKv;
use cogsdk_text::analysis::NluConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small synthetic corpus cycling through catalog entities, so every
/// document resolves entities/relations and batches share terms.
fn corpus(n: usize) -> Vec<String> {
    let templates = [
        "IBM acquired Oracle. The USA praised the excellent deal.",
        "Google praised Microsoft. Germany welcomed the partnership.",
        "Oracle criticized IBM. France condemned the terrible move.",
        "Microsoft acquired Google. The USA welcomed the merger.",
    ];
    (0..n)
        .map(|i| templates[i % templates.len()].to_string())
        .collect()
}

fn memory_kb() -> Arc<PersonalKnowledgeBase> {
    Arc::new(PersonalKnowledgeBase::new(
        Arc::new(MemoryKv::new()),
        KbOptions::default(),
    ))
}

#[test]
fn pipelined_ingest_equals_sequential_ingest() {
    let docs = corpus(200);
    let sequential = memory_kb();
    for d in &docs {
        sequential.ingest_text(d).unwrap();
    }

    let pipelined = memory_kb();
    let pool = ThreadPool::new(4);
    let report = pipelined
        .ingest_stream(
            &pool,
            docs.clone(),
            IngestConfig {
                batch_size: 16,
                workers: 3,
                max_in_flight: 64,
                nlu: None,
            },
        )
        .unwrap();

    assert_eq!(report.documents, docs.len());
    assert_eq!(report.pushed, docs.len());
    assert_eq!(report.batches, docs.len().div_ceil(16));
    assert_eq!(pipelined.statement_count(), sequential.statement_count());
    assert_eq!(
        pipelined.contents_digest(),
        sequential.contents_digest(),
        "pipelined and sequential ingest must produce identical knowledge"
    );
}

#[test]
fn pipelined_ingest_matches_sequential_under_degraded_nlu() {
    // A lossy vendor profile: degradation is deterministic per (vendor,
    // item), so both paths must still agree exactly.
    let config = NluConfig::vendor("flaky-vendor", 0.6, 0.2);
    let docs = corpus(120);

    let sequential = memory_kb();
    sequential.set_nlu_config(config.clone());
    for d in &docs {
        sequential.ingest_text(d).unwrap();
    }

    let pipelined = memory_kb();
    let pool = ThreadPool::new(4);
    pipelined
        .ingest_stream(
            &pool,
            docs,
            IngestConfig {
                batch_size: 8,
                workers: 2,
                max_in_flight: 32,
                nlu: Some(config),
            },
        )
        .unwrap();

    assert_eq!(pipelined.statement_count(), sequential.statement_count());
    assert_eq!(pipelined.contents_digest(), sequential.contents_digest());
}

#[test]
fn ingest_text_honors_the_configured_nlu_profile() {
    // Recall 0 drops every entity: only the bare document node lands.
    let kb = memory_kb();
    kb.set_nlu_config(NluConfig::vendor("blind", 0.0, 0.0));
    kb.ingest_text("IBM acquired Oracle.").unwrap();
    assert!(kb
        .query("SELECT ?d WHERE { ?d <kb:mentions> ?e }")
        .unwrap()
        .is_empty());
    assert_eq!(
        kb.query("SELECT ?d WHERE { ?d <rdf:type> <kb:Document> }")
            .unwrap()
            .len(),
        1
    );
    // An explicit per-call profile overrides the configured one.
    kb.ingest_text_with("IBM acquired Oracle.", &NluConfig::perfect())
        .unwrap();
    assert!(!kb
        .query("SELECT ?d WHERE { ?d <kb:mentions> <kb:ibm> }")
        .unwrap()
        .is_empty());
}

#[test]
fn intra_batch_duplicate_statements_do_not_double_count() {
    // Identical documents in one batch share their entity-type and
    // relation statements; only per-document facts differ. The batch
    // commit must net the duplicates.
    let doc = "IBM acquired Oracle.";
    let sequential = memory_kb();
    sequential.ingest_text(doc).unwrap();
    sequential.ingest_text(doc).unwrap();
    sequential.ingest_text(doc).unwrap();

    let pipelined = memory_kb();
    let pool = ThreadPool::new(2);
    let report = pipelined
        .ingest_stream(
            &pool,
            vec![doc; 3],
            IngestConfig {
                batch_size: 3,
                workers: 2,
                max_in_flight: 8,
                nlu: None,
            },
        )
        .unwrap();
    assert_eq!(report.batches, 1, "all three documents in one commit");
    assert_eq!(pipelined.statement_count(), sequential.statement_count());
    assert_eq!(pipelined.contents_digest(), sequential.contents_digest());
}

#[test]
fn seeded_crash_mid_stream_recovers_exact_prefix_of_acked_batches() {
    let docs = corpus(64);
    let batch_size = 4;
    let open = |fs: Arc<SimFs>| {
        PersonalKnowledgeBase::open_durable_on(
            fs as Arc<dyn Vfs>,
            Arc::new(MemoryKv::new()),
            KbOptions::default(),
            Telemetry::disabled(),
        )
        .unwrap()
    };

    // Dry run on an identical filesystem: count the storage ops a clean
    // load performs, so the failure can be armed deterministically
    // midway through the op sequence.
    let fs = Arc::new(SimFs::new(77));
    let kb = Arc::new(open(fs.clone()));
    kb.infer_rdfs().unwrap();
    let pool = ThreadPool::new(2);
    let config = IngestConfig {
        batch_size,
        workers: 2,
        max_in_flight: 16,
        nlu: None,
    };
    kb.ingest_stream(&pool, docs.clone(), config.clone())
        .unwrap();
    let clean_ops = fs.op_count();
    let clean_digest = kb.contents_digest();
    drop(kb);

    // Live run, same seed: storage dies mid-stream.
    let fs = Arc::new(SimFs::new(77));
    let kb = Arc::new(open(fs.clone()));
    kb.infer_rdfs().unwrap();
    let ops_before_stream = fs.op_count();
    fs.fail_after_ops((clean_ops - ops_before_stream) / 2);
    let mut session = IngestSession::new(kb.clone(), &pool, config.clone());
    for d in &docs {
        if session.push(d.clone()).is_err() {
            break;
        }
    }
    let (report, error) = session.finish_detailed();
    assert!(error.is_some(), "the armed failure must surface");
    assert!(
        report.documents > 0 && report.documents < docs.len(),
        "failure must land mid-stream: {report:?}"
    );
    assert_eq!(
        report.documents % batch_size,
        0,
        "acked work is whole batches"
    );
    drop(kb);
    fs.crash();

    // Recovery equals a from-scratch sequential ingest of exactly the
    // acked documents — same facts, same closure.
    let recovered = open(fs);
    let reference = memory_kb();
    reference.infer_rdfs().unwrap();
    for d in &docs[..report.documents] {
        reference.ingest_text(d).unwrap();
    }
    assert_eq!(recovered.statement_count(), reference.statement_count());
    assert_eq!(
        recovered.contents_digest(),
        reference.contents_digest(),
        "recovered base must be the exact acked prefix"
    );
    assert_ne!(
        recovered.contents_digest(),
        clean_digest,
        "sanity: the prefix is a strict subset of the full load"
    );
}

#[test]
fn backpressure_bounds_in_flight_documents_under_a_stalled_materializer() {
    let kb = memory_kb();
    let pool = ThreadPool::new(4);
    let max_in_flight = 24;
    let total = 300;
    let session = IngestSession::new(
        kb.clone(),
        &pool,
        IngestConfig {
            batch_size: 8,
            workers: 2,
            max_in_flight,
            nlu: None,
        },
    );
    let watcher = session.watcher();
    let docs = corpus(total);
    let pusher = std::thread::spawn(move || {
        let mut session = session;
        for d in docs {
            session.push(d).unwrap();
        }
        session.finish().unwrap()
    });

    // Stall the materializer: holding the graph's read lock blocks the
    // committer's write lock, so nothing can drain. The pipeline must
    // park at the in-flight bound instead of buffering every document.
    kb.with_graph(|_| {
        // A commit already past the lock may still be counting; let it
        // settle, then the count must freeze for as long as we hold on.
        std::thread::sleep(Duration::from_millis(50));
        let frozen = watcher.committed_documents();
        let deadline = Instant::now() + Duration::from_millis(400);
        let mut peak_seen = 0;
        while Instant::now() < deadline {
            peak_seen = peak_seen.max(watcher.in_flight());
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            peak_seen <= max_in_flight,
            "in-flight documents ({peak_seen}) exceeded the bound ({max_in_flight})"
        );
        assert!(
            peak_seen >= max_in_flight / 2,
            "the pipeline should have filled toward the bound ({peak_seen})"
        );
        assert_eq!(
            watcher.committed_documents(),
            frozen,
            "nothing can commit while the store lock is held"
        );
    });

    let report = pusher.join().unwrap();
    assert_eq!(report.documents, total);
    assert!(
        report.peak_in_flight <= max_in_flight,
        "peak {} exceeded bound {max_in_flight}",
        report.peak_in_flight
    );
    // The stall was charged to the stages that experienced it.
    assert!(report.parse_stall > Duration::ZERO);
}

#[test]
fn stage_metrics_are_published_per_batch() {
    let telemetry = Telemetry::new();
    let kb = Arc::new(
        PersonalKnowledgeBase::with_telemetry(
            Arc::new(MemoryKv::new()),
            KbOptions::default(),
            telemetry.clone(),
        )
        .for_tenant("acme"),
    );
    let pool = ThreadPool::new(2);
    let docs = corpus(40);
    let report = kb
        .ingest_stream(
            &pool,
            docs,
            IngestConfig {
                batch_size: 10,
                workers: 2,
                max_in_flight: 20,
                nlu: None,
            },
        )
        .unwrap();
    assert_eq!(report.documents, 40);

    let metrics = telemetry.metrics();
    let labels = |stage: &'static str| [("stage", stage), ("tenant", "acme")];
    for stage in ["parse", "analyze", "intern", "commit"] {
        assert_eq!(
            metrics.gauge_value("sdk_ingest_stage_docs", &labels(stage)),
            Some(40.0),
            "stage {stage} throughput gauge"
        );
        assert_eq!(
            metrics
                .gauge_value("sdk_ingest_stage_depth", &labels(stage))
                .is_some(),
            stage != "parse",
            "stage {stage} depth gauge"
        );
    }
    for stage in ["parse", "analyze", "intern"] {
        assert!(
            metrics
                .gauge_value("sdk_ingest_stage_stall_ms", &labels(stage))
                .is_some(),
            "stage {stage} stall gauge"
        );
    }
    assert_eq!(
        metrics.gauge_value("sdk_ingest_committed_documents", &[("tenant", "acme")]),
        Some(40.0)
    );
    assert_eq!(
        metrics.gauge_value("sdk_ingest_committed_batches", &[("tenant", "acme")]),
        Some(4.0)
    );
    assert_eq!(
        metrics.gauge_value("sdk_ingest_in_flight", &[("tenant", "acme")]),
        Some(0.0),
        "everything drained at finish"
    );
}
