//! Concurrency stress: readers, snapshot pagers, a sustained ingest
//! writer, and a standing-ruleset maintenance thread all hammer one
//! knowledge base. The invariants under test are the snapshot-isolation
//! contract:
//!
//! * every pinned epoch is *byte-stable* — any thread computing the
//!   canonical result digest for epoch `E` gets the same bits, no matter
//!   when it reads or what the writer is doing;
//! * pages drawn from one pinned epoch tile its full result exactly;
//! * no epoch is ever half-materialized — the standing ruleset's
//!   conclusions appear atomically with the facts that triggered them.
//!
//! Thread count scales with `KB_STRESS_THREADS` (default 4), mirroring
//! `CACHE_STRESS_THREADS` in the cache stress suite, so CI can turn the
//! contention up without editing the test.

use cogsdk_kb::kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk_rdf::{Statement, Term};
use cogsdk_store::kv::{KeyValueStore, MemoryKv};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

const MASTER_SEED: u64 = 0xC0_97A1;
const SEEDED: usize = 150;
const INGESTED: usize = 450;
const PAGE: usize = 29;
const READS_PER_THREAD: usize = 20;

fn reader_threads() -> usize {
    std::env::var("KB_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn fnv1a(digest: u64, bytes: &[u8]) -> u64 {
    let mut h = digest;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Splitmix-style id scrambler so ingest order is seeded and scattered,
/// not sequential — epochs differ in content, not just length.
fn scrambled(i: usize) -> u64 {
    let mut z = MASTER_SEED.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn item(i: usize) -> Statement {
    Statement::new(
        Term::iri(format!("ex:item_{:016x}", scrambled(i))),
        Term::iri("rdf:type"),
        Term::iri("ex:Item"),
    )
}

fn canon(rows: &[std::collections::HashMap<String, Term>]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|row| {
            let mut entries: Vec<String> = row.iter().map(|(v, t)| format!("{v}={t}")).collect();
            entries.sort();
            entries.join("&")
        })
        .collect();
    out.sort();
    out
}

fn digest_rows(rows: &[String]) -> u64 {
    let mut d = 0xcbf2_9ce4_8422_2325u64;
    for row in rows {
        d = fnv1a(d, row.as_bytes());
        d = fnv1a(d, b";");
    }
    d
}

#[test]
fn pinned_epochs_stay_byte_stable_under_concurrent_ingest_and_maintenance() {
    let remote: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
    let kb = Arc::new(PersonalKnowledgeBase::new(remote, KbOptions::default()));
    // Standing ruleset installed before the storm: every Item is a
    // Thing, incrementally maintained as the writer ingests.
    for i in 0..SEEDED {
        kb.add_statement(item(i)).unwrap();
    }
    kb.infer_rules("[(?x rdf:type ex:Item) -> (?x rdf:type ex:Thing)]")
        .unwrap();

    // epoch → canonical digest of the full Item result set. Whoever
    // digests an epoch first registers it; everyone after must agree.
    let digests: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let item_query = "SELECT ?x WHERE { ?x <rdf:type> <ex:Item> . } ORDER BY ?x";
    let thing_query = "SELECT ?x WHERE { ?x <rdf:type> <ex:Thing> . }";

    let mut handles = Vec::new();

    // Writer: sustained ingest, one epoch per statement.
    {
        let kb = Arc::clone(&kb);
        handles.push(thread::spawn(move || {
            for i in SEEDED..SEEDED + INGESTED {
                kb.add_statement(item(i)).unwrap();
            }
        }));
    }

    // Maintenance: keeps re-asserting the standing RDFS ruleset while
    // everything else runs — materialization churn on the write path.
    {
        let kb = Arc::clone(&kb);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                kb.infer_rdfs().unwrap();
                thread::yield_now();
            }
        }));
    }

    // Readers: pin, digest, page, verify — over and over.
    let mut readers = Vec::new();
    for _ in 0..reader_threads() {
        let kb = Arc::clone(&kb);
        let digests = Arc::clone(&digests);
        readers.push(thread::spawn(move || {
            for _ in 0..READS_PER_THREAD {
                let snap = kb.query_snapshot();
                let (rows, _) = kb.query_on(&snap, item_query).unwrap();
                let full = canon(&rows);
                let d = digest_rows(&full);

                // Byte-stability: one digest per epoch, across threads.
                {
                    let mut map = digests.lock().unwrap();
                    let prev = *map.entry(snap.epoch()).or_insert(d);
                    assert_eq!(
                        prev,
                        d,
                        "epoch {} produced two different digests",
                        snap.epoch()
                    );
                }

                // Paging: OFFSET/LIMIT pages against the same pinned
                // snapshot tile the full result exactly.
                let mut tiled: Vec<String> = Vec::new();
                let mut offset = 0;
                loop {
                    let paged = format!("{item_query} OFFSET {offset} LIMIT {PAGE}");
                    let (page, _) = kb.query_on(&snap, &paged).unwrap();
                    if page.is_empty() {
                        break;
                    }
                    tiled.extend(canon(&page));
                    offset += PAGE;
                }
                tiled.sort();
                assert_eq!(digest_rows(&tiled), d, "pages must tile the pinned epoch");

                // Atomic materialization: the standing ruleset's Thing
                // conclusions cover every Item in this very epoch.
                let (things, _) = kb.query_on(&snap, thing_query).unwrap();
                let things: BTreeSet<String> = canon(&things).into_iter().collect();
                // Both queries bind ?x, so canonical rows compare 1:1.
                for row in &full {
                    assert!(
                        things.contains(row),
                        "epoch {} is half-materialized: {row} has no Thing conclusion",
                        snap.epoch()
                    );
                }
            }
        }));
    }

    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    // The storm visited many distinct epochs — otherwise the digest map
    // proves nothing.
    assert!(
        digests.lock().unwrap().len() >= 2,
        "readers only ever saw one epoch; stress produced no interleaving"
    );

    // Quiesced: the final epoch holds everything, fully materialized.
    let snap = kb.query_snapshot();
    let (items, _) = kb.query_on(&snap, item_query).unwrap();
    assert_eq!(items.len(), SEEDED + INGESTED);
    let (things, _) = kb.query_on(&snap, thing_query).unwrap();
    assert_eq!(things.len(), SEEDED + INGESTED);
}

/// Regression: pinning a snapshot is O(1) — its cost must not scale with
/// graph size. Before the epoch store, "snapshotting" cloned the full
/// graph, so 10 000 snapshots of a 30 000-triple graph were hopeless.
#[test]
fn query_snapshot_cost_does_not_scale_with_graph_size() {
    let remote: Arc<dyn KeyValueStore> = Arc::new(MemoryKv::new());
    let kb = PersonalKnowledgeBase::new(remote, KbOptions::default());
    for i in 0..30_000 {
        kb.add_statement(item(i)).ok();
    }

    // Idle pins return the *same* allocation — no copying of any kind.
    let a = kb.query_snapshot();
    let b = kb.query_snapshot();
    assert!(
        Arc::ptr_eq(&a, &b),
        "idle pins must share one snapshot allocation"
    );

    // And pinning en masse is cheap in absolute terms. The bound is
    // generous (CI machines vary wildly); a graph-sized copy per pin
    // would blow through it by orders of magnitude.
    let start = std::time::Instant::now();
    let mut last = a;
    for _ in 0..10_000 {
        last = kb.query_snapshot();
    }
    assert_eq!(last.len(), 30_000);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "10k pins of a 30k-triple graph took {:?}",
        start.elapsed()
    );
}
