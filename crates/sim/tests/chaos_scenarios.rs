//! Seeded chaos-scenario regression tests (run by the `chaos` CI job via
//! `cargo test -p cogsdk-sim --features chaos -q`). These drive real
//! [`SimService`]s through composed scenarios and pin down the observable
//! failure signals the resilience layer depends on.

#![cfg(feature = "chaos")]

use cogsdk_json::Json;
use cogsdk_sim::chaos::{ChaosScenario, Fault};
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::service::{Request, ServiceError, SimService};
use cogsdk_sim::SimEnv;
use std::time::Duration;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Replays a scenario against a fresh service and records each call's
/// `(failed, latency)` at a fixed virtual-time cadence.
fn replay(seed: u64, scenario: &ChaosScenario, service: &str) -> Vec<(bool, Duration)> {
    let env = SimEnv::with_seed(seed);
    let svc = SimService::builder(service, "chaos")
        .latency(LatencyModel::constant_ms(10.0))
        .timeout(ms(200))
        .failures(scenario.plan_for(service))
        .build(&env);
    let req = Request::new("op", Json::Null);
    (0..60)
        .map(|_| {
            let before = env.clock().now();
            let out = svc.invoke(&req);
            // Pin the cadence: each call starts 250 ms after the last,
            // regardless of how long the call itself took.
            env.clock().advance_to(before.after(ms(250)));
            (out.result.is_err(), out.latency)
        })
        .collect()
}

#[test]
fn scenario_replay_is_deterministic() {
    let scenario = ChaosScenario::new(1234)
        .with_fault(
            "svc",
            Fault::Flapping {
                start: ms(0),
                end: ms(10_000),
                period: ms(1_000),
                duty: 0.5,
            },
        )
        .with_fault("svc", Fault::Flaky { rate: 0.1 });
    assert_eq!(replay(9, &scenario, "svc"), replay(9, &scenario, "svc"));
}

#[test]
fn blackhole_burns_full_timeout_outage_fails_fast() {
    let env = SimEnv::with_seed(5);
    let scenario = ChaosScenario::new(5)
        .with_fault(
            "bh",
            Fault::Blackhole {
                start: ms(0),
                end: ms(60_000),
            },
        )
        .with_fault(
            "out",
            Fault::Outage {
                start: ms(0),
                end: ms(60_000),
            },
        );
    let bh = SimService::builder("bh", "chaos")
        .timeout(ms(500))
        .failures(scenario.plan_for("bh"))
        .build(&env);
    let out = SimService::builder("out", "chaos")
        .timeout(ms(500))
        .failures(scenario.plan_for("out"))
        .build(&env);
    let req = Request::new("op", Json::Null);

    let o = bh.invoke(&req);
    assert_eq!(o.result.unwrap_err(), ServiceError::Timeout);
    assert_eq!(o.latency, ms(500), "blackhole burns the full timeout");

    let o = out.invoke(&req);
    assert_eq!(o.result.unwrap_err(), ServiceError::Unavailable);
    assert!(o.latency < ms(100), "hard outage is detected fast");
}

#[test]
fn flapping_service_alternates_up_and_down() {
    let scenario = ChaosScenario::new(77).with_fault(
        "flap",
        Fault::Flapping {
            start: ms(0),
            end: ms(15_000),
            period: ms(1_000),
            duty: 0.5,
        },
    );
    let results = replay(3, &scenario, "flap");
    let failures = results.iter().filter(|(failed, _)| *failed).count();
    // 50% duty over the whole run: failures should be substantial but the
    // service must also have healthy phases.
    assert!(
        (10..=50).contains(&failures),
        "expected mixed up/down phases, got {failures}/60 failures"
    );
    // And the sequence must actually alternate, not fail in one solid block.
    let transitions = results.windows(2).filter(|w| w[0].0 != w[1].0).count();
    assert!(
        transitions >= 4,
        "flapping should produce several up/down transitions, got {transitions}"
    );
}

#[test]
fn degradation_slows_calls_inside_window_only() {
    let env = SimEnv::with_seed(11);
    let scenario = ChaosScenario::new(11).with_fault(
        "slow",
        Fault::Degradation {
            start: ms(1_000),
            end: ms(2_000),
            factor: 8.0,
        },
    );
    let svc = SimService::builder("slow", "chaos")
        .latency(LatencyModel::constant_ms(10.0))
        .timeout(ms(1_000))
        .failures(scenario.plan_for("slow"))
        .build(&env);
    let req = Request::new("op", Json::Null);

    let healthy = svc.invoke(&req);
    assert_eq!(healthy.latency, ms(10));

    env.clock().advance(ms(1_500));
    let degraded = svc.invoke(&req);
    assert!(degraded.result.is_ok(), "brown-out still answers");
    assert_eq!(degraded.latency, ms(80), "8x multiplier inside the window");

    env.clock().advance(ms(2_000));
    let recovered = svc.invoke(&req);
    assert_eq!(recovered.latency, ms(10));
}

#[test]
fn composed_scenario_only_hits_targeted_services() {
    let scenario = ChaosScenario::new(21)
        .with_fault(
            "primary",
            Fault::Outage {
                start: ms(0),
                end: ms(30_000),
            },
        )
        .with_fault("primary", Fault::Flaky { rate: 0.2 });
    let primary = replay(2, &scenario, "primary");
    let backup = replay(2, &scenario, "backup");
    assert!(
        primary.iter().all(|(failed, _)| *failed),
        "primary is down for the whole replay window"
    );
    assert!(
        backup.iter().all(|(failed, _)| !*failed),
        "untargeted backup stays healthy"
    );
}
