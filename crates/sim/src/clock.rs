//! Virtual time.
//!
//! Tests and deterministic experiments never sleep: modeled latency advances
//! a shared virtual clock instead. Wall-clock benchmarks can opt into real,
//! scaled-down sleeps via [`TimeMode::Scaled`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An instant on the simulation timeline, in microseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::from_micros(1_500);
/// assert_eq!(t.since(SimTime::ZERO), Duration::from_micros(1_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds since simulation start.
    pub fn from_micros(micros: u64) -> SimTime {
        SimTime(micros)
    }

    /// Creates a time from milliseconds since simulation start.
    pub fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// This time plus `d`.
    pub fn after(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_micros() as u64))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Clones share state; advancing one advances them all. All operations are
/// lock-free and safe to call from service threads.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.micros.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: Duration) -> SimTime {
        let add = d.as_micros() as u64;
        SimTime(self.micros.fetch_add(add, Ordering::SeqCst) + add)
    }

    /// Moves the clock forward to `t` if `t` is later than now; returns the
    /// (possibly unchanged) current time. Used when concurrent simulated
    /// calls complete "at" different virtual instants.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut cur = self.micros.load(Ordering::SeqCst);
        while cur < t.0 {
            match self
                .micros
                .compare_exchange(cur, t.0, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(seen) => cur = seen,
            }
        }
        SimTime(cur)
    }
}

/// How modeled service latency is realized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeMode {
    /// Latency only advances the virtual clock; calls return immediately.
    /// Fully deterministic; used by tests and analytical experiments.
    Virtual,
    /// Latency additionally causes a real `thread::sleep` of
    /// `latency * scale`. Used for wall-clock benchmarks of threaded paths
    /// (a scale of `0.001` makes a modeled second cost one real
    /// millisecond).
    Scaled(f64),
}

impl TimeMode {
    /// Realizes a modeled latency: advances `clock` and, in scaled mode,
    /// sleeps proportionally.
    pub fn realize(&self, clock: &SimClock, latency: Duration) {
        clock.advance(latency);
        if let TimeMode::Scaled(scale) = *self {
            if scale > 0.0 {
                std::thread::sleep(latency.mul_f64(scale));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(Duration::from_millis(2));
        c.advance(Duration::from_micros(500));
        assert_eq!(c.now().as_micros(), 2_500);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::new();
        c.advance(Duration::from_millis(10));
        let t = c.advance_to(SimTime::from_millis(5));
        assert_eq!(t, SimTime::from_millis(10));
        let t = c.advance_to(SimTime::from_millis(20));
        assert_eq!(t, SimTime::from_millis(20));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(4);
        assert_eq!(late.since(early), Duration::from_millis(3));
        assert_eq!(early.since(late), Duration::ZERO);
    }

    #[test]
    fn concurrent_advances_are_consistent() {
        let c = SimClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(Duration::from_micros(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now().as_micros(), 8_000);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
    }

    #[test]
    fn virtual_mode_does_not_sleep() {
        let c = SimClock::new();
        let start = std::time::Instant::now();
        TimeMode::Virtual.realize(&c, Duration::from_secs(3600));
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(c.now(), SimTime::from_micros(3_600_000_000));
    }

    #[test]
    fn scaled_mode_sleeps_proportionally() {
        let c = SimClock::new();
        let start = std::time::Instant::now();
        TimeMode::Scaled(0.001).realize(&c, Duration::from_millis(1000));
        let real = start.elapsed();
        assert!(real >= Duration::from_millis(1), "slept {real:?}");
        assert!(real < Duration::from_millis(500), "slept {real:?}");
    }
}
