//! Latency models for simulated services.
//!
//! The paper (§2) observes that service latency often depends on *latency
//! parameters* such as the size of an argument ("the time for storing an
//! object of size `a` will generally increase with `a`", and different
//! services grow at different rates, creating crossovers). [`LatencyModel`]
//! reproduces exactly those shapes.

use crate::rng::Rng;
use std::time::Duration;

/// A distribution over response latencies, possibly depending on the
/// request payload size.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::latency::LatencyModel;
/// use cogsdk_sim::rng::Rng;
///
/// // A service cheap for small payloads but with a steep per-byte cost.
/// let m = LatencyModel::size_linear_ms(5.0, 0.01);
/// let mut rng = Rng::new(1);
/// let small = m.sample(&mut rng, 100);
/// let large = m.sample(&mut rng, 100_000);
/// assert!(large > small);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this latency.
    Constant(Duration),
    /// Uniform between the two bounds.
    Uniform(Duration, Duration),
    /// Normal with the given mean/standard deviation (milliseconds),
    /// truncated below at `floor`.
    Normal {
        /// Mean latency in milliseconds.
        mean_ms: f64,
        /// Standard deviation in milliseconds.
        std_ms: f64,
        /// Minimum latency; samples are clamped up to this.
        floor: Duration,
    },
    /// Log-normal: the heavy-tailed shape measured for real web services.
    LogNormal {
        /// Median latency in milliseconds (`exp(mu)`).
        median_ms: f64,
        /// Shape parameter sigma of the underlying normal.
        sigma: f64,
    },
    /// Base latency plus a per-byte cost of the request payload — the
    /// paper's size-dependent "latency parameter" model.
    SizeLinear {
        /// Fixed per-call latency in milliseconds.
        base_ms: f64,
        /// Additional milliseconds per payload byte.
        per_byte_ms: f64,
        /// Multiplicative jitter half-width (0.1 = ±10%).
        jitter: f64,
    },
}

impl LatencyModel {
    /// A constant latency of `ms` milliseconds.
    pub fn constant_ms(ms: f64) -> LatencyModel {
        LatencyModel::Constant(Duration::from_secs_f64(ms / 1_000.0))
    }

    /// Uniform latency between `lo_ms` and `hi_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `lo_ms > hi_ms`.
    pub fn uniform_ms(lo_ms: f64, hi_ms: f64) -> LatencyModel {
        assert!(lo_ms <= hi_ms, "uniform bounds out of order");
        LatencyModel::Uniform(
            Duration::from_secs_f64(lo_ms / 1_000.0),
            Duration::from_secs_f64(hi_ms / 1_000.0),
        )
    }

    /// Normal latency, truncated at 0.1 ms.
    pub fn normal_ms(mean_ms: f64, std_ms: f64) -> LatencyModel {
        LatencyModel::Normal {
            mean_ms,
            std_ms,
            floor: Duration::from_micros(100),
        }
    }

    /// Log-normal latency with the given median and shape.
    pub fn lognormal_ms(median_ms: f64, sigma: f64) -> LatencyModel {
        LatencyModel::LogNormal { median_ms, sigma }
    }

    /// Size-dependent latency with ±10% jitter.
    pub fn size_linear_ms(base_ms: f64, per_byte_ms: f64) -> LatencyModel {
        LatencyModel::SizeLinear {
            base_ms,
            per_byte_ms,
            jitter: 0.1,
        }
    }

    /// Draws one latency for a request of `payload_bytes`.
    pub fn sample(&self, rng: &mut Rng, payload_bytes: usize) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                let lo_us = lo.as_micros() as f64;
                let hi_us = hi.as_micros() as f64;
                Duration::from_micros(rng.uniform(lo_us, hi_us) as u64)
            }
            LatencyModel::Normal {
                mean_ms,
                std_ms,
                floor,
            } => {
                let ms = rng.normal(mean_ms, std_ms).max(0.0);
                Duration::from_secs_f64(ms / 1_000.0).max(floor)
            }
            LatencyModel::LogNormal { median_ms, sigma } => {
                let ms = rng.lognormal(median_ms.max(f64::MIN_POSITIVE).ln(), sigma);
                Duration::from_secs_f64(ms / 1_000.0)
            }
            LatencyModel::SizeLinear {
                base_ms,
                per_byte_ms,
                jitter,
            } => {
                let nominal = base_ms + per_byte_ms * payload_bytes as f64;
                let factor = 1.0 + rng.uniform(-jitter, jitter);
                Duration::from_secs_f64((nominal * factor).max(0.0) / 1_000.0)
            }
        }
    }

    /// The model's expected latency for a given payload size, in
    /// milliseconds. Used by experiments as ground truth when evaluating the
    /// SDK's predictors.
    pub fn expected_ms(&self, payload_bytes: usize) -> f64 {
        match *self {
            LatencyModel::Constant(d) => d.as_secs_f64() * 1_000.0,
            LatencyModel::Uniform(lo, hi) => (lo.as_secs_f64() + hi.as_secs_f64()) / 2.0 * 1_000.0,
            LatencyModel::Normal { mean_ms, .. } => mean_ms,
            LatencyModel::LogNormal { median_ms, sigma } => median_ms * (sigma * sigma / 2.0).exp(),
            LatencyModel::SizeLinear {
                base_ms,
                per_byte_ms,
                ..
            } => base_ms + per_byte_ms * payload_bytes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_exact() {
        let mut rng = Rng::new(1);
        let m = LatencyModel::constant_ms(12.5);
        assert_eq!(m.sample(&mut rng, 0), Duration::from_micros(12_500));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = Rng::new(2);
        let m = LatencyModel::uniform_ms(10.0, 20.0);
        for _ in 0..1_000 {
            let d = m.sample(&mut rng, 0);
            assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(20));
        }
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn uniform_rejects_inverted_bounds() {
        let _ = LatencyModel::uniform_ms(5.0, 1.0);
    }

    #[test]
    fn normal_respects_floor() {
        let mut rng = Rng::new(3);
        let m = LatencyModel::normal_ms(0.05, 10.0);
        for _ in 0..1_000 {
            assert!(m.sample(&mut rng, 0) >= Duration::from_micros(100));
        }
    }

    #[test]
    fn normal_sample_mean_matches() {
        let mut rng = Rng::new(4);
        let m = LatencyModel::normal_ms(50.0, 5.0);
        let n = 10_000;
        let mean_ms: f64 = (0..n)
            .map(|_| m.sample(&mut rng, 0).as_secs_f64() * 1_000.0)
            .sum::<f64>()
            / n as f64;
        assert!((mean_ms - 50.0).abs() < 0.5, "mean={mean_ms}");
    }

    #[test]
    fn lognormal_is_heavy_tailed() {
        let mut rng = Rng::new(5);
        let m = LatencyModel::lognormal_ms(20.0, 0.8);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| m.sample(&mut rng, 0).as_secs_f64() * 1_000.0)
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[5_000];
        let p99 = sorted[9_900];
        assert!((median - 20.0).abs() < 2.0, "median={median}");
        assert!(p99 > median * 3.0, "p99={p99} median={median}");
    }

    #[test]
    fn size_linear_grows_with_payload() {
        let mut rng = Rng::new(6);
        let m = LatencyModel::size_linear_ms(1.0, 0.001);
        let avg = |rng: &mut Rng, size| {
            (0..200)
                .map(|_| m.sample(rng, size).as_secs_f64())
                .sum::<f64>()
                / 200.0
        };
        let small = avg(&mut rng, 1_000);
        let large = avg(&mut rng, 100_000);
        assert!(large > small * 10.0, "small={small} large={large}");
    }

    #[test]
    fn expected_ms_matches_empirical_mean() {
        let mut rng = Rng::new(7);
        for m in [
            LatencyModel::constant_ms(5.0),
            LatencyModel::uniform_ms(1.0, 3.0),
            LatencyModel::normal_ms(40.0, 4.0),
            LatencyModel::size_linear_ms(2.0, 0.01),
        ] {
            let n = 20_000;
            let emp: f64 = (0..n)
                .map(|_| m.sample(&mut rng, 500).as_secs_f64() * 1_000.0)
                .sum::<f64>()
                / n as f64;
            let exp = m.expected_ms(500);
            assert!(
                (emp - exp).abs() / exp < 0.05,
                "{m:?}: empirical={emp} expected={exp}"
            );
        }
    }

    #[test]
    fn crossover_between_two_size_linear_services() {
        // The paper's motivating example: s1 cheapest for small objects,
        // s2 cheapest for large objects.
        let s1 = LatencyModel::size_linear_ms(1.0, 0.010);
        let s2 = LatencyModel::size_linear_ms(20.0, 0.001);
        assert!(s1.expected_ms(100) < s2.expected_ms(100));
        assert!(s1.expected_ms(10_000) > s2.expected_ms(10_000));
    }
}
