//! Deterministic chaos scenarios.
//!
//! A [`ChaosScenario`] composes faults — hard outages, blackholes that
//! burn the caller's timeout, flapping, brown-outs, and background
//! flakiness — into per-service [`FailurePlan`]s, reproducibly from a
//! seed. The resilience layer's end-to-end tests and the
//! `ablation_breaker` bench drive the SDK through these scenarios and
//! assert the paper-predicted shapes (with circuit breakers, p99 during
//! an outage ≈ healthy-service p99; without, p99 ≈ timeout × retries).
//!
//! Everything here is pure data generation: given the same seed and
//! fault list, `plan_for` returns bit-identical plans on every run.

use crate::clock::SimTime;
use crate::failure::{FailurePlan, OutageWindow};
use crate::rng::Rng;
use std::time::Duration;

/// One injected fault, applied to a named service over scenario time.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Hard outage: calls fail fast (the service answers 5xx-style) for
    /// the whole window.
    Outage {
        /// Window start, relative to scenario start.
        start: Duration,
        /// Window end, relative to scenario start.
        end: Duration,
    },
    /// Blackhole: the service is down but failures are only detected
    /// after the caller's full timeout — the retry-storm worst case.
    Blackhole {
        /// Window start, relative to scenario start.
        start: Duration,
        /// Window end, relative to scenario start.
        end: Duration,
    },
    /// Flapping: within `[start, end)` the service alternates down/up
    /// with the given period, down for `duty` of each period. Jitter on
    /// the window edges is drawn from the scenario seed.
    Flapping {
        /// Envelope start.
        start: Duration,
        /// Envelope end.
        end: Duration,
        /// Length of one down/up cycle.
        period: Duration,
        /// Fraction of each period spent down, in `(0, 1)`.
        duty: f64,
    },
    /// Brown-out: the service answers, `factor`× slower.
    Degradation {
        /// Window start.
        start: Duration,
        /// Window end.
        end: Duration,
        /// Latency multiplier (≥ 1).
        factor: f64,
    },
    /// Background flakiness: each call independently times out with
    /// probability `rate`, for the whole scenario.
    Flaky {
        /// Per-call timeout probability in `[0, 1]`.
        rate: f64,
    },
}

/// A seeded, composable set of faults across a service class.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::chaos::{ChaosScenario, Fault};
/// use std::time::Duration;
///
/// let scenario = ChaosScenario::new(42)
///     .with_fault("primary", Fault::Blackhole {
///         start: Duration::from_secs(1),
///         end: Duration::from_secs(5),
///     })
///     .with_fault("backup", Fault::Flaky { rate: 0.01 });
/// let plan = scenario.plan_for("primary");
/// assert!(scenario.plan_for("ghost").failure_rate() == 0.0);
/// let _ = plan;
/// ```
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    seed: u64,
    faults: Vec<(String, Fault)>,
}

impl ChaosScenario {
    /// Creates an empty scenario; equal seeds yield identical plans.
    pub fn new(seed: u64) -> ChaosScenario {
        ChaosScenario {
            seed,
            faults: Vec::new(),
        }
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a fault targeting one service. Faults on the same service
    /// compose (their windows and rates combine in the plan).
    pub fn with_fault(mut self, service: impl Into<String>, fault: Fault) -> ChaosScenario {
        self.faults.push((service.into(), fault));
        self
    }

    /// Adds the same fault to every named service.
    pub fn with_fault_on_all<'a>(
        mut self,
        services: impl IntoIterator<Item = &'a str>,
        fault: Fault,
    ) -> ChaosScenario {
        for s in services {
            self.faults.push((s.to_string(), fault.clone()));
        }
        self
    }

    /// The faults registered for one service, in insertion order.
    pub fn faults_for(&self, service: &str) -> Vec<&Fault> {
        self.faults
            .iter()
            .filter(|(s, _)| s == service)
            .map(|(_, f)| f)
            .collect()
    }

    /// Composes every fault registered for `service` into one
    /// [`FailurePlan`]. Services without faults get a reliable plan.
    pub fn plan_for(&self, service: &str) -> FailurePlan {
        // Per-service stream: same seed + same service name → same jitter,
        // regardless of what other services are in the scenario.
        let mut rng = Rng::new(self.seed ^ fnv1a(service));
        let mut plan = FailurePlan::reliable();
        for fault in self.faults_for(service) {
            plan = apply(plan, fault, &mut rng);
        }
        plan
    }
}

/// FNV-1a over the service name: a stable, dependency-free way to give
/// each service its own deterministic jitter stream.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn window(start: Duration, end: Duration) -> OutageWindow {
    OutageWindow::new(
        SimTime::ZERO.after(start),
        SimTime::ZERO.after(end.max(start + Duration::from_micros(1))),
    )
}

fn apply(plan: FailurePlan, fault: &Fault, rng: &mut Rng) -> FailurePlan {
    match *fault {
        Fault::Outage { start, end } => plan.with_outage(window(start, end)),
        Fault::Blackhole { start, end } => plan.with_blackhole(window(start, end)),
        Fault::Degradation { start, end, factor } => {
            plan.with_degradation(window(start, end), factor)
        }
        Fault::Flaky { rate } => plan.with_error_rate(rate),
        Fault::Flapping {
            start,
            end,
            period,
            duty,
        } => {
            assert!(
                (0.0..1.0).contains(&duty) && duty > 0.0,
                "duty must be in (0, 1)"
            );
            assert!(!period.is_zero(), "flapping period must be positive");
            let mut plan = plan;
            let mut cursor = start;
            while cursor < end {
                // Jitter each down-window inside its cycle so flapping
                // phases differ across services but stay seeded.
                let down = period.mul_f64(duty);
                let slack = period.saturating_sub(down);
                let offset = slack.mul_f64(rng.next_f64());
                let down_start = cursor + offset;
                let down_end = (down_start + down).min(end);
                if down_start < down_end {
                    plan = plan.with_outage(window(down_start, down_end));
                }
                cursor += period;
            }
            plan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureKind;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn same_seed_same_plans() {
        let build = || {
            ChaosScenario::new(7)
                .with_fault(
                    "a",
                    Fault::Flapping {
                        start: ms(0),
                        end: ms(1_000),
                        period: ms(100),
                        duty: 0.4,
                    },
                )
                .with_fault("a", Fault::Flaky { rate: 0.05 })
        };
        let (p1, p2) = (build().plan_for("a"), build().plan_for("a"));
        let mut r1 = Rng::new(1);
        let mut r2 = Rng::new(1);
        for t in (0..1_000).step_by(7) {
            assert_eq!(
                p1.decide(SimTime::from_millis(t), &mut r1),
                p2.decide(SimTime::from_millis(t), &mut r2),
                "divergence at t={t}ms"
            );
        }
    }

    #[test]
    fn different_services_get_different_flap_phase() {
        let scenario = ChaosScenario::new(9).with_fault_on_all(
            ["a", "b"],
            Fault::Flapping {
                start: ms(0),
                end: ms(10_000),
                period: ms(500),
                duty: 0.3,
            },
        );
        let (pa, pb) = (scenario.plan_for("a"), scenario.plan_for("b"));
        let mut ra = Rng::new(0);
        let mut rb = Rng::new(0);
        let mut differs = false;
        for t in (0..10_000).step_by(25) {
            let now = SimTime::from_millis(t);
            if pa.decide(now, &mut ra).is_some() != pb.decide(now, &mut rb).is_some() {
                differs = true;
                break;
            }
        }
        assert!(differs, "jittered flap phases should not align everywhere");
    }

    #[test]
    fn blackhole_fault_produces_timeouts_in_window() {
        let scenario = ChaosScenario::new(3).with_fault(
            "svc",
            Fault::Blackhole {
                start: ms(100),
                end: ms(200),
            },
        );
        let plan = scenario.plan_for("svc");
        let mut rng = Rng::new(0);
        assert_eq!(plan.decide(SimTime::from_millis(50), &mut rng), None);
        assert_eq!(
            plan.decide(SimTime::from_millis(150), &mut rng),
            Some(FailureKind::Timeout)
        );
        assert_eq!(plan.decide(SimTime::from_millis(250), &mut rng), None);
    }

    #[test]
    fn unfaulted_service_is_reliable() {
        let scenario = ChaosScenario::new(1).with_fault(
            "other",
            Fault::Outage {
                start: ms(0),
                end: ms(100),
            },
        );
        let plan = scenario.plan_for("healthy");
        let mut rng = Rng::new(0);
        for t in 0..500 {
            assert_eq!(plan.decide(SimTime::from_millis(t), &mut rng), None);
        }
    }

    #[test]
    fn degradation_fault_slows_without_failing() {
        let scenario = ChaosScenario::new(2).with_fault(
            "svc",
            Fault::Degradation {
                start: ms(100),
                end: ms(300),
                factor: 4.0,
            },
        );
        let plan = scenario.plan_for("svc");
        assert_eq!(plan.latency_factor(SimTime::from_millis(200)), 4.0);
        assert_eq!(plan.latency_factor(SimTime::from_millis(400)), 1.0);
        let mut rng = Rng::new(0);
        assert_eq!(plan.decide(SimTime::from_millis(200), &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn flapping_rejects_bad_duty() {
        let _ = ChaosScenario::new(0)
            .with_fault(
                "svc",
                Fault::Flapping {
                    start: ms(0),
                    end: ms(100),
                    period: ms(10),
                    duty: 1.5,
                },
            )
            .plan_for("svc");
    }
}
