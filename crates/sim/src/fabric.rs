//! A name-indexed registry of simulated services.
//!
//! Figure 1 of the paper shows the rich SDK surrounded by many services of
//! different kinds. The fabric is that surrounding world: it owns every
//! simulated endpoint and lets clients look services up by name or by
//! functionality class (candidates "providing similar functionality", §2.1).

use crate::service::SimService;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Registry of all simulated services in an experiment.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::{Fabric, SimEnv, SimService};
///
/// let env = SimEnv::with_seed(1);
/// let fabric = Fabric::new();
/// fabric.register(SimService::builder("nlu-a", "nlu").build(&env));
/// fabric.register(SimService::builder("nlu-b", "nlu").build(&env));
/// fabric.register(SimService::builder("search-1", "search").build(&env));
///
/// assert_eq!(fabric.by_class("nlu").len(), 2);
/// assert!(fabric.get("search-1").is_some());
/// ```
#[derive(Default)]
pub struct Fabric {
    services: RwLock<BTreeMap<String, Arc<SimService>>>,
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.services.read().keys().cloned().collect();
        f.debug_struct("Fabric").field("services", &names).finish()
    }
}

impl Fabric {
    /// Creates an empty fabric.
    pub fn new() -> Fabric {
        Fabric::default()
    }

    /// Registers a service, replacing any previous service with the same
    /// name. Returns the replaced service, if any.
    pub fn register(&self, service: Arc<SimService>) -> Option<Arc<SimService>> {
        self.services
            .write()
            .insert(service.name().to_string(), service)
    }

    /// Looks a service up by name.
    pub fn get(&self, name: &str) -> Option<Arc<SimService>> {
        self.services.read().get(name).cloned()
    }

    /// All services in a functionality class, in name order.
    pub fn by_class(&self, class: &str) -> Vec<Arc<SimService>> {
        self.services
            .read()
            .values()
            .filter(|s| s.class() == class)
            .cloned()
            .collect()
    }

    /// All registered service names, in order.
    pub fn names(&self) -> Vec<String> {
        self.services.read().keys().cloned().collect()
    }

    /// Removes a service by name, returning it if present.
    pub fn deregister(&self, name: &str) -> Option<Arc<SimService>> {
        self.services.write().remove(name)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// Whether the fabric has no services.
    pub fn is_empty(&self) -> bool {
        self.services.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimEnv;

    #[test]
    fn register_and_lookup() {
        let env = SimEnv::with_seed(1);
        let fabric = Fabric::new();
        assert!(fabric.is_empty());
        fabric.register(SimService::builder("a", "x").build(&env));
        assert_eq!(fabric.len(), 1);
        assert!(fabric.get("a").is_some());
        assert!(fabric.get("b").is_none());
    }

    #[test]
    fn replace_returns_old_service() {
        let env = SimEnv::with_seed(1);
        let fabric = Fabric::new();
        fabric.register(SimService::builder("a", "x").quality(0.1).build(&env));
        let old = fabric.register(SimService::builder("a", "x").quality(0.9).build(&env));
        assert_eq!(old.unwrap().quality(), 0.1);
        assert_eq!(fabric.get("a").unwrap().quality(), 0.9);
    }

    #[test]
    fn by_class_filters_and_orders() {
        let env = SimEnv::with_seed(1);
        let fabric = Fabric::new();
        fabric.register(SimService::builder("nlu-b", "nlu").build(&env));
        fabric.register(SimService::builder("nlu-a", "nlu").build(&env));
        fabric.register(SimService::builder("kv-1", "storage").build(&env));
        let nlu = fabric.by_class("nlu");
        let names: Vec<&str> = nlu.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["nlu-a", "nlu-b"]);
        assert!(fabric.by_class("missing").is_empty());
    }

    #[test]
    fn deregister_removes() {
        let env = SimEnv::with_seed(1);
        let fabric = Fabric::new();
        fabric.register(SimService::builder("a", "x").build(&env));
        assert!(fabric.deregister("a").is_some());
        assert!(fabric.deregister("a").is_none());
        assert!(fabric.is_empty());
    }

    #[test]
    fn debug_lists_names() {
        let env = SimEnv::with_seed(1);
        let fabric = Fabric::new();
        fabric.register(SimService::builder("svc", "x").build(&env));
        assert!(format!("{fabric:?}").contains("svc"));
    }
}
