//! Fixed-window invocation quotas.
//!
//! §2.2: "For some services, the client may have a limited quota of service
//! invocations in a time period (e.g. one day). There is thus an incentive
//! to limit the number of service invocations." Caching exists in large
//! part to stay under these quotas; experiment E1 measures exactly that.

use crate::clock::SimTime;
use parking_lot::Mutex;
use std::time::Duration;

/// A fixed-window rate limit: at most `limit` calls per `window`.
///
/// Thread-safe; a service holds one and consumes from it per call.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::quota::Quota;
/// use cogsdk_sim::SimTime;
/// use std::time::Duration;
///
/// let q = Quota::new(2, Duration::from_secs(60));
/// assert!(q.try_consume(SimTime::ZERO));
/// assert!(q.try_consume(SimTime::ZERO));
/// assert!(!q.try_consume(SimTime::ZERO)); // exhausted
/// // A new window resets the budget.
/// assert!(q.try_consume(SimTime::from_millis(60_001)));
/// ```
#[derive(Debug)]
pub struct Quota {
    limit: u64,
    window: Duration,
    state: Mutex<WindowState>,
}

#[derive(Debug, Default)]
struct WindowState {
    window_start: SimTime,
    used: u64,
    total_used: u64,
    total_rejected: u64,
}

impl Quota {
    /// Creates a quota of `limit` calls per `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(limit: u64, window: Duration) -> Quota {
        assert!(!window.is_zero(), "quota window must be positive");
        Quota {
            limit,
            window,
            state: Mutex::new(WindowState::default()),
        }
    }

    /// An effectively unlimited quota.
    pub fn unlimited() -> Quota {
        Quota::new(u64::MAX, Duration::from_secs(1))
    }

    /// Attempts to consume one call at virtual time `now`. Returns `false`
    /// if the current window's budget is exhausted.
    pub fn try_consume(&self, now: SimTime) -> bool {
        let mut s = self.state.lock();
        if now.since(s.window_start) >= self.window {
            // Fixed windows anchored at the first call of each window.
            s.window_start = now;
            s.used = 0;
        }
        if s.used < self.limit {
            s.used += 1;
            s.total_used += 1;
            true
        } else {
            s.total_rejected += 1;
            false
        }
    }

    /// Remaining budget in the window active at `now`.
    pub fn remaining(&self, now: SimTime) -> u64 {
        let s = self.state.lock();
        if now.since(s.window_start) >= self.window {
            self.limit
        } else {
            self.limit - s.used.min(self.limit)
        }
    }

    /// Lifetime counters: `(granted, rejected)`.
    pub fn totals(&self) -> (u64, u64) {
        let s = self.state.lock();
        (s.total_used, s.total_rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforces_limit_within_window() {
        let q = Quota::new(3, Duration::from_secs(10));
        let now = SimTime::ZERO;
        assert!(q.try_consume(now));
        assert!(q.try_consume(now));
        assert!(q.try_consume(now));
        assert!(!q.try_consume(now));
        assert_eq!(q.remaining(now), 0);
        assert_eq!(q.totals(), (3, 1));
    }

    #[test]
    fn window_rollover_resets_budget() {
        let q = Quota::new(1, Duration::from_secs(1));
        assert!(q.try_consume(SimTime::ZERO));
        assert!(!q.try_consume(SimTime::from_millis(999)));
        assert!(q.try_consume(SimTime::from_millis(1_000)));
    }

    #[test]
    fn remaining_reports_full_budget_after_window() {
        let q = Quota::new(5, Duration::from_secs(1));
        q.try_consume(SimTime::ZERO);
        assert_eq!(q.remaining(SimTime::ZERO), 4);
        assert_eq!(q.remaining(SimTime::from_millis(2_000)), 5);
    }

    #[test]
    fn unlimited_never_rejects() {
        let q = Quota::unlimited();
        for i in 0..10_000 {
            assert!(q.try_consume(SimTime::from_micros(i)));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = Quota::new(1, Duration::ZERO);
    }

    #[test]
    fn concurrent_consumption_respects_limit() {
        let q = std::sync::Arc::new(Quota::new(1_000, Duration::from_secs(3600)));
        let granted: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let q = q.clone();
                    s.spawn(move || (0..500).filter(|_| q.try_consume(SimTime::ZERO)).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(granted, 1_000);
    }
}
