//! Seedable randomness for the fabric.
//!
//! A SplitMix64 generator: tiny, fast, statistically adequate for workload
//! synthesis, and — unlike external crates — guaranteed stable across
//! versions, which keeps every experiment bit-for-bit reproducible.

use parking_lot::Mutex;
use std::sync::Arc;

/// A deterministic pseudo-random number generator (SplitMix64).
///
/// # Examples
///
/// ```
/// use cogsdk_sim::rng::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift bounded sampling; bias is negligible for our n.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal deviate (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal deviate with the given parameters of the underlying
    /// normal distribution.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential deviate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Samples an index in `[0, n)` from a Zipf distribution with exponent
    /// `s` (rank 0 is the most popular). Used for skewed cache workloads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over an empty domain");
        // Inverse-CDF over precomputation-free partial sums would be O(n);
        // rejection sampling (Devroye) keeps it O(1) amortized.
        if n == 1 {
            return 0;
        }
        // The inverse-CDF transform below divides by (1 - s); nudge s off
        // the singular point so s = 1.0 behaves like its neighborhood.
        let s = if (s - 1.0).abs() < 1e-6 { 1.000001 } else { s };
        let b = 2f64.powf(1.0 - s);
        loop {
            let u = self.next_f64();
            let v = self.next_f64();
            let x = (n as f64).powf(1.0 - s);
            let x = ((x - 1.0) * u + 1.0).powf(1.0 / (1.0 - s));
            let k = x.floor().max(1.0) as usize;
            if k > n {
                continue;
            }
            let ratio = (1.0 + 1.0 / x.max(1.0)).powf(s - 1.0) * (k as f64 / x).powf(-s);
            // Accept with bounded probability; b normalizes the envelope.
            if v * ratio <= b.max(1.0) * 0.5 || k == 1 {
                return k - 1;
            }
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Splits off an independent generator (useful to give each simulated
    /// service its own stream).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// A thread-safe shared handle over [`Rng`].
///
/// All clones draw from one stream, so simulation-wide determinism only
/// requires a deterministic order of draws. Components that need isolation
/// should [`fork`](SharedRng::fork) their own stream at setup time.
#[derive(Debug, Clone)]
pub struct SharedRng {
    inner: Arc<Mutex<Rng>>,
}

impl SharedRng {
    /// Creates a shared generator from a seed.
    pub fn new(seed: u64) -> SharedRng {
        SharedRng {
            inner: Arc::new(Mutex::new(Rng::new(seed))),
        }
    }

    /// Next raw 64-bit value from the shared stream.
    pub fn next_u64(&self) -> u64 {
        self.inner.lock().next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&self) -> f64 {
        self.inner.lock().next_f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&self, p: f64) -> bool {
        self.inner.lock().chance(p)
    }

    /// Splits off an independent, unshared generator.
    pub fn fork(&self) -> Rng {
        self.inner.lock().fork()
    }

    /// Runs `f` with exclusive access to the underlying generator.
    pub fn with<R>(&self, f: impl FnOnce(&mut Rng) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Rng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_mean_and_spread_are_sane() {
        let mut r = Rng::new(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_sane() {
        let mut r = Rng::new(6);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = Rng::new(7);
        let mut counts = [0usize; 50];
        for _ in 0..50_000 {
            counts[r.zipf(50, 1.1)] += 1;
        }
        assert!(counts[0] > counts[10], "{counts:?}");
        assert!(counts[0] > counts[49] * 3, "{counts:?}");
        assert!(counts.iter().sum::<usize>() == 50_000);
    }

    #[test]
    fn zipf_single_element_domain() {
        let mut r = Rng::new(8);
        assert_eq!(r.zipf(1, 1.2), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut a = Rng::new(10);
        let mut b = Rng::new(10);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_ne!(fa.next_u64(), a.next_u64());
    }

    #[test]
    fn zipf_at_singular_exponent_is_still_skewed() {
        // s = 1.0 hits the inverse-CDF singularity; the internal nudge
        // must keep the distribution usable (regression test for the
        // degenerate always-rank-0 bug).
        let mut r = Rng::new(11);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[r.zipf(20, 1.0)] += 1;
        }
        assert!(counts[0] > counts[5], "{counts:?}");
        assert!(counts[5] > 0, "tail must be reachable: {counts:?}");
        assert!(
            counts[0] < 20_000,
            "must not degenerate to always-0: {counts:?}"
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Rng::new(12);
        for _ in 0..1_000 {
            let x = r.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn shared_rng_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedRng>();
    }
}
