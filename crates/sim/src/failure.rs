//! Failure injection.
//!
//! §2.1 of the paper: "Remote services can sometimes be unresponsive. If a
//! service is unresponsive, the rich SDK has the ability to retry a service
//! multiple times" and to fail over to other services. The failure plan
//! produces the unresponsiveness the SDK must tolerate: independent per-call
//! failures and scheduled burst outages (whole windows where a service is
//! down, as in a real incident).

use crate::clock::SimTime;
use crate::rng::Rng;
use std::time::Duration;

/// The way a simulated call fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The service did not answer within its timeout.
    Timeout,
    /// The service answered with a 5xx-style error.
    ServerError,
    /// The service is down for a scheduled outage window.
    Outage,
}

/// An interval during which a service is entirely unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// First instant of the outage.
    pub start: SimTime,
    /// First instant after the outage.
    pub end: SimTime,
}

impl OutageWindow {
    /// Creates a window; `start` must precede `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: SimTime, end: SimTime) -> OutageWindow {
        assert!(start < end, "outage window must have positive length");
        OutageWindow { start, end }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Per-service failure behaviour.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::failure::FailurePlan;
///
/// // 5% of calls time out; no scheduled outages.
/// let plan = FailurePlan::flaky(0.05);
/// assert!((plan.failure_rate() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    timeout_rate: f64,
    error_rate: f64,
    outages: Vec<OutageWindow>,
    /// Blackhole windows: the service accepts the call but never answers,
    /// so every call burns the client's full timeout budget.
    blackholes: Vec<OutageWindow>,
    /// Brown-out windows: the service answers, but slower by a factor.
    degradations: Vec<(OutageWindow, f64)>,
}

impl FailurePlan {
    /// A service that never fails.
    pub fn reliable() -> FailurePlan {
        FailurePlan::default()
    }

    /// A service whose calls independently time out with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn flaky(p: f64) -> FailurePlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        FailurePlan {
            timeout_rate: p,
            ..FailurePlan::default()
        }
    }

    /// Adds an independent server-error probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_error_rate(mut self, p: f64) -> FailurePlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.error_rate = p;
        self
    }

    /// Schedules a burst outage window.
    pub fn with_outage(mut self, window: OutageWindow) -> FailurePlan {
        self.outages.push(window);
        self
    }

    /// Schedules a blackhole window: inside it the service is hard-down
    /// but, unlike [`with_outage`](Self::with_outage), the failure is only
    /// detected after the caller's full timeout — the worst case a circuit
    /// breaker exists to protect against.
    pub fn with_blackhole(mut self, window: OutageWindow) -> FailurePlan {
        self.blackholes.push(window);
        self
    }

    /// Schedules a brown-out: inside `window` the service still answers
    /// but its latency is multiplied by `factor` — the degraded-regime
    /// signal the SDK's EWMA predictor exists to track.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn with_degradation(mut self, window: OutageWindow, factor: f64) -> FailurePlan {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.degradations.push((window, factor));
        self
    }

    /// The combined latency multiplier at `now` (1.0 outside brown-outs;
    /// overlapping windows multiply).
    pub fn latency_factor(&self, now: SimTime) -> f64 {
        self.degradations
            .iter()
            .filter(|(w, _)| w.contains(now))
            .map(|(_, f)| f)
            .product()
    }

    /// Total per-call failure probability outside outage windows.
    pub fn failure_rate(&self) -> f64 {
        // P(timeout or error) with independent draws.
        1.0 - (1.0 - self.timeout_rate) * (1.0 - self.error_rate)
    }

    /// Decides whether a call made at `now` fails, and how.
    pub fn decide(&self, now: SimTime, rng: &mut Rng) -> Option<FailureKind> {
        if self.blackholes.iter().any(|w| w.contains(now)) {
            return Some(FailureKind::Timeout);
        }
        if self.outages.iter().any(|w| w.contains(now)) {
            return Some(FailureKind::Outage);
        }
        if rng.chance(self.timeout_rate) {
            return Some(FailureKind::Timeout);
        }
        if rng.chance(self.error_rate) {
            return Some(FailureKind::ServerError);
        }
        None
    }

    /// The latency a failing call consumes before the failure is observed:
    /// timeouts burn the full timeout budget; errors and outages are
    /// detected quickly.
    pub fn failure_latency(kind: FailureKind, timeout: Duration) -> Duration {
        match kind {
            FailureKind::Timeout => timeout,
            FailureKind::ServerError => Duration::from_millis(30),
            FailureKind::Outage => Duration::from_millis(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_never_fails() {
        let plan = FailurePlan::reliable();
        let mut rng = Rng::new(1);
        for _ in 0..1_000 {
            assert_eq!(plan.decide(SimTime::ZERO, &mut rng), None);
        }
    }

    #[test]
    fn flaky_rate_is_respected() {
        let plan = FailurePlan::flaky(0.2);
        let mut rng = Rng::new(2);
        let n = 50_000;
        let failures = (0..n)
            .filter(|_| plan.decide(SimTime::ZERO, &mut rng).is_some())
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn combined_rates_compose_independently() {
        let plan = FailurePlan::flaky(0.1).with_error_rate(0.1);
        assert!((plan.failure_rate() - 0.19).abs() < 1e-12);
    }

    #[test]
    fn outage_window_dominates() {
        let plan = FailurePlan::reliable().with_outage(OutageWindow::new(
            SimTime::from_millis(100),
            SimTime::from_millis(200),
        ));
        let mut rng = Rng::new(3);
        assert_eq!(plan.decide(SimTime::from_millis(50), &mut rng), None);
        assert_eq!(
            plan.decide(SimTime::from_millis(150), &mut rng),
            Some(FailureKind::Outage)
        );
        assert_eq!(plan.decide(SimTime::from_millis(200), &mut rng), None);
    }

    #[test]
    fn blackhole_window_burns_the_timeout() {
        let plan = FailurePlan::reliable().with_blackhole(OutageWindow::new(
            SimTime::from_millis(100),
            SimTime::from_millis(200),
        ));
        let mut rng = Rng::new(4);
        assert_eq!(plan.decide(SimTime::from_millis(50), &mut rng), None);
        assert_eq!(
            plan.decide(SimTime::from_millis(150), &mut rng),
            Some(FailureKind::Timeout)
        );
        // A timeout-kind failure consumes the full timeout budget.
        let t = Duration::from_secs(1);
        assert_eq!(FailurePlan::failure_latency(FailureKind::Timeout, t), t);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_outage_window_rejected() {
        let _ = OutageWindow::new(SimTime::from_millis(5), SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flaky_rejects_bad_probability() {
        let _ = FailurePlan::flaky(1.5);
    }

    #[test]
    fn degradation_windows_multiply_latency() {
        let plan = FailurePlan::reliable()
            .with_degradation(
                OutageWindow::new(SimTime::from_millis(100), SimTime::from_millis(300)),
                3.0,
            )
            .with_degradation(
                OutageWindow::new(SimTime::from_millis(200), SimTime::from_millis(400)),
                2.0,
            );
        assert_eq!(plan.latency_factor(SimTime::from_millis(50)), 1.0);
        assert_eq!(plan.latency_factor(SimTime::from_millis(150)), 3.0);
        assert_eq!(plan.latency_factor(SimTime::from_millis(250)), 6.0);
        assert_eq!(plan.latency_factor(SimTime::from_millis(350)), 2.0);
        assert_eq!(plan.latency_factor(SimTime::from_millis(500)), 1.0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn degradation_below_one_rejected() {
        let _ = FailurePlan::reliable().with_degradation(
            OutageWindow::new(SimTime::ZERO, SimTime::from_millis(1)),
            0.5,
        );
    }

    #[test]
    fn failure_latency_shapes() {
        let t = Duration::from_secs(2);
        assert_eq!(
            FailurePlan::failure_latency(FailureKind::Timeout, t),
            Duration::from_secs(2)
        );
        assert!(FailurePlan::failure_latency(FailureKind::ServerError, t) < t);
        assert!(FailurePlan::failure_latency(FailureKind::Outage, t) < t);
    }
}
