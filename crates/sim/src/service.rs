//! A simulated remote service endpoint.
//!
//! [`SimService`] plays the role of one cloud endpoint (an NLU service, a
//! search engine, a storage service…). It combines a request handler with a
//! latency model, failure plan, cost model, quota and timeout, and exposes
//! exactly what a remote HTTP endpoint exposes to a client: a JSON response
//! or an error, after some latency, for some monetary cost.

use crate::clock::SimTime;
use crate::cost::{CostModel, MicroDollars};
use crate::failure::{FailureKind, FailurePlan};
use crate::latency::LatencyModel;
use crate::quota::Quota;
use crate::rng::Rng;
use crate::SimEnv;
use cogsdk_json::Json;
use parking_lot::Mutex;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A request to a (simulated) remote service.
///
/// `params` carries the paper's *latency parameters* (§2): named numeric
/// features such as payload size that a latency predictor may condition on.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::Request;
/// use cogsdk_json::json;
///
/// let req = Request::new("analyze", json!({"text": "hello"}))
///     .with_param("text_len", 5.0);
/// assert_eq!(req.param("text_len"), Some(5.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The operation name (think: URL path).
    pub operation: String,
    /// The JSON body.
    pub payload: Json,
    /// Named latency parameters for prediction (§2).
    pub params: Vec<(String, f64)>,
}

impl Request {
    /// Creates a request for `operation` with the given JSON body.
    pub fn new(operation: impl Into<String>, payload: Json) -> Request {
        Request {
            operation: operation.into(),
            payload,
            params: Vec::new(),
        }
    }

    /// Attaches a named latency parameter.
    pub fn with_param(mut self, name: impl Into<String>, value: f64) -> Request {
        self.params.push((name.into(), value));
        self
    }

    /// Looks up a latency parameter by name.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The payload size in bytes; the default latency parameter.
    pub fn size_bytes(&self) -> usize {
        self.payload.size_bytes()
    }

    /// A stable key identifying this request for caching: operation plus
    /// serialized payload.
    pub fn cache_key(&self) -> String {
        format!("{}::{}", self.operation, self.payload.to_json())
    }
}

/// A successful service response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The JSON body returned by the service.
    pub payload: Json,
}

impl Response {
    /// Creates a response around a JSON body.
    pub fn new(payload: Json) -> Response {
        Response { payload }
    }

    /// The response size in bytes (for bandwidth accounting).
    pub fn size_bytes(&self) -> usize {
        self.payload.size_bytes()
    }
}

/// Why a service call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No response within the service timeout.
    Timeout,
    /// The service is unavailable (outage or 5xx).
    Unavailable,
    /// The invocation quota for the current window is exhausted.
    QuotaExceeded,
    /// The request was rejected by the service as invalid.
    BadRequest(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Timeout => write!(f, "service call timed out"),
            ServiceError::Unavailable => write!(f, "service unavailable"),
            ServiceError::QuotaExceeded => write!(f, "invocation quota exceeded"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl Error for ServiceError {}

impl ServiceError {
    /// Whether retrying the same service later could plausibly succeed.
    /// Quota and bad-request failures are not retryable; see §2.1.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServiceError::Timeout | ServiceError::Unavailable)
    }

    /// A stable machine-readable failure kind, for metric labels and
    /// per-kind failure accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Timeout => "timeout",
            ServiceError::Unavailable => "unavailable",
            ServiceError::QuotaExceeded => "quota_exceeded",
            ServiceError::BadRequest(_) => "bad_request",
        }
    }
}

/// Everything observable about one service invocation.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The response or the failure.
    pub result: Result<Response, ServiceError>,
    /// Time the call took (virtual).
    pub latency: Duration,
    /// Monetary charge incurred (zero for failed calls).
    pub cost: MicroDollars,
    /// Virtual time at which the call started.
    pub started: SimTime,
}

/// The server-side logic of a simulated service.
pub type Handler = dyn Fn(&Request) -> Result<Json, String> + Send + Sync;

/// One simulated remote endpoint.
///
/// Construct with [`SimService::builder`]. Cheap to share via `Arc`; all
/// internal state is thread-safe.
pub struct SimService {
    name: String,
    class: String,
    latency: LatencyModel,
    failures: FailurePlan,
    cost: CostModel,
    quota: Quota,
    timeout: Duration,
    quality: f64,
    handler: Box<Handler>,
    env: SimEnv,
    rng: Mutex<Rng>,
    calls: AtomicU64,
    failed: AtomicU64,
}

impl fmt::Debug for SimService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimService")
            .field("name", &self.name)
            .field("class", &self.class)
            .field("latency", &self.latency)
            .field("quality", &self.quality)
            .finish_non_exhaustive()
    }
}

impl SimService {
    /// Starts building a service with the given unique name and
    /// functionality class (services in one class are interchangeable
    /// candidates for selection, §2.1).
    pub fn builder(name: impl Into<String>, class: impl Into<String>) -> SimServiceBuilder {
        SimServiceBuilder {
            name: name.into(),
            class: class.into(),
            latency: LatencyModel::constant_ms(10.0),
            failures: FailurePlan::reliable(),
            cost: CostModel::Free,
            quota: None,
            timeout: Duration::from_secs(5),
            quality: 0.8,
        }
    }

    /// The service's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functionality class (e.g. `"nlu"`, `"search"`, `"storage"`).
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The intrinsic quality of this service's responses in `[0, 1]`.
    /// Experiments use this as ground truth when evaluating the SDK's
    /// quality raters.
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// The latency model (exposed so experiments can compute ground-truth
    /// expectations).
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The per-call timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// The virtual clock this service's timeline runs on. Deadline-aware
    /// callers read it to compute remaining budget between attempts.
    pub fn clock(&self) -> &crate::clock::SimClock {
        self.env.clock()
    }

    /// Realizes a client-side delay (e.g. retry backoff) on this
    /// service's timeline: advances the virtual clock and sleeps in
    /// scaled time mode.
    pub fn realize_delay(&self, delay: Duration) {
        self.env.time_mode().realize(self.env.clock(), delay);
    }

    /// Lifetime counters `(calls, failures)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.calls.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }

    /// Invokes the service synchronously, producing a full [`Outcome`].
    ///
    /// The modeled latency advances the shared virtual clock (and sleeps in
    /// scaled time mode). Failed calls incur no monetary cost; timeouts
    /// consume the full timeout budget.
    pub fn invoke(&self, request: &Request) -> Outcome {
        let started = self.env.clock().now();
        let call_index = self.calls.fetch_add(1, Ordering::Relaxed);

        if !self.quota.try_consume(started) {
            self.failed.fetch_add(1, Ordering::Relaxed);
            // Quota rejection is local bookkeeping: near-instant, free.
            let latency = Duration::from_micros(50);
            self.env.time_mode().realize(self.env.clock(), latency);
            return Outcome {
                result: Err(ServiceError::QuotaExceeded),
                latency,
                cost: MicroDollars::ZERO,
                started,
            };
        }

        if let Some(kind) = {
            let mut rng = self.rng.lock();
            self.failures.decide(started, &mut rng)
        } {
            self.failed.fetch_add(1, Ordering::Relaxed);
            let latency = FailurePlan::failure_latency(kind, self.timeout);
            self.env.time_mode().realize(self.env.clock(), latency);
            let err = match kind {
                FailureKind::Timeout => ServiceError::Timeout,
                FailureKind::ServerError | FailureKind::Outage => ServiceError::Unavailable,
            };
            return Outcome {
                result: Err(err),
                latency,
                cost: MicroDollars::ZERO,
                started,
            };
        }

        let sampled = {
            let mut rng = self.rng.lock();
            let base = self.latency.sample(&mut rng, request.size_bytes());
            // Brown-outs (§2's time-varying performance): the call still
            // succeeds, just slower.
            base.mul_f64(self.failures.latency_factor(started))
        };
        if sampled > self.timeout {
            // The request would have taken too long: the client observes a
            // timeout after exactly its timeout budget.
            self.failed.fetch_add(1, Ordering::Relaxed);
            self.env.time_mode().realize(self.env.clock(), self.timeout);
            return Outcome {
                result: Err(ServiceError::Timeout),
                latency: self.timeout,
                cost: MicroDollars::ZERO,
                started,
            };
        }

        self.env.time_mode().realize(self.env.clock(), sampled);
        match (self.handler)(request) {
            Ok(payload) => Outcome {
                result: Ok(Response::new(payload)),
                latency: sampled,
                cost: self.cost.charge(call_index, request.size_bytes()),
                started,
            },
            Err(msg) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                Outcome {
                    result: Err(ServiceError::BadRequest(msg)),
                    latency: sampled,
                    cost: MicroDollars::ZERO,
                    started,
                }
            }
        }
    }
}

/// Builder for [`SimService`]; see [`SimService::builder`].
pub struct SimServiceBuilder {
    name: String,
    class: String,
    latency: LatencyModel,
    failures: FailurePlan,
    cost: CostModel,
    quota: Option<Quota>,
    timeout: Duration,
    quality: f64,
}

impl fmt::Debug for SimServiceBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimServiceBuilder")
            .field("name", &self.name)
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

impl SimServiceBuilder {
    /// Sets the latency model (default: constant 10 ms).
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = model;
        self
    }

    /// Sets the failure plan (default: reliable).
    pub fn failures(mut self, plan: FailurePlan) -> Self {
        self.failures = plan;
        self
    }

    /// Sets the cost model (default: free).
    pub fn cost(mut self, model: CostModel) -> Self {
        self.cost = model;
        self
    }

    /// Sets an invocation quota (default: unlimited).
    pub fn quota(mut self, quota: Quota) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Sets the per-call timeout (default: 5 s).
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "timeout must be positive");
        self.timeout = timeout;
        self
    }

    /// Sets the intrinsic response quality in `[0, 1]` (default: 0.8).
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `[0, 1]`.
    pub fn quality(mut self, quality: f64) -> Self {
        assert!((0.0..=1.0).contains(&quality), "quality must be in [0, 1]");
        self.quality = quality;
        self
    }

    /// Sets the server-side handler. A service without a handler echoes
    /// its request payload.
    pub fn handler(
        self,
        f: impl Fn(&Request) -> Result<Json, String> + Send + Sync + 'static,
    ) -> SimServiceBuilderWithHandler {
        SimServiceBuilderWithHandler {
            inner: self,
            handler: Box::new(f),
        }
    }

    /// Builds the service with the default echo handler.
    pub fn build(self, env: &SimEnv) -> Arc<SimService> {
        self.handler(|req| Ok(req.payload.clone())).build(env)
    }
}

/// Final builder stage carrying the handler.
pub struct SimServiceBuilderWithHandler {
    inner: SimServiceBuilder,
    handler: Box<Handler>,
}

impl fmt::Debug for SimServiceBuilderWithHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimServiceBuilderWithHandler")
            .field("name", &self.inner.name)
            .finish_non_exhaustive()
    }
}

impl SimServiceBuilderWithHandler {
    /// Builds the service, binding it to `env`'s clock, RNG and time mode.
    pub fn build(self, env: &SimEnv) -> Arc<SimService> {
        let b = self.inner;
        Arc::new(SimService {
            rng: Mutex::new(env.rng().fork()),
            name: b.name,
            class: b.class,
            latency: b.latency,
            failures: b.failures,
            cost: b.cost,
            quota: b.quota.unwrap_or_else(Quota::unlimited),
            timeout: b.timeout,
            quality: b.quality,
            handler: self.handler,
            env: env.clone(),
            calls: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::OutageWindow;
    use cogsdk_json::json;

    fn env() -> SimEnv {
        SimEnv::with_seed(42)
    }

    #[test]
    fn echo_service_round_trips_payload() {
        let env = env();
        let svc = SimService::builder("echo", "demo").build(&env);
        let out = svc.invoke(&Request::new("op", json!({"k": 1})));
        assert_eq!(out.result.unwrap().payload, json!({"k": 1}));
        assert_eq!(out.latency, Duration::from_millis(10));
    }

    #[test]
    fn invocation_advances_virtual_clock() {
        let env = env();
        let svc = SimService::builder("svc", "demo")
            .latency(LatencyModel::constant_ms(25.0))
            .build(&env);
        svc.invoke(&Request::new("op", Json::Null));
        assert_eq!(env.clock().now().as_micros(), 25_000);
    }

    #[test]
    fn handler_error_becomes_bad_request() {
        let env = env();
        let svc = SimService::builder("svc", "demo")
            .handler(|_| Err("missing field".into()))
            .build(&env);
        let out = svc.invoke(&Request::new("op", Json::Null));
        assert_eq!(
            out.result.unwrap_err(),
            ServiceError::BadRequest("missing field".into())
        );
        assert_eq!(out.cost, MicroDollars::ZERO);
    }

    #[test]
    fn latency_beyond_timeout_is_a_timeout() {
        let env = env();
        let svc = SimService::builder("slow", "demo")
            .latency(LatencyModel::constant_ms(10_000.0))
            .timeout(Duration::from_millis(100))
            .build(&env);
        let out = svc.invoke(&Request::new("op", Json::Null));
        assert_eq!(out.result.unwrap_err(), ServiceError::Timeout);
        assert_eq!(out.latency, Duration::from_millis(100));
        assert_eq!(env.clock().now().as_micros(), 100_000);
    }

    #[test]
    fn quota_exhaustion_rejects_cheaply() {
        let env = env();
        let svc = SimService::builder("limited", "demo")
            .quota(Quota::new(1, Duration::from_secs(3600)))
            .build(&env);
        let req = Request::new("op", Json::Null);
        assert!(svc.invoke(&req).result.is_ok());
        let out = svc.invoke(&req);
        assert_eq!(out.result.unwrap_err(), ServiceError::QuotaExceeded);
        assert!(out.latency < Duration::from_millis(1));
    }

    #[test]
    fn outage_makes_service_unavailable() {
        let env = env();
        let svc = SimService::builder("svc", "demo")
            .failures(FailurePlan::reliable().with_outage(OutageWindow::new(
                SimTime::ZERO,
                SimTime::from_millis(1_000),
            )))
            .build(&env);
        let out = svc.invoke(&Request::new("op", Json::Null));
        assert_eq!(out.result.unwrap_err(), ServiceError::Unavailable);
        // After the outage the service recovers.
        env.clock().advance(Duration::from_secs(2));
        assert!(svc.invoke(&Request::new("op", Json::Null)).result.is_ok());
    }

    #[test]
    fn flaky_service_fails_at_configured_rate() {
        let env = env();
        let svc = SimService::builder("flaky", "demo")
            .latency(LatencyModel::constant_ms(1.0))
            .failures(FailurePlan::flaky(0.3))
            .build(&env);
        let n = 5_000;
        let failures = (0..n)
            .filter(|_| svc.invoke(&Request::new("op", Json::Null)).result.is_err())
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate={rate}");
        let (calls, failed) = svc.stats();
        assert_eq!(calls, n as u64);
        assert_eq!(failed, failures as u64);
    }

    #[test]
    fn successful_calls_are_charged_failures_are_not() {
        let env = env();
        let svc = SimService::builder("paid", "demo")
            .cost(CostModel::PerCall(MicroDollars::from_micros(100)))
            .failures(FailurePlan::flaky(0.5))
            .latency(LatencyModel::constant_ms(1.0))
            .build(&env);
        for _ in 0..100 {
            let out = svc.invoke(&Request::new("op", Json::Null));
            match out.result {
                Ok(_) => assert_eq!(out.cost.as_micros(), 100),
                Err(_) => assert_eq!(out.cost, MicroDollars::ZERO),
            }
        }
    }

    #[test]
    fn retryability_classification() {
        assert!(ServiceError::Timeout.is_retryable());
        assert!(ServiceError::Unavailable.is_retryable());
        assert!(!ServiceError::QuotaExceeded.is_retryable());
        assert!(!ServiceError::BadRequest("x".into()).is_retryable());
    }

    #[test]
    fn cache_key_distinguishes_payloads_and_operations() {
        let a = Request::new("op1", json!({"x": 1}));
        let b = Request::new("op1", json!({"x": 2}));
        let c = Request::new("op2", json!({"x": 1}));
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
        assert_eq!(a.cache_key(), a.clone().cache_key());
    }

    #[test]
    fn service_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arc<SimService>>();
    }
}
