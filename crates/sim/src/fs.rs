//! Storage virtualization with deterministic fault injection.
//!
//! Durable state (the KB's write-ahead log and snapshots, `FileKv`
//! values) goes through the [`Vfs`] trait instead of `std::fs` directly,
//! so the same code runs against two backends:
//!
//! * [`RealFs`] — a directory on the real filesystem. `fsync` maps to
//!   `File::sync_all`, `rename` to `std::fs::rename` plus a best-effort
//!   directory sync, exactly what a production store needs.
//! * [`SimFs`] — an in-memory filesystem that models *what a power loss
//!   leaves behind*. Every file tracks how many of its bytes have been
//!   fsynced; a seeded crash truncates each file at a random offset
//!   inside its unsynced tail (a torn write), and faults can be armed to
//!   fire after a chosen number of mutating operations (mid-append
//!   crashes), flip bits (media corruption), or fail with `NoSpace`.
//!
//! The recovery property suite drives the KB through [`SimFs`] at
//! hundreds of seeded crash points and asserts the recovered state is
//! exactly the durable prefix. Determinism matters: all randomness comes
//! from the constructor seed, so a failing crash point replays byte-for-
//! byte.
//!
//! # Model simplifications
//!
//! `rename` and `delete` are modeled as atomic *and immediately durable*
//! (as if the directory were synced), which matches the POSIX behaviour
//! durable stores rely on after an explicit directory fsync. Writers must
//! still fsync file *contents* before renaming over a live name — `SimFs`
//! deliberately does not sync data on rename, so a missing pre-rename
//! fsync shows up as a torn file in crash tests.
//!
//! # Examples
//!
//! ```
//! use cogsdk_sim::fs::{SimFs, Vfs};
//!
//! let fs = SimFs::new(42);
//! fs.append("wal", b"hello").unwrap();
//! fs.fsync("wal").unwrap();
//! fs.append("wal", b" world").unwrap(); // never synced
//! fs.crash();
//! let data = fs.read("wal").unwrap();
//! assert!(data.starts_with(b"hello"));
//! assert!(data.len() < b"hello world".len() + 1);
//! ```

use crate::rng::Rng;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Errors surfaced by a [`Vfs`] backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The named file does not exist.
    NotFound(String),
    /// The device is out of space (injected via
    /// [`SimFs::set_space_limit`], or a real `ENOSPC`).
    NoSpace,
    /// The simulated process has crashed; every subsequent operation
    /// fails until [`SimFs::crash`] runs recovery.
    Crashed,
    /// Any other I/O failure.
    Io(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(name) => write!(f, "file not found: {name}"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::Crashed => write!(f, "simulated crash"),
            FsError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

/// A minimal flat-namespace filesystem abstraction for durable state.
///
/// Names are plain strings (no directories); each backend decides how to
/// map them to storage. All durability-relevant operations are explicit:
/// nothing written is guaranteed to survive a crash until [`fsync`]
/// (or an atomic [`rename`], which backends treat as durable) succeeds.
///
/// [`fsync`]: Vfs::fsync
/// [`rename`]: Vfs::rename
pub trait Vfs: Send + Sync {
    /// Reads the entire file.
    fn read(&self, name: &str) -> Result<Vec<u8>, FsError>;
    /// Creates or replaces the file with `data`. The new content is
    /// *not* durable until [`Vfs::fsync`].
    fn write(&self, name: &str, data: &[u8]) -> Result<(), FsError>;
    /// Appends `data`, creating the file if absent. Not durable until
    /// [`Vfs::fsync`].
    fn append(&self, name: &str, data: &[u8]) -> Result<(), FsError>;
    /// Makes all previously written bytes of the file durable.
    fn fsync(&self, name: &str) -> Result<(), FsError>;
    /// Atomically renames `from` to `to`, replacing any existing `to`.
    /// Modeled as immediately durable (see module docs).
    fn rename(&self, from: &str, to: &str) -> Result<(), FsError>;
    /// Deletes the file. Deleting a missing file is not an error.
    fn delete(&self, name: &str) -> Result<(), FsError>;
    /// Whether the file exists.
    fn exists(&self, name: &str) -> bool;
    /// All file names, sorted.
    fn list(&self) -> Result<Vec<String>, FsError>;
    /// Current size of the file in bytes.
    fn size(&self, name: &str) -> Result<usize, FsError>;
}

fn io_err(op: &str, err: std::io::Error) -> FsError {
    if err.raw_os_error() == Some(28) {
        return FsError::NoSpace;
    }
    FsError::Io(format!("{op}: {err}"))
}

/// [`Vfs`] over a real directory via `std::fs`.
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// Opens (creating if needed) `root` as the backing directory.
    pub fn open(root: impl AsRef<Path>) -> Result<RealFs, FsError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create dir", e))?;
        Ok(RealFs { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Best-effort directory sync so renames are durable. Errors are
    /// ignored: not every platform supports opening a directory.
    fn sync_dir(&self) {
        if let Ok(dir) = File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

impl Vfs for RealFs {
    fn read(&self, name: &str) -> Result<Vec<u8>, FsError> {
        let mut buf = Vec::new();
        let mut file = match File::open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(FsError::NotFound(name.to_string()))
            }
            Err(e) => return Err(io_err("open", e)),
        };
        file.read_to_end(&mut buf).map_err(|e| io_err("read", e))?;
        Ok(buf)
    }

    fn write(&self, name: &str, data: &[u8]) -> Result<(), FsError> {
        std::fs::write(self.path(name), data).map_err(|e| io_err("write", e))
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), FsError> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| io_err("open append", e))?;
        file.write_all(data).map_err(|e| io_err("append", e))
    }

    fn fsync(&self, name: &str) -> Result<(), FsError> {
        let file = match File::open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(FsError::NotFound(name.to_string()))
            }
            Err(e) => return Err(io_err("open for fsync", e)),
        };
        file.sync_all().map_err(|e| io_err("fsync", e))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        std::fs::rename(self.path(from), self.path(to)).map_err(|e| io_err("rename", e))?;
        self.sync_dir();
        Ok(())
    }

    fn delete(&self, name: &str) -> Result<(), FsError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => {
                self.sync_dir();
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("delete", e)),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root).map_err(|e| io_err("read dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir entry", e))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn size(&self, name: &str) -> Result<usize, FsError> {
        match std::fs::metadata(self.path(name)) {
            Ok(meta) => Ok(meta.len() as usize),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(FsError::NotFound(name.to_string()))
            }
            Err(e) => Err(io_err("metadata", e)),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct FileState {
    data: Vec<u8>,
    /// Bytes `[0, synced_len)` are durable; the rest is lost (or torn)
    /// on crash.
    synced_len: usize,
}

#[derive(Debug)]
struct SimFsInner {
    files: BTreeMap<String, FileState>,
    rng: Rng,
    /// Mutating operations performed so far.
    ops: u64,
    /// When set, the op with this (0-based) index fails: writes land a
    /// seeded partial prefix, fsyncs sync nothing — and the process is
    /// considered crashed from then on.
    fail_after: Option<u64>,
    crashed: bool,
    /// Remaining byte budget when ENOSPC injection is armed.
    space_left: Option<usize>,
    torn_files: u64,
}

/// Deterministic in-memory [`Vfs`] with crash and fault injection.
///
/// See the module docs for the crash model. All randomness (partial-
/// write lengths, torn-tail truncation offsets) comes from the seed, so
/// a given (seed, op sequence) pair always leaves the same bytes behind.
pub struct SimFs {
    inner: Mutex<SimFsInner>,
}

impl SimFs {
    /// Creates an empty simulated filesystem.
    pub fn new(seed: u64) -> SimFs {
        SimFs {
            inner: Mutex::new(SimFsInner {
                files: BTreeMap::new(),
                rng: Rng::new(seed ^ 0x5f5f_5f5f_5f5f_5f5f),
                ops: 0,
                fail_after: None,
                crashed: false,
                space_left: None,
                torn_files: 0,
            }),
        }
    }

    /// Arms a crash: the `n`-th mutating operation from *now* (0-based,
    /// counting writes, appends, fsyncs, renames, and deletes) fails
    /// with [`FsError::Crashed`], as does everything after it, until
    /// [`crash`](Self::crash) runs recovery.
    pub fn fail_after_ops(&self, n: u64) {
        let mut inner = self.inner.lock();
        let at = inner.ops + n;
        inner.fail_after = Some(at);
    }

    /// Caps the total bytes the filesystem will accept; further growth
    /// fails with [`FsError::NoSpace`]. `None` removes the cap.
    pub fn set_space_limit(&self, bytes: Option<usize>) {
        self.inner.lock().space_left = bytes;
    }

    /// Simulates power loss followed by remount: every file is truncated
    /// at a seeded random offset within its unsynced tail (modeling a
    /// torn final write), the crashed flag and any armed fault are
    /// cleared, and the filesystem is usable again — holding exactly
    /// what a recovering process would find on disk.
    pub fn crash(&self) {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        inner.crashed = false;
        inner.fail_after = None;
        let mut torn = 0;
        // BTreeMap iteration is key-ordered, so the rng draws land on the
        // same files in the same order every run.
        for state in inner.files.values_mut() {
            let unsynced = state.data.len() - state.synced_len;
            if unsynced == 0 {
                continue;
            }
            let keep = state.synced_len + torn_len(&mut inner.rng, unsynced);
            if keep < state.data.len() {
                torn += 1;
            }
            state.data.truncate(keep);
            state.synced_len = state.data.len();
        }
        inner.torn_files += torn;
    }

    /// Number of files left torn (truncated mid-write) across all
    /// crashes so far.
    pub fn torn_files(&self) -> u64 {
        self.inner.lock().torn_files
    }

    /// Total mutating operations performed (the clock that
    /// [`fail_after_ops`](Self::fail_after_ops) counts against).
    pub fn op_count(&self) -> u64 {
        self.inner.lock().ops
    }

    /// Flips one bit in a file, modeling media corruption. The flipped
    /// byte counts as durable. Panics if the offset is out of range.
    pub fn flip_bit(&self, name: &str, byte: usize, bit: u8) {
        let mut inner = self.inner.lock();
        let state = inner.files.get_mut(name).expect("flip_bit: file exists");
        state.data[byte] ^= 1 << (bit % 8);
    }

    /// Runs `op` against the mutable state unless a crash is armed or
    /// already happened. `partial` receives the state exactly once when
    /// the armed op index is hit, to apply that op's torn side effect.
    fn mutating<T>(
        &self,
        op: impl FnOnce(&mut SimFsInner) -> Result<T, FsError>,
        partial: impl FnOnce(&mut SimFsInner),
    ) -> Result<T, FsError> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(FsError::Crashed);
        }
        if let Some(at) = inner.fail_after {
            if inner.ops >= at {
                inner.crashed = true;
                inner.ops += 1;
                partial(&mut inner);
                return Err(FsError::Crashed);
            }
        }
        inner.ops += 1;
        op(&mut inner)
    }
}

/// How many of `n` in-flight bytes survive a torn write. Biased toward
/// the endpoints (all / none land) the way real sector writes behave,
/// with a uniform middle for true mid-record tears.
fn torn_len(rng: &mut Rng, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    match rng.below(4) {
        0 => 0,
        1 => n,
        _ => rng.below(n as u64 + 1) as usize,
    }
}

impl SimFsInner {
    fn charge_space(&mut self, bytes: usize) -> Result<(), FsError> {
        match self.space_left {
            Some(left) if left < bytes => Err(FsError::NoSpace),
            Some(left) => {
                self.space_left = Some(left - bytes);
                Ok(())
            }
            None => Ok(()),
        }
    }
}

impl Vfs for SimFs {
    fn read(&self, name: &str) -> Result<Vec<u8>, FsError> {
        let inner = self.inner.lock();
        if inner.crashed {
            return Err(FsError::Crashed);
        }
        inner
            .files
            .get(name)
            .map(|s| s.data.clone())
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    fn write(&self, name: &str, data: &[u8]) -> Result<(), FsError> {
        self.mutating(
            |inner| {
                inner.charge_space(data.len())?;
                inner.files.insert(
                    name.to_string(),
                    FileState {
                        data: data.to_vec(),
                        synced_len: 0,
                    },
                );
                Ok(())
            },
            |inner| {
                // Torn create/replace: a seeded prefix of the new
                // content lands, none of it synced.
                let keep = torn_len(&mut inner.rng, data.len());
                inner.files.insert(
                    name.to_string(),
                    FileState {
                        data: data[..keep].to_vec(),
                        synced_len: 0,
                    },
                );
            },
        )
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<(), FsError> {
        self.mutating(
            |inner| {
                inner.charge_space(data.len())?;
                let state = inner.files.entry(name.to_string()).or_default();
                state.data.extend_from_slice(data);
                Ok(())
            },
            |inner| {
                let keep = torn_len(&mut inner.rng, data.len());
                let state = inner.files.entry(name.to_string()).or_default();
                state.data.extend_from_slice(&data[..keep]);
            },
        )
    }

    fn fsync(&self, name: &str) -> Result<(), FsError> {
        self.mutating(
            |inner| {
                let state = inner
                    .files
                    .get_mut(name)
                    .ok_or_else(|| FsError::NotFound(name.to_string()))?;
                state.synced_len = state.data.len();
                Ok(())
            },
            |_inner| {
                // A failed fsync makes nothing durable.
            },
        )
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        self.mutating(
            |inner| {
                let state = inner
                    .files
                    .remove(from)
                    .ok_or_else(|| FsError::NotFound(from.to_string()))?;
                inner.files.insert(to.to_string(), state);
                Ok(())
            },
            |_inner| {
                // Rename is atomic: a crashed rename simply never happened.
            },
        )
    }

    fn delete(&self, name: &str) -> Result<(), FsError> {
        self.mutating(
            |inner| {
                inner.files.remove(name);
                Ok(())
            },
            |_inner| {},
        )
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.lock().files.contains_key(name)
    }

    fn list(&self) -> Result<Vec<String>, FsError> {
        let inner = self.inner.lock();
        if inner.crashed {
            return Err(FsError::Crashed);
        }
        Ok(inner.files.keys().cloned().collect())
    }

    fn size(&self, name: &str) -> Result<usize, FsError> {
        let inner = self.inner.lock();
        if inner.crashed {
            return Err(FsError::Crashed);
        }
        inner
            .files
            .get(name)
            .map(|s| s.data.len())
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_bytes_may_be_lost_synced_bytes_never() {
        let fs = SimFs::new(7);
        fs.append("f", b"durable").unwrap();
        fs.fsync("f").unwrap();
        fs.append("f", b"-volatile").unwrap();
        fs.crash();
        let data = fs.read("f").unwrap();
        assert!(data.starts_with(b"durable"));
        assert!(data.len() <= b"durable-volatile".len());
    }

    #[test]
    fn crash_truncation_is_seed_deterministic() {
        let run = |seed| {
            let fs = SimFs::new(seed);
            fs.append("f", b"0123456789").unwrap();
            fs.crash();
            fs.read("f").unwrap().len()
        };
        assert_eq!(run(11), run(11));
        // Different seeds eventually diverge (not asserted per-seed: a
        // collision on one pair is legal), but the stream is used.
        let lens: Vec<usize> = (0..16).map(run).collect();
        assert!(lens.iter().any(|&l| l != lens[0]));
    }

    #[test]
    fn fail_after_arms_a_crash_at_the_exact_op() {
        let fs = SimFs::new(3);
        fs.append("f", b"aa").unwrap();
        fs.fail_after_ops(1); // next op ok, the one after fails
        fs.append("f", b"bb").unwrap();
        let err = fs.append("f", b"cc").unwrap_err();
        assert_eq!(err, FsError::Crashed);
        assert_eq!(fs.append("f", b"dd").unwrap_err(), FsError::Crashed);
        fs.crash();
        let data = fs.read("f").unwrap();
        // "cc" may have landed partially; "dd" never ran.
        assert!(data.len() <= 6);
    }

    #[test]
    fn rename_is_atomic_under_crash() {
        let fs = SimFs::new(5);
        fs.write("tmp", b"new").unwrap();
        fs.fsync("tmp").unwrap();
        fs.write("live", b"old").unwrap();
        fs.fsync("live").unwrap();
        fs.fail_after_ops(0);
        assert_eq!(fs.rename("tmp", "live").unwrap_err(), FsError::Crashed);
        fs.crash();
        assert_eq!(fs.read("live").unwrap(), b"old");
        assert_eq!(fs.read("tmp").unwrap(), b"new");
        fs.rename("tmp", "live").unwrap();
        assert_eq!(fs.read("live").unwrap(), b"new");
        assert!(!fs.exists("tmp"));
    }

    #[test]
    fn space_limit_injects_enospc_without_partial_effects() {
        let fs = SimFs::new(1);
        fs.set_space_limit(Some(4));
        fs.append("f", b"1234").unwrap();
        assert_eq!(fs.append("f", b"5").unwrap_err(), FsError::NoSpace);
        assert_eq!(fs.read("f").unwrap(), b"1234");
        fs.set_space_limit(None);
        fs.append("f", b"5").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"12345");
    }

    #[test]
    fn flip_bit_corrupts_one_bit() {
        let fs = SimFs::new(2);
        fs.write("f", &[0b0000_0000]).unwrap();
        fs.flip_bit("f", 0, 3);
        assert_eq!(fs.read("f").unwrap(), vec![0b0000_1000]);
    }

    #[test]
    fn real_fs_round_trips_and_lists() {
        let dir = std::env::temp_dir().join(format!("cogsdk-realfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs::open(&dir).unwrap();
        fs.write("a.bin", b"one").unwrap();
        fs.append("a.bin", b"two").unwrap();
        fs.fsync("a.bin").unwrap();
        assert_eq!(fs.read("a.bin").unwrap(), b"onetwo");
        assert_eq!(fs.size("a.bin").unwrap(), 6);
        fs.rename("a.bin", "b.bin").unwrap();
        assert!(!fs.exists("a.bin"));
        assert_eq!(fs.list().unwrap(), vec!["b.bin".to_string()]);
        fs.delete("b.bin").unwrap();
        fs.delete("b.bin").unwrap(); // idempotent
        assert_eq!(
            fs.read("b.bin").unwrap_err(),
            FsError::NotFound("b.bin".into())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
