//! Deterministic simulated-service fabric.
//!
//! The paper's rich SDK talks to live cloud endpoints (IBM Watson NLU, web
//! search engines, cloud data stores). This crate replaces the network with
//! an in-process fabric that produces the same *signals* those endpoints
//! produce — latency, failures, monetary cost, quota exhaustion, and JSON
//! payloads — reproducibly, from a seed.
//!
//! Everything the rich SDK does (monitoring, latency prediction, ranking,
//! retry/failover, caching, async invocation) observes only these signals,
//! so the substitution preserves the behaviour under study. See DESIGN.md.
//!
//! # Architecture
//!
//! * [`clock`] — a virtual clock ([`SimClock`]) advanced explicitly, plus a
//!   [`TimeMode`] that optionally converts modeled latency into real
//!   (scaled-down) sleeps for wall-clock benchmarks.
//! * [`rng`] — a seedable SplitMix64 RNG with the distributions the fabric
//!   needs (uniform, normal, lognormal, exponential, Zipf).
//! * [`latency`] — pluggable latency models, including size-dependent ones
//!   (the paper's "latency parameters", §2).
//! * [`failure`] — per-call Bernoulli failures and scheduled burst outages.
//! * [`cost`] — monetary cost models (per-call, per-byte, tiered).
//! * [`quota`] — fixed-window invocation quotas (§2.2: "a limited quota of
//!   service invocations in a time period").
//! * [`service`] — [`SimService`]: one simulated remote endpoint combining
//!   all of the above around a user-provided handler.
//! * [`fabric`] — a name-indexed registry of services.
//! * [`chaos`] — seeded chaos scenarios composing outages, blackholes,
//!   flapping, and brown-outs into per-service failure plans.
//! * [`fs`] — a storage abstraction ([`Vfs`]) with a real-filesystem
//!   backend and a fault-injecting in-memory one ([`SimFs`]: torn
//!   writes, failed fsyncs, bit flips, ENOSPC) for crash-recovery tests.
//!
//! # Examples
//!
//! ```
//! use cogsdk_sim::{SimEnv, service::{SimService, Request}};
//! use cogsdk_sim::latency::LatencyModel;
//! use cogsdk_json::json;
//!
//! let env = SimEnv::with_seed(7);
//! let svc = SimService::builder("echo", "demo")
//!     .latency(LatencyModel::constant_ms(20.0))
//!     .handler(|req| Ok(req.payload.clone()))
//!     .build(&env);
//!
//! let out = svc.invoke(&Request::new("echo", json!({"x": 1})));
//! assert!(out.result.is_ok());
//! assert_eq!(out.latency.as_millis(), 20);
//! ```

pub mod chaos;
pub mod clock;
pub mod cost;
pub mod fabric;
pub mod failure;
pub mod fs;
pub mod latency;
pub mod quota;
pub mod rng;
pub mod service;

pub use clock::{SimClock, SimTime, TimeMode};
pub use fabric::Fabric;
pub use fs::{FsError, RealFs, SimFs, Vfs};
pub use rng::SharedRng;
pub use service::{Outcome, Request, Response, ServiceError, SimService};

use std::sync::Arc;

/// Shared simulation environment: clock, RNG, and time mode.
///
/// Cheap to clone; all clones share the same underlying state, so every
/// component in a simulation sees one consistent timeline and random stream.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::SimEnv;
/// use std::time::Duration;
///
/// let env = SimEnv::with_seed(42);
/// let t0 = env.clock().now();
/// env.clock().advance(Duration::from_millis(5));
/// assert_eq!(env.clock().now().since(t0), Duration::from_millis(5));
/// ```
#[derive(Debug, Clone)]
pub struct SimEnv {
    clock: SimClock,
    rng: SharedRng,
    mode: Arc<TimeMode>,
}

impl SimEnv {
    /// Creates an environment with the given RNG seed, virtual time, and the
    /// clock at zero.
    pub fn with_seed(seed: u64) -> SimEnv {
        SimEnv {
            clock: SimClock::new(),
            rng: SharedRng::new(seed),
            mode: Arc::new(TimeMode::Virtual),
        }
    }

    /// Creates an environment whose services *really sleep* their modeled
    /// latency multiplied by `scale` (e.g. `0.01` turns a modeled 100 ms
    /// into a real 1 ms). Use for wall-clock benchmarks of threaded paths.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or not finite.
    pub fn with_seed_scaled(seed: u64, scale: f64) -> SimEnv {
        assert!(scale.is_finite() && scale >= 0.0, "scale must be >= 0");
        SimEnv {
            clock: SimClock::new(),
            rng: SharedRng::new(seed),
            mode: Arc::new(TimeMode::Scaled(scale)),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared random stream.
    pub fn rng(&self) -> &SharedRng {
        &self.rng
    }

    /// How modeled latency is realized; see [`TimeMode`].
    pub fn time_mode(&self) -> &TimeMode {
        &self.mode
    }
}

impl Default for SimEnv {
    fn default() -> SimEnv {
        SimEnv::with_seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_clock_and_rng() {
        let a = SimEnv::with_seed(1);
        let b = a.clone();
        a.clock().advance(std::time::Duration::from_secs(1));
        assert_eq!(b.clock().now(), a.clock().now());
        let x = a.rng().next_u64();
        let y = b.rng().next_u64();
        assert_ne!(x, y, "clones draw from one shared stream");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn negative_scale_rejected() {
        let _ = SimEnv::with_seed_scaled(0, -1.0);
    }
}
