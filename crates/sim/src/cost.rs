//! Monetary cost models.
//!
//! §2: "These services may have costs associated with them. The cost may be
//! both monetary as well as computational". The SDK's ranking formulas
//! (Eq. 1 and Eq. 2) take a predicted monetary cost `c`; these models supply
//! the ground truth the predictions are trained on.

/// Monetary cost in micro-dollars (1 µ$ = 10⁻⁶ USD), kept integral so
/// accounting is exact.
///
/// # Examples
///
/// ```
/// use cogsdk_sim::cost::MicroDollars;
///
/// let c = MicroDollars::from_dollars(0.002);
/// assert_eq!(c.as_micros(), 2_000);
/// assert!((c.as_dollars() - 0.002).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MicroDollars(u64);

impl MicroDollars {
    /// Zero cost.
    pub const ZERO: MicroDollars = MicroDollars(0);

    /// Creates a cost from micro-dollars.
    pub fn from_micros(micros: u64) -> MicroDollars {
        MicroDollars(micros)
    }

    /// Creates a cost from (fractional) dollars, rounding to the nearest
    /// micro-dollar.
    ///
    /// # Panics
    ///
    /// Panics if `dollars` is negative or not finite.
    pub fn from_dollars(dollars: f64) -> MicroDollars {
        assert!(
            dollars.is_finite() && dollars >= 0.0,
            "cost must be a finite non-negative amount"
        );
        MicroDollars((dollars * 1e6).round() as u64)
    }

    /// The amount in micro-dollars.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The amount in dollars.
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: MicroDollars) -> MicroDollars {
        MicroDollars(self.0.saturating_add(other.0))
    }
}

impl std::fmt::Display for MicroDollars {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "${:.6}", self.as_dollars())
    }
}

impl std::iter::Sum for MicroDollars {
    fn sum<I: Iterator<Item = MicroDollars>>(iter: I) -> MicroDollars {
        iter.fold(MicroDollars::ZERO, MicroDollars::saturating_add)
    }
}

/// How a service charges for invocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostModel {
    /// No charge.
    Free,
    /// A flat charge per call.
    PerCall(MicroDollars),
    /// A flat charge plus a per-kilobyte charge on the request payload.
    PerCallPlusBytes {
        /// Flat component per call.
        per_call: MicroDollars,
        /// Charge per 1024 payload bytes (pro-rated).
        per_kib: MicroDollars,
    },
    /// The first `free_calls` in a billing window are free, then `then` per
    /// call — the common freemium tier for cognitive services.
    Tiered {
        /// Number of free calls before charging starts.
        free_calls: u64,
        /// Charge per call beyond the free tier.
        then: MicroDollars,
    },
}

impl CostModel {
    /// The charge for the `call_index`-th call (0-based, within the billing
    /// window) with a payload of `payload_bytes`.
    pub fn charge(&self, call_index: u64, payload_bytes: usize) -> MicroDollars {
        match *self {
            CostModel::Free => MicroDollars::ZERO,
            CostModel::PerCall(c) => c,
            CostModel::PerCallPlusBytes { per_call, per_kib } => {
                let byte_cost = (per_kib.as_micros() as u128 * payload_bytes as u128 / 1024) as u64;
                per_call.saturating_add(MicroDollars::from_micros(byte_cost))
            }
            CostModel::Tiered { free_calls, then } => {
                if call_index < free_calls {
                    MicroDollars::ZERO
                } else {
                    then
                }
            }
        }
    }

    /// The expected per-call charge for a typical payload, used as the
    /// `c` term in the paper's ranking formulas.
    pub fn typical_charge(&self, payload_bytes: usize) -> MicroDollars {
        match *self {
            // Mid-tier estimate: assume the free tier is exhausted.
            CostModel::Tiered { then, .. } => then,
            _ => self.charge(u64::MAX, payload_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_charges_nothing() {
        assert_eq!(CostModel::Free.charge(0, 10_000), MicroDollars::ZERO);
    }

    #[test]
    fn per_call_is_flat() {
        let m = CostModel::PerCall(MicroDollars::from_micros(500));
        assert_eq!(m.charge(0, 0), m.charge(99, 1_000_000));
        assert_eq!(m.charge(0, 0).as_micros(), 500);
    }

    #[test]
    fn per_byte_component_prorates() {
        let m = CostModel::PerCallPlusBytes {
            per_call: MicroDollars::from_micros(100),
            per_kib: MicroDollars::from_micros(1024),
        };
        assert_eq!(m.charge(0, 1024).as_micros(), 100 + 1024);
        assert_eq!(m.charge(0, 512).as_micros(), 100 + 512);
        assert_eq!(m.charge(0, 0).as_micros(), 100);
    }

    #[test]
    fn tiered_free_then_charged() {
        let m = CostModel::Tiered {
            free_calls: 3,
            then: MicroDollars::from_micros(250),
        };
        assert_eq!(m.charge(0, 0), MicroDollars::ZERO);
        assert_eq!(m.charge(2, 0), MicroDollars::ZERO);
        assert_eq!(m.charge(3, 0).as_micros(), 250);
        assert_eq!(m.typical_charge(0).as_micros(), 250);
    }

    #[test]
    fn dollars_round_trip() {
        let c = MicroDollars::from_dollars(1.25);
        assert_eq!(c.as_micros(), 1_250_000);
        assert_eq!(c.to_string(), "$1.250000");
    }

    #[test]
    fn sum_of_costs() {
        let total: MicroDollars = (0..4).map(|_| MicroDollars::from_micros(100)).sum();
        assert_eq!(total.as_micros(), 400);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dollars_rejected() {
        let _ = MicroDollars::from_dollars(-0.5);
    }
}
