//! A DBpedia/Wikidata-style knowledge source service.
//!
//! §2.3: "Online versions of DBpedia are available which can be queried
//! over HTTP." The service owns a curated RDF graph of world facts over
//! the built-in entity catalog and answers three operations:
//!
//! * `{"op": "sparql", "query": "..."}` → `{"bindings": [{var: term}, …]}`
//! * `{"op": "lookup", "entity": "<surface form>"}` → the paper's §3
//!   disambiguation payload: `{"website": …, "dbpedia": …, "yago": …}`
//! * `{"op": "describe", "entity": "<canonical id>"}` → all statements
//!   about the entity.

use cogsdk_json::{json, Json};
use cogsdk_rdf::model::Literal;
use cogsdk_rdf::{Graph, Query, Statement, Term};
use cogsdk_sim::cost::CostModel;
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::service::SimService;
use cogsdk_sim::SimEnv;
use cogsdk_text::disambig::EntityCatalog;
use cogsdk_text::lexicon::EntityType;
use std::sync::Arc;

/// Curated world facts about the built-in entities: types, and for
/// countries a capital, population (millions) and continent where the
/// catalog knows one.
pub fn world_facts() -> Graph {
    let catalog = EntityCatalog::builtin();
    let mut graph = Graph::new();
    for e in catalog.entities() {
        let subject = Term::iri(format!("db:{}", e.id));
        graph.insert(Statement::new(
            subject.clone(),
            Term::iri("rdf:type"),
            Term::iri(format!("db:{}", e.kind.label())),
        ));
        graph.insert(Statement::new(
            subject.clone(),
            Term::iri("db:label"),
            Term::string(e.name),
        ));
        graph.insert(Statement::new(
            subject,
            Term::iri("db:dbpedia"),
            Term::string(e.dbpedia_url()),
        ));
    }
    // Country enrichments (population in millions, 2016-era figures, and
    // capitals) — enough structure for joins and filters.
    let country_facts: &[(&str, &str, i64, &str)] = &[
        ("united_states", "washington", 323, "north_america"),
        ("united_kingdom", "london", 66, "europe"),
        ("germany", "berlin", 82, "europe"),
        ("france", "paris", 67, "europe"),
        ("china", "beijing", 1379, "asia"),
        ("japan", "tokyo", 127, "asia"),
        ("india", "new_delhi", 1324, "asia"),
        ("brazil", "brasilia", 208, "south_america"),
        ("canada", "ottawa", 36, "north_america"),
        ("australia", "canberra", 24, "oceania"),
        ("russia", "moscow", 144, "europe"),
        ("south_korea", "seoul", 51, "asia"),
        ("mexico", "mexico_city", 123, "north_america"),
        ("italy", "rome", 61, "europe"),
        ("spain", "madrid", 47, "europe"),
        ("netherlands", "amsterdam", 17, "europe"),
        ("switzerland", "bern", 8, "europe"),
        ("sweden", "stockholm", 10, "europe"),
        ("norway", "oslo", 5, "europe"),
        ("singapore", "singapore_city", 6, "asia"),
        ("egypt", "cairo", 96, "africa"),
        ("south_africa", "pretoria", 56, "africa"),
        ("argentina", "buenos_aires", 44, "south_america"),
        ("turkey", "ankara", 80, "asia"),
        ("poland", "warsaw", 38, "europe"),
    ];
    for (id, capital, population, continent) in country_facts {
        let subject = Term::iri(format!("db:{id}"));
        graph.insert(Statement::new(
            subject.clone(),
            Term::iri("db:capital"),
            Term::iri(format!("db:{capital}")),
        ));
        graph.insert(Statement::new(
            subject.clone(),
            Term::iri("db:population_millions"),
            Term::integer(*population),
        ));
        graph.insert(Statement::new(
            subject,
            Term::iri("db:continent"),
            Term::iri(format!("db:{continent}")),
        ));
    }
    graph
}

fn term_to_json(term: &Term) -> Json {
    match term {
        Term::Iri(iri) => json!({"type": "iri", "value": (iri.as_str())}),
        Term::Blank(b) => json!({"type": "bnode", "value": (b.as_str())}),
        Term::Literal(Literal::String(s)) => {
            json!({"type": "literal", "value": (s.as_str())})
        }
        Term::Literal(Literal::Integer(i)) => json!({"type": "literal", "value": (*i)}),
        Term::Literal(Literal::Double(d)) => json!({"type": "literal", "value": (*d)}),
        Term::Literal(Literal::Boolean(b)) => json!({"type": "literal", "value": (*b)}),
    }
}

/// Builds the knowledge-source service (class `"knowledge"`).
pub fn knowledge_service(env: &SimEnv, name: impl Into<String>) -> Arc<SimService> {
    let graph = world_facts();
    let catalog = EntityCatalog::builtin();
    SimService::builder(name, "knowledge")
        .latency(LatencyModel::lognormal_ms(70.0, 0.4))
        .cost(CostModel::Free)
        .failures(FailurePlan::flaky(0.02))
        .quality(0.92)
        .handler(move |req| {
            let op = req
                .payload
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing 'op'".to_string())?;
            match op {
                "sparql" => {
                    let text = req
                        .payload
                        .get("query")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "missing 'query'".to_string())?;
                    let query = Query::parse(text).map_err(|e| e.to_string())?;
                    let solutions = query.execute(&graph);
                    let bindings: Vec<Json> = solutions
                        .iter()
                        .map(|sol| {
                            sol.iter()
                                .map(|(var, term)| (var.clone(), term_to_json(term)))
                                .collect()
                        })
                        .collect();
                    Ok(json!({"bindings": (Json::Array(bindings))}))
                }
                "lookup" => {
                    // The paper's §3 example: "The US is a country" →
                    // website + dbpedia + yago URLs.
                    let surface = req
                        .payload
                        .get("entity")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "missing 'entity'".to_string())?;
                    let resolved = catalog
                        .resolve(surface)
                        .ok_or_else(|| format!("404 unknown entity: {surface}"))?;
                    let website = match resolved.kind {
                        EntityType::Country => {
                            format!("http://www.{}.example.gov/", resolved.id)
                        }
                        _ => format!("http://www.{}.example.com/", resolved.id),
                    };
                    Ok(json!({
                        "id": (resolved.id.as_str()),
                        "name": (resolved.name.as_str()),
                        "type": (resolved.kind.label()),
                        "website": (website),
                        "dbpedia": (resolved.dbpedia.as_str()),
                        "yago": (resolved.yago.as_str()),
                    }))
                }
                "describe" => {
                    let id = req
                        .payload
                        .get("entity")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "missing 'entity'".to_string())?;
                    let subject = Term::iri(format!("db:{id}"));
                    let statements = graph.match_pattern(Some(&subject), None, None);
                    if statements.is_empty() {
                        return Err(format!("404 no facts about: {id}"));
                    }
                    let facts: Vec<Json> = statements
                        .iter()
                        .map(|st| {
                            json!({
                                "predicate": (st.predicate.to_string()),
                                "object": (term_to_json(&st.object)),
                            })
                        })
                        .collect();
                    Ok(json!({"entity": (id), "facts": (Json::Array(facts))}))
                }
                other => Err(format!("unknown op: {other}")),
            }
        })
        .build(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::service::Request;

    fn ok_invoke(svc: &SimService, payload: Json) -> Json {
        loop {
            let out = svc.invoke(&Request::new("kb", payload.clone()));
            match out.result {
                Ok(resp) => return resp.payload,
                Err(cogsdk_sim::ServiceError::BadRequest(m)) => panic!("bad request: {m}"),
                Err(_) => continue,
            }
        }
    }

    #[test]
    fn world_facts_cover_catalog() {
        let g = world_facts();
        // 70 entities × (type + label + dbpedia) + 25 countries × 3.
        assert!(g.len() >= 70 * 3 + 25 * 3 - 10, "len={}", g.len());
        assert!(g.contains(&Statement::new(
            Term::iri("db:united_states"),
            Term::iri("db:capital"),
            Term::iri("db:washington"),
        )));
    }

    #[test]
    fn sparql_over_http_like_protocol() {
        let env = SimEnv::with_seed(1);
        let svc = knowledge_service(&env, "dbpedia-sim");
        let body = ok_invoke(
            &svc,
            json!({"op": "sparql", "query":
                "SELECT ?c ?p WHERE { ?c <db:population_millions> ?p . FILTER (?p > 1000) } ORDER BY ?c"}),
        );
        let bindings = body.get("bindings").unwrap().as_array().unwrap();
        assert_eq!(bindings.len(), 2); // china, india
        assert_eq!(
            bindings[0].pointer("/c/value").and_then(Json::as_str),
            Some("db:china")
        );
    }

    #[test]
    fn lookup_matches_paper_disambiguation_payload() {
        let env = SimEnv::with_seed(2);
        let svc = knowledge_service(&env, "dbpedia-sim");
        let body = ok_invoke(&svc, json!({"op": "lookup", "entity": "US"}));
        assert_eq!(body.get("id").and_then(Json::as_str), Some("united_states"));
        assert_eq!(
            body.get("dbpedia").and_then(Json::as_str),
            Some("http://dbpedia.org/resource/United_States")
        );
        assert_eq!(
            body.get("yago").and_then(Json::as_str),
            Some("http://yago-knowledge.org/resource/United_States")
        );
        assert!(body
            .get("website")
            .and_then(Json::as_str)
            .unwrap()
            .contains("gov"));
    }

    #[test]
    fn describe_returns_entity_facts() {
        let env = SimEnv::with_seed(3);
        let svc = knowledge_service(&env, "dbpedia-sim");
        let body = ok_invoke(&svc, json!({"op": "describe", "entity": "germany"}));
        let facts = body.get("facts").unwrap().as_array().unwrap();
        assert!(facts.len() >= 5, "{facts:?}");
        assert!(facts
            .iter()
            .any(|f| f.pointer("/object/value").and_then(Json::as_str) == Some("db:berlin")));
    }

    #[test]
    fn unknown_ops_and_entities_reject() {
        let env = SimEnv::with_seed(4);
        let svc = knowledge_service(&env, "dbpedia-sim");
        for bad in [
            json!({"op": "nope"}),
            json!({"op": "lookup", "entity": "atlantis"}),
            json!({"op": "describe", "entity": "atlantis"}),
            json!({"op": "sparql", "query": "garbage"}),
            json!({}),
        ] {
            loop {
                let out = svc.invoke(&Request::new("kb", bad.clone()));
                match out.result {
                    Err(cogsdk_sim::ServiceError::BadRequest(_)) => break,
                    Err(_) => continue,
                    Ok(_) => panic!("should reject {bad}"),
                }
            }
        }
    }
}
