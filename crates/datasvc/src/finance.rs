//! A simulated stock / financial data service.
//!
//! §1 and Figure 1 list "stock and financial data services" among the
//! endpoints the rich SDK mediates. This service serves deterministic
//! geometric-random-walk daily price series per ticker — realistic enough
//! for the knowledge base's regression/trend analytics, reproducible from
//! the ticker name alone (no shared RNG state).
//!
//! Protocol (class `"finance"`):
//! * `{"op": "quote", "ticker": "IBM"}` → `{"ticker", "day", "price"}`
//! * `{"op": "history", "ticker": "IBM", "days": 30}` →
//!   `{"ticker", "prices": [{"day", "price"}, …]}`

use cogsdk_json::{json, Json};
use cogsdk_sim::cost::{CostModel, MicroDollars};
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::rng::Rng;
use cogsdk_sim::service::SimService;
use cogsdk_sim::SimEnv;
use std::sync::Arc;

/// Maximum history length a single request may ask for.
pub const MAX_HISTORY_DAYS: usize = 3_650;

/// A deterministic daily price series for one ticker.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceSeries {
    /// The ticker symbol (upper-cased).
    pub ticker: String,
    /// Daily closing prices, day 0 first.
    pub prices: Vec<f64>,
}

impl PriceSeries {
    /// Generates the series for `ticker`: a geometric random walk whose
    /// seed, start price and drift derive from the ticker name, so every
    /// caller (and every test) sees the same market.
    pub fn generate(ticker: &str, days: usize) -> PriceSeries {
        let ticker = ticker.to_uppercase();
        let seed = ticker.bytes().fold(0x0BAD_5EED_u64, |acc, b| {
            acc.wrapping_mul(131).wrapping_add(u64::from(b))
        });
        let mut rng = Rng::new(seed);
        let start = 20.0 + rng.next_f64() * 180.0;
        // Annualized drift in [-10%, +20%], daily volatility ~1.5%.
        let daily_drift = rng.uniform(-0.10, 0.20) / 252.0;
        let mut prices = Vec::with_capacity(days);
        let mut price = start;
        for _ in 0..days {
            prices.push((price * 100.0).round() / 100.0);
            let shock = rng.normal(daily_drift, 0.015);
            price = (price * (1.0 + shock)).max(0.01);
        }
        PriceSeries { ticker, prices }
    }

    /// The latest price in the series.
    pub fn last(&self) -> Option<f64> {
        self.prices.last().copied()
    }

    /// Simple daily returns.
    pub fn returns(&self) -> Vec<f64> {
        self.prices
            .windows(2)
            .map(|w| (w[1] - w[0]) / w[0])
            .collect()
    }
}

/// Builds the finance data service.
pub fn finance_service(env: &SimEnv, name: impl Into<String>) -> Arc<SimService> {
    SimService::builder(name, "finance")
        .latency(LatencyModel::lognormal_ms(35.0, 0.3))
        .cost(CostModel::Tiered {
            free_calls: 100,
            then: MicroDollars::from_micros(200),
        })
        .failures(FailurePlan::flaky(0.01))
        .quality(0.9)
        .handler(move |req| {
            let op = req
                .payload
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing 'op'".to_string())?;
            let ticker = req
                .payload
                .get("ticker")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing 'ticker'".to_string())?;
            if ticker.is_empty() || !ticker.chars().all(|c| c.is_ascii_alphanumeric()) {
                return Err(format!("invalid ticker: {ticker:?}"));
            }
            match op {
                "quote" => {
                    let series = PriceSeries::generate(ticker, 252);
                    Ok(json!({
                        "ticker": (series.ticker.as_str()),
                        "day": (series.prices.len() - 1),
                        "price": (series.last().expect("nonempty")),
                    }))
                }
                "history" => {
                    let days = req
                        .payload
                        .get("days")
                        .and_then(Json::as_usize)
                        .unwrap_or(30);
                    if days == 0 || days > MAX_HISTORY_DAYS {
                        return Err(format!("days must be in 1..={MAX_HISTORY_DAYS}"));
                    }
                    let series = PriceSeries::generate(ticker, days);
                    let prices: Vec<Json> = series
                        .prices
                        .iter()
                        .enumerate()
                        .map(|(day, price)| json!({"day": (day), "price": (*price)}))
                        .collect();
                    Ok(json!({
                        "ticker": (series.ticker.as_str()),
                        "prices": (Json::Array(prices)),
                    }))
                }
                other => Err(format!("unknown op: {other}")),
            }
        })
        .build(env)
}

/// Renders a price history response as CSV (`day,price` with header) —
/// the bridge into the knowledge base's CSV ingestion.
pub fn history_to_csv(history: &Json) -> Option<String> {
    let prices = history.get("prices")?.as_array()?;
    let mut csv = String::from("day,price\n");
    for p in prices {
        csv.push_str(&format!(
            "{},{}\n",
            p.get("day")?.as_i64()?,
            p.get("price")?.as_f64()?
        ));
    }
    Some(csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::service::Request;

    fn ok_invoke(svc: &SimService, payload: Json) -> Json {
        loop {
            let out = svc.invoke(&Request::new("fin", payload.clone()));
            match out.result {
                Ok(resp) => return resp.payload,
                Err(cogsdk_sim::ServiceError::BadRequest(m)) => panic!("bad request: {m}"),
                Err(_) => continue,
            }
        }
    }

    #[test]
    fn series_deterministic_per_ticker() {
        let a = PriceSeries::generate("IBM", 100);
        let b = PriceSeries::generate("ibm", 100);
        assert_eq!(a, b, "case-insensitive determinism");
        let c = PriceSeries::generate("MSFT", 100);
        assert_ne!(a.prices, c.prices);
        assert!(a.prices.iter().all(|&p| p > 0.0));
        assert_eq!(a.prices.len(), 100);
    }

    #[test]
    fn returns_have_plausible_volatility() {
        let series = PriceSeries::generate("IBM", 1_000);
        let returns = series.returns();
        let mean = returns.iter().sum::<f64>() / returns.len() as f64;
        let sd =
            (returns.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / returns.len() as f64).sqrt();
        assert!((0.005..0.04).contains(&sd), "daily sd={sd}");
        assert!(mean.abs() < 0.01, "daily mean={mean}");
    }

    #[test]
    fn quote_and_history_protocol() {
        let env = SimEnv::with_seed(1);
        let svc = finance_service(&env, "stocks");
        let quote = ok_invoke(&svc, json!({"op": "quote", "ticker": "IBM"}));
        assert_eq!(quote.get("ticker").and_then(Json::as_str), Some("IBM"));
        assert!(quote.get("price").and_then(Json::as_f64).unwrap() > 0.0);

        let hist = ok_invoke(&svc, json!({"op": "history", "ticker": "IBM", "days": 10}));
        let prices = hist.get("prices").unwrap().as_array().unwrap();
        assert_eq!(prices.len(), 10);
        // The quote equals the 252-day series' last day, and history is a
        // prefix of the same walk.
        let series = PriceSeries::generate("IBM", 252);
        assert_eq!(
            prices[5].get("price").and_then(Json::as_f64),
            Some(series.prices[5])
        );
    }

    #[test]
    fn history_to_csv_bridges_to_kb() {
        let env = SimEnv::with_seed(2);
        let svc = finance_service(&env, "stocks");
        let hist = ok_invoke(&svc, json!({"op": "history", "ticker": "ACME", "days": 5}));
        let csv = history_to_csv(&hist).unwrap();
        assert!(csv.starts_with("day,price\n0,"));
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    fn invalid_requests_reject() {
        let env = SimEnv::with_seed(3);
        let svc = finance_service(&env, "stocks");
        for bad in [
            json!({"op": "quote"}),
            json!({"op": "quote", "ticker": "BAD TICKER"}),
            json!({"op": "history", "ticker": "IBM", "days": 0}),
            json!({"op": "history", "ticker": "IBM", "days": 100000}),
            json!({"op": "dance", "ticker": "IBM"}),
        ] {
            loop {
                let out = svc.invoke(&Request::new("fin", bad.clone()));
                match out.result {
                    Err(cogsdk_sim::ServiceError::BadRequest(_)) => break,
                    Err(_) => continue,
                    Ok(_) => panic!("should reject {bad}"),
                }
            }
        }
    }

    #[test]
    fn tiered_quota_charges_after_free_calls() {
        let env = SimEnv::with_seed(4);
        let svc = finance_service(&env, "stocks");
        let mut total = MicroDollars::ZERO;
        for _ in 0..150 {
            let out = svc.invoke(&Request::new(
                "fin",
                json!({"op": "quote", "ticker": "IBM"}),
            ));
            total = total.saturating_add(out.cost);
        }
        // ~50 charged calls at 200 micro-dollars (minus any failed calls).
        assert!(total.as_micros() >= 40 * 200, "total={total}");
    }
}
