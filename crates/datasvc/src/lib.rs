//! Simulated external data services — the rest of the paper's Figure 1.
//!
//! Besides NLU and search (which live in `cogsdk-text` and
//! `cogsdk-search`), Figure 1 surrounds the rich SDK with:
//!
//! * **DBpedia / Wikidata / Yago** knowledge sources — "information
//!   retrieval services which provide data from data repositories" that
//!   "can be queried over HTTP" (§1, §2.3). [`knowledge`] builds a
//!   curated fact graph over the built-in entity catalog and serves it as
//!   a SPARQL-over-HTTP-style service, including the paper's
//!   entity-disambiguation response format (website/dbpedia/yago URLs).
//! * **Stock and financial data services** (§1, Fig. 1). [`finance`]
//!   serves deterministic random-walk price histories per ticker — the
//!   numeric feedstock the knowledge base's regression analytics consume.
//! * **Visual recognition services** (§1, §2.2: "Search engines can
//!   identify images matching a query; these images can be passed to an
//!   image analysis service"). [`vision`] classifies synthetic image
//!   descriptors with vendor-specific quality, mirroring the NLU vendor
//!   fleet design.
//!
//! All services are [`SimService`](cogsdk_sim::SimService)s: they plug
//! into the same registry, monitor, ranking and failover machinery as
//! every other endpoint.

pub mod finance;
pub mod images;
pub mod knowledge;
pub mod vision;

pub use finance::{finance_service, PriceSeries};
pub use images::{image_search_service, ImageCorpus};
pub use knowledge::{knowledge_service, world_facts};
pub use vision::{vision_fleet, vision_service, ImageDescriptor};
