//! Simulated visual recognition services.
//!
//! §1 lists "video recognition"; §2.2: "Search engines can identify
//! images matching a query; these images can be passed to an image
//! analysis service and/or stored locally." Since no real pixels exist in
//! this environment, an *image* is a synthetic descriptor carrying its
//! ground-truth labels (what a perfect classifier would say). Vendors
//! classify descriptors with quality-dependent recall and confidence
//! noise — the same vendor-fleet design as the NLU services, so all the
//! SDK's comparison/consensus machinery applies unchanged.
//!
//! Protocol (class `"vision"`): `{"image": {"id", "labels": […]}}` →
//! `{"labels": [{"label", "confidence"}, …]}`.

use cogsdk_json::{json, Json};
use cogsdk_sim::cost::{CostModel, MicroDollars};
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::rng::Rng;
use cogsdk_sim::service::SimService;
use cogsdk_sim::SimEnv;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The label vocabulary vendors draw confusions from.
pub const LABELS: &[&str] = &[
    "person", "crowd", "building", "skyline", "car", "truck", "bicycle", "road", "tree", "forest",
    "flower", "dog", "cat", "bird", "horse", "food", "drink", "table", "chair", "screen", "phone",
    "laptop", "chart", "document", "logo", "mountain", "beach", "ocean", "river", "sky", "night",
    "indoor", "outdoor", "sport", "stadium",
];

/// A synthetic image: an id plus its ground-truth labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageDescriptor {
    /// Stable image identifier.
    pub id: String,
    /// Ground-truth labels (what a perfect classifier returns).
    pub labels: Vec<String>,
}

impl ImageDescriptor {
    /// Generates a deterministic image with 2–5 labels from `seed`.
    pub fn generate(seed: u64) -> ImageDescriptor {
        let mut rng = Rng::new(seed ^ 0xD15C_0DE5);
        let n = 2 + rng.below(4) as usize;
        let mut labels: Vec<String> = Vec::new();
        while labels.len() < n {
            let l = (*rng.choose(LABELS)).to_string();
            if !labels.contains(&l) {
                labels.push(l);
            }
        }
        ImageDescriptor {
            id: format!("img-{seed:08x}"),
            labels,
        }
    }

    /// The JSON form the services accept.
    pub fn to_json(&self) -> Json {
        json!({
            "id": (self.id.as_str()),
            "labels": (Json::Array(self.labels.iter().map(|l| Json::from(l.as_str())).collect())),
        })
    }
}

fn unit_hash(vendor: &str, item: &str) -> f64 {
    let mut h = DefaultHasher::new();
    vendor.hash(&mut h);
    item.hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds one vision vendor with the given recall (probability of
/// reporting each true label) and hallucination rate (probability of
/// adding one wrong label).
///
/// # Panics
///
/// Panics if `recall` or `hallucination` is outside `[0, 1]`.
pub fn vision_service(
    env: &SimEnv,
    name: impl Into<String>,
    recall: f64,
    hallucination: f64,
) -> Arc<SimService> {
    assert!((0.0..=1.0).contains(&recall), "recall in [0, 1]");
    assert!(
        (0.0..=1.0).contains(&hallucination),
        "hallucination in [0, 1]"
    );
    let name = name.into();
    let vendor = name.clone();
    SimService::builder(name, "vision")
        .latency(LatencyModel::lognormal_ms(150.0, 0.4))
        .cost(CostModel::PerCall(MicroDollars::from_micros(1_500)))
        .failures(FailurePlan::flaky(0.02))
        .quality(recall * (1.0 - hallucination))
        .handler(move |req| {
            let image = req
                .payload
                .get("image")
                .ok_or_else(|| "missing 'image'".to_string())?;
            let id = image
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "image missing 'id'".to_string())?;
            let truth = image
                .get("labels")
                .and_then(Json::as_array)
                .ok_or_else(|| "image missing 'labels'".to_string())?;
            let mut out: Vec<Json> = Vec::new();
            for label in truth.iter().filter_map(Json::as_str) {
                let roll = unit_hash(&vendor, &format!("{id}:{label}"));
                if roll < recall {
                    // Confidence correlates with how "easily" the vendor
                    // saw it, deterministic per (vendor, image, label).
                    let confidence = 0.55 + 0.44 * (1.0 - roll / recall.max(1e-9));
                    out.push(json!({"label": (label), "confidence": (confidence)}));
                }
            }
            let hroll = unit_hash(&vendor, &format!("{id}:hallucinate"));
            if hroll < hallucination {
                let idx =
                    (unit_hash(&vendor, &format!("{id}:which")) * LABELS.len() as f64) as usize;
                let wrong = LABELS[idx.min(LABELS.len() - 1)];
                if !truth.iter().filter_map(Json::as_str).any(|l| l == wrong) {
                    out.push(json!({"label": (wrong), "confidence": 0.51}));
                }
            }
            Ok(json!({"image": (id), "labels": (Json::Array(out))}))
        })
        .build(env)
}

/// The standard three-vendor vision fleet (quality-ordered, like the NLU
/// fleet).
pub fn vision_fleet(env: &SimEnv) -> Vec<Arc<SimService>> {
    vec![
        vision_service(env, "vision-alpha", 0.95, 0.02),
        vision_service(env, "vision-beta", 0.80, 0.08),
        vision_service(env, "vision-gamma", 0.60, 0.20),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::service::Request;

    fn classify(svc: &SimService, image: &ImageDescriptor) -> Vec<(String, f64)> {
        loop {
            let out = svc.invoke(&Request::new(
                "classify",
                json!({"image": (image.to_json())}),
            ));
            match out.result {
                Ok(resp) => {
                    return resp
                        .payload
                        .get("labels")
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|l| {
                            Some((
                                l.get("label")?.as_str()?.to_string(),
                                l.get("confidence")?.as_f64()?,
                            ))
                        })
                        .collect()
                }
                Err(cogsdk_sim::ServiceError::BadRequest(m)) => panic!("{m}"),
                Err(_) => continue,
            }
        }
    }

    #[test]
    fn image_generation_is_deterministic() {
        let a = ImageDescriptor::generate(7);
        let b = ImageDescriptor::generate(7);
        assert_eq!(a, b);
        assert!((2..=5).contains(&a.labels.len()));
    }

    #[test]
    fn perfect_recall_returns_all_truth() {
        let env = SimEnv::with_seed(1);
        let svc = vision_service(&env, "v-perfect", 1.0, 0.0);
        let image = ImageDescriptor::generate(42);
        let labels = classify(&svc, &image);
        let found: Vec<&str> = labels.iter().map(|(l, _)| l.as_str()).collect();
        for truth in &image.labels {
            assert!(found.contains(&truth.as_str()), "missing {truth}");
        }
        assert!(labels.iter().all(|(_, c)| (0.0..=1.0).contains(c)));
    }

    #[test]
    fn recall_controls_measured_recall() {
        let env = SimEnv::with_seed(2);
        let svc = vision_service(&env, "v-half", 0.5, 0.0);
        let mut truth_total = 0usize;
        let mut found_total = 0usize;
        for seed in 0..200 {
            let image = ImageDescriptor::generate(seed);
            let labels = classify(&svc, &image);
            truth_total += image.labels.len();
            found_total += labels
                .iter()
                .filter(|(l, _)| image.labels.contains(l))
                .count();
        }
        let recall = found_total as f64 / truth_total as f64;
        assert!((recall - 0.5).abs() < 0.08, "recall={recall}");
    }

    #[test]
    fn hallucinations_add_wrong_labels() {
        let env = SimEnv::with_seed(3);
        let svc = vision_service(&env, "v-dreamy", 1.0, 0.5);
        let mut wrong = 0usize;
        for seed in 0..100 {
            let image = ImageDescriptor::generate(seed);
            let labels = classify(&svc, &image);
            wrong += labels
                .iter()
                .filter(|(l, _)| !image.labels.contains(l))
                .count();
        }
        assert!((30..=70).contains(&wrong), "hallucinated {wrong}/100");
    }

    #[test]
    fn classification_is_deterministic_per_vendor() {
        let env = SimEnv::with_seed(4);
        let svc = vision_service(&env, "v-a", 0.7, 0.1);
        let image = ImageDescriptor::generate(9);
        assert_eq!(classify(&svc, &image), classify(&svc, &image));
    }

    #[test]
    fn fleet_quality_ordering() {
        let env = SimEnv::with_seed(5);
        let fleet = vision_fleet(&env);
        assert_eq!(fleet.len(), 3);
        assert!(fleet[0].quality() > fleet[1].quality());
        assert!(fleet[1].quality() > fleet[2].quality());
        assert!(fleet.iter().all(|s| s.class() == "vision"));
    }

    #[test]
    fn malformed_image_rejects() {
        let env = SimEnv::with_seed(6);
        let svc = vision_service(&env, "v-a", 0.9, 0.0);
        for bad in [
            json!({}),
            json!({"image": {"id": "x"}}),
            json!({"image": {"labels": ["dog"]}}),
        ] {
            loop {
                let out = svc.invoke(&Request::new("classify", bad.clone()));
                match out.result {
                    Err(cogsdk_sim::ServiceError::BadRequest(_)) => break,
                    Err(_) => continue,
                    Ok(_) => panic!("should reject {bad}"),
                }
            }
        }
    }
}
