//! Image search — the §2.2 visual analogue of web search.
//!
//! "Search engines can identify images matching a query; these images can
//! be passed to an image analysis service and/or stored locally. Similar
//! types of analyses can be performed on other types of data such as
//! image files." This module provides a deterministic image corpus and a
//! search service over it, ranked by label overlap, so the SDK's
//! search→analyze→aggregate machinery works for images exactly as it does
//! for text.
//!
//! Protocol (class `"image-search"`):
//! `{"query": "dog outdoor", "limit": 8}` →
//! `{"images": [{"id", "labels": […]}, …]}` (best match first; ties by id).

use crate::vision::ImageDescriptor;
use cogsdk_json::{json, Json};
use cogsdk_sim::cost::CostModel;
use cogsdk_sim::failure::FailurePlan;
use cogsdk_sim::latency::LatencyModel;
use cogsdk_sim::service::SimService;
use cogsdk_sim::SimEnv;
use std::sync::Arc;

/// Default result count when the query omits `limit`.
pub const DEFAULT_LIMIT: usize = 10;

/// A deterministic image corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageCorpus {
    images: Vec<ImageDescriptor>,
}

impl ImageCorpus {
    /// Generates `n` images seeded from `seed` (each image's own seed is
    /// `seed * 1e6 + index`, so corpora of different sizes share prefixes).
    pub fn generate(seed: u64, n: usize) -> ImageCorpus {
        ImageCorpus {
            images: (0..n as u64)
                .map(|i| ImageDescriptor::generate(seed.wrapping_mul(1_000_003) + i))
                .collect(),
        }
    }

    /// All images.
    pub fn images(&self) -> &[ImageDescriptor] {
        &self.images
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Searches by label overlap with the whitespace-split query words;
    /// images matching zero words are excluded.
    pub fn search(&self, query: &str, limit: usize) -> Vec<&ImageDescriptor> {
        let words: Vec<String> = query.split_whitespace().map(str::to_lowercase).collect();
        if words.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(usize, &ImageDescriptor)> = self
            .images
            .iter()
            .filter_map(|img| {
                let overlap = words
                    .iter()
                    .filter(|w| img.labels.iter().any(|l| l == *w))
                    .count();
                (overlap > 0).then_some((overlap, img))
            })
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.id.cmp(&b.1.id)));
        scored.into_iter().take(limit).map(|(_, img)| img).collect()
    }

    /// Looks an image up by id.
    pub fn by_id(&self, id: &str) -> Option<&ImageDescriptor> {
        self.images.iter().find(|img| img.id == id)
    }
}

/// Builds the image-search service over a shared corpus.
pub fn image_search_service(
    env: &SimEnv,
    name: impl Into<String>,
    corpus: Arc<ImageCorpus>,
) -> Arc<SimService> {
    SimService::builder(name, "image-search")
        .latency(LatencyModel::lognormal_ms(65.0, 0.4))
        .cost(CostModel::Free)
        .failures(FailurePlan::flaky(0.02))
        .quality(0.85)
        .handler(move |req| {
            let query = req
                .payload
                .get("query")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing required field 'query'".to_string())?;
            let limit = req
                .payload
                .get("limit")
                .and_then(Json::as_usize)
                .unwrap_or(DEFAULT_LIMIT);
            let hits: Vec<Json> = corpus
                .search(query, limit)
                .into_iter()
                .map(ImageDescriptor::to_json)
                .collect();
            Ok(json!({"query": (query), "images": (Json::Array(hits))}))
        })
        .build(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsdk_sim::service::Request;

    #[test]
    fn corpus_generation_is_deterministic_and_prefix_stable() {
        let a = ImageCorpus::generate(7, 50);
        let b = ImageCorpus::generate(7, 50);
        assert_eq!(a, b);
        let bigger = ImageCorpus::generate(7, 80);
        assert_eq!(&bigger.images()[..50], a.images());
    }

    #[test]
    fn search_ranks_by_overlap() {
        let corpus = ImageCorpus::generate(3, 300);
        let hits = corpus.search("dog outdoor", 20);
        assert!(!hits.is_empty());
        // Every hit matches at least one query word.
        for img in &hits {
            assert!(img.labels.iter().any(|l| l == "dog" || l == "outdoor"));
        }
        // Two-word matches come before one-word matches.
        let overlaps: Vec<usize> = hits
            .iter()
            .map(|img| {
                ["dog", "outdoor"]
                    .iter()
                    .filter(|w| img.labels.iter().any(|l| l == *w))
                    .count()
            })
            .collect();
        assert!(overlaps.windows(2).all(|w| w[0] >= w[1]), "{overlaps:?}");
    }

    #[test]
    fn search_edge_cases() {
        let corpus = ImageCorpus::generate(3, 100);
        assert!(corpus.search("", 10).is_empty());
        assert!(corpus.search("zebra-unicorn-nonsense", 10).is_empty());
        assert_eq!(
            corpus.search("dog", 2).len().min(2),
            corpus.search("dog", 2).len()
        );
        assert!(!corpus.is_empty());
        assert_eq!(corpus.len(), 100);
    }

    #[test]
    fn service_protocol() {
        let env = SimEnv::with_seed(1);
        let corpus = Arc::new(ImageCorpus::generate(3, 200));
        let svc = image_search_service(&env, "img-search", corpus.clone());
        let payload = loop {
            let out = svc.invoke(&Request::new(
                "search",
                json!({"query": "person indoor", "limit": 5}),
            ));
            if let Ok(resp) = out.result {
                break resp.payload;
            }
        };
        let images = payload.get("images").unwrap().as_array().unwrap();
        assert!(!images.is_empty() && images.len() <= 5);
        // Returned ids exist in the corpus.
        for img in images {
            let id = img.get("id").unwrap().as_str().unwrap();
            assert!(corpus.by_id(id).is_some());
        }
    }

    #[test]
    fn missing_query_rejects() {
        let env = SimEnv::with_seed(2);
        let svc = image_search_service(&env, "img-search", Arc::new(ImageCorpus::generate(1, 10)));
        loop {
            let out = svc.invoke(&Request::new("search", json!({})));
            match out.result {
                Err(cogsdk_sim::ServiceError::BadRequest(_)) => break,
                Err(_) => continue,
                Ok(_) => panic!("should reject"),
            }
        }
    }
}
