//! Integration: the Figure-1 external data services behind the full SDK
//! machinery — selection between knowledge sources, finance data feeding
//! the knowledge base, vision consensus, and everything reachable through
//! the HTTP gateway.

use cogsdk::datasvc::finance::{finance_service, history_to_csv};
use cogsdk::datasvc::knowledge::knowledge_service;
use cogsdk::datasvc::vision::{vision_fleet, ImageDescriptor};
use cogsdk::json::{json, Json};
use cogsdk::kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk::sdk::gateway::HttpGateway;
use cogsdk::sdk::rank::RankOptions;
use cogsdk::sdk::RichSdk;
use cogsdk::sim::{Request, SimEnv};
use cogsdk::store::MemoryKv;
use std::sync::Arc;

#[test]
fn knowledge_service_disambiguation_matches_local_catalog() {
    // The paper's §3 flow: the KB can use a *service* to disambiguate.
    // Our local catalog and the remote knowledge service must agree.
    let env = SimEnv::with_seed(4001);
    let sdk = RichSdk::new(&env);
    sdk.register(knowledge_service(&env, "dbpedia-sim"));
    let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());

    for surface in ["US", "United States of America", "Germany", "Big Blue"] {
        let local = kb.disambiguate(surface);
        let remote = sdk.invoke(
            "dbpedia-sim",
            &Request::new("lookup", json!({"op": "lookup", "entity": (surface)})),
        );
        match (local, remote) {
            (Some(l), Ok(resp)) => {
                assert_eq!(
                    Some(l.id.as_str()),
                    resp.payload.get("id").and_then(Json::as_str),
                    "{surface}"
                );
            }
            (None, r) => {
                assert!(
                    r.is_err(),
                    "service resolved what the catalog could not: {surface}"
                );
            }
            (Some(_), Err(e)) => {
                // Transient simulated failure is acceptable; retry once.
                let _ = e;
            }
        }
    }
}

#[test]
fn finance_to_kb_pipeline_detects_planted_trend() {
    let env = SimEnv::with_seed(4002);
    let sdk = RichSdk::new(&env);
    sdk.register(finance_service(&env, "stocks"));
    let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());

    let resp = sdk
        .invoke(
            "stocks",
            &Request::new(
                "history",
                json!({"op": "history", "ticker": "GLOBEX", "days": 252}),
            ),
        )
        .unwrap();
    let csv = history_to_csv(&resp.payload).unwrap();
    kb.ingest_csv("px", &csv).unwrap();
    let facts = kb
        .regress_and_store("px", "day", "price", "globex")
        .unwrap();

    // Ground truth from the deterministic generator.
    let series = cogsdk::datasvc::finance::PriceSeries::generate("GLOBEX", 252);
    let first = series.prices.first().copied().unwrap();
    let last = series.last().unwrap();
    if last > first {
        assert!(
            facts.slope > 0.0,
            "price rose {first}→{last}, slope {}",
            facts.slope
        );
    } else {
        assert!(
            facts.slope < 0.0,
            "price fell {first}→{last}, slope {}",
            facts.slope
        );
    }
    // The trend fact is queryable.
    let rows = kb
        .query("SELECT ?t WHERE { <kb:model_globex> <kb:trend> ?t . }")
        .unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn vision_consensus_suppresses_hallucinations() {
    let env = SimEnv::with_seed(4003);
    let fleet = vision_fleet(&env);
    let mut majority_correct = 0usize;
    let mut majority_total = 0usize;
    for seed in 0..30 {
        let image = ImageDescriptor::generate(seed);
        let mut votes: std::collections::BTreeMap<String, usize> = Default::default();
        let mut responders = 0;
        for vendor in &fleet {
            let out = vendor.invoke(&Request::new(
                "classify",
                json!({"image": (image.to_json())}),
            ));
            let Ok(resp) = out.result else { continue };
            responders += 1;
            for l in resp
                .payload
                .get("labels")
                .and_then(Json::as_array)
                .unwrap_or(&[])
            {
                if let Some(label) = l.get("label").and_then(Json::as_str) {
                    *votes.entry(label.to_string()).or_insert(0) += 1;
                }
            }
        }
        for (label, n) in votes {
            if n * 2 > responders {
                majority_total += 1;
                if image.labels.contains(&label) {
                    majority_correct += 1;
                }
            }
        }
    }
    let precision = majority_correct as f64 / majority_total.max(1) as f64;
    assert!(
        precision > 0.97,
        "majority-vote precision {precision} ({majority_correct}/{majority_total})"
    );
}

#[test]
fn ranked_selection_between_two_knowledge_sources() {
    // Two mirrors of the same knowledge source; the SDK learns which is
    // faster and routes there.
    let env = SimEnv::with_seed(4004);
    let sdk = RichSdk::new(&env);
    sdk.register(knowledge_service(&env, "kb-east"));
    sdk.register(knowledge_service(&env, "kb-west"));
    let req = Request::new("lookup", json!({"op": "lookup", "entity": "Japan"}));
    for _ in 0..20 {
        let _ = sdk.invoke("kb-east", &req);
        let _ = sdk.invoke("kb-west", &req);
    }
    let ok = sdk
        .invoke_class("knowledge", &req, &RankOptions::default())
        .unwrap();
    // Either can win (same latency model, different draws); the point is
    // that class invocation works over the data services and the winner
    // matches the monitor's faster service.
    let east = sdk
        .monitor()
        .history("kb-east")
        .unwrap()
        .mean_latency_ms()
        .unwrap();
    let west = sdk
        .monitor()
        .history("kb-west")
        .unwrap()
        .mean_latency_ms()
        .unwrap();
    let expected = if east <= west { "kb-east" } else { "kb-west" };
    assert_eq!(ok.service, expected, "east={east:.1}ms west={west:.1}ms");
}

#[test]
fn data_services_reachable_through_http_gateway() {
    let env = SimEnv::with_seed(4005);
    let sdk = Arc::new(RichSdk::new(&env));
    sdk.register(knowledge_service(&env, "dbpedia-sim"));
    sdk.register(finance_service(&env, "stocks"));
    let gateway = HttpGateway::new(sdk);

    let body = r#"{"operation": "lookup", "payload": {"op": "lookup", "entity": "France"}}"#;
    let raw = gateway.handle_text(&format!(
        "POST /invoke/dbpedia-sim HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    ));
    assert!(raw.contains("dbpedia.org/resource/France"), "{raw}");

    let body = r#"{"payload": {"op": "quote", "ticker": "IBM"}}"#;
    let raw = gateway.handle_text(&format!(
        "POST /invoke/stocks HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    ));
    assert!(raw.contains("\"price\":"), "{raw}");
}

#[test]
fn federated_query_merges_local_and_remote_knowledge() {
    let env = SimEnv::with_seed(4006);
    let sdk = RichSdk::new(&env);
    let dbpedia = knowledge_service(&env, "dbpedia-sim");
    sdk.register(dbpedia.clone());
    let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());

    // Local private knowledge + public facts at the remote source share
    // one query shape.
    kb.add_statement(cogsdk::rdf::Statement::new(
        cogsdk::rdf::Term::iri("kb:wakanda"),
        cogsdk::rdf::Term::iri("db:continent"),
        cogsdk::rdf::Term::iri("db:africa"),
    ))
    .unwrap();
    let rows = kb
        .query_federated(
            &dbpedia,
            sdk.monitor(),
            "SELECT ?c WHERE { ?c <db:continent> <db:africa> . }",
        )
        .unwrap();
    let names: Vec<String> = rows.iter().map(|r| r["c"].to_string()).collect();
    assert!(names.contains(&"<kb:wakanda>".to_string()), "{names:?}");
    assert!(names.contains(&"<db:egypt>".to_string()), "{names:?}");
    assert!(
        names.contains(&"<db:south_africa>".to_string()),
        "{names:?}"
    );
}

#[test]
fn import_entity_brings_remote_facts_with_source_confidence() {
    let env = SimEnv::with_seed(4007);
    let sdk = RichSdk::new(&env);
    let dbpedia = knowledge_service(&env, "dbpedia-sim");
    sdk.register(dbpedia.clone());
    let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());

    let added = kb
        .import_entity(&dbpedia, sdk.monitor(), "germany", 0.8)
        .unwrap();
    assert!(added >= 5, "added {added}");
    // Imported facts are queryable locally, in the kb: namespace.
    let rows = kb
        .query("SELECT ?cap WHERE { <kb:germany> <kb:capital> ?cap . }")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0]["cap"], cogsdk::rdf::Term::iri("kb:berlin"));
    // And each carries the source's accuracy level.
    let st = cogsdk::rdf::Statement::new(
        cogsdk::rdf::Term::iri("kb:germany"),
        cogsdk::rdf::Term::iri("kb:capital"),
        cogsdk::rdf::Term::iri("kb:berlin"),
    );
    assert_eq!(kb.fact_confidence(&st), Some(0.8));
    // Weighted inference dilutes facts derived from the shaky source.
    let inferred = kb
        .infer_rules_weighted("[(?c kb:capital ?k) -> (?k kb:capital_of ?c)]", 1.0)
        .unwrap();
    assert_eq!(inferred.len(), 1);
    assert!((inferred[0].1 - 0.8).abs() < 1e-9);
    // Unknown entities at the source surface properly.
    assert!(matches!(
        kb.import_entity(&dbpedia, sdk.monitor(), "atlantis", 0.9),
        Err(cogsdk::kb::KbError::UnknownEntity(_))
    ));
}

#[test]
fn image_search_classify_aggregate_pipeline() {
    // §2.2's visual Figure-3: search images -> classify with the vision
    // fleet -> aggregate label frequencies, checked against the corpus's
    // planted labels.
    use cogsdk::datasvc::images::{image_search_service, ImageCorpus};
    let env = SimEnv::with_seed(4008);
    let sdk = RichSdk::new(&env);
    let corpus = Arc::new(ImageCorpus::generate(9, 400));
    let search = image_search_service(&env, "img-search", corpus.clone());
    sdk.register(search.clone());
    let fleet = vision_fleet(&env);
    for v in &fleet {
        sdk.register(v.clone());
    }

    // Stage 1: search.
    let resp = sdk
        .invoke(
            "img-search",
            &Request::new("search", json!({"query": "dog", "limit": 6})),
        )
        .unwrap();
    let images = resp
        .payload
        .get("images")
        .unwrap()
        .as_array()
        .unwrap()
        .to_vec();
    assert!(!images.is_empty());

    // Stage 2+3: classify each hit with the best vendor, aggregate.
    let mut label_counts: std::collections::BTreeMap<String, usize> = Default::default();
    let mut classified = 0;
    for img in &images {
        let Ok(resp) = sdk.invoke(
            fleet[0].name(),
            &Request::new("classify", json!({"image": (img.clone())})),
        ) else {
            continue;
        };
        classified += 1;
        for l in resp
            .payload
            .get("labels")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            if let Some(label) = l.get("label").and_then(Json::as_str) {
                *label_counts.entry(label.to_string()).or_insert(0) += 1;
            }
        }
    }
    assert!(
        classified >= images.len() - 1,
        "classified {classified}/{}",
        images.len()
    );
    // Every searched image was planted with "dog": the aggregate must be
    // dominated by it (vision-alpha has 95% recall).
    let dog = label_counts.get("dog").copied().unwrap_or(0);
    assert!(
        dog as f64 >= classified as f64 * 0.7,
        "dog={dog}/{classified}: {label_counts:?}"
    );
    let max = label_counts.values().max().copied().unwrap_or(0);
    assert_eq!(dog, max, "planted query label should top the aggregate");
}
