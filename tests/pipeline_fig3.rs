//! Integration: the full Figure-3 NLU pipeline across `cogsdk-core`,
//! `cogsdk-search`, `cogsdk-text` and `cogsdk-sim` — search the simulated
//! web, fetch the HTML, analyze with simulated NLU vendors, aggregate,
//! and verify against the corpus generator's planted ground truth.

use cogsdk::sdk::RichSdk;
use cogsdk::search::services::standard_web;
use cogsdk::sim::failure::FailurePlan;
use cogsdk::sim::{SimEnv, SimService};
use cogsdk::text::analysis::{Analyzer, NluConfig};
use cogsdk::text::services::{nlu_service, standard_fleet, NluVendorSpec};
use std::sync::Arc;

fn reliable_nlu(env: &SimEnv, name: &str, config: NluConfig) -> Arc<SimService> {
    let mut spec = NluVendorSpec::new(name, config);
    spec.failures = FailurePlan::reliable();
    nlu_service(env, Arc::new(Analyzer::with_default_lexicons()), spec)
}

#[test]
fn search_fetch_analyze_aggregate_end_to_end() {
    let env = SimEnv::with_seed(1001);
    let sdk = RichSdk::new(&env);
    let (engines, web, index) = standard_web(&env, 42, 300);
    let nlu = reliable_nlu(&env, "nlu", NluConfig::perfect());

    let agg = sdk
        .nlu()
        .search_and_analyze(&engines[0], &web, &nlu, "energy market", 10)
        .unwrap();

    assert!(agg.documents >= 5, "documents={}", agg.documents);
    assert!(!agg.entities.is_empty());
    assert!(!agg.keywords.is_empty());
    assert!(!agg.concepts.is_empty());

    // Ground truth: the aggregated entities must be drawn from the
    // entities the generator planted in the fetched documents.
    let stored = sdk.nlu().document_store().by_query("energy market");
    assert_eq!(stored.len(), agg.documents);
    let mut planted: Vec<String> = stored
        .iter()
        .filter_map(|d| index.by_url(&d.url))
        .flat_map(|d| d.doc.planted_entities.clone())
        .collect();
    planted.sort();
    planted.dedup();
    for entity in &agg.entities {
        assert!(
            planted.contains(&entity.canonical),
            "aggregated entity {} was never planted",
            entity.canonical
        );
    }
}

#[test]
fn pipeline_survives_flaky_web_and_nlu() {
    let env = SimEnv::with_seed(1002);
    let sdk = RichSdk::new(&env);
    let (engines, web, _index) = standard_web(&env, 42, 200);
    // A lossy vendor with real failures; retries inside the support
    // layer must keep the pipeline productive.
    let analyzer = Arc::new(Analyzer::with_default_lexicons());
    let mut spec = NluVendorSpec::new("nlu-flaky", NluConfig::perfect());
    spec.failures = FailurePlan::flaky(0.2);
    let nlu = nlu_service(&env, analyzer, spec);

    let agg = sdk
        .nlu()
        .search_and_analyze(&engines[1], &web, &nlu, "market report", 8)
        .unwrap();
    assert!(
        agg.documents >= 4,
        "flakiness should not starve the pipeline"
    );
}

#[test]
fn aggregate_sentiment_tracks_planted_slant() {
    // Documents the generator slanted positive must aggregate more
    // positively than ones slanted negative.
    let env = SimEnv::with_seed(1003);
    let sdk = RichSdk::new(&env);
    let nlu = reliable_nlu(&env, "nlu", NluConfig::perfect());
    let docs = cogsdk::text::corpus::CorpusGenerator::new(77).generate(120);
    let positive: Vec<String> = docs
        .iter()
        .filter(|d| d.slant > 0.5)
        .map(|d| d.body.clone())
        .collect();
    let negative: Vec<String> = docs
        .iter()
        .filter(|d| d.slant < -0.5)
        .map(|d| d.body.clone())
        .collect();
    assert!(positive.len() >= 5 && negative.len() >= 5);
    let pos = sdk.nlu().analyze_documents(&nlu, &positive);
    let neg = sdk.nlu().analyze_documents(&nlu, &negative);
    assert!(
        pos.mean_sentiment > neg.mean_sentiment + 0.3,
        "pos={} neg={}",
        pos.mean_sentiment,
        neg.mean_sentiment
    );
}

#[test]
fn multi_vendor_consensus_orders_by_agreement() {
    let env = SimEnv::with_seed(1004);
    let sdk = RichSdk::new(&env);
    let fleet = standard_fleet(&env, Arc::new(Analyzer::with_default_lexicons()));
    let text = "IBM acquired Oracle. Germany, France, Japan, India, Brazil and \
                Canada commented. Microsoft and Google and Amazon and Apple watched.";
    let consensus = sdk.nlu().consensus_analyze(&fleet, text);
    assert!(consensus.responding_services.len() >= 2);
    // Descending confidence, all within (0,1].
    assert!(consensus
        .entities
        .windows(2)
        .all(|w| w[0].confidence >= w[1].confidence));
    // The perfect-recall vendor sees everything, the lossy one misses
    // some: confidences must not all be equal.
    let distinct: std::collections::BTreeSet<String> = consensus
        .entities
        .iter()
        .map(|e| format!("{:.3}", e.confidence))
        .collect();
    assert!(
        distinct.len() > 1,
        "expected varying confidence: {distinct:?}"
    );
}

#[test]
fn html_of_stored_documents_reanalyzes_identically() {
    // §2.2: storing documents locally allows re-analysis without
    // re-fetching; the analysis of the stored copy must match.
    let env = SimEnv::with_seed(1005);
    let sdk = RichSdk::new(&env);
    let (engines, web, _index) = standard_web(&env, 42, 100);
    let nlu = reliable_nlu(&env, "nlu", NluConfig::perfect());

    let hits = sdk
        .nlu()
        .web_search(&engines[0], "growth", 3, false)
        .unwrap();
    let doc = sdk
        .nlu()
        .fetch_document(&web, &hits[0].url, "growth")
        .unwrap();
    let text = cogsdk::search::html::extract_text(&doc.html);
    let first = sdk.nlu().analyze_text(&nlu, &text).unwrap();

    // Second pass: from the local store, no web service involved.
    let stored = sdk.nlu().document_store().by_url(&hits[0].url).unwrap();
    let again = sdk
        .nlu()
        .analyze_text(&nlu, &cogsdk::search::html::extract_text(&stored.html))
        .unwrap();
    assert_eq!(first.entities, again.entities);
    assert_eq!(first.sentiment, again.sentiment);
}
