//! Integration: the telemetry layer under concurrency.
//!
//! Hammers `RichSdk::invoke_class` from many `ThreadPool` threads at once
//! and checks that the tracer's event log, the metrics registry and the
//! service monitor all reconcile — no events lost, no double counting,
//! and the histogram totals equal the attempt counters.

use cogsdk::json::json;
use cogsdk::obs::Telemetry;
use cogsdk::sdk::rank::RankOptions;
use cogsdk::sdk::{RichSdk, ThreadPool};
use cogsdk::sim::latency::LatencyModel;
use cogsdk::sim::{Request, SimEnv, SimService};
use std::sync::Arc;

const DRIVERS: usize = 8;
const CALLS_PER_DRIVER: usize = 25;
const TOTAL: usize = DRIVERS * CALLS_PER_DRIVER;

#[test]
fn concurrent_invocations_reconcile_across_all_layers() {
    let env = SimEnv::with_seed(4242);
    let telemetry = Telemetry::new();
    let sdk = Arc::new(RichSdk::with_telemetry(&env, telemetry.clone()));
    for (name, ms) in [("alpha", 2.0), ("beta", 8.0)] {
        sdk.register(
            SimService::builder(name, "cls")
                .latency(LatencyModel::constant_ms(ms))
                .build(&env),
        );
    }

    // A separate driver pool (not the SDK's own) hammers invoke_class.
    let drivers = ThreadPool::new(DRIVERS);
    let futures: Vec<_> = (0..DRIVERS)
        .map(|d| {
            let sdk = sdk.clone();
            drivers.submit(move || {
                let mut ok = 0usize;
                for i in 0..CALLS_PER_DRIVER {
                    let request =
                        Request::new("op", json!({"driver": (d as i64), "i": (i as i64)}));
                    if sdk
                        .invoke_class("cls", &request, &RankOptions::default())
                        .is_ok()
                    {
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let successes: usize = futures.iter().map(|f| *f.wait()).sum();
    assert_eq!(successes, TOTAL, "healthy services: every call succeeds");

    // --- Tracer ⇄ call-count reconciliation -------------------------------
    assert_eq!(telemetry.tracer().dropped(), 0, "ring must not overflow");
    let events = telemetry.tracer().events();
    let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count();
    assert_eq!(count("invoke_start"), TOTAL);
    assert_eq!(count("invoke_end"), TOTAL);
    assert_eq!(count("prediction_issued"), TOTAL);
    // Healthy services: exactly one failover leg and one attempt per call.
    assert_eq!(count("failover_leg"), TOTAL);
    assert_eq!(count("attempt"), TOTAL);

    // Every trace is complete and internally consistent: one start, one
    // end, and the end comes last.
    use std::collections::HashMap;
    let mut per_trace: HashMap<u64, Vec<&str>> = HashMap::new();
    for e in &events {
        per_trace.entry(e.trace.0).or_default().push(e.kind.name());
    }
    assert_eq!(per_trace.len(), TOTAL, "one trace per invocation");
    for (trace, names) in &per_trace {
        assert_eq!(
            names.iter().filter(|n| **n == "invoke_start").count(),
            1,
            "trace t{trace}: {names:?}"
        );
        assert_eq!(names.first(), Some(&"invoke_start"), "t{trace}: {names:?}");
        assert_eq!(names.last(), Some(&"invoke_end"), "t{trace}: {names:?}");
    }

    // --- Metrics ⇄ tracer reconciliation ----------------------------------
    let metrics = telemetry.metrics();
    assert_eq!(metrics.counter_sum("sdk_attempts_total"), TOTAL as u64);
    assert_eq!(metrics.counter_sum("sdk_failover_legs_total"), TOTAL as u64);
    assert_eq!(metrics.counter_sum("sdk_errors_total"), 0);
    assert_eq!(
        metrics.histogram_total_count("sdk_attempt_latency_ms"),
        TOTAL as u64,
        "histogram observations equal attempts"
    );
    assert_eq!(
        metrics.histogram_total_count("sdk_prediction_error_ms"),
        TOTAL as u64
    );

    // --- Monitor ⇄ metrics reconciliation ---------------------------------
    let observed: usize = ["alpha", "beta"]
        .iter()
        .filter_map(|s| sdk.monitor().history(s))
        .map(|h| h.observations().len())
        .sum();
    assert_eq!(
        observed, TOTAL,
        "monitor saw exactly one record per attempt"
    );
}

/// Satellite: snapshotting the registry while writers are mid-flight
/// must always observe a consistent state — every snapshot parses as a
/// full exposition and counter totals only ever grow.
#[test]
fn snapshot_under_concurrent_writes_stays_consistent() {
    use cogsdk::obs::{prometheus_text, MetricsRegistry};
    let metrics = Arc::new(MetricsRegistry::new());
    let writers = ThreadPool::new(4);
    let futures: Vec<_> = (0..4)
        .map(|w| {
            let metrics = metrics.clone();
            writers.submit(move || {
                for i in 0..500u64 {
                    let shard = format!("s{}", i % 3);
                    metrics.inc_counter("race_total", &[("writer", &shard)]);
                    metrics.observe("race_ms", &[], (w * 500 + i) as f64 % 17.0);
                    metrics.set_gauge("race_depth", &[], i as f64);
                }
            })
        })
        .collect();
    let mut last_total = 0u64;
    // Interleave snapshots with the writes; each must be internally
    // consistent and totals monotone.
    loop {
        let total = metrics.counter_sum("race_total");
        assert!(total >= last_total, "counter went backwards");
        last_total = total;
        let text = prometheus_text(&metrics);
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "malformed exposition line: {line}"
            );
        }
        if futures.iter().all(|f| f.poll().is_some()) {
            break;
        }
    }
    for f in &futures {
        f.wait();
    }
    assert_eq!(metrics.counter_sum("race_total"), 2_000);
    assert_eq!(metrics.histogram_total_count("race_ms"), 2_000);
}

/// Satellite: a misbehaving (or adversarial) caller minting unbounded
/// tenant label values cannot blow up series cardinality — the registry
/// caps distinct label sets per metric and counts what it rejected, and
/// the tracer folds excess tenants into `"other"`.
#[test]
fn tenant_label_cardinality_is_bounded() {
    use cogsdk::obs::{MetricsRegistry, SERIES_REJECTED_METRIC};
    let metrics = Arc::new(MetricsRegistry::with_series_limit(32));
    let writers = ThreadPool::new(4);
    let futures: Vec<_> = (0..4)
        .map(|w| {
            let metrics = metrics.clone();
            writers.submit(move || {
                for i in 0..100u64 {
                    let tenant = format!("tenant-{}", w * 100 + i as usize);
                    metrics.inc_counter("tenant_requests_total", &[("tenant", &tenant)]);
                }
            })
        })
        .collect();
    for f in &futures {
        f.wait();
    }
    assert_eq!(metrics.series_count("tenant_requests_total"), 32);
    assert_eq!(
        metrics.counter_sum("tenant_requests_total")
            + metrics.rejected_series("tenant_requests_total"),
        400,
        "every write either landed or was counted as rejected"
    );
    // Rejections are themselves exported, so the cap is never silent.
    let text = cogsdk::obs::prometheus_text(&metrics);
    assert!(
        text.contains(&format!(
            "{SERIES_REJECTED_METRIC}{{metric=\"tenant_requests_total\"}}"
        )),
        "{text}"
    );

    // Tracer-side: interning past MAX_TENANTS folds into "other".
    let telemetry = Telemetry::new();
    let tracer = telemetry.tracer();
    for i in 0..(cogsdk::obs::MAX_TENANTS + 10) {
        let id = tracer.intern_tenant(&format!("t{i}"));
        let name = tracer.tenant_name(id).expect("tenants resolve");
        if i < cogsdk::obs::MAX_TENANTS {
            assert_eq!(&*name, format!("t{i}").as_str());
        } else {
            assert_eq!(&*name, "other", "overflow tenants share one label");
        }
    }
}

#[test]
fn pool_queue_wait_is_visible_under_saturation() {
    let env = SimEnv::with_seed(4343);
    let telemetry = Telemetry::new();
    // One SDK worker, many queued jobs: queue wait must show up.
    let sdk = Arc::new(RichSdk::with_telemetry_config(
        &env,
        64,
        std::time::Duration::from_secs(60),
        1,
        telemetry.clone(),
    ));
    sdk.register(
        SimService::builder("only", "cls")
            .latency(LatencyModel::constant_ms(1.0))
            .build(&env),
    );
    let futures: Vec<_> = (0..16)
        .map(|i| sdk.invoke_async("only", Request::new("op", json!({"i": (i as i64)}))))
        .collect();
    for f in &futures {
        assert!(f.wait().is_ok());
    }
    let wait = telemetry
        .metrics()
        .histogram("pool_queue_wait_ms", &[])
        .expect("queue-wait histogram exists");
    assert_eq!(wait.count, 16);
    assert_eq!(
        telemetry.metrics().counter_value("pool_jobs_total", &[]),
        Some(16)
    );
    let events = telemetry.tracer().events();
    let enq = events
        .iter()
        .filter(|e| e.kind.name() == "pool_enqueue")
        .count();
    let deq = events
        .iter()
        .filter(|e| e.kind.name() == "pool_dequeue")
        .count();
    assert_eq!((enq, deq), (16, 16));
    assert_eq!(sdk.pool().queue_depth(), 0, "queue drains fully");
}
