//! Integration: service selection, prediction, failover and redundancy
//! under injected failures — the §2/§2.1 machinery end to end.

use cogsdk::json::json;
use cogsdk::sdk::invoke::{InvocationPolicy, RedundantMode};
use cogsdk::sdk::predict::Predictor;
use cogsdk::sdk::rank::RankOptions;
use cogsdk::sdk::score::ScoringFormula;
use cogsdk::sdk::RichSdk;
use cogsdk::sim::clock::SimTime;
use cogsdk::sim::cost::{CostModel, MicroDollars};
use cogsdk::sim::failure::{FailurePlan, OutageWindow};
use cogsdk::sim::latency::LatencyModel;
use cogsdk::sim::{Request, SimEnv, SimService};
use std::time::Duration;

fn req() -> Request {
    Request::new("op", json!({"payload": "data"}))
}

#[test]
fn selection_learns_true_latencies_from_observation() {
    let env = SimEnv::with_seed(2001);
    let sdk = RichSdk::new(&env);
    // Advertised metadata is identical; only observation can tell the
    // services apart.
    for (name, ms) in [("a", 5.0), ("b", 25.0), ("c", 60.0)] {
        sdk.register(
            SimService::builder(name, "cls")
                .latency(LatencyModel::lognormal_ms(ms, 0.2))
                .build(&env),
        );
    }
    for _ in 0..30 {
        for name in ["a", "b", "c"] {
            sdk.invoke(name, &req()).unwrap();
        }
    }
    let ranked = sdk.rank(
        "cls",
        &RankOptions {
            formula: ScoringFormula::weighted(1.0, 0.0, 0.0),
            ..RankOptions::default()
        },
    );
    let order: Vec<&str> = ranked.iter().map(|r| r.service.name()).collect();
    assert_eq!(order, vec!["a", "b", "c"]);
    // Predictions should be close to the true medians.
    assert!((ranked[0].inputs.response_ms - 5.0).abs() < 2.0);
    assert!((ranked[2].inputs.response_ms - 60.0).abs() < 15.0);
}

#[test]
fn failover_rides_through_a_scheduled_outage() {
    let env = SimEnv::with_seed(2002);
    let sdk = RichSdk::new(&env);
    // Primary is down for the first virtual second.
    sdk.register(
        SimService::builder("primary", "cls")
            .latency(LatencyModel::constant_ms(5.0))
            .quality(0.95)
            .failures(FailurePlan::reliable().with_outage(OutageWindow::new(
                SimTime::ZERO,
                SimTime::from_millis(1_000),
            )))
            .build(&env),
    );
    sdk.register(
        SimService::builder("secondary", "cls")
            .latency(LatencyModel::constant_ms(30.0))
            .quality(0.5)
            .build(&env),
    );

    // During the outage: the secondary answers.
    let ok = sdk
        .invoke_class("cls", &req(), &RankOptions::default())
        .unwrap();
    assert_eq!(ok.service, "secondary");

    // After the outage: the primary recovers and wins again (advance past
    // the window; rankings favor its quality).
    env.clock().advance(Duration::from_secs(2));
    let ok = sdk
        .invoke_class("cls", &req(), &RankOptions::default())
        .unwrap();
    assert_eq!(ok.service, "primary");
}

#[test]
fn retries_raise_effective_availability_as_predicted() {
    // Analytic shape: success = 1 - p^(k+1) for failure rate p and k
    // retries. Measure and compare.
    let env = SimEnv::with_seed(2003);
    let monitor = cogsdk::sdk::ServiceMonitor::new();
    let p = 0.4;
    let svc = SimService::builder("flaky", "cls")
        .latency(LatencyModel::constant_ms(1.0))
        .failures(FailurePlan::flaky(p))
        .build(&env);
    for retries in [0usize, 1, 3] {
        let n = 2_000;
        let ok = (0..n)
            .filter(|_| {
                cogsdk::sdk::invoke::invoke_with_retry(&svc, &req(), retries, &monitor)
                    .result
                    .is_ok()
            })
            .count();
        let measured = ok as f64 / n as f64;
        let predicted = 1.0 - p.powi(retries as i32 + 1);
        assert!(
            (measured - predicted).abs() < 0.05,
            "retries={retries}: measured={measured:.3} predicted={predicted:.3}"
        );
    }
}

#[test]
fn redundant_storage_improves_durability_of_reads() {
    // §2.1: "it may be desirable to store the same data on different
    // cloud databases. This provides redundancy."
    let env = SimEnv::with_seed(2004);
    let sdk = RichSdk::new(&env);
    for (name, rate) in [("store-1", 0.3), ("store-2", 0.3), ("store-3", 0.3)] {
        sdk.register(
            SimService::builder(name, "storage")
                .latency(LatencyModel::constant_ms(10.0))
                .failures(FailurePlan::flaky(rate))
                .build(&env),
        );
    }
    sdk.set_policy(InvocationPolicy {
        default_retries: 0,
        ..InvocationPolicy::default()
    });
    let mut single_ok = 0;
    let mut redundant_ok = 0;
    let n = 300;
    for _ in 0..n {
        if sdk.invoke("store-1", &req()).is_ok() {
            single_ok += 1;
        }
        if sdk
            .invoke_redundant_parallel(
                "storage",
                &req(),
                &RankOptions::default(),
                3,
                RedundantMode::Quorum(1),
            )
            .is_ok()
        {
            redundant_ok += 1;
        }
    }
    let single = single_ok as f64 / n as f64;
    let redundant = redundant_ok as f64 / n as f64;
    // 1 - 0.3 = 0.7 vs 1 - 0.3^3 ≈ 0.973.
    assert!(single < 0.85, "single={single}");
    assert!(redundant > 0.92, "redundant={redundant}");
    assert!(redundant > single + 0.1);
}

#[test]
fn cost_aware_ranking_prefers_free_tier_under_cost_weight() {
    let env = SimEnv::with_seed(2005);
    let sdk = RichSdk::new(&env);
    sdk.register(
        SimService::builder("premium", "cls")
            .latency(LatencyModel::constant_ms(5.0))
            .cost(CostModel::PerCall(MicroDollars::from_micros(5_000)))
            .quality(0.9)
            .build(&env),
    );
    sdk.register(
        SimService::builder("free", "cls")
            .latency(LatencyModel::constant_ms(40.0))
            .cost(CostModel::Free)
            .quality(0.6)
            .build(&env),
    );
    // Warm both so costs are observed.
    for _ in 0..5 {
        sdk.invoke("premium", &req()).unwrap();
        sdk.invoke("free", &req()).unwrap();
    }
    let latency_first = sdk.rank(
        "cls",
        &RankOptions {
            formula: ScoringFormula::normalized(1.0, 0.0, 0.0),
            ..RankOptions::default()
        },
    );
    assert_eq!(latency_first[0].service.name(), "premium");
    let cost_first = sdk.rank(
        "cls",
        &RankOptions {
            formula: ScoringFormula::normalized(0.0, 1.0, 0.0),
            ..RankOptions::default()
        },
    );
    assert_eq!(cost_first[0].service.name(), "free");
}

#[test]
fn size_conditioned_prediction_beats_mean_on_heterogeneous_sizes() {
    // Train on mixed sizes; at extreme sizes the regression predictor
    // must out-predict the global mean.
    let env = SimEnv::with_seed(2006);
    let sdk = RichSdk::new(&env);
    sdk.register(
        SimService::builder("sized", "cls")
            .latency(LatencyModel::SizeLinear {
                base_ms: 2.0,
                per_byte_ms: 0.005,
                jitter: 0.05,
            })
            .build(&env),
    );
    for i in 1..=40 {
        let body = json!({"b": ("x".repeat(i * 100))});
        let size = body.size_bytes() as f64;
        let r = Request::new("op", body).with_param("size", size);
        sdk.invoke("sized", &r).unwrap();
    }
    let history = sdk.monitor().history("sized").unwrap();
    let big = vec![("size".to_string(), 20_000.0)];
    let truth = 2.0 + 0.005 * 20_000.0;
    let by_regression = Predictor::RegressionOn("size".into())
        .predict(&history, &big)
        .unwrap();
    let by_mean = Predictor::Mean.predict(&history, &big).unwrap();
    assert!(
        (by_regression - truth).abs() < (by_mean - truth).abs() / 3.0,
        "regression={by_regression:.1} mean={by_mean:.1} truth={truth:.1}"
    );
}

#[test]
fn ewma_reranks_during_brownout_faster_than_mean() {
    // A brown-out (§2's time-varying performance): "primary" slows 10×
    // for a window. EWMA-driven ranking should switch to the backup
    // within a few observations; mean-driven ranking lags.
    use cogsdk::sim::clock::SimTime;
    use cogsdk::sim::failure::OutageWindow;
    let env = SimEnv::with_seed(2007);
    let sdk = RichSdk::new(&env);
    sdk.register(
        SimService::builder("primary", "cls")
            .latency(LatencyModel::constant_ms(10.0))
            .failures(FailurePlan::reliable().with_degradation(
                OutageWindow::new(SimTime::from_millis(2_500), SimTime::from_millis(400_000)),
                10.0,
            ))
            .build(&env),
    );
    sdk.register(
        SimService::builder("backup", "cls")
            .latency(LatencyModel::constant_ms(40.0))
            .build(&env),
    );
    // Healthy phase: both observed repeatedly; primary wins.
    for _ in 0..50 {
        sdk.invoke("primary", &req()).unwrap();
        sdk.invoke("backup", &req()).unwrap();
    }
    let latency_only = |p: cogsdk::sdk::predict::Predictor| RankOptions {
        predictor: p,
        formula: cogsdk::sdk::score::ScoringFormula::weighted(1.0, 0.0, 0.0),
        ..RankOptions::default()
    };
    // 50 rounds x (10ms + 40ms) = 2500ms: the brown-out has begun.
    assert!(
        env.clock().now() >= SimTime::from_millis(2_500),
        "brown-out began"
    );
    // Brown-out phase: observe a handful of degraded calls.
    for _ in 0..8 {
        sdk.invoke("primary", &req()).unwrap();
        sdk.invoke("backup", &req()).unwrap();
    }
    let by_ewma = sdk.rank(
        "cls",
        &latency_only(cogsdk::sdk::predict::Predictor::Ewma(0.4)),
    );
    let by_mean = sdk.rank("cls", &latency_only(cogsdk::sdk::predict::Predictor::Mean));
    assert_eq!(
        by_ewma[0].service.name(),
        "backup",
        "EWMA should have tracked the regime change: {:?}",
        by_ewma
            .iter()
            .map(|r| (r.service.name().to_string(), r.inputs.response_ms))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        by_mean[0].service.name(),
        "primary",
        "mean still dominated by 50 healthy observations"
    );
}
