//! Integration: the personalized knowledge base across `cogsdk-kb`,
//! `cogsdk-rdf`, `cogsdk-store`, `cogsdk-stats` and `cogsdk-text` —
//! Figure 5's analyze→store→infer loop, format-conversion fidelity,
//! encrypted persistence, and disconnected operation.

use cogsdk::kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk::rdf::{Statement, Term};
use cogsdk::store::{KeyValueStore, MemoryKv};
use std::sync::Arc;

fn kb() -> PersonalKnowledgeBase {
    PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default())
}

#[test]
fn figure5_loop_generates_knowledge_beyond_statistics() {
    let kb = kb();
    // Ingest: a company's quarterly revenue, growing.
    let mut csv = String::from("quarter,revenue\n");
    for q in 0..12 {
        csv.push_str(&format!("{q},{}\n", 1000.0 + 55.0 * q as f64));
    }
    kb.ingest_csv("revenue", &csv).unwrap();

    // Analyze + store results as RDF.
    let facts = kb
        .regress_and_store("revenue", "quarter", "revenue", "acme revenue")
        .unwrap();
    assert!((facts.slope - 55.0).abs() < 1e-6);

    // Infer: symbolic rules over the numeric analysis.
    let inferred = kb
        .infer_rules(
            "[(?m kb:trend \"increasing\") -> (?m kb:classification kb:GrowthIndicator)]\n\
             [(?m kb:classification kb:GrowthIndicator) -> (?m kb:action kb:IncreaseInvestment)]",
        )
        .unwrap();
    assert_eq!(inferred, 2, "rule chain fires transitively");
    let rows = kb
        .query("SELECT ?m WHERE { ?m <kb:action> <kb:IncreaseInvestment> . }")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0]["m"], Term::iri("kb:model_acme_revenue"));
}

#[test]
fn csv_table_rdf_conversion_preserves_values() {
    let kb = kb();
    kb.ingest_csv(
        "cities",
        "city,population,coastal\nnyc,8400000,true\nberlin,3700000,false\n",
    )
    .unwrap();
    kb.table_to_rdf("cities", "city", "kb").unwrap();
    // Values must survive the conversion typed.
    let rows = kb
        .query("SELECT ?p WHERE { <kb:nyc> <kb:population> ?p . }")
        .unwrap();
    assert_eq!(rows[0]["p"], Term::integer(8_400_000));
    let rows = kb
        .query("SELECT ?c WHERE { ?c <kb:coastal> true . }")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0]["c"], Term::iri("kb:nyc"));
    // And back out as CSV.
    let out = kb.export_csv("cities").unwrap();
    assert!(out.contains("nyc,8400000,true"));
}

#[test]
fn disambiguated_ingestion_prevents_redundant_entries() {
    // The paper's motivating scenario: the same country referenced five
    // ways must produce one subject, not five.
    let kb = kb();
    let phrasings = [
        "The USA expanded.",
        "The United States of America expanded.",
        "America expanded.",
        "The United States expanded.",
        "The US expanded.",
    ];
    for text in phrasings {
        kb.ingest_text(text).unwrap();
    }
    let rows = kb
        .query("SELECT ?d WHERE { ?d <kb:mentions> <kb:united_states> . }")
        .unwrap();
    assert_eq!(rows.len(), phrasings.len());
    // No other country-like subject appeared.
    let all_mentions = kb
        .query("SELECT ?d ?e WHERE { ?d <kb:mentions> ?e . }")
        .unwrap();
    assert!(all_mentions
        .iter()
        .all(|r| r["e"] == Term::iri("kb:united_states")));
}

#[test]
fn rdfs_plus_user_rules_compose() {
    let kb = kb();
    kb.add_statement(Statement::new(
        Term::iri("kb:organization"),
        Term::iri("rdfs:subClassOf"),
        Term::iri("kb:legal_person"),
    ))
    .unwrap();
    kb.add_statement(Statement::new(
        Term::iri("kb:legal_person"),
        Term::iri("rdfs:subClassOf"),
        Term::iri("kb:agent"),
    ))
    .unwrap();
    kb.ingest_text("IBM acquired Oracle.").unwrap();
    kb.infer_rdfs().unwrap();
    // Chained subclass reasoning: organization ⊑ legal_person ⊑ agent.
    let rows = kb
        .query("SELECT ?x WHERE { ?x <rdf:type> <kb:agent> . }")
        .unwrap();
    let xs: Vec<&Term> = rows.iter().map(|r| &r["x"]).collect();
    assert!(xs.contains(&&Term::iri("kb:ibm")), "{xs:?}");
    assert!(xs.contains(&&Term::iri("kb:oracle")));
    // User rule over the extracted relation.
    let n = kb
        .infer_rules("[(?a kb:acquired ?b) -> (?b kb:owned_by ?a)]")
        .unwrap();
    assert_eq!(n, 1);
    let rows = kb
        .query("SELECT ?o WHERE { <kb:oracle> <kb:owned_by> ?o . }")
        .unwrap();
    assert_eq!(rows[0]["o"], Term::iri("kb:ibm"));
}

#[test]
fn encrypted_compressed_snapshots_are_opaque_and_recoverable() {
    let remote = Arc::new(MemoryKv::new());
    let kb = PersonalKnowledgeBase::new(
        remote.clone(),
        KbOptions {
            encryption_passphrase: Some("attic key".into()),
            compress: true,
            cache_capacity: 4,
            ..KbOptions::default()
        },
    );
    for i in 0..20 {
        kb.add_statement(Statement::new(
            Term::iri(format!("kb:subject_{i}")),
            Term::iri("kb:confidential_salary"),
            Term::integer(100_000 + i),
        ))
        .unwrap();
    }
    kb.persist_graph("hr").unwrap();
    let on_remote = remote.get("hr").unwrap();
    // No plaintext predicate or value text leaks.
    assert!(!on_remote
        .windows(b"confidential".len())
        .any(|w| w == b"confidential"));
    // A second KB with the right passphrase recovers everything.
    let kb2 = PersonalKnowledgeBase::new(
        remote.clone(),
        KbOptions {
            encryption_passphrase: Some("attic key".into()),
            compress: true,
            cache_capacity: 4,
            ..KbOptions::default()
        },
    );
    assert_eq!(kb2.load_graph("hr").unwrap(), 20);
    // The wrong passphrase fails closed.
    let kb3 = PersonalKnowledgeBase::new(
        remote,
        KbOptions {
            encryption_passphrase: Some("wrong".into()),
            compress: true,
            cache_capacity: 4,
            ..KbOptions::default()
        },
    );
    assert!(kb3.load_graph("hr").is_err());
}

#[test]
fn offline_work_survives_reconnect_cycle() {
    let cloud = Arc::new(MemoryKv::new());
    let kb = PersonalKnowledgeBase::new(cloud.clone(), KbOptions::default());
    kb.add_fact("IBM", "hq", "New York").unwrap();
    kb.persist_graph("facts").unwrap();
    assert!(cloud.get("facts").is_ok());

    kb.set_connected(false);
    kb.add_fact("Google", "hq", "California").unwrap();
    kb.persist_graph("facts").unwrap();
    kb.ingest_csv("x", "a,b\n1,2\n").unwrap();
    let facts_offline = kb.statement_count();
    assert_eq!(kb.dirty_keys(), vec!["facts"]);

    kb.set_connected(true);
    let report = kb.synchronize();
    assert_eq!(report.pushed, vec!["facts"]);
    assert!(report.failed.is_empty());

    // A fresh KB reading the cloud sees the offline-era facts.
    let kb2 = PersonalKnowledgeBase::new(cloud, KbOptions::default());
    assert_eq!(kb2.load_graph("facts").unwrap(), facts_offline);
}

#[test]
fn spell_checker_matches_remote_service_quality_locally() {
    // §3: the local spell checker vs the remote service — identical
    // dictionary here, so identical corrections, but zero service calls.
    let env = cogsdk::sim::SimEnv::with_seed(3001);
    let remote = cogsdk::text::services::remote_spell_service(&env);
    let kb = kb();
    let text = "the goverment annouced a new policyy";
    let local_fixes = kb.spell_check(text);
    // Remote round trip.
    let req = cogsdk::sim::Request::new("check", cogsdk::json::json!({"text": (text)}));
    let remote_payload = loop {
        let o = remote.invoke(&req);
        if let Ok(resp) = o.result {
            break resp.payload;
        }
    };
    let remote_fixes = remote_payload
        .get("corrections")
        .and_then(cogsdk::json::Json::as_array)
        .unwrap()
        .len();
    assert_eq!(local_fixes.len(), remote_fixes);
    // And the local path consumed zero virtual time, while the remote
    // call advanced the clock.
    assert!(env.clock().now().as_micros() > 0);
}
