//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary inputs, spanning the storage, RDF, SDK and text layers.

use cogsdk::json::{json, Json};
use cogsdk::rdf::{Graph, Statement, Term};
use cogsdk::sdk::score::{ClassMaxima, ScoreInputs, ScoringFormula};
use cogsdk::sdk::ResponseCache;
use cogsdk::sim::SimEnv;
use cogsdk::store::compress::{compress, decompress};
use cogsdk::store::crypto::{decrypt, encrypt, Key};
use cogsdk::store::csv;
use proptest::prelude::*;
use std::time::Duration;

// ---------------------------------------------------------------------
// Storage invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn compression_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress(&data);
        prop_assert!(packed.len() <= data.len() + 1, "never grows by more than the tag byte");
        prop_assert_eq!(decompress(&packed).unwrap().to_vec(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&data);
    }

    #[test]
    fn crypto_round_trips_and_rejects_tampering(
        data in prop::collection::vec(any::<u8>(), 0..1024),
        passphrase in "[a-z]{1,16}",
        nonce in any::<u64>(),
        flip in any::<(u16, u8)>(),
    ) {
        let key = Key::derive(&passphrase);
        let ct = encrypt(&key, nonce, &data);
        prop_assert_eq!(decrypt(&key, &ct).unwrap().to_vec(), data);
        // Any single-byte corruption must be detected.
        let pos = flip.0 as usize % ct.len();
        let bit = flip.1 | 1; // never a zero XOR
        let mut bad = ct.to_vec();
        bad[pos] ^= bit;
        prop_assert!(decrypt(&key, &bad).is_err());
    }

    #[test]
    fn csv_records_round_trip(
        rows in prop::collection::vec(
            prop::collection::vec("[ -~]{0,20}", 1..6), 0..20)
    ) {
        // Ragged rows are legal at the record layer; normalize widths so
        // comparisons are meaningful.
        let width = rows.first().map_or(1, Vec::len);
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(width, String::new());
                r
            })
            .collect();
        let text = csv::write_records(&rows);
        let parsed = csv::parse_records(&text).unwrap();
        // write_records emits nothing for fully-empty input rows at the
        // tail; compare only when content exists.
        let expect: Vec<Vec<String>> = rows
            .into_iter()
            .filter(|r| !(r.len() == 1 && r[0].is_empty()))
            .collect();
        let got: Vec<Vec<String>> = parsed
            .into_iter()
            .filter(|r| !(r.len() == 1 && r[0].is_empty()))
            .collect();
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// RDF invariants
// ---------------------------------------------------------------------

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(Term::iri),
        "[a-z ]{0,12}".prop_map(Term::string),
        any::<i64>().prop_map(Term::integer),
        any::<bool>().prop_map(Term::boolean),
    ]
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    ("[a-z]{1,6}", "[a-z]{1,6}", arb_term())
        .prop_map(|(s, p, o)| Statement::new(Term::iri(s), Term::iri(p), o))
}

proptest! {
    #[test]
    fn graph_indexes_stay_consistent(
        inserts in prop::collection::vec(arb_statement(), 0..60),
        remove_mask in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        let mut graph = Graph::new();
        for st in &inserts {
            graph.insert(st.clone());
        }
        for (st, remove) in inserts.iter().zip(&remove_mask) {
            if *remove {
                graph.remove(st);
            }
        }
        // Every pattern-match view must agree with full iteration.
        let all: Vec<Statement> = graph.iter().collect();
        prop_assert_eq!(all.len(), graph.len());
        for st in &all {
            prop_assert!(graph.contains(st));
            prop_assert!(graph
                .match_pattern(Some(&st.subject), None, None)
                .contains(st));
            prop_assert!(graph
                .match_pattern(None, Some(&st.predicate), None)
                .contains(st));
            prop_assert!(graph
                .match_pattern(None, None, Some(&st.object))
                .contains(st));
            prop_assert_eq!(
                graph.match_pattern(Some(&st.subject), Some(&st.predicate), Some(&st.object)).len(),
                1
            );
        }
        // Removed statements are gone from every index.
        for (st, remove) in inserts.iter().zip(&remove_mask) {
            if *remove && !all.contains(st) {
                prop_assert!(graph.match_pattern(Some(&st.subject), Some(&st.predicate), Some(&st.object)).is_empty());
            }
        }
    }

    #[test]
    fn graph_text_serialization_round_trips(
        statements in prop::collection::vec(arb_statement(), 0..40)
    ) {
        let graph: Graph = statements.into_iter().collect();
        let text = cogsdk::kb::convert::graph_to_text(&graph);
        let back = cogsdk::kb::convert::text_to_graph(&text).unwrap();
        prop_assert_eq!(back, graph);
    }
}

// ---------------------------------------------------------------------
// Dictionary-encoding invariants
// ---------------------------------------------------------------------

/// Every [`Term`] variant, including doubles and blank nodes, so the
/// dictionary round-trip covers the full literal space.
fn arb_any_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z:/#]{1,12}".prop_map(Term::iri),
        "[a-z0-9]{1,8}".prop_map(Term::blank),
        "\\PC{0,16}".prop_map(Term::string),
        any::<i64>().prop_map(Term::integer),
        prop::num::f64::NORMAL.prop_map(Term::double),
        any::<bool>().prop_map(Term::boolean),
    ]
}

proptest! {
    #[test]
    fn dictionary_intern_resolve_round_trips_every_term_kind(
        terms in prop::collection::vec(arb_any_term(), 1..60),
    ) {
        use cogsdk::rdf::TermDict;
        let dict = TermDict::new();
        let ids: Vec<_> = terms.iter().map(|t| dict.intern(t)).collect();
        for (term, &id) in terms.iter().zip(&ids) {
            prop_assert_eq!(&dict.resolve(id), term);
            // Interning is idempotent and lookup agrees with intern.
            prop_assert_eq!(dict.intern(term), id);
            prop_assert_eq!(dict.lookup(term), Some(id));
            // The kind tag matches the term's shape.
            prop_assert_eq!(id.is_iri(), matches!(term, Term::Iri(_)));
            prop_assert_eq!(id.is_blank(), matches!(term, Term::Blank(_)));
            prop_assert_eq!(id.is_literal(), matches!(term, Term::Literal(_)));
        }
        // Distinct terms get distinct ids.
        let distinct: std::collections::BTreeSet<&Term> = terms.iter().collect();
        let distinct_ids: std::collections::BTreeSet<_> = ids.iter().collect();
        prop_assert_eq!(distinct.len(), distinct_ids.len());
        prop_assert_eq!(dict.len(), distinct.len());
    }
}

/// The interned graph must be observably equivalent to naive
/// set-of-statements semantics across a randomized workload of inserts,
/// removals, pattern matches, and cross-dictionary merges. Driven by the
/// SDK's own seeded SplitMix64 shim so failures replay exactly.
#[test]
fn interned_graph_matches_shadow_model_under_random_workload() {
    use cogsdk::rdf::{Graph, Statement, Term};
    use cogsdk::sim::rng::Rng;
    use std::collections::BTreeSet;

    for seed in 0..12u64 {
        let mut rng = Rng::new(0xD1C7_0000 + seed);
        let term = |rng: &mut Rng| -> Term {
            match rng.below(5) {
                0 | 1 => Term::iri(format!("e{}", rng.below(8))),
                2 => Term::string(format!("s{}", rng.below(4))),
                3 => Term::integer(rng.below(4) as i64),
                _ => Term::boolean(rng.chance(0.5)),
            }
        };
        let statement = |rng: &mut Rng| -> Statement {
            Statement::new(
                Term::iri(format!("e{}", rng.below(8))),
                Term::iri(format!("p{}", rng.below(4))),
                term(rng),
            )
        };
        let mut graph = Graph::new();
        let mut shadow: BTreeSet<Statement> = BTreeSet::new();
        // A second graph with its own dictionary, merged in mid-workload,
        // so `extend_from` has to translate ids across dictionaries.
        let mut other = Graph::new();
        for _ in 0..rng.below(20) {
            other.insert(statement(&mut rng));
        }
        for step in 0..400 {
            match rng.below(10) {
                0..=5 => {
                    let st = statement(&mut rng);
                    assert_eq!(graph.insert(st.clone()), shadow.insert(st));
                }
                6 | 7 => {
                    let st = statement(&mut rng);
                    assert_eq!(graph.remove(&st), shadow.remove(&st));
                }
                8 => {
                    // Pattern probe: every projection agrees with a naive
                    // scan of the shadow model.
                    let probe = statement(&mut rng);
                    let by_s = graph.match_pattern(Some(&probe.subject), None, None);
                    let naive: Vec<&Statement> = shadow
                        .iter()
                        .filter(|st| st.subject == probe.subject)
                        .collect();
                    assert_eq!(by_s.len(), naive.len(), "seed {seed} step {step}");
                    let by_po =
                        graph.match_pattern(None, Some(&probe.predicate), Some(&probe.object));
                    assert!(by_po.iter().all(|st| shadow.contains(st)));
                    assert_eq!(
                        graph.contains(&probe),
                        shadow.contains(&probe),
                        "seed {seed} step {step}"
                    );
                }
                _ => {
                    let merged = graph.extend_from(&other);
                    let before = shadow.len();
                    shadow.extend(other.iter());
                    assert_eq!(merged, shadow.len() - before, "seed {seed} step {step}");
                }
            }
            assert_eq!(graph.len(), shadow.len(), "seed {seed} step {step}");
        }
        let all: BTreeSet<Statement> = graph.iter().collect();
        assert_eq!(all, shadow, "seed {seed}: final contents diverged");
    }
}

// ---------------------------------------------------------------------
// SDK invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn cache_never_exceeds_capacity(
        capacity in 1usize..32,
        keys in prop::collection::vec("[a-e]{1,3}", 1..200),
    ) {
        let env = SimEnv::with_seed(1);
        let cache = ResponseCache::new(env.clock().clone(), capacity, Duration::from_secs(60));
        for (i, key) in keys.iter().enumerate() {
            cache.put(key.clone(), json!({"i": (i)}));
            prop_assert!(cache.len() <= capacity);
        }
        // Every hit returns the latest value put under that key.
        for key in &keys {
            if let Some(v) = cache.get(key) {
                let i = v.get("i").and_then(Json::as_usize).unwrap();
                prop_assert_eq!(&keys[i], key);
            }
        }
    }

    #[test]
    fn sharded_cache_invariants_hold_for_arbitrary_traffic(
        capacity in 1usize..64,
        shards in 1usize..32,
        ops in prop::collection::vec(("[a-f]{1,3}", any::<bool>()), 1..200),
    ) {
        use cogsdk::obs::Telemetry;
        use cogsdk::sdk::CacheConfig;
        let env = SimEnv::with_seed(7);
        let cache = ResponseCache::with_config(
            env.clock().clone(),
            CacheConfig {
                capacity,
                default_ttl: Duration::from_secs(60),
                shards,
                stale_while_revalidate: None,
            },
            Telemetry::disabled(),
        );
        let mut gets = 0u64;
        for (i, (key, is_put)) in ops.iter().enumerate() {
            if *is_put {
                cache.put(key.clone(), json!({"i": (i)}));
            } else {
                let _ = cache.get(key);
                gets += 1;
            }
            // Residency never exceeds capacity, and per-shard lengths
            // always account for exactly the whole cache.
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.shard_lens().iter().sum::<usize>(), cache.len());
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, gets);
        cache.clear();
        prop_assert_eq!(cache.len(), 0);
        prop_assert!(cache.shard_lens().iter().all(|&len| len == 0));
    }

    #[test]
    fn get_after_put_within_ttl_always_hits(
        shards in 1usize..17,
        keys in prop::collection::vec("[a-z]{1,6}", 1..48),
    ) {
        use cogsdk::obs::Telemetry;
        use cogsdk::sdk::CacheConfig;
        let env = SimEnv::with_seed(11);
        // Keys shard by hash, and capacity splits across shards — so a
        // skewed key set can evict within one shard while the cache is
        // globally under capacity. Give every shard room for the whole
        // key set; then eviction can never explain a miss and a put
        // within TTL must be observable.
        let cache = ResponseCache::with_config(
            env.clock().clone(),
            CacheConfig {
                capacity: shards * keys.len(),
                default_ttl: Duration::from_secs(60),
                shards,
                stale_while_revalidate: None,
            },
            Telemetry::disabled(),
        );
        for (i, key) in keys.iter().enumerate() {
            cache.put(key.clone(), json!({"i": (i)}));
            prop_assert!(cache.get(key).is_some(), "immediate get after put missed");
        }
        // The final value written under each key is the one served.
        for (i, key) in keys.iter().enumerate().rev() {
            if keys[i + 1..].contains(key) {
                continue; // overwritten later
            }
            let v = cache.get(key).expect("fresh entry must hit");
            prop_assert_eq!(v.get("i").and_then(Json::as_usize).unwrap(), i);
        }
    }

    #[test]
    fn scores_rank_monotonically_in_each_metric(
        r1 in 1.0f64..1000.0, r2 in 1.0f64..1000.0,
        c in 0.0f64..10_000.0, q in 0.0f64..1.0,
    ) {
        // Holding cost and quality fixed, a slower service never scores
        // better (lower) than a faster one — for Eq.1 and Eq.2 alike.
        let a = ScoreInputs { response_ms: r1.min(r2), cost_micros: c, quality: q };
        let b = ScoreInputs { response_ms: r1.max(r2), cost_micros: c, quality: q };
        let maxima = ClassMaxima::over(&[a, b]);
        for formula in [
            ScoringFormula::weighted(1.0, 0.001, 1.0),
            ScoringFormula::normalized(1.0, 1.0, 1.0),
        ] {
            prop_assert!(formula.score(&a, &maxima) <= formula.score(&b, &maxima) + 1e-12);
        }
    }

    #[test]
    fn retry_attempt_counts_bounded(retries in 0usize..6) {
        use cogsdk::sdk::invoke::invoke_with_retry_counted;
        use cogsdk::sdk::ServiceMonitor;
        use cogsdk::sim::failure::FailurePlan;
        use cogsdk::sim::{Request, SimService};
        let env = SimEnv::with_seed(retries as u64);
        let monitor = ServiceMonitor::new();
        let dead = SimService::builder("dead", "c")
            .failures(FailurePlan::flaky(1.0))
            .build(&env);
        let (outcome, attempts) =
            invoke_with_retry_counted(&dead, &Request::new("op", Json::Null), retries, &monitor);
        prop_assert!(outcome.result.is_err());
        prop_assert_eq!(attempts, retries + 1);
        prop_assert_eq!(
            monitor.history("dead").unwrap().observations().len(),
            retries + 1
        );
    }
}

// ---------------------------------------------------------------------
// Text invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn analyzer_never_panics_on_arbitrary_text(text in "\\PC{0,300}") {
        use cogsdk::text::analysis::{Analyzer, NluConfig};
        let analyzer = Analyzer::with_default_lexicons();
        let result = analyzer.analyze(&text, &NluConfig::perfect());
        prop_assert!(result.sentiment.score.abs() <= 1.0);
        for e in &result.entities {
            prop_assert!(!e.canonical.is_empty());
        }
    }

    #[test]
    fn html_extraction_never_panics_and_strips_tags(html in "\\PC{0,300}") {
        let text = cogsdk::search::html::extract_text(&html);
        // No complete tags survive extraction.
        prop_assert!(!text.contains("</"));
    }

    #[test]
    fn spell_checker_suggestions_are_dictionary_words(word in "[a-z]{2,8}") {
        use cogsdk::text::SpellChecker;
        let sc = SpellChecker::with_builtin_dictionary();
        if let Some(fix) = sc.correct(&word) {
            prop_assert!(sc.is_correct(&fix), "suggested non-word {fix}");
            prop_assert_ne!(fix, word);
        }
    }
}

// ---------------------------------------------------------------------
// Query-engine and reasoner invariants
// ---------------------------------------------------------------------

/// RDFS-flavored statements over a tiny vocabulary, so schema rules and
/// instance facts actually join during inference.
fn arb_rdfs_statement() -> impl Strategy<Value = Statement> {
    fn class() -> impl Strategy<Value = Term> {
        (0u8..4).prop_map(|i| Term::iri(format!("c{i}")))
    }
    fn prop() -> impl Strategy<Value = Term> {
        (0u8..3).prop_map(|i| Term::iri(format!("p{i}")))
    }
    fn ind() -> impl Strategy<Value = Term> {
        (0u8..4).prop_map(|i| Term::iri(format!("x{i}")))
    }
    prop_oneof![
        (class(), class()).prop_map(|(a, b)| Statement::new(a, Term::iri("rdfs:subClassOf"), b)),
        (prop(), prop()).prop_map(|(a, b)| Statement::new(a, Term::iri("rdfs:subPropertyOf"), b)),
        (prop(), class()).prop_map(|(p, c)| Statement::new(p, Term::iri("rdfs:domain"), c)),
        (prop(), class()).prop_map(|(p, c)| Statement::new(p, Term::iri("rdfs:range"), c)),
        (ind(), class()).prop_map(|(i, c)| Statement::new(i, Term::iri("rdf:type"), c)),
        (ind(), prop(), ind()).prop_map(|(s, p, o)| Statement::new(s, p, o)),
    ]
}

/// Edges over a five-node universe under one transitive predicate.
fn arb_edge_statement() -> impl Strategy<Value = Statement> {
    fn node() -> impl Strategy<Value = Term> {
        (0u8..5).prop_map(|i| Term::iri(format!("n{i}")))
    }
    (node(), node()).prop_map(|(s, o)| Statement::new(s, Term::iri("next"), o))
}

proptest! {
    #[test]
    fn sparql_single_pattern_matches_naive_scan(
        statements in prop::collection::vec(arb_statement(), 0..40),
        probe in arb_statement(),
    ) {
        use cogsdk::rdf::Query;
        let graph: Graph = statements.into_iter().collect();
        // Query by the probe's predicate with free subject/object.
        let Term::Iri(p) = &probe.predicate else { unreachable!() };
        let q = Query::parse(&format!("SELECT ?s ?o WHERE {{ ?s <{p}> ?o . }}")).unwrap();
        let rows = q.execute(&graph);
        let naive: Vec<Statement> =
            graph.match_pattern(None, Some(&probe.predicate), None);
        prop_assert_eq!(rows.len(), naive.len());
        for st in naive {
            prop_assert!(rows
                .iter()
                .any(|r| r["s"] == st.subject && r["o"] == st.object));
        }
    }

    #[test]
    fn owl_symmetric_closure_is_actually_symmetric(
        edges in prop::collection::vec(("[a-d]{1}", "[a-d]{1}"), 0..12),
    ) {
        use cogsdk::rdf::owl::OwlLiteReasoner;
        let mut graph = Graph::new();
        graph.insert(Statement::new(
            Term::iri("p"),
            Term::iri("rdf:type"),
            Term::iri("owl:SymmetricProperty"),
        ));
        for (s, o) in &edges {
            graph.insert(Statement::new(Term::iri(s.clone()), Term::iri("p"), Term::iri(o.clone())));
        }
        let mut closed = graph.clone();
        closed.extend_from(&OwlLiteReasoner::owl_only().infer(&graph));
        // Closure property: every (s p o) has (o p s).
        for st in closed.match_pattern(None, Some(&Term::iri("p")), None) {
            let mirror = Statement::new(st.object.clone(), st.predicate.clone(), st.subject.clone());
            prop_assert!(closed.contains(&mirror), "missing mirror of {st}");
        }
    }

    #[test]
    fn incremental_rdfs_equals_from_scratch_under_churn(
        ops in prop::collection::vec((arb_rdfs_statement(), any::<bool>()), 1..40),
    ) {
        use cogsdk::rdf::{IncrementalMaterializer, RdfsReasoner};
        let mut m = IncrementalMaterializer::new();
        m.enable_rdfs();
        let mut stated = Graph::new();
        for (st, insert) in &ops {
            if *insert {
                m.insert(st.clone());
                stated.insert(st.clone());
            } else {
                m.remove(st);
                stated.remove(st);
            }
        }
        // The maintained closure must be indistinguishable from throwing
        // everything away and re-running the reasoner from scratch.
        let mut scratch = stated.clone();
        scratch.extend_from(&RdfsReasoner::new().infer(&stated));
        prop_assert_eq!(m.base(), &stated, "stated facts diverged");
        prop_assert_eq!(m.full(), &scratch, "closure diverged from scratch fixpoint");
    }

    #[test]
    fn incremental_transitive_equals_from_scratch_under_churn(
        ops in prop::collection::vec((arb_edge_statement(), any::<bool>()), 1..40),
    ) {
        use cogsdk::rdf::{IncrementalMaterializer, TransitiveReasoner};
        let next = Term::iri("next");
        let mut m = IncrementalMaterializer::new();
        m.add_transitive(vec![next.clone()]);
        let mut stated = Graph::new();
        for (st, insert) in &ops {
            if *insert {
                m.insert(st.clone());
                stated.insert(st.clone());
            } else {
                m.remove(st);
                stated.remove(st);
            }
        }
        let mut scratch = stated.clone();
        scratch.extend_from(&TransitiveReasoner::new(vec![next]).infer(&stated));
        prop_assert_eq!(m.base(), &stated, "stated facts diverged");
        prop_assert_eq!(m.full(), &scratch, "closure diverged from scratch fixpoint");
    }

    #[test]
    fn weighted_inference_confidences_stay_in_unit_interval(
        confs in prop::collection::vec(0.0f64..=1.0, 1..8),
        strength in 0.1f64..=1.0,
    ) {
        use cogsdk::rdf::weighted::{WeightedGraph, WeightedReasoner};
        let mut wg = WeightedGraph::new();
        for (i, c) in confs.iter().enumerate() {
            wg.insert_with_confidence(
                Statement::new(
                    Term::iri(format!("n{i}")),
                    Term::iri("next"),
                    Term::iri(format!("n{}", i + 1)),
                ),
                *c,
            );
        }
        let reasoner = WeightedReasoner::from_rules_text(
            "[(?a next ?b) -> (?a reach ?b)]\n[(?a next ?b), (?b reach ?c) -> (?a reach ?c)]",
            strength,
        )
        .unwrap();
        let added = reasoner.infer(&mut wg);
        for (st, conf) in added {
            prop_assert!((0.0..=1.0).contains(&conf), "{st} conf={conf}");
            // An inferred fact can never exceed the weakest ingredient
            // times one application of the rule.
            prop_assert!(conf <= strength + 1e-12);
        }
    }
}
