//! cogsdk: a rich SDK for data analytics applications that use cognitive
//! services, plus a personalized knowledge base built on top of it.
//!
//! This crate is the facade over the workspace — a from-scratch Rust
//! reproduction of *Supporting Data Analytics Applications Which Utilize
//! Cognitive Services* (Iyengar, ICDCS 2017). See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the reproduced experiments.
//!
//! # Layout
//!
//! * [`sdk`] ([`cogsdk_core`]) — the rich SDK: monitoring, latency
//!   prediction, ranking (Eq. 1 / Eq. 2), retry/failover/redundancy,
//!   caching, sync/async invocation, NLU aggregation pipelines.
//! * [`kb`] ([`cogsdk_kb`]) — the personalized knowledge base:
//!   multi-format storage, conversion, disambiguation, analytics +
//!   inference, encryption/compression, offline operation.
//! * [`obs`] ([`cogsdk_obs`]) — observability: structured invocation
//!   tracing, a labeled metrics registry, Prometheus/JSON-Lines
//!   exporters. Wired through the SDK, cache, pool and gateway; disabled
//!   (near-zero cost) by default.
//! * Substrates: [`sim`] (service fabric), [`text`] (NLU), [`search`]
//!   (web search + HTML), [`store`] (KV/tables/CSV/crypto/compression),
//!   [`rdf`] (triple store + four reasoners + SPARQL subset + weighted
//!   inference), [`stats`] (regression & statistics), [`datasvc`]
//!   (knowledge source / finance / image search / vision fleets),
//!   [`json`] (wire format).
//!
//! # Quickstart
//!
//! ```
//! use cogsdk::sdk::RichSdk;
//! use cogsdk::sim::{SimEnv, SimService, Request};
//! use cogsdk::sim::latency::LatencyModel;
//! use cogsdk::json::json;
//!
//! let env = SimEnv::with_seed(7);
//! let sdk = RichSdk::new(&env);
//! sdk.register(SimService::builder("kv", "storage")
//!     .latency(LatencyModel::constant_ms(10.0))
//!     .build(&env));
//!
//! let (resp, _cached) = sdk
//!     .invoke_cached("kv", &Request::new("get", json!({"key": "answer"})))
//!     .unwrap();
//! assert_eq!(resp.payload, json!({"key": "answer"}));
//! ```

pub use cogsdk_core as sdk;
pub use cogsdk_datasvc as datasvc;
pub use cogsdk_json as json;
pub use cogsdk_kb as kb;
pub use cogsdk_obs as obs;
pub use cogsdk_rdf as rdf;
pub use cogsdk_search as search;
pub use cogsdk_sim as sim;
pub use cogsdk_stats as stats;
pub use cogsdk_store as store;
pub use cogsdk_text as text;
