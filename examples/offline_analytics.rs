//! Disconnected operation (§3): "The personalized knowledge base tries to
//! accommodate scenarios where the computer(s) on which it runs may be
//! disconnected from the network" — analytics keep running locally, and
//! local storage resynchronizes with the cloud store once connectivity
//! returns.
//!
//! Run with: `cargo run --example offline_analytics`

use cogsdk::kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk::store::{KeyValueStore, MemoryKv};
use std::sync::Arc;

fn main() {
    let cloud = Arc::new(MemoryKv::new());
    let kb = PersonalKnowledgeBase::new(cloud.clone(), KbOptions::default());

    // Online: take a first snapshot to the cloud.
    kb.ingest_csv(
        "sensor",
        "hour,temperature\n0,18.5\n1,18.9\n2,19.4\n3,19.8\n4,20.3\n",
    )
    .unwrap();
    kb.table_to_rdf("sensor", "hour", "kb").unwrap();
    kb.persist_graph("telemetry").unwrap();
    println!(
        "online   : persisted {} statements; cloud has snapshot: {}",
        kb.statement_count(),
        cloud.get("telemetry").is_ok()
    );

    // The link drops.
    kb.set_connected(false);
    println!("offline  : connectivity lost");

    // Work continues entirely locally: new text, new analytics, new
    // inference, new snapshots.
    kb.ingest_text("IBM praised the excellent local analytics of the device.")
        .expect("ingest");
    let facts = kb
        .regress_and_store("sensor", "hour", "temperature", "warming trend")
        .unwrap();
    println!(
        "offline  : regression ran locally, slope={:+.3}°/h, predicted t(8h)={:.1}°",
        facts.slope,
        facts.predict(8.0)
    );
    let inferred = kb
        .infer_rules("[(?m kb:trend \"increasing\") -> (?m kb:alert kb:RisingTemperature)]")
        .unwrap();
    println!("offline  : {inferred} fact(s) inferred without any network");

    kb.persist_graph("telemetry").unwrap();
    println!(
        "offline  : snapshot updated locally; dirty keys awaiting sync: {:?}",
        kb.dirty_keys()
    );
    // The cloud copy is still the stale first snapshot.
    let stale = cloud.get("telemetry").unwrap();
    println!("offline  : cloud snapshot is stale ({} bytes)", stale.len());

    // Local reads during the outage are served from local storage.
    let loaded = kb.load_graph("telemetry").unwrap();
    println!("offline  : reloaded {loaded} statements from local storage");

    // Connectivity returns: resynchronize.
    kb.set_connected(true);
    let report = kb.synchronize();
    println!(
        "reconnect: pushed={:?} failed={:?}",
        report.pushed, report.failed
    );
    let fresh = cloud.get("telemetry").unwrap();
    println!(
        "reconnect: cloud snapshot now {} bytes (was {})",
        fresh.len(),
        stale.len()
    );
    assert!(
        fresh.len() > stale.len(),
        "cloud caught up with offline work"
    );
    println!("done: offline work is durable in the cloud");
}
