//! Quickstart: register services, invoke with caching, ranking, retries
//! and async futures — the Figure-2 feature tour in ~80 lines.
//!
//! Run with: `cargo run --example quickstart`

use cogsdk::json::json;
use cogsdk::sdk::rank::RankOptions;
use cogsdk::sdk::RichSdk;
use cogsdk::sim::cost::{CostModel, MicroDollars};
use cogsdk::sim::failure::FailurePlan;
use cogsdk::sim::latency::LatencyModel;
use cogsdk::sim::{Request, SimEnv, SimService};

fn main() {
    // A deterministic simulated world: latency, failures and costs all
    // derive from this seed.
    let env = SimEnv::with_seed(7);
    let sdk = RichSdk::new(&env);

    // Register three interchangeable storage services with different
    // latency/cost/quality profiles (paper §2.1: "multiple services
    // providing similar functionality").
    sdk.register(
        SimService::builder("kv-fast", "storage")
            .latency(LatencyModel::lognormal_ms(8.0, 0.3))
            .cost(CostModel::PerCall(MicroDollars::from_micros(200)))
            .quality(0.7)
            .build(&env),
    );
    sdk.register(
        SimService::builder("kv-cheap", "storage")
            .latency(LatencyModel::lognormal_ms(40.0, 0.4))
            .cost(CostModel::Free)
            .quality(0.6)
            .build(&env),
    );
    sdk.register(
        SimService::builder("kv-flaky", "storage")
            .latency(LatencyModel::lognormal_ms(5.0, 0.3))
            .failures(FailurePlan::flaky(0.4))
            .quality(0.5)
            .build(&env),
    );

    let request = Request::new("get", json!({"key": "user:42"}));

    // 1. Plain invocation with retries.
    let resp = sdk.invoke("kv-fast", &request).expect("service reachable");
    println!("direct invoke      -> {}", resp.payload);

    // 2. Cached invocation: the second call never leaves the process.
    let (_, hit1) = sdk.invoke_cached("kv-cheap", &request).unwrap();
    let (_, hit2) = sdk.invoke_cached("kv-cheap", &request).unwrap();
    println!("cache              -> first hit: {hit1}, second hit: {hit2}");

    // 3. Warm the monitor, then let the SDK *select* the best service.
    for _ in 0..20 {
        for name in ["kv-fast", "kv-cheap", "kv-flaky"] {
            let _ = sdk.invoke(name, &request);
        }
    }
    let ranked = sdk.rank("storage", &RankOptions::default());
    println!("ranking            ->");
    for r in &ranked {
        println!(
            "  {:8} score={:+.3}  r={:6.2}ms  c={:5.0}u$  q={:.2}",
            r.service.name(),
            r.score,
            r.inputs.response_ms,
            r.inputs.cost_micros,
            r.inputs.quality
        );
    }

    // 4. Class invocation = ranked selection + automatic failover.
    let ok = sdk
        .invoke_class("storage", &request, &RankOptions::default())
        .unwrap();
    println!(
        "class invoke       -> answered by {} after trying {} service(s)",
        ok.service, ok.services_tried
    );

    // 5. Asynchronous invocation with a completion listener
    //    (the paper's ListenableFuture).
    let future = sdk.invoke_async("kv-fast", request.clone());
    future.add_listener(|result| {
        let status = if result.is_ok() { "ok" } else { "failed" };
        println!("async listener     -> completed: {status}");
    });
    future.wait();

    // 6. What did all of that cost, and how did the services behave?
    let monitor = sdk.monitor();
    for name in ["kv-fast", "kv-cheap", "kv-flaky"] {
        let h = monitor.history(name).expect("monitored");
        println!(
            "monitor            -> {:8} availability={:.2} mean={:.2}ms",
            name,
            h.availability().unwrap_or(0.0),
            h.mean_latency_ms().unwrap_or(0.0),
        );
    }
    println!("total spend        -> {}", monitor.total_cost());
}
