//! Financial data analytics: Figure 1's "stock and financial data
//! services" feeding the knowledge base's analysis-and-inference loop.
//! Prices come from the simulated finance service, land in a relational
//! table, get regressed, and the trends become RDF facts that rules
//! classify — with accuracy levels (§5 future work) reflecting fit
//! quality.
//!
//! Run with: `cargo run --example financial_analytics`

use cogsdk::datasvc::finance::{finance_service, history_to_csv};
use cogsdk::json::json;
use cogsdk::kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk::sdk::RichSdk;
use cogsdk::sim::{Request, SimEnv};
use cogsdk::store::MemoryKv;
use std::sync::Arc;

fn main() {
    let env = SimEnv::with_seed(314);
    let sdk = RichSdk::new(&env);
    let stocks = finance_service(&env, "stocks");
    sdk.register(stocks);

    let kb = PersonalKnowledgeBase::new(Arc::new(MemoryKv::new()), KbOptions::default());

    let tickers = ["IBM", "ACME", "GLOBEX", "INITECH", "HOOLI"];
    println!(
        "pulling 120-day histories for {} tickers...\n",
        tickers.len()
    );

    for ticker in tickers {
        // Cached invocation: repeated analysis of the same ticker would
        // not re-bill the finance service.
        let (resp, _hit) = sdk
            .invoke_cached(
                "stocks",
                &Request::new(
                    "history",
                    json!({"op": "history", "ticker": (ticker), "days": 120}),
                ),
            )
            .expect("finance service reachable");
        let csv = history_to_csv(&resp.payload).expect("well-formed history");
        let table = format!("prices_{}", ticker.to_lowercase());
        kb.ingest_csv(&table, &csv).unwrap();

        // Figure 5: regression over the table, results as RDF facts.
        let facts = kb
            .regress_and_store(&table, "day", "price", &format!("{ticker} price"))
            .unwrap();
        println!(
            "{ticker:8} slope={:+.4}/day  r²={:.3}  trend stored as RDF",
            facts.slope, facts.r_squared
        );
    }

    // Classify the trends with rules; a second rule chains on the first.
    let inferred = kb
        .infer_rules(
            "[(?m kb:trend \"increasing\") -> (?m kb:signal kb:Bullish)]\n\
             [(?m kb:trend \"decreasing\") -> (?m kb:signal kb:Bearish)]",
        )
        .unwrap();
    println!("\nrule inference produced {inferred} trading signals:");
    for label in ["Bullish", "Bearish"] {
        let rows = kb
            .query(&format!(
                "SELECT ?m WHERE {{ ?m <kb:signal> <kb:{label}> . }}"
            ))
            .unwrap();
        for r in rows {
            println!("  {label:8} {}", r["m"]);
        }
    }

    // Accuracy levels: trust a signal only as far as its fit. Weighted
    // rules dilute low-r² conclusions.
    let weighted = kb
        .infer_rules_weighted(
            "[(?m kb:signal kb:Bullish) -> (?m kb:action kb:ConsiderBuying)]",
            0.85,
        )
        .unwrap();
    println!(
        "\nweighted inference ({} actionable facts):",
        weighted.len()
    );
    for (fact, confidence) in &weighted {
        println!("  {:55} confidence={confidence:.2}", fact.to_string());
    }

    println!(
        "\nservice spend this session: {} | statements in KB: {}",
        sdk.monitor().total_cost(),
        kb.statement_count()
    );
}
