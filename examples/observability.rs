//! End-to-end telemetry: one failover invocation, fully reconstructed.
//!
//! Enables tracing on the SDK, forces a failover (the top-ranked service
//! is down), then prints the trace tree for that single `invoke_class` —
//! every leg, attempt, backoff and the predicted-vs-observed latency —
//! followed by the Prometheus view of the same activity.
//!
//! Run with: `cargo run --example observability`

use cogsdk::json::json;
use cogsdk::obs::{prometheus_text, render_trace_tree, Telemetry};
use cogsdk::sdk::invoke::{Backoff, InvocationPolicy};
use cogsdk::sdk::rank::RankOptions;
use cogsdk::sdk::RichSdk;
use cogsdk::sim::failure::FailurePlan;
use cogsdk::sim::latency::LatencyModel;
use cogsdk::sim::{Request, SimEnv, SimService};
use std::time::Duration;

fn main() {
    let env = SimEnv::with_seed(2026);
    let telemetry = Telemetry::new();
    let sdk = RichSdk::with_telemetry(&env, telemetry.clone());

    // The best-looking service is completely down; its advertised quality
    // still wins the ranking, so the first failover leg burns retries on
    // it before the backup answers.
    sdk.register(
        SimService::builder("premium-nlu", "nlu")
            .latency(LatencyModel::constant_ms(4.0))
            .failures(FailurePlan::flaky(1.0))
            .quality(0.98)
            .build(&env),
    );
    sdk.register(
        SimService::builder("budget-nlu", "nlu")
            .latency(LatencyModel::constant_ms(35.0))
            .quality(0.70)
            .build(&env),
    );
    sdk.set_policy(InvocationPolicy {
        default_retries: 2,
        backoff: Backoff::Fixed(Duration::from_millis(20)),
        ..InvocationPolicy::default()
    });

    let ok = sdk
        .invoke_class(
            "nlu",
            &Request::new("classify", json!({"text": "telemetry demo"})),
            &RankOptions::default(),
        )
        .expect("backup answers");

    println!(
        "invoke_class succeeded on '{}' after {} services / {} attempts ({:.1} ms)\n",
        ok.service, ok.services_tried, ok.attempts, ok.latency_ms
    );

    println!("=== trace tree (one invocation, reconstructed from events) ===");
    println!("{}", render_trace_tree(&telemetry.tracer().events()));

    println!("=== /metrics (Prometheus text exposition, excerpt) ===");
    for line in prometheus_text(telemetry.metrics())
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("sdk_attempts_total")
                || l.starts_with("sdk_errors_total")
                || l.starts_with("sdk_failover_legs_total")
                || l.starts_with("sdk_attempt_latency_ms_count")
                || l.starts_with("sdk_prediction_error_ms_count")
        })
    {
        println!("{line}");
    }
}
