//! The personalized knowledge base (§3, Figures 4 and 5): ingest CSV and
//! free text, disambiguate entities, convert formats, run regression,
//! store the results as RDF, and infer new facts from them.
//!
//! Run with: `cargo run --example knowledge_base`

use cogsdk::kb::{KbOptions, PersonalKnowledgeBase};
use cogsdk::store::MemoryKv;
use std::sync::Arc;

fn main() {
    // An encrypting, compressing KB in front of an (untrusted) remote
    // key-value store.
    let remote = Arc::new(MemoryKv::new());
    let kb = PersonalKnowledgeBase::new(
        remote,
        KbOptions {
            encryption_passphrase: Some("personal kb passphrase".into()),
            compress: true,
            cache_capacity: 128,
            ..KbOptions::default()
        },
    );

    // 1. Structured ingestion: GDP time series as CSV -> relational table.
    let csv = "\
country,year,gdp
usa,2012,16200.0
usa,2013,16800.0
usa,2014,17500.0
usa,2015,18200.0
usa,2016,18700.0
germany,2012,3540.0
germany,2013,3750.0
germany,2014,3900.0
germany,2015,3360.0
germany,2016,3470.0
";
    let rows = kb.ingest_csv("gdp", csv).unwrap();
    println!("ingested {rows} CSV rows into table 'gdp'");

    // 2. Format conversion: table -> RDF statements.
    let added = kb.table_to_rdf("gdp", "country", "kb").unwrap();
    println!("converted table to {added} RDF statements");

    // 3. Unstructured ingestion with entity disambiguation: every alias
    //    of the United States lands on one canonical resource.
    for sentence in [
        "The USA signed a trade deal with Germany.",
        "The United States of America praised the excellent agreement.",
        "America and Deutschland celebrated impressive growth.",
    ] {
        kb.ingest_text(sentence).expect("ingest");
    }
    let docs = kb
        .query("SELECT ?d WHERE { ?d <kb:mentions> <kb:united_states> . }")
        .unwrap();
    println!(
        "disambiguation: {} differently-phrased documents all mention <kb:united_states>",
        docs.len()
    );

    // 4. User synonym files for uncovered domains (§3's disease example).
    kb.add_synonym_file("influenza: flu, the flu, grippe\n")
        .unwrap();
    println!(
        "synonym file: 'the flu' resolves to {:?}",
        kb.disambiguate("the flu").map(|e| e.id)
    );

    // 5. SPARQL over the combined knowledge.
    let rows = kb
        .query("SELECT ?c ?g WHERE { ?c <kb:gdp> ?g . FILTER (?g > 16000) } ORDER BY ?g LIMIT 3")
        .unwrap();
    println!("query: {} rows with gdp > 16000", rows.len());

    // 6. Figure 5: regression -> RDF facts -> rule inference -> new
    //    knowledge the statistics alone never stated.
    let facts = kb
        .regress_and_store("gdp", "year", "gdp", "gdp by year")
        .unwrap();
    println!(
        "regression: gdp ~ year  slope={:+.1} r²={:.3}  prediction(2020)={:.0}",
        facts.slope,
        facts.r_squared,
        facts.predict(2020.0)
    );
    let inferred = kb
        .infer_rules(
            "[(?m kb:trend \"increasing\") -> (?m kb:classification kb:GrowthIndicator)]\n\
             [(?m kb:classification kb:GrowthIndicator), (?m kb:r_squared ?r) -> (?m kb:review kb:Recommended)]",
        )
        .unwrap();
    println!("inference: {inferred} new facts chained from the regression result");

    // 7. RDFS reasoning over the entity taxonomy.
    kb.add_statement(cogsdk::rdf::Statement::new(
        cogsdk::rdf::Term::iri("kb:country"),
        cogsdk::rdf::Term::iri("rdfs:subClassOf"),
        cogsdk::rdf::Term::iri("kb:geopolitical_entity"),
    ))
    .expect("add statement");
    let n = kb.infer_rdfs().expect("infer rdfs");
    println!("rdfs reasoner: {n} additional type facts");

    // 7b. OWL/Lite reasoning: alias smushing at the RDF level.
    kb.add_statement(cogsdk::rdf::Statement::new(
        cogsdk::rdf::Term::iri("kb:deutschland"),
        cogsdk::rdf::Term::iri("owl:sameAs"),
        cogsdk::rdf::Term::iri("kb:germany"),
    ))
    .expect("add statement");
    let n = kb.infer_owl().expect("infer owl");
    println!("owl-lite reasoner: {n} facts copied across sameAs aliases");

    // 7c. Tabled backward chaining: prove a goal on demand without
    //     materializing the rule closure.
    kb.add_fact("IBM", "supplies", "Microsoft").unwrap();
    kb.add_fact("Microsoft", "supplies", "Google").unwrap();
    let proofs = kb
        .prove(
            "[(?a kb:supplies ?b) -> (?a kb:reaches ?b)]\n\
             [(?a kb:supplies ?b), (?b kb:reaches ?c) -> (?a kb:reaches ?c)]",
            "(kb:ibm kb:reaches ?who)",
            6,
        )
        .unwrap();
    println!(
        "backward chaining: kb:ibm reaches {:?}",
        proofs
            .iter()
            .filter_map(|b| b.get("who"))
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );

    // 8. Local spell checking (fast, free, offline).
    let fixes = kb.spell_check("the govermnent reported stong growth");
    println!("spell checker: {fixes:?}");

    // 9. Persist the whole graph — encrypted and compressed on the wire.
    kb.persist_graph("kb-snapshot").unwrap();
    println!(
        "persisted {} statements (encrypted + compressed) under 'kb-snapshot'",
        kb.statement_count()
    );

    // 10. Export for external tools.
    let csv_out = kb.export_csv("gdp").unwrap();
    println!("exported table 'gdp': {} CSV bytes", csv_out.len());
}
